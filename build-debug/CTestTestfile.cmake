# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-debug
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-debug/affinity_test[1]_include.cmake")
include("/root/repo/build-debug/alid_test[1]_include.cmake")
include("/root/repo/build-debug/baselines_test[1]_include.cmake")
include("/root/repo/build-debug/column_cache_test[1]_include.cmake")
include("/root/repo/build-debug/common_test[1]_include.cmake")
include("/root/repo/build-debug/concurrency_test[1]_include.cmake")
include("/root/repo/build-debug/data_test[1]_include.cmake")
include("/root/repo/build-debug/determinism_test[1]_include.cmake")
include("/root/repo/build-debug/edge_cases_test[1]_include.cmake")
include("/root/repo/build-debug/equivalence_test[1]_include.cmake")
include("/root/repo/build-debug/integration_test[1]_include.cmake")
include("/root/repo/build-debug/lid_test[1]_include.cmake")
include("/root/repo/build-debug/linalg_test[1]_include.cmake")
include("/root/repo/build-debug/lsh_test[1]_include.cmake")
include("/root/repo/build-debug/metrics_test[1]_include.cmake")
include("/root/repo/build-debug/online_alid_test[1]_include.cmake")
include("/root/repo/build-debug/palid_test[1]_include.cmake")
include("/root/repo/build-debug/partitioning_test[1]_include.cmake")
include("/root/repo/build-debug/roi_civs_test[1]_include.cmake")
include("/root/repo/build-debug/thread_pool_test[1]_include.cmake")
