// Tests of the streaming runtime (windowed, batch-parallel OnlineAlid):
// bit-identical stream state across executor counts and scheduling
// disciplines, cache-on ≡ cache-off under interleaved insert/expiry, and the
// streaming edge cases (empty window, duplicate inserts, remove-then-
// reinsert, refresh-interval boundaries).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions Options(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  return opts;
}

// Streams `data` in a fixed shuffled order as batches of `batch`, returning
// the finished stream for state comparison.
std::unique_ptr<OnlineAlid> RunStream(const LabeledData& data,
                                      OnlineAlidOptions opts, Index batch) {
  auto online = std::make_unique<OnlineAlid>(data.data.dim(), opts);
  Rng rng(5);
  const auto order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto row = data.data[order[pos]];
    if (static_cast<Index>(flat.size()) / data.data.dim() == batch) {
      online->InsertBatch(flat);
      flat.clear();
    }
    flat.insert(flat.end(), row.begin(), row.end());
  }
  if (!flat.empty()) online->InsertBatch(flat);
  online->Refresh();
  return online;
}

// Full structural equality of two streams: clusters (order included),
// per-slot assignment/liveness, and every state-derived counter.
void ExpectIdenticalStreams(const OnlineAlid& a, const OnlineAlid& b) {
  DetectionResult da, db;
  da.clusters = a.clusters();
  db.clusters = b.clusters();
  ExpectIdenticalDetections(da, db);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.alive(), b.alive());
  const StreamStats& sa = a.stats();
  const StreamStats& sb = b.stats();
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.absorbed, sb.absorbed);
  EXPECT_EQ(sa.pooled, sb.pooled);
  EXPECT_EQ(sa.evicted, sb.evicted);
  EXPECT_EQ(sa.redetections, sb.redetections);
  EXPECT_EQ(sa.refreshes, sb.refreshes);
  EXPECT_EQ(sa.clusters_born, sb.clusters_born);
  EXPECT_EQ(sa.clusters_dissolved, sb.clusters_dissolved);
  // The sketch filter and the refresh frontier schedule are deterministic
  // too: their counters are part of the bit-identity contract.
  EXPECT_EQ(sa.sketch_prunes, sb.sketch_prunes);
  EXPECT_EQ(sa.sketch_exact, sb.sketch_exact);
  EXPECT_EQ(sa.refresh_rounds, sb.refresh_rounds);
  EXPECT_EQ(sa.refresh_speculations, sb.refresh_speculations);
  EXPECT_EQ(sa.refresh_conflicts, sb.refresh_conflicts);
}

// Per-slot equality needs the slot universe; compare over the high-water
// slot count implied by assignments.
void ExpectIdenticalSlots(const OnlineAlid& a, const OnlineAlid& b,
                          Index slots) {
  for (Index i = 0; i < slots; ++i) {
    EXPECT_EQ(a.IsAlive(i), b.IsAlive(i)) << "slot " << i;
    EXPECT_EQ(a.ClusterOf(i), b.ClusterOf(i)) << "slot " << i;
  }
}

TEST(StreamTest, BitIdenticalAcrossExecutorCountsAndScheduling) {
  LabeledData data = Workload();
  OnlineAlidOptions opts = Options(data);
  opts.window = 260;  // evictions + repairs happen mid-stream
  const Index batch = 37;

  std::unique_ptr<OnlineAlid> serial = RunStream(data, opts, batch);
  ASSERT_GT(serial->clusters().size(), 0u);
  ASSERT_GT(serial->stats().evicted, 0);

  for (int executors : {1, 2, 4, 8}) {
    for (bool stealing : {true, false}) {
      ThreadPool pool(executors, {.work_stealing = stealing});
      OnlineAlidOptions parallel = opts;
      parallel.pool = &pool;
      std::unique_ptr<OnlineAlid> streamed = RunStream(data, parallel, batch);
      SCOPED_TRACE(testing::Message() << "executors=" << executors
                                      << " stealing=" << stealing);
      ExpectIdenticalStreams(*serial, *streamed);
      ExpectIdenticalSlots(*serial, *streamed, opts.window + batch);
    }
  }
}

TEST(StreamTest, BitIdenticalAcrossGrains) {
  LabeledData data = Workload(360);
  OnlineAlidOptions opts = Options(data);
  opts.window = 220;
  ThreadPool pool(4);
  opts.pool = &pool;
  std::unique_ptr<OnlineAlid> automatic = RunStream(data, opts, 41);
  for (int64_t grain : {1, 7, 64}) {
    OnlineAlidOptions g = opts;
    g.grain = grain;
    std::unique_ptr<OnlineAlid> streamed = RunStream(data, g, 41);
    SCOPED_TRACE(testing::Message() << "grain=" << grain);
    ExpectIdenticalStreams(*automatic, *streamed);
  }
}

TEST(StreamTest, CacheOnEqualsCacheOffAfterInterleavedInsertRemove) {
  LabeledData data = Workload(380, 17);
  OnlineAlidOptions opts = Options(data);
  opts.window = 200;  // expiry interleaves with absorption and refreshes
  ThreadPool pool(4);
  opts.pool = &pool;

  OnlineAlidOptions cached = opts;
  cached.column_cache = true;
  OnlineAlidOptions stateless = opts;
  stateless.column_cache = false;

  std::unique_ptr<OnlineAlid> with = RunStream(data, cached, 29);
  std::unique_ptr<OnlineAlid> without = RunStream(data, stateless, 29);
  // The cache engaged and expiry invalidated entries — otherwise this test
  // proves nothing about stale-value hygiene.
  EXPECT_GT(with->oracle().cache_hits(), 0);
  EXPECT_GT(with->stats().cache_entries_invalidated, 0);
  EXPECT_EQ(without->stats().cache_entries_invalidated, 0);
  ExpectIdenticalStreams(*with, *without);
  ExpectIdenticalSlots(*with, *without, opts.window + 29);
}

TEST(StreamTest, SlidingWindowBoundsAliveAndReleasesExpired) {
  LabeledData data = Workload(300);
  OnlineAlidOptions opts = Options(data);
  opts.window = 120;
  std::unique_ptr<OnlineAlid> online = RunStream(data, opts, 25);
  EXPECT_EQ(online->alive(), 120);
  EXPECT_EQ(online->stats().evicted, online->size() - online->alive());
  // Every cluster member is alive and consistently assigned.
  for (size_t c = 0; c < online->clusters().size(); ++c) {
    for (Index m : online->clusters()[c].members) {
      EXPECT_TRUE(online->IsAlive(m));
      EXPECT_EQ(online->ClusterOf(m), static_cast<int>(c));
    }
  }
}

TEST(StreamTest, EmptyWindowEdges) {
  LabeledData data = Workload(60);
  // A window smaller than one batch: almost everything expires immediately.
  OnlineAlidOptions opts = Options(data);
  opts.window = 4;
  OnlineAlid online(data.data.dim(), opts);
  std::vector<Scalar> flat;
  for (Index i = 0; i < 16; ++i) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  online.InsertBatch(flat);
  EXPECT_EQ(online.alive(), 4);
  EXPECT_EQ(online.stats().evicted, 12);
  online.Refresh();  // refresh over a nearly empty window is fine
  // An empty batch is a no-op.
  EXPECT_TRUE(online.InsertBatch({}).empty());
  EXPECT_EQ(online.size(), 16);
}

TEST(StreamTest, DuplicateInsertsShareACluster) {
  LabeledData data = Workload(240);
  OnlineAlidOptions opts = Options(data);
  OnlineAlid online(data.data.dim(), opts);
  for (Index i = 0; i < data.size(); ++i) online.Insert(data.data[i]);
  online.Refresh();
  ASSERT_GT(online.clusters().size(), 0u);
  // Feed an exact duplicate of an already-clustered item: it must land in
  // the same cluster as its twin (it sits exactly at the density).
  Index clustered = -1;
  for (Index i = 0; i < data.size(); ++i) {
    if (online.ClusterOf(i) >= 0) {
      clustered = i;
      break;
    }
  }
  ASSERT_GE(clustered, 0);
  const int twin_cluster = online.ClusterOf(clustered);
  const Index dup = online.Insert(data.data[clustered]);
  EXPECT_GE(online.ClusterOf(dup), 0) << "duplicate not absorbed";
  EXPECT_EQ(online.ClusterOf(dup), online.ClusterOf(clustered));
  EXPECT_EQ(online.ClusterOf(clustered), twin_cluster);
}

TEST(StreamTest, MidBatchAbsorptionClaimsLaterArrivals) {
  // A batch of near-identical points next to an existing cluster: the first
  // arrival's local re-detection absorbs the still-unassigned later ones,
  // so their own apply step must notice the slot is already claimed instead
  // of re-detecting from a seed another cluster owns.
  LabeledData data = Workload(240);
  OnlineAlidOptions opts = Options(data);
  OnlineAlid online(data.data.dim(), opts);
  for (Index i = 0; i < data.size(); ++i) online.Insert(data.data[i]);
  online.Refresh();
  ASSERT_GT(online.clusters().size(), 0u);
  Index member = -1;
  for (Index i = 0; i < data.size(); ++i) {
    if (online.ClusterOf(i) >= 0) {
      member = i;
      break;
    }
  }
  ASSERT_GE(member, 0);
  const int64_t before = online.stats().absorbed;
  std::vector<Scalar> batch;
  for (int copy = 0; copy < 6; ++copy) {
    const auto row = data.data[member];
    batch.insert(batch.end(), row.begin(), row.end());
  }
  const std::vector<Index> slots = online.InsertBatch(batch);
  for (Index slot : slots) {
    EXPECT_GE(online.ClusterOf(slot), 0) << "duplicate not absorbed";
    EXPECT_EQ(online.ClusterOf(slot), online.ClusterOf(member));
  }
  EXPECT_EQ(online.stats().absorbed, before + 6);
  // Out-of-universe slots answer -1 instead of reading past the arrays.
  EXPECT_EQ(online.ClusterOf(online.size() + 1000), -1);
  EXPECT_FALSE(online.IsAlive(online.size() + 1000));
}

TEST(StreamTest, RemoveThenReinsertReusesTheSlot) {
  LabeledData data = Workload(150);
  OnlineAlidOptions opts = Options(data);
  opts.window = 50;
  opts.refresh_interval = 40;
  OnlineAlid online(data.data.dim(), opts);
  for (Index i = 0; i < 60; ++i) online.Insert(data.data[i]);
  // Ten arrivals expired, and each expiry freed a slot the next arrival
  // re-used — so the slot universe is bounded at window + 1 even though the
  // stream saw 60 items.
  EXPECT_EQ(online.alive(), 50);
  EXPECT_EQ(online.stats().evicted, 10);
  Index free_slot = -1;
  for (Index s = 0; s < 51; ++s) {
    if (!online.IsAlive(s)) {
      free_slot = s;
      break;
    }
  }
  ASSERT_GE(free_slot, 0) << "one expired slot should be free";
  // The next arrival — a *different* point — re-uses that slot, and queries
  // against it are fresh (no stale identity, no stale cached affinities).
  const Index slot = online.Insert(data.data[100]);
  EXPECT_EQ(slot, free_slot);
  EXPECT_TRUE(online.IsAlive(slot));
  // Re-inserting an evicted point itself also works: it is a new arrival in
  // whatever slot expiry just freed.
  const Index again = online.Insert(data.data[1]);
  EXPECT_TRUE(online.IsAlive(again));
  EXPECT_LE(again, 51);
  EXPECT_EQ(online.size(), 62);
}

TEST(StreamTest, RefreshIntervalBoundary) {
  LabeledData data = Workload(200);
  OnlineAlidOptions opts = Options(data);
  opts.refresh_interval = 32;
  {
    OnlineAlid online(data.data.dim(), opts);
    for (Index i = 0; i < 31; ++i) online.Insert(data.data[i]);
    EXPECT_EQ(online.stats().refreshes, 0);
    online.Insert(data.data[31]);  // the 32nd arrival crosses the boundary
    EXPECT_EQ(online.stats().refreshes, 1);
  }
  {
    // The boundary also fires *inside* a batch: one batch of 40 arrivals
    // refreshes exactly once, after its 32nd item.
    OnlineAlid online(data.data.dim(), opts);
    std::vector<Scalar> flat;
    for (Index i = 0; i < 40; ++i) {
      const auto row = data.data[i];
      flat.insert(flat.end(), row.begin(), row.end());
    }
    online.InsertBatch(flat);
    EXPECT_EQ(online.stats().refreshes, 1);
    // 24 more arrivals complete the second interval.
    flat.clear();
    for (Index i = 40; i < 64; ++i) {
      const auto row = data.data[i];
      flat.insert(flat.end(), row.begin(), row.end());
    }
    online.InsertBatch(flat);
    EXPECT_EQ(online.stats().refreshes, 2);
  }
}

TEST(StreamTest, BatchInsertMatchesSingleInsertStats) {
  // Batches of one are the single-arrival path: the whole stream fed one
  // item at a time must equal the same stream fed as InsertBatch of 1.
  LabeledData data = Workload(260);
  OnlineAlidOptions opts = Options(data);
  opts.window = 150;
  std::unique_ptr<OnlineAlid> batched = RunStream(data, opts, 1);
  auto single = std::make_unique<OnlineAlid>(data.data.dim(), opts);
  Rng rng(5);
  for (Index i : rng.Permutation(data.size())) {
    single->Insert(data.data[i]);
  }
  single->Refresh();
  ExpectIdenticalStreams(*batched, *single);
}

TEST(StreamTest, StatsCountersAddUp) {
  LabeledData data = Workload(300);
  OnlineAlidOptions opts = Options(data);
  opts.window = 180;
  std::unique_ptr<OnlineAlid> online = RunStream(data, opts, 50);
  const StreamStats& s = online->stats();
  EXPECT_EQ(s.arrivals, 300);
  EXPECT_EQ(s.absorbed + s.pooled, s.arrivals);
  EXPECT_EQ(s.alive, online->alive());
  EXPECT_EQ(s.clusters_alive, static_cast<int>(online->clusters().size()));
  EXPECT_EQ(s.batch_seconds.size(), 6u);  // 300 arrivals / batches of 50
  const std::vector<int> histogram = online->stats().LatencyHistogram(4);
  int total = 0;
  for (int bin : histogram) total += bin;
  EXPECT_EQ(total, 6);
}

}  // namespace
}  // namespace alid
