// Randomized (seeded) property stress tests for the parallel runtime and the
// default-on column cache:
//  - the cache may never change an ALID or PALID detection — cached kernel
//    entries are bit-identical to recomputation, so cache-on and cache-off
//    runs must agree exactly across randomized workloads;
//  - the parallel k-means reduction must preserve Lloyd's invariant: the SSE
//    recorded after each assignment sweep is monotonically non-increasing.
// Every draw derives from a fixed master seed, so failures replay exactly.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/palid.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace alid {
namespace {

constexpr uint64_t kMasterSeed = 20150831;  // the paper's PVLDB issue date

LabeledData RandomWorkload(Rng& rng) {
  SyntheticConfig cfg;
  cfg.n = static_cast<Index>(rng.UniformInt(200, 500));
  cfg.dim = static_cast<int>(rng.UniformInt(6, 16));
  cfg.num_clusters = static_cast<int>(rng.UniformInt(2, 5));
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.5 + 0.5 * rng.Uniform();
  cfg.mean_box = 300.0;
  cfg.seed = rng.engine()();
  return MakeSynthetic(cfg);
}

using Pipeline = TestPipeline;

TEST(StressTest, AlidIdenticalWithAndWithoutCacheOnRandomWorkloads) {
  Rng rng(kMasterSeed);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    LabeledData data = RandomWorkload(rng);
    Pipeline cached(data, /*cache=*/true);
    Pipeline plain(data, /*cache=*/false);
    DetectionResult with_cache =
        AlidDetector(*cached.oracle, *cached.lsh, {}).DetectAll();
    DetectionResult without_cache =
        AlidDetector(*plain.oracle, *plain.lsh, {}).DetectAll();
    ExpectIdenticalDetections(without_cache, with_cache);
    // The runs did differ in reuse, not in results.
    EXPECT_EQ(plain.oracle->cache_hits(), 0);
    EXPECT_LE(cached.oracle->entries_computed(),
              plain.oracle->entries_computed());
  }
}

TEST(StressTest, PalidIdenticalWithAndWithoutCacheOnRandomWorkloads) {
  Rng rng(kMasterSeed + 1);
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    LabeledData data = RandomWorkload(rng);
    Pipeline cached(data, /*cache=*/true);
    Pipeline plain(data, /*cache=*/false);
    PalidOptions opts;
    opts.num_executors = static_cast<int>(rng.UniformInt(2, 6));
    DetectionResult with_cache =
        Palid(*cached.oracle, *cached.lsh, opts).Detect();
    DetectionResult without_cache =
        Palid(*plain.oracle, *plain.lsh, opts).Detect();
    ExpectIdenticalDetections(without_cache, with_cache);
  }
}

TEST(StressTest, PalidOnSharedExternalPoolMatchesOwnedPool) {
  Rng rng(kMasterSeed + 2);
  LabeledData data = RandomWorkload(rng);
  Pipeline p(data, /*cache=*/true);
  PalidOptions owned;
  owned.num_executors = 4;
  DetectionResult reference = Palid(*p.oracle, *p.lsh, owned).Detect();
  ThreadPool shared(4);
  PalidOptions external;
  external.pool = &shared;
  PalidStats stats;
  DetectionResult on_shared =
      Palid(*p.oracle, *p.lsh, external).Detect(&stats);
  ExpectIdenticalDetections(reference, on_shared);
  EXPECT_GT(stats.cache_budget_bytes, 0);
}

TEST(StressTest, KMeansObjectiveMonotoneUnderParallelReduction) {
  Rng rng(kMasterSeed + 3);
  ThreadPool pool(4);
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    LabeledData data = RandomWorkload(rng);
    KMeansOptions opts;
    opts.seed = rng.engine()();
    opts.grain = static_cast<int64_t>(rng.UniformInt(1, 128));
    opts.pool = trial % 2 == 0 ? &pool : nullptr;  // parallel and serial
    const int k = static_cast<int>(rng.UniformInt(2, 8));
    KMeansResult result = RunKMeans(data.data, k, opts);
    ASSERT_EQ(result.sse_history.size(),
              static_cast<size_t>(result.iterations));
    for (size_t i = 1; i < result.sse_history.size(); ++i) {
      // Lloyd's invariant under the chunk-ordered parallel reduction; the
      // epsilon only absorbs FP rounding of sums that are equal in exact
      // arithmetic.
      EXPECT_LE(result.sse_history[i],
                result.sse_history[i - 1] * (1.0 + 1e-12) + 1e-9)
          << "iteration " << i;
    }
    EXPECT_EQ(result.sse, result.sse_history.back());
  }
}

}  // namespace
}  // namespace alid
