// Tests of the shared affinity column cache and its honesty contract with
// the oracle's Table 1 counters: entries_computed means true kernel work,
// cache reuse is reported separately through cache_hits.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "affinity/column_cache.h"
#include "affinity/lazy_affinity_oracle.h"
#include "data/synthetic.h"

namespace alid {
namespace {

LabeledData SmallData(Index n = 120) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 8;
  cfg.num_clusters = 3;
  cfg.seed = 11;
  return MakeSynthetic(cfg);
}

TEST(ColumnCacheTest, LookupAfterInsertHitsSymmetrically) {
  ColumnCache cache;
  Scalar value = 0.0;
  EXPECT_FALSE(cache.Lookup(3, 7, &value));
  cache.Insert(3, 7, 0.25);
  ASSERT_TRUE(cache.Lookup(3, 7, &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  // a_ij == a_ji: the transposed pair is the same slot.
  ASSERT_TRUE(cache.Lookup(7, 3, &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ColumnCacheTest, BoundedByMaxBytesWithLruEviction) {
  ColumnCacheOptions opts;
  opts.num_shards = 1;  // single shard makes the LRU order observable
  opts.max_bytes = 8 * ColumnCache::kBytesPerEntry;
  ColumnCache cache(opts);
  for (Index i = 0; i < 100; ++i) cache.Insert(i, i + 1000, 1.0);
  EXPECT_LE(cache.size_bytes(), opts.max_bytes);
  EXPECT_GT(cache.evictions(), 0);
  Scalar value = 0.0;
  // The newest entry survived, the oldest was evicted.
  EXPECT_TRUE(cache.Lookup(99, 1099, &value));
  EXPECT_FALSE(cache.Lookup(0, 1000, &value));
}

TEST(ColumnCacheTest, LookupRefreshesLruPosition) {
  ColumnCacheOptions opts;
  opts.num_shards = 1;
  opts.max_bytes = 2 * ColumnCache::kBytesPerEntry;
  ColumnCache cache(opts);
  Scalar value = 0.0;
  cache.Insert(1, 100, 1.0);
  cache.Insert(2, 100, 2.0);
  ASSERT_TRUE(cache.Lookup(1, 100, &value));  // refresh entry 1
  cache.Insert(3, 100, 3.0);                  // evicts entry 2, not 1
  EXPECT_TRUE(cache.Lookup(1, 100, &value));
  EXPECT_FALSE(cache.Lookup(2, 100, &value));
  EXPECT_TRUE(cache.Lookup(3, 100, &value));
}

TEST(ColumnCacheTest, ClearEmptiesAllShards) {
  ColumnCache cache;
  for (Index i = 0; i < 50; ++i) cache.Insert(i, i + 50, 0.5);
  EXPECT_GT(cache.size_bytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
  Scalar value = 0.0;
  EXPECT_FALSE(cache.Lookup(0, 50, &value));
}

TEST(ColumnCacheTest, OracleCountsHitsSeparatelyFromEntriesComputed) {
  // The acceptance criterion of the runtime overhaul: with the cache on,
  // entries_computed still reports true kernel evaluations only — repeat
  // work shows up as cache_hits, never as entries.
  LabeledData data = SmallData();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  oracle.EnableColumnCache({});

  IndexList rows;
  for (Index i = 0; i < 40; ++i) rows.push_back(i);
  auto first = oracle.Column(rows, 100);
  EXPECT_EQ(oracle.entries_computed(), 40);
  EXPECT_EQ(oracle.cache_hits(), 0);

  auto second = oracle.Column(rows, 100);
  EXPECT_EQ(oracle.entries_computed(), 40);  // no recomputation ...
  EXPECT_EQ(oracle.cache_hits(), 40);        // ... the reuse is separate
  EXPECT_EQ(first, second);

  // Single entries hit the same cache, including transposed.
  oracle.Entry(100, 5);
  EXPECT_EQ(oracle.entries_computed(), 40);
  EXPECT_EQ(oracle.cache_hits(), 41);
}

TEST(ColumnCacheTest, CachedValuesMatchUncachedOracle) {
  LabeledData data = SmallData();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle plain(data.data, affinity);
  plain.DisableColumnCache();
  LazyAffinityOracle cached(data.data, affinity);
  cached.EnableColumnCache({});
  IndexList rows;
  for (Index i = 10; i < 60; ++i) rows.push_back(i);
  for (Index col : {0, 5, 99, 100}) {
    EXPECT_EQ(plain.Column(rows, col), cached.Column(rows, col)) << col;
    EXPECT_EQ(plain.Column(rows, col), cached.Column(rows, col)) << col;
  }
}

TEST(ColumnCacheTest, DisableRestoresStatelessOracle) {
  LabeledData data = SmallData();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  oracle.EnableColumnCache({});
  oracle.Entry(1, 2);
  oracle.Entry(1, 2);
  EXPECT_EQ(oracle.cache_hits(), 1);
  oracle.DisableColumnCache();
  EXPECT_EQ(oracle.column_cache(), nullptr);
  EXPECT_EQ(oracle.cache_hits(), 0);
  const int64_t before = oracle.entries_computed();
  oracle.Entry(1, 2);
  EXPECT_EQ(oracle.entries_computed(), before + 1);
}

TEST(ColumnCacheTest, OracleInstallsAutoBudgetedCacheByDefault) {
  LabeledData data = SmallData();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  ASSERT_NE(oracle.column_cache(), nullptr);
  EXPECT_EQ(static_cast<size_t>(oracle.cache_budget_bytes()),
            ColumnCacheOptions::ForDataSize(data.size()).max_bytes);
  // Small n clamps to the floor budget, never below.
  EXPECT_GE(static_cast<size_t>(oracle.cache_budget_bytes()),
            ColumnCacheOptions::kMinAutoBudgetBytes);
  oracle.Entry(0, 1);
  oracle.Entry(0, 1);
  EXPECT_EQ(oracle.entries_computed(), 1);
  EXPECT_EQ(oracle.cache_hits(), 1);
}

TEST(ColumnCacheTest, AutoBudgetScalesWithDataSizeAndClamps) {
  const size_t small = ColumnCacheOptions::ForDataSize(10).max_bytes;
  const size_t mid = ColumnCacheOptions::ForDataSize(20000).max_bytes;
  const size_t huge = ColumnCacheOptions::ForDataSize(1000000).max_bytes;
  EXPECT_EQ(small, ColumnCacheOptions::kMinAutoBudgetBytes);
  // 20000^2 * 8 / 16 = 200 MB: inside the clamp window, fraction applied.
  EXPECT_EQ(mid, static_cast<size_t>(20000) * 20000 * sizeof(Scalar) / 16);
  EXPECT_EQ(huge, ColumnCacheOptions::kMaxAutoBudgetBytes);
}

TEST(ColumnCacheTest, OracleEvictionUnderTightBudgetStaysCorrectAndCounted) {
  // A budget far below the working set: the cache must evict (and report
  // it), stay within budget, and never corrupt returned values.
  LabeledData data = SmallData(200);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  oracle.EnableColumnCache(
      {.max_bytes = 32 * ColumnCache::kBytesPerEntry, .num_shards = 2});
  LazyAffinityOracle reference(data.data, affinity);
  reference.DisableColumnCache();

  IndexList rows;
  for (Index i = 0; i < 100; ++i) rows.push_back(i);
  for (int pass = 0; pass < 3; ++pass) {
    for (Index col = 100; col < 140; ++col) {
      EXPECT_EQ(oracle.Column(rows, col), reference.Column(rows, col)) << col;
    }
  }
  EXPECT_GT(oracle.cache_evictions(), 0);
  EXPECT_LE(static_cast<size_t>(oracle.cache_size_bytes()),
            static_cast<size_t>(oracle.cache_budget_bytes()));
  // Thrashing caps reuse, but the counters still partition the requests:
  // 3 passes x 40 columns x 100 rows, each either a hit or true work.
  EXPECT_EQ(oracle.cache_hits() + oracle.entries_computed(), 3 * 40 * 100);
}

TEST(ColumnCacheTest, EraseItemsInvalidatesLazilyOnLookup) {
  ColumnCacheOptions opts;
  opts.num_shards = 2;
  ColumnCache cache(opts);
  cache.Insert(1, 10, 0.1);
  cache.Insert(2, 10, 0.2);
  cache.Insert(3, 11, 0.3);
  const size_t before = cache.size_bytes();

  // Tagging is O(items): nothing is scanned, nothing freed yet.
  EXPECT_EQ(cache.EraseItems(std::vector<Index>{10}), 1);
  EXPECT_EQ(cache.size_bytes(), before);
  EXPECT_EQ(cache.stale_drops(), 0);

  // Entries touching item 10 drop on their next lookup (counted as misses);
  // the unrelated pair still hits.
  Scalar value = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 10, &value));
  EXPECT_FALSE(cache.Lookup(10, 2, &value));  // symmetric order, same slot
  EXPECT_TRUE(cache.Lookup(3, 11, &value));
  EXPECT_DOUBLE_EQ(value, 0.3);
  EXPECT_EQ(cache.stale_drops(), 2);
  EXPECT_EQ(cache.size_bytes(), before - 2 * ColumnCache::kBytesPerEntry);

  // A re-insert under the current generation serves again — the slot
  // re-use cycle of the streaming runtime.
  cache.Insert(1, 10, 0.7);
  EXPECT_TRUE(cache.Lookup(1, 10, &value));
  EXPECT_DOUBLE_EQ(value, 0.7);
}

TEST(ColumnCacheTest, GenerationSlotCollisionsOnlyOverInvalidate) {
  // A one-slot generation table makes *every* item share the tag: erasing
  // any item invalidates everything — a recompute, never a stale value.
  // (Real configurations use 64K slots; this is the worst-case aliasing.)
  ColumnCacheOptions opts;
  opts.generation_slots = 1;
  ColumnCache cache(opts);
  cache.Insert(1, 2, 0.5);
  cache.Insert(3, 4, 0.6);
  EXPECT_EQ(cache.EraseItems(std::vector<Index>{999}), 1);
  Scalar value = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 2, &value));
  EXPECT_FALSE(cache.Lookup(3, 4, &value));
  EXPECT_EQ(cache.stale_drops(), 2);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(ColumnCacheTest, RebudgetGrowsInPlaceAndShrinksWithEviction) {
  ColumnCacheOptions opts;
  opts.num_shards = 1;
  opts.max_bytes = 4 * ColumnCache::kBytesPerEntry;
  ColumnCache cache(opts);
  for (Index i = 0; i < 4; ++i) cache.Insert(i, i + 100, 1.0);
  EXPECT_EQ(cache.size_bytes(), 4 * ColumnCache::kBytesPerEntry);

  // Growth keeps every warm entry and admits more.
  cache.Rebudget(8 * ColumnCache::kBytesPerEntry);
  EXPECT_EQ(cache.max_bytes(), 8 * ColumnCache::kBytesPerEntry);
  for (Index i = 4; i < 8; ++i) cache.Insert(i, i + 100, 1.0);
  Scalar value = 0.0;
  for (Index i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.Lookup(i, i + 100, &value)) << i;
  }
  EXPECT_EQ(cache.evictions(), 0);

  // A shrink evicts LRU-first down to the new bound.
  cache.Rebudget(2 * ColumnCache::kBytesPerEntry);
  EXPECT_LE(cache.size_bytes(), 2 * ColumnCache::kBytesPerEntry);
  EXPECT_GT(cache.evictions(), 0);
}

TEST(ColumnCacheTest, OracleRebudgetKeepsValuesAndBudgetObservable) {
  LabeledData data = SmallData();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  const Scalar before = oracle.Entry(3, 7);
  const int64_t floor_budget = oracle.cache_budget_bytes();
  oracle.RebudgetColumnCache(static_cast<size_t>(floor_budget) * 2);
  EXPECT_EQ(oracle.cache_budget_bytes(), floor_budget * 2);
  // The warm entry survived the growth and still round-trips.
  const int64_t computed = oracle.entries_computed();
  EXPECT_EQ(oracle.Entry(3, 7), before);
  EXPECT_EQ(oracle.entries_computed(), computed);
}

TEST(ColumnCacheTest, ConcurrentMixedUseIsConsistent) {
  LabeledData data = SmallData(200);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  // Budget comfortably above the 50-column working set so reuse survives
  // eviction (80 rows x 50 cols x 80 bytes/entry = ~320 KB).
  oracle.EnableColumnCache({.max_bytes = 1024 * 1024, .num_shards = 4});
  LazyAffinityOracle reference(data.data, affinity);

  IndexList rows;
  for (Index i = 0; i < 80; ++i) rows.push_back(i);
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 20; ++rep) {
        const Index col = 100 + (t * 20 + rep) % 50;
        if (oracle.Column(rows, col) != reference.Column(rows, col)) {
          mismatch.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(oracle.cache_hits(), 0);
}

}  // namespace
}  // namespace alid
