// Tests of the cluster-serving subsystem: snapshot immutability under
// concurrent ingest, RCU swap linearizability, batched-parallel ==
// serial-query bit-identity, and the assign-agrees-with-absorb contract
// against the streaming runtime's own Theorem-1 decision.
#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "core/palid.h"
#include "data/synthetic.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions StreamOptions(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  return opts;
}

// The generator lays rows out cluster-by-cluster; a fixed shuffle makes any
// prefix cover every planted cluster (and any suffix probe all of them).
std::vector<Index> ShuffledOrder(const LabeledData& data) {
  Rng rng(5);
  return rng.Permutation(data.size());
}

// Feeds the first `count` rows of `order` into a fresh stream and flushes
// the pool.
std::unique_ptr<OnlineAlid> FeedStream(const LabeledData& data,
                                       const std::vector<Index>& order,
                                       Index count, OnlineAlidOptions opts) {
  auto online = std::make_unique<OnlineAlid>(data.data.dim(), opts);
  std::vector<Scalar> flat;
  for (Index pos = 0; pos < count; ++pos) {
    const auto row = data.data[order[pos]];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  online->InsertBatch(flat);
  online->Refresh();
  return online;
}

// Flattens the rows at positions [begin, end) of `order` into one batch.
std::vector<Scalar> FlatRows(const LabeledData& data,
                             const std::vector<Index>& order, Index begin,
                             Index end) {
  std::vector<Scalar> flat;
  for (Index pos = begin; pos < end; ++pos) {
    const auto row = data.data[order[pos]];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

TEST(ServeTest, AssignAgreesWithStreamAbsorbOnHeldOutArrivals) {
  // The contract the snapshot promises: built from a stream with the
  // stream's own affinity/LSH parameters, Assign(x) is *exactly* the
  // Theorem-1 absorb decision the stream takes when x actually arrives —
  // same LSH candidates (the seeded projections match), same weighted
  // kernel sums in the same order, same slack and tie-break.
  LabeledData data = Workload(460, 23);
  OnlineAlidOptions opts = StreamOptions(data);
  opts.refresh_interval = 1 << 20;  // no refresh between probe arrivals
  const std::vector<Index> order = ShuffledOrder(data);
  const Index fed = 340;
  auto online = FeedStream(data, order, fed, opts);
  ASSERT_GT(online->clusters().size(), 1u);

  int absorbed = 0;
  int pooled = 0;
  for (Index pos = fed; pos < data.size(); ++pos) {
    const Index i = order[pos];
    const auto snap = ClusterSnapshot::FromStream(*online);
    ClusterServer server(data.data.dim());
    server.Publish(snap);
    const QueryResponse predicted_response =
        server.Query({.points = data.data[i]});
    ASSERT_TRUE(predicted_response.ok());
    const QueryOutcome predicted = predicted_response.assignments.front();
    const int64_t redetects_before = online->stats().redetections;
    const Index slot = online->Insert(data.data[i]);
    const int actual = online->ClusterOf(slot);
    // The stream's absorb *decision* is observable as the local
    // re-detection it triggers; the server must predict it exactly. (The
    // re-detection may still leave a boundary arrival out of the rebuilt
    // support — then it pools despite an infective margin — but when it
    // keeps the arrival, it keeps it in the predicted cluster.)
    const bool stream_absorbed =
        online->stats().redetections > redetects_before;
    if (predicted.cluster >= 0) {
      EXPECT_TRUE(stream_absorbed) << "arrival " << i;
      EXPECT_GT(predicted.margin, 0.0);
      if (actual >= 0) {
        EXPECT_EQ(actual, predicted.cluster) << "arrival " << i;
        ++absorbed;
      }
    } else {
      EXPECT_FALSE(stream_absorbed) << "arrival " << i;
      EXPECT_EQ(actual, -1) << "arrival " << i;
      ++pooled;
    }
  }
  // The probe set must exercise both outcomes or the contract is vacuous.
  EXPECT_GT(absorbed, 0);
  EXPECT_GT(pooled, 0);
}

TEST(ServeTest, BatchedParallelQueriesBitIdenticalToSerial) {
  LabeledData data = Workload(380, 7);
  const std::vector<Index> order = ShuffledOrder(data);
  auto online = FeedStream(data, order, 300, StreamOptions(data));
  const auto snap = ClusterSnapshot::FromStream(*online);
  const int dim = data.data.dim();

  // Queries: every held-out row plus uniform noise far off the clusters.
  std::vector<Scalar> queries = FlatRows(data, order, 300, data.size());
  Rng rng(41);
  for (int q = 0; q < 40; ++q) {
    for (int d = 0; d < dim; ++d) {
      queries.push_back(rng.Uniform(-600.0, 600.0));
    }
  }
  const Index count = static_cast<Index>(queries.size()) / dim;

  ClusterServer serial(dim);
  serial.Publish(snap);
  std::vector<QueryOutcome> expected;
  for (Index q = 0; q < count; ++q) {
    const QueryResponse one = serial.Query(
        {.points = std::span<const Scalar>(queries).subspan(
             static_cast<size_t>(q) * dim, static_cast<size_t>(dim))});
    expected.push_back(one.assignments.front());
  }
  // Bit-identity of the whole result — cluster, affinity, margin bits and
  // the per-batch generation — across pool widths, scheduling and grains.
  const QueryResponse no_pool = serial.Query({.points = queries});
  EXPECT_TRUE(no_pool.ok());
  EXPECT_EQ(no_pool.generation, snap->generation());
  EXPECT_EQ(no_pool.assignments, expected);
  for (int executors : {2, 4, 8}) {
    for (bool stealing : {true, false}) {
      for (int64_t grain : {int64_t{0}, int64_t{1}, int64_t{7}}) {
        ThreadPool pool(executors, {.work_stealing = stealing});
        ClusterServer server(dim, {.pool = &pool, .grain = grain});
        server.Publish(snap);
        SCOPED_TRACE(testing::Message()
                     << "executors=" << executors << " stealing=" << stealing
                     << " grain=" << grain);
        EXPECT_EQ(server.Query({.points = queries}).assignments, expected);
      }
    }
  }
  // The sweep exercised real assignments, not a wall of -1s.
  int hits = 0;
  for (const QueryOutcome& r : expected) hits += r.cluster >= 0 ? 1 : 0;
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, count);
}

TEST(ServeTest, SnapshotImmutableUnderConcurrentIngest) {
  // The HTAP-style isolation claim: a published snapshot keeps answering
  // from the state it captured while InsertBatch keeps mutating the stream
  // (slot re-use, cluster re-detections, cache invalidations included).
  // Run under TSan, this also proves the two sides share no unsynchronized
  // state — the snapshot deep-copied everything it serves.
  LabeledData data = Workload(520, 57);
  OnlineAlidOptions opts = StreamOptions(data);
  opts.window = 260;  // expiry re-uses the slots the snapshot was built from
  const std::vector<Index> order = ShuffledOrder(data);
  auto online = FeedStream(data, order, 300, opts);
  const auto snap = ClusterSnapshot::FromStream(*online);

  const int dim = data.data.dim();
  ClusterServer server(dim);
  server.Publish(snap);
  const std::vector<Scalar> queries = FlatRows(data, order, 0, 80);
  const std::vector<QueryOutcome> expected =
      server.Query({.points = queries}).assignments;

  std::atomic<bool> mismatch{false};
  std::thread ingest([&] {
    std::vector<Scalar> flat;
    for (Index pos = 300; pos < data.size(); ++pos) {
      const auto row = data.data[order[pos]];
      flat.insert(flat.end(), row.begin(), row.end());
      if (flat.size() == static_cast<size_t>(40 * dim)) {
        online->InsertBatch(flat);
        flat.clear();
      }
    }
    if (!flat.empty()) online->InsertBatch(flat);
    online->Refresh();
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int rep = 0; rep < 30; ++rep) {
        if (server.Query({.points = queries}).assignments != expected) {
          mismatch.store(true);
        }
      }
    });
  }
  ingest.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(mismatch.load());
  // The stream really did move on while the snapshot stood still.
  EXPECT_GT(online->size(), static_cast<Index>(snap->generation()));
  EXPECT_GT(online->stats().evicted, 0);
}

TEST(ServeTest, SnapshotSwapUnderLoadIsLinearizable) {
  // RCU publication: while a publisher hot-swaps snapshots, every reader
  // (a) answers each whole batch from exactly one snapshot, (b) observes
  // generations monotonically (the atomic's coherence order), and (c) only
  // ever sees generations that were actually published.
  LabeledData data = Workload(480, 11);
  OnlineAlidOptions opts = StreamOptions(data);
  auto online = std::make_unique<OnlineAlid>(data.data.dim(), opts);

  std::vector<std::shared_ptr<const ClusterSnapshot>> snaps;
  std::vector<uint64_t> published;
  std::vector<Scalar> flat;
  for (Index i = 0; i < data.size(); ++i) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
    if (flat.size() == static_cast<size_t>(80 * data.data.dim())) {
      online->InsertBatch(flat);
      flat.clear();
      online->Refresh();
      snaps.push_back(ClusterSnapshot::FromStream(*online));
      published.push_back(snaps.back()->generation());
    }
  }
  ASSERT_GE(snaps.size(), 4u);

  const int dim = data.data.dim();
  ClusterServer server(dim);
  server.Publish(snaps[0]);
  const std::vector<Scalar> queries =
      FlatRows(data, ShuffledOrder(data), 0, 60);

  std::atomic<bool> torn{false};
  std::atomic<bool> non_monotonic{false};
  std::atomic<bool> unpublished{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const QueryResponse batch = server.Query({.points = queries});
        for (const QueryOutcome& r : batch.assignments) {
          if (r.generation != batch.generation) torn.store(true);
        }
        const uint64_t gen = batch.generation;
        if (gen < last_seen) non_monotonic.store(true);
        last_seen = gen;
        if (std::find(published.begin(), published.end(), gen) ==
            published.end()) {
          unpublished.store(true);
        }
      }
    });
  }
  std::thread publisher([&] {
    // Strictly ascending generations, stretched so every reader overlaps
    // several swaps — monotonic observation is then a real linearizability
    // claim, not an artifact of a fast publisher.
    for (size_t s = 1; s < snaps.size(); ++s) {
      for (int pause = 0; pause < 400; ++pause) std::this_thread::yield();
      server.Publish(snaps[s]);
    }
    for (int pause = 0; pause < 400; ++pause) std::this_thread::yield();
    done.store(true, std::memory_order_release);
  });
  publisher.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(torn.load());
  EXPECT_FALSE(non_monotonic.load());
  EXPECT_FALSE(unpublished.load());
  EXPECT_EQ(server.generation(), published.back());
  EXPECT_EQ(server.stats().snapshots_published,
            static_cast<int64_t>(snaps.size()));
}

TEST(ServeTest, ServesAlidAndPalidDetections) {
  // The batch-detection export path: a snapshot built from DetectAll (or
  // Palid::Detect) answers member duplicates with the member's own cluster —
  // Theorem 1 puts a support duplicate exactly at the density, inside the
  // slack.
  LabeledData data = Workload(300, 3);
  TestPipeline pipeline(data);
  AlidDetector detector(*pipeline.oracle, *pipeline.lsh);
  const DetectionResult alid =
      detector.DetectAll().Filtered(detector.options().density_threshold);
  ASSERT_GT(alid.clusters.size(), 0u);

  ClusterSnapshotOptions sopts;
  sopts.affinity = {.k = data.suggested_k, .p = 2.0};
  sopts.lsh = pipeline.lsh->params();
  const auto snap = ClusterSnapshot::FromDetection(data.data, alid, sopts,
                                                   /*generation=*/1);
  ClusterServer server(data.data.dim());
  server.Publish(snap);
  for (size_t c = 0; c < alid.clusters.size(); ++c) {
    for (Index m : {alid.clusters[c].members.front(),
                    alid.clusters[c].members.back()}) {
      const QueryOutcome r =
          server.Query({.points = data.data[m]}).assignments.front();
      EXPECT_EQ(r.cluster, static_cast<int>(c)) << "member " << m;
      const QueryResponse ranked =
          server.Query({.points = data.data[m], .top_k = 2});
      ASSERT_EQ(ranked.ranked.size(), 1u);
      const std::vector<ScoredCluster>& topk = ranked.ranked.front();
      ASSERT_GT(topk.size(), 0u);
      EXPECT_EQ(topk.front().cluster, r.cluster);
      EXPECT_TRUE(topk.front().absorbable);
      EXPECT_EQ(topk.front().affinity, r.affinity);
    }
  }

  PalidOptions popts;
  popts.num_executors = 2;
  Palid palid(*pipeline.oracle, *pipeline.lsh, popts);
  const DetectionResult parallel = palid.Detect().Filtered(0.75);
  ASSERT_GT(parallel.clusters.size(), 0u);
  const auto psnap = ClusterSnapshot::FromDetection(data.data, parallel,
                                                    sopts, /*generation=*/2);
  server.Publish(psnap);
  EXPECT_EQ(server.generation(), 2u);
  const Index member = parallel.clusters[0].members.front();
  EXPECT_EQ(
      server.Query({.points = data.data[member]}).assignments.front().cluster,
      0);
}

TEST(ServeTest, TopKOrderingAndClusterInfoRoundTrip) {
  LabeledData data = Workload(320, 29);
  auto online =
      FeedStream(data, ShuffledOrder(data), 320, StreamOptions(data));
  const auto snap = ClusterSnapshot::FromStream(*online);
  ASSERT_GT(snap->num_clusters(), 1);
  ClusterServer server(data.data.dim());
  server.Publish(snap);

  const QueryResponse ranked = server.Query(
      {.points = data.data[0], .top_k = snap->num_clusters() + 3});
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.ranked.size(), 1u);
  const std::vector<ScoredCluster>& topk = ranked.ranked.front();
  for (size_t r = 1; r < topk.size(); ++r) {
    EXPECT_GE(topk[r - 1].affinity, topk[r].affinity);
  }
  for (const ScoredCluster& s : topk) {
    const Scalar threshold =
        snap->density(s.cluster) * (1.0 - snap->absorb_slack());
    EXPECT_EQ(s.absorbable, s.affinity - threshold > 0.0);
    // Ranked entries carry the full QueryOutcome shape: the signed margin
    // against this cluster's threshold and the answering generation.
    EXPECT_EQ(s.margin, s.affinity - threshold);
    EXPECT_EQ(s.generation, snap->generation());
  }

  // ClusterInfo mirrors the stream's live clusters (source ids == slots).
  for (int c = 0; c < snap->num_clusters(); ++c) {
    const ClusterSnapshotInfo info = server.ClusterInfo(c);
    EXPECT_EQ(info.cluster, c);
    const Cluster& source = online->clusters()[c];
    EXPECT_EQ(info.members, source.members);
    EXPECT_EQ(info.weights, source.weights);
    EXPECT_EQ(info.density, source.density);
    EXPECT_EQ(info.seed, source.seed);
    EXPECT_EQ(info.size, static_cast<Index>(source.members.size()));
    // The build verified the density off its own kernel entries; the two
    // agree to numerical noise (the stream tracks pi incrementally).
    EXPECT_NEAR(info.verified_density, info.density,
                1e-6 * std::max<Scalar>(1.0, info.density));
  }
  EXPECT_EQ(server.ClusterInfo(-1).cluster, -1);
  EXPECT_EQ(server.ClusterInfo(snap->num_clusters()).cluster, -1);
  // The verification pass ran through the per-snapshot column cache: each
  // symmetric pair is one slot, so the (u, t) half of every sum hit.
  EXPECT_GT(snap->verification_cache_hits(), 0);
}

TEST(ServeTest, OfflineAndEmptySnapshotEdges) {
  LabeledData data = Workload(60, 5);
  const int dim = data.data.dim();
  ClusterServer server(dim);
  // Offline: no snapshot published yet. Queries answer with kOffline and
  // default (unassigned) entries, one per point.
  EXPECT_EQ(server.generation(), 0u);
  EXPECT_EQ(server.snapshot(), nullptr);
  const QueryResponse offline = server.Query({.points = data.data[0]});
  EXPECT_EQ(offline.status, QueryStatus::kOffline);
  EXPECT_FALSE(offline.ok());
  EXPECT_EQ(offline.generation, 0u);
  ASSERT_EQ(offline.assignments.size(), 1u);
  EXPECT_EQ(offline.assignments.front().cluster, -1);
  EXPECT_EQ(offline.assignments.front().generation, 0u);
  const QueryResponse offline_ranked =
      server.Query({.points = data.data[0], .top_k = 3});
  EXPECT_EQ(offline_ranked.status, QueryStatus::kOffline);
  ASSERT_EQ(offline_ranked.ranked.size(), 1u);
  EXPECT_TRUE(offline_ranked.ranked.front().empty());
  EXPECT_EQ(server.ClusterInfo(0).cluster, -1);
  const std::vector<Scalar> five = FlatRows(data, ShuffledOrder(data), 0, 5);
  const QueryResponse batch = server.Query({.points = five});
  ASSERT_EQ(batch.assignments.size(), 5u);
  for (const QueryOutcome& r : batch.assignments) EXPECT_EQ(r.cluster, -1);
  EXPECT_TRUE(server.Query({}).assignments.empty());

  // A snapshot with zero clusters (fresh stream) serves unassigned answers
  // under its own generation.
  OnlineAlid empty(dim, StreamOptions(data));
  empty.Insert(data.data[0]);
  ASSERT_EQ(empty.clusters().size(), 0u);
  const auto snap = ClusterSnapshot::FromStream(empty);
  EXPECT_EQ(snap->num_clusters(), 0);
  EXPECT_EQ(snap->num_members(), 0);
  server.Publish(snap);
  EXPECT_EQ(server.generation(), 1u);
  const QueryResponse r = server.Query({.points = data.data[1]});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.generation, 1u);
  EXPECT_EQ(r.assignments.front().cluster, -1);
  EXPECT_EQ(r.assignments.front().generation, 1u);
  // Taking the server offline again is an explicit Publish(nullptr).
  server.Publish(nullptr);
  EXPECT_EQ(server.generation(), 0u);
  // The empty-cluster generation stays addressable through the ring.
  EXPECT_EQ(server.Query({.points = data.data[1], .generation = 1})
                .status,
            QueryStatus::kOk);
  EXPECT_EQ(server.Query({.points = data.data[1], .generation = 9})
                .status,
            QueryStatus::kGenerationUnavailable);
}

TEST(ServeTest, StatsCountQueriesAndLatencies) {
  LabeledData data = Workload(260, 13);
  const std::vector<Index> order = ShuffledOrder(data);
  auto online = FeedStream(data, order, 200, StreamOptions(data));
  ClusterServer server(data.data.dim());
  server.Publish(ClusterSnapshot::FromStream(*online));

  for (Index i = 200; i < 220; ++i) server.Query({.points = data.data[i]});
  const std::vector<Scalar> forty = FlatRows(data, order, 220, 260);
  server.Query({.points = forty});
  server.Query({.points = data.data[0], .top_k = 2});
  server.ClusterInfo(0);

  const ServeStatsView stats = server.stats();
  EXPECT_EQ(stats.single_queries, 20);
  EXPECT_EQ(stats.batch_calls, 1);
  EXPECT_EQ(stats.queries, 60);
  EXPECT_EQ(stats.assigned + stats.unassigned, 60);
  EXPECT_EQ(stats.topk_queries, 1);
  EXPECT_EQ(stats.info_queries, 1);
  EXPECT_EQ(stats.snapshots_published, 1);
  // A from-scratch publish materializes every block and shares none.
  EXPECT_GT(stats.bytes_copied, 0);
  EXPECT_EQ(stats.bytes_shared, 0);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.qps, 0.0);
  // One latency sample per call: 20 singles + 1 batch.
  EXPECT_EQ(stats.query_seconds.size(), 21u);
  int total = 0;
  for (int bin : stats.LatencyHistogram(4)) total += bin;
  EXPECT_EQ(total, 21);

  server.ResetStats();
  const ServeStatsView reset = server.stats();
  EXPECT_EQ(reset.queries, 0);
  EXPECT_TRUE(reset.query_seconds.empty());
}

TEST(ServeTest, StreamCacheRebudgetsAsTheWindowFills) {
  // The ROADMAP satellite: the budget derived at construction saw an empty
  // dataset (the 1 MiB floor); past ~1.5K live slots the re-derived budget
  // exceeds the floor and the stream grows the cache in place.
  SyntheticConfig cfg;
  cfg.n = 1700;
  cfg.dim = 8;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = 77;
  LabeledData data = MakeSynthetic(cfg);
  OnlineAlidOptions opts = StreamOptions(data);
  OnlineAlid online(data.data.dim(), opts);
  EXPECT_EQ(online.stats().cache_budget_bytes,
            static_cast<int64_t>(ColumnCacheOptions::kMinAutoBudgetBytes));
  std::vector<Scalar> flat;
  for (Index i = 0; i < data.size(); ++i) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
    if (flat.size() == static_cast<size_t>(100 * data.data.dim())) {
      online.InsertBatch(flat);
      flat.clear();
    }
  }
  if (!flat.empty()) online.InsertBatch(flat);
  EXPECT_GT(online.stats().cache_rebudgets, 0);
  EXPECT_GT(online.stats().cache_budget_bytes,
            static_cast<int64_t>(ColumnCacheOptions::kMinAutoBudgetBytes));
  EXPECT_EQ(online.stats().cache_budget_bytes,
            static_cast<int64_t>(
                ColumnCacheOptions::ForDataSize(data.size()).max_bytes));
  EXPECT_EQ(online.stats().cache_budget_bytes,
            online.oracle().cache_budget_bytes());
}

}  // namespace
}  // namespace alid
