// Tests of the generation-addressed serve API: bounded time travel through
// the history ring (as-of queries bit-identical to the pinned historical
// snapshot), capacity/budget eviction under a hot publisher with concurrent
// readers (TSan-visible), arena-block sharing and its MemoryTracker
// accounting (returns to baseline after teardown — the ASan leg), the
// GenerationDiff report, and the constructor contract death test.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"
#include "serve/snapshot_arena.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions StreamOptions(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  return opts;
}

// Streams `data` in fixed batches, exporting an incremental snapshot chain
// (each generation sharing its predecessor's unchanged blocks).
std::vector<std::shared_ptr<const ClusterSnapshot>> SnapshotChain(
    const LabeledData& data, OnlineAlid& online, Index batch_rows) {
  std::vector<std::shared_ptr<const ClusterSnapshot>> snaps;
  Rng rng(5);
  const std::vector<Index> order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto row = data.data[order[pos]];
    flat.insert(flat.end(), row.begin(), row.end());
    if (static_cast<Index>(flat.size()) == batch_rows * data.data.dim()) {
      online.InsertBatch(flat);
      flat.clear();
      online.Refresh();
      snaps.push_back(ClusterSnapshot::FromStream(
          online, nullptr, snaps.empty() ? nullptr : snaps.back()));
    }
  }
  return snaps;
}

// Steady-state tail publishes: localized arrivals (tight jitter around one
// planted cluster's members) leave every other cluster untouched between
// publishes — the regime where the incremental export shares blocks.
void AppendLocalizedTail(const LabeledData& data, OnlineAlid& online,
                         std::vector<std::shared_ptr<const ClusterSnapshot>>&
                             snaps,
                         int rounds) {
  Rng jitter(7);
  const int dim = data.data.dim();
  const auto& burst = data.true_clusters.front();
  for (int round = 0; round < rounds; ++round) {
    std::vector<Scalar> flat;
    for (int q = 0; q < 24; ++q) {
      const auto row = data.data[burst[static_cast<size_t>(
          jitter.UniformInt(0, static_cast<int>(burst.size()) - 1))]];
      for (int d = 0; d < dim; ++d) {
        flat.push_back(row[d] + jitter.Gaussian() * 0.05);
      }
    }
    online.InsertBatch(flat);
    snaps.push_back(
        ClusterSnapshot::FromStream(online, nullptr, snaps.back()));
  }
}

// A fixed probe mix: jittered members (assignable) + far noise.
std::vector<Scalar> Probes(const LabeledData& data, int count,
                           uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<Scalar> probes;
  const int dim = data.data.dim();
  for (int q = 0; q < count; ++q) {
    if (q % 3 != 2) {
      const auto row =
          data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
      for (int d = 0; d < dim; ++d) {
        probes.push_back(row[d] + rng.Gaussian() * 0.1);
      }
    } else {
      for (int d = 0; d < dim; ++d) probes.push_back(rng.Uniform(-700, 700));
    }
  }
  return probes;
}

TEST(ServeHistoryDeathTest, ConstructorRejectsNonPositiveDim) {
  // The dim contract is checked at construction, not first use: a server
  // wired to the wrong config dies here instead of serving garbage.
  EXPECT_DEATH(ClusterServer(0), "dim_ > 0");
  EXPECT_DEATH(ClusterServer(-3), "dim_ > 0");
}

TEST(ServeHistoryTest, AsOfQueryBitIdenticalToPinnedHistoricalSnapshot) {
  LabeledData data = Workload(520, 33);
  OnlineAlid online(data.data.dim(), StreamOptions(data));
  const auto snaps = SnapshotChain(data, online, 80);
  ASSERT_GE(snaps.size(), 4u);
  const int dim = data.data.dim();
  const std::vector<Scalar> probes = Probes(data, 60);

  ClusterServer server(dim, {.history_capacity = 8});
  // Pin generation g's answers while it is CURRENT...
  std::vector<std::vector<QueryOutcome>> expected;
  std::vector<std::vector<std::vector<ScoredCluster>>> expected_ranked;
  for (const auto& snap : snaps) {
    server.Publish(snap);
    expected.push_back(server.Query({.points = probes}).assignments);
    expected_ranked.push_back(
        server.Query({.points = probes, .top_k = 3}).ranked);
  }
  // ...then re-ask every retained generation as-of. The snapshot is
  // immutable, so the answers must be bit-identical — cluster, affinity and
  // margin bits included — not merely "close".
  for (size_t s = 0; s + 1 < snaps.size(); ++s) {
    const uint64_t gen = snaps[s]->generation();
    if (server.SnapshotAt(gen) == nullptr) continue;  // evicted by capacity
    SCOPED_TRACE(testing::Message() << "generation " << gen);
    const QueryResponse asof =
        server.Query({.points = probes, .generation = gen});
    EXPECT_EQ(asof.status, QueryStatus::kOk);
    EXPECT_EQ(asof.generation, gen);
    EXPECT_EQ(asof.assignments, expected[s]);
    const QueryResponse asof_ranked =
        server.Query({.points = probes, .top_k = 3, .generation = gen});
    EXPECT_EQ(asof_ranked.ranked, expected_ranked[s]);
  }
  // The current generation answers the same through either address.
  const uint64_t current = server.generation();
  EXPECT_EQ(server.Query({.points = probes, .generation = current})
                .assignments,
            expected.back());
  // An evicted / never-published generation is a typed failure, and its
  // response still has one (unassigned) entry per point.
  const QueryResponse gone =
      server.Query({.points = probes, .generation = 0xdeadbeefULL});
  EXPECT_EQ(gone.status, QueryStatus::kGenerationUnavailable);
  EXPECT_FALSE(gone.ok());
  ASSERT_EQ(gone.assignments.size(), probes.size() / dim);
  EXPECT_EQ(gone.assignments.front().cluster, -1);
}

TEST(ServeHistoryTest, CapacityAndBudgetBoundTheRing) {
  LabeledData data = Workload(480, 41);
  OnlineAlid online(data.data.dim(), StreamOptions(data));
  const auto snaps = SnapshotChain(data, online, 80);
  ASSERT_GE(snaps.size(), 4u);
  const int dim = data.data.dim();

  // capacity = 0 disables time travel entirely.
  ClusterServer none(dim, {.history_capacity = 0});
  for (const auto& snap : snaps) none.Publish(snap);
  EXPECT_EQ(none.stats().generations_retained, 0);
  EXPECT_EQ(none.SnapshotAt(snaps.front()->generation()), nullptr);
  EXPECT_NE(none.SnapshotAt(snaps.back()->generation()), nullptr);

  // capacity = 2 keeps exactly the two newest retired generations.
  ClusterServer two(dim, {.history_capacity = 2});
  for (const auto& snap : snaps) two.Publish(snap);
  EXPECT_EQ(two.stats().generations_retained, 2);
  EXPECT_EQ(two.stats().history_evictions,
            static_cast<int64_t>(snaps.size()) - 1 - 2);
  EXPECT_EQ(two.SnapshotAt(snaps[snaps.size() - 2]->generation()),
            snaps[snaps.size() - 2]);
  EXPECT_EQ(two.SnapshotAt(snaps.front()->generation()), nullptr);

  // A 1-byte budget evicts every generation whose blocks are not fully
  // shared with the current snapshot; the gauge respects the bound.
  ClusterServer tight(dim,
                      {.history_capacity = 8, .history_budget_bytes = 1});
  for (const auto& snap : snaps) tight.Publish(snap);
  const ServeStatsView tight_stats = tight.stats();
  EXPECT_LE(tight_stats.history_ring_bytes, 1);
  EXPECT_GT(tight_stats.history_evictions, 0);
  // Republishing the current snapshot is a no-op for the ring.
  const ServeStatsView before = tight.stats();
  tight.Publish(tight.snapshot());
  EXPECT_EQ(tight.stats().generations_retained, before.generations_retained);
}

TEST(ServeHistoryTest, RingEvictionUnderHotPublisherAndConcurrentReaders) {
  // The TSan leg: a publisher hammers Publish (retiring + evicting ring
  // entries) while readers time-travel across the whole generation range.
  // Every kOk answer must be bit-identical to the answers its snapshot gave
  // in isolation — eviction races can fail a lookup (typed status), never
  // corrupt one.
  LabeledData data = Workload(520, 29);
  OnlineAlid online(data.data.dim(), StreamOptions(data));
  const auto snaps = SnapshotChain(data, online, 64);
  ASSERT_GE(snaps.size(), 5u);
  const int dim = data.data.dim();
  const std::vector<Scalar> probes = Probes(data, 24);

  // Ground truth per generation, computed serially against each snapshot.
  std::unordered_map<uint64_t, std::vector<QueryOutcome>> truth;
  {
    ClusterServer oracle(dim, {.history_capacity = 0});
    for (const auto& snap : snaps) {
      oracle.Publish(snap);
      truth[snap->generation()] =
          oracle.Query({.points = probes}).assignments;
    }
  }

  ClusterServer server(dim, {.history_capacity = 2});
  server.Publish(snaps[0]);
  std::atomic<bool> done{false};
  std::atomic<bool> corrupt{false};
  std::atomic<bool> unknown_generation{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const auto& target = snaps[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int>(snaps.size()) - 1))];
        const uint64_t gen = target->generation();
        const QueryResponse response =
            server.Query({.points = probes, .generation = gen});
        if (response.status == QueryStatus::kOk) {
          if (response.generation != gen) unknown_generation.store(true);
          if (response.assignments != truth.at(gen)) corrupt.store(true);
        } else if (response.status != QueryStatus::kGenerationUnavailable) {
          unknown_generation.store(true);
        }
      }
    });
  }
  std::thread publisher([&] {
    for (int round = 0; round < 12; ++round) {
      for (const auto& snap : snaps) {
        server.Publish(snap);
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });
  publisher.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_FALSE(unknown_generation.load());
  EXPECT_GT(server.stats().history_evictions, 0);
}

TEST(ServeHistoryTest, ArenaAccountingSharesBlocksAndReturnsToBaseline) {
  const int64_t arena_baseline = SnapshotArenaTracker().current_bytes();
  const int64_t global_baseline = MemoryTracker::Global().current_bytes();
  {
    LabeledData data = Workload(520, 61);
    auto online = std::make_unique<OnlineAlid>(data.data.dim(),
                                               StreamOptions(data));
    auto snaps = SnapshotChain(data, *online, 80);
    ASSERT_GE(snaps.size(), 3u);
    AppendLocalizedTail(data, *online, snaps, 3);

    // The arena space charges each block exactly once, however many
    // snapshots share it: live arena bytes == unique block bytes.
    std::unordered_set<const ClusterBlock*> unique_blocks;
    int64_t unique_bytes = 0;
    int64_t total_bytes = 0;
    for (const auto& snap : snaps) {
      for (const auto& block : snap->blocks()) {
        total_bytes += static_cast<int64_t>(block->MemoryBytes());
        if (unique_blocks.insert(block.get()).second) {
          unique_bytes += static_cast<int64_t>(block->MemoryBytes());
        }
      }
    }
    EXPECT_EQ(SnapshotArenaTracker().current_bytes() - arena_baseline,
              unique_bytes);
    // Sharing is real: the chain references more block-bytes than it owns.
    EXPECT_LT(unique_bytes, total_bytes);

    // Each snapshot's build ledger balances: shared + copied == its blocks.
    for (const auto& snap : snaps) {
      int64_t blocks_bytes = 0;
      for (const auto& block : snap->blocks()) {
        blocks_bytes += static_cast<int64_t>(block->MemoryBytes());
      }
      EXPECT_EQ(snap->build_info().bytes_shared +
                    snap->build_info().bytes_copied,
                blocks_bytes);
    }
    // Steady-state incremental publish shares most of its bytes.
    EXPECT_GT(snaps.back()->build_info().bytes_shared, 0);

    // A server ring holds references, not copies: publishing the whole
    // chain adds nothing to the arena.
    ClusterServer server(data.data.dim(), {.history_capacity = 4});
    for (const auto& snap : snaps) server.Publish(snap);
    EXPECT_EQ(SnapshotArenaTracker().current_bytes() - arena_baseline,
              unique_bytes);
    EXPECT_GT(server.stats().history_ring_bytes, 0);
    EXPECT_LE(server.stats().history_ring_bytes, unique_bytes);
  }
  // Everything torn down (stream, snapshots, server ring): both resource
  // spaces return to their pre-test baselines — no leaked charges, no
  // leaked blocks (the ASan leg verifies the allocations themselves).
  EXPECT_EQ(SnapshotArenaTracker().current_bytes(), arena_baseline);
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), global_baseline);
}

TEST(ServeHistoryTest, GenerationDiffReportsBirthsDeathsAndDrift) {
  LabeledData data = Workload(520, 47);
  OnlineAlid online(data.data.dim(), StreamOptions(data));
  const auto snaps = SnapshotChain(data, online, 80);
  ASSERT_GE(snaps.size(), 3u);
  ClusterServer server(data.data.dim(), {.history_capacity = 16});
  for (const auto& snap : snaps) server.Publish(snap);

  const auto& from = snaps.front();
  const auto& to = snaps.back();
  const GenerationDiffResult diff =
      server.GenerationDiff(from->generation(), to->generation());
  ASSERT_TRUE(diff.ok);
  EXPECT_EQ(diff.from, from->generation());
  EXPECT_EQ(diff.to, to->generation());
  // Every cluster of both sides is accounted for exactly once.
  EXPECT_EQ(static_cast<int>(diff.deaths.size() + diff.drifted.size()) +
                diff.unchanged,
            from->num_clusters());
  EXPECT_EQ(static_cast<int>(diff.births.size() + diff.drifted.size()) +
                diff.unchanged,
            to->num_clusters());
  for (const ClusterDrift& b : diff.births) {
    EXPECT_EQ(b.cluster_from, -1);
    EXPECT_GE(b.cluster_to, 0);
    EXPECT_GT(b.size_to, 0);
  }
  for (const ClusterDrift& d : diff.deaths) {
    EXPECT_EQ(d.cluster_to, -1);
    EXPECT_GE(d.cluster_from, 0);
  }
  for (const ClusterDrift& m : diff.drifted) {
    EXPECT_GE(m.cluster_from, 0);
    EXPECT_GE(m.cluster_to, 0);
    EXPECT_NE(m.uid, 0u);
  }
  // Unchanged clusters are exactly the ones whose blocks the two snapshots
  // share — the metadata diff and the arena ledger tell one story.
  std::unordered_set<const ClusterBlock*> from_blocks;
  for (const auto& block : from->blocks()) from_blocks.insert(block.get());
  int shared = 0;
  for (const auto& block : to->blocks()) {
    shared += from_blocks.count(block.get()) > 0 ? 1 : 0;
  }
  EXPECT_EQ(shared, diff.unchanged);

  // Self-diff: everything unchanged. 0 addresses the current snapshot.
  const GenerationDiffResult self = server.GenerationDiff(0, 0);
  ASSERT_TRUE(self.ok);
  EXPECT_EQ(self.unchanged, to->num_clusters());
  EXPECT_TRUE(self.births.empty());
  EXPECT_TRUE(self.deaths.empty());
  EXPECT_TRUE(self.drifted.empty());
  // An unaddressable side fails typed, with empty vectors.
  const GenerationDiffResult bad =
      server.GenerationDiff(0xdeadbeefULL, to->generation());
  EXPECT_FALSE(bad.ok);
  EXPECT_TRUE(bad.births.empty());
}

TEST(ServeHistoryTest, QueryGenerationZeroMatchesDeprecatedAdapters) {
  // The migration contract: the deprecated triplet is a thin veneer over
  // Query(generation = 0) — same bits, every field, across executor sweeps.
  LabeledData data = Workload(460, 13);
  OnlineAlid online(data.data.dim(), StreamOptions(data));
  const auto snaps = SnapshotChain(data, online, 110);
  ASSERT_GE(snaps.size(), 1u);
  const int dim = data.data.dim();
  const std::vector<Scalar> probes = Probes(data, 50);
  const Index count = static_cast<Index>(probes.size()) / dim;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  for (int executors : {1, 4}) {
    std::unique_ptr<ThreadPool> pool;
    if (executors > 1) pool = std::make_unique<ThreadPool>(executors);
    ClusterServer server(dim, {.pool = pool.get()});
    server.Publish(snaps.back());
    SCOPED_TRACE(testing::Message() << "executors=" << executors);

    const QueryResponse batch = server.Query({.points = probes});
    const std::vector<AssignResult> legacy_batch = server.AssignBatch(probes);
    ASSERT_EQ(legacy_batch.size(), batch.assignments.size());
    for (Index q = 0; q < count; ++q) {
      EXPECT_EQ(static_cast<const QueryOutcome&>(legacy_batch[q]),
                batch.assignments[q]);
      const std::span<const Scalar> point =
          std::span<const Scalar>(probes).subspan(
              static_cast<size_t>(q) * dim, static_cast<size_t>(dim));
      const AssignResult single = server.Assign(point);
      EXPECT_EQ(static_cast<const QueryOutcome&>(single),
                batch.assignments[q]);
      EXPECT_EQ(server.TopKClusters(point, 3),
                server.Query({.points = point, .top_k = 3}).ranked.front());
    }
    EXPECT_TRUE(server.TopKClusters(probes, 0).empty());
  }
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace alid
