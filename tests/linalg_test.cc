// Tests of the eigensolvers: Jacobi against hand-computed spectra, Lanczos
// against Jacobi on random symmetric matrices.
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"

namespace alid {
namespace {

DenseMatrix RandomSymmetric(Index n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(JacobiTest, DiagonalMatrix) {
  DenseMatrix m(3, 3, 0.0);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  auto eig = JacobiEigenSolver(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiTest, TwoByTwoKnownSpectrum) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix m(2, 2, 0.0);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  auto eig = JacobiEigenSolver(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-9);
}

TEST(JacobiTest, ReconstructsMatrix) {
  DenseMatrix m = RandomSymmetric(8, 3);
  auto eig = JacobiEigenSolver(m);
  // A == V diag(w) V^T.
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) {
      Scalar s = 0.0;
      for (Index t = 0; t < 8; ++t) {
        s += eig.vectors(i, t) * eig.values[t] * eig.vectors(j, t);
      }
      EXPECT_NEAR(s, m(i, j), 1e-8);
    }
  }
}

TEST(JacobiTest, EigenvectorsOrthonormal) {
  DenseMatrix m = RandomSymmetric(10, 4);
  auto eig = JacobiEigenSolver(m);
  for (Index a = 0; a < 10; ++a) {
    for (Index b = a; b < 10; ++b) {
      Scalar dot = 0.0;
      for (Index i = 0; i < 10; ++i) dot += eig.vectors(i, a) * eig.vectors(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(LanczosTest, MatchesJacobiOnTopEigenpairs) {
  const Index n = 30;
  DenseMatrix m = RandomSymmetric(n, 7);
  auto full = JacobiEigenSolver(m);
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  auto top = LanczosTopK(n, 4, matvec);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(top.values[j], full.values[j], 1e-6) << "eigenvalue " << j;
  }
}

TEST(LanczosTest, EigenvectorsSatisfyDefinition) {
  const Index n = 25;
  DenseMatrix m = RandomSymmetric(n, 11);
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  auto top = LanczosTopK(n, 3, matvec);
  for (int j = 0; j < 3; ++j) {
    std::vector<Scalar> v(n);
    for (Index i = 0; i < n; ++i) v[i] = top.vectors(i, j);
    auto av = m.MatVec(v);
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], top.values[j] * v[i], 1e-5);
    }
  }
}

TEST(LanczosTest, HandlesKEqualsN) {
  const Index n = 6;
  DenseMatrix m = RandomSymmetric(n, 2);
  auto full = JacobiEigenSolver(m);
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  auto top = LanczosTopK(n, n, matvec);
  ASSERT_EQ(top.values.size(), static_cast<size_t>(n));
  for (Index j = 0; j < n; ++j) EXPECT_NEAR(top.values[j], full.values[j], 1e-7);
}

// Property sweep: Lanczos leading eigenvalue matches Jacobi across sizes.
class LanczosSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LanczosSizeProperty, LeadingEigenvalueMatches) {
  const Index n = GetParam();
  DenseMatrix m = RandomSymmetric(n, 100 + n);
  auto full = JacobiEigenSolver(m);
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  auto top = LanczosTopK(n, 1, matvec);
  EXPECT_NEAR(top.values[0], full.values[0], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanczosSizeProperty,
                         ::testing::Values(5, 12, 20, 40, 64));

}  // namespace
}  // namespace alid
