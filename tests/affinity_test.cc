// Unit tests for the affinity substrate: the Eq. 1 kernel, the materialized
// matrix, the lazy column oracle and the sparsifiers.
#include <cmath>

#include <gtest/gtest.h>

#include "affinity/affinity_function.h"
#include "affinity/affinity_matrix.h"
#include "affinity/lazy_affinity_oracle.h"
#include "affinity/sparsifier.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "lsh/lsh_index.h"

namespace alid {
namespace {

Dataset SmallLine() {
  // Four points on a line: 0, 1, 2, 10.
  return Dataset(1, {0.0, 1.0, 2.0, 10.0});
}

TEST(AffinityFunctionTest, LaplacianKernelValues) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  EXPECT_DOUBLE_EQ(f(d, 0, 1), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(f(d, 0, 2), std::exp(-2.0));
}

TEST(AffinityFunctionTest, DiagonalIsZero) {
  AffinityFunction f({.k = 2.0, .p = 2.0});
  Dataset d = SmallLine();
  EXPECT_DOUBLE_EQ(f(d, 2, 2), 0.0);
}

TEST(AffinityFunctionTest, SymmetricByConstruction) {
  AffinityFunction f({.k = 0.7, .p = 1.0});
  Dataset d = SmallLine();
  EXPECT_DOUBLE_EQ(f(d, 0, 3), f(d, 3, 0));
}

TEST(AffinityFunctionTest, ScalingFactorSharpensDecay) {
  AffinityFunction slow({.k = 0.1, .p = 2.0});
  AffinityFunction fast({.k = 5.0, .p = 2.0});
  Dataset d = SmallLine();
  EXPECT_GT(slow(d, 0, 3), fast(d, 0, 3));
}

TEST(AffinityFunctionTest, DistanceRoundTrip) {
  AffinityFunction f({.k = 3.0, .p = 2.0});
  const Scalar a = f.FromDistance(1.7);
  EXPECT_NEAR(f.ToDistance(a), 1.7, 1e-12);
}

TEST(AffinityFunctionTest, SuggestScalingFactorHitsTarget) {
  Rng rng(5);
  Dataset d(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<Scalar> p(4);
    for (auto& v : p) v = rng.Gaussian();
    d.Append(p);
  }
  const double k = AffinityFunction::SuggestScalingFactor(d, 2.0, 0.5, 500);
  // With k tuned, the median pair should land near affinity 0.5.
  AffinityFunction f({.k = k, .p = 2.0});
  int above = 0, total = 0;
  for (Index i = 0; i < 40; ++i) {
    for (Index j = i + 1; j < 40; ++j) {
      above += f(d, i, j) > 0.5;
      ++total;
    }
  }
  const double frac = static_cast<double>(above) / total;
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(AffinityFunctionDeathTest, SuggestScalingFactorRejectsEmptySample) {
  Dataset d = SmallLine();
  // sample_size <= 0 used to read dists[dists.size() / 2] of an empty
  // vector; now it aborts with a message instead of returning garbage.
  EXPECT_DEATH(AffinityFunction::SuggestScalingFactor(d, 2.0, 0.5, 0),
               "at least one sampled distance");
  EXPECT_DEATH(AffinityFunction::SuggestScalingFactor(d, 2.0, 0.5, -7),
               "at least one sampled distance");
}

TEST(AffinityFunctionTest, SuggestScalingFactorSingleSampleIsFinite) {
  Dataset d = SmallLine();
  // The smallest legal sample: one distance is its own median.
  const double k = AffinityFunction::SuggestScalingFactor(d, 2.0, 0.5, 1);
  EXPECT_TRUE(std::isfinite(k));
  EXPECT_GT(k, 0.0);
}

TEST(AffinityMatrixTest, MatchesKernelEntrywise) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  AffinityMatrix a(d, f);
  for (Index i = 0; i < d.size(); ++i) {
    for (Index j = 0; j < d.size(); ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), f(d, i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(a.entries_computed(), 6);  // n(n-1)/2 kernel evaluations
}

TEST(AffinityMatrixTest, ChargesMemoryTracker) {
  MemoryTracker::Global().Reset();
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  {
    AffinityMatrix a(d, f);
    EXPECT_EQ(MemoryTracker::Global().current_bytes(),
              static_cast<int64_t>(16 * sizeof(Scalar)));
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), 0);
}

TEST(LazyAffinityOracleTest, EntryMatchesKernelAndCounts) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  LazyAffinityOracle o(d, f);
  EXPECT_DOUBLE_EQ(o.Entry(0, 1), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(o.Entry(1, 1), 0.0);
  EXPECT_EQ(o.entries_computed(), 2);
}

TEST(LazyAffinityOracleTest, ColumnFragment) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  LazyAffinityOracle o(d, f);
  IndexList rows{0, 2, 3};
  auto col = o.Column(rows, 1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], std::exp(-1.0));
  EXPECT_DOUBLE_EQ(col[1], std::exp(-1.0));
  EXPECT_DOUBLE_EQ(col[2], std::exp(-9.0));
  EXPECT_EQ(o.entries_computed(), 3);
}

TEST(LazyAffinityOracleTest, ChargeDischargePeak) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  LazyAffinityOracle o(d, f);
  o.Charge(100);
  o.Charge(200);
  EXPECT_EQ(o.current_bytes(), 300);
  o.Discharge(250);
  EXPECT_EQ(o.current_bytes(), 50);
  EXPECT_EQ(o.peak_bytes(), 300);
  o.ResetCounters();
  EXPECT_EQ(o.peak_bytes(), 0);
}

TEST(SparsifierTest, DenseCsrMatchesAffinityMatrix) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  AffinityMatrix dense(d, f);
  SparseMatrix csr = Sparsifier::Dense(d, f);
  for (Index i = 0; i < d.size(); ++i) {
    for (Index j = 0; j < d.size(); ++j) {
      EXPECT_NEAR(csr.At(i, j), dense(i, j), 1e-15);
    }
  }
}

TEST(SparsifierTest, EnnKeepsNearestNeighbours) {
  AffinityFunction f({.k = 1.0, .p = 2.0});
  Dataset d = SmallLine();
  SparseMatrix m = Sparsifier::FromExactNearestNeighbors(d, f, 1);
  // Point 0's nearest neighbour is 1; symmetric entries must exist.
  EXPECT_GT(m.At(0, 1), 0.0);
  EXPECT_GT(m.At(1, 0), 0.0);
  // The far point 3 keeps only its own nearest (2), nothing to 0 unless
  // induced by symmetrization of 0's list.
  EXPECT_DOUBLE_EQ(m.At(0, 3), 0.0);
}

TEST(SparsifierTest, EnnIsSymmetric) {
  SyntheticConfig cfg;
  cfg.n = 60;
  cfg.dim = 4;
  cfg.num_clusters = 3;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.5;
  LabeledData data = MakeSynthetic(cfg);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  SparseMatrix m = Sparsifier::FromExactNearestNeighbors(data.data, f, 5);
  for (Index i = 0; i < m.rows(); ++i) {
    auto idx = m.RowIndices(i);
    for (Index j : idx) {
      EXPECT_NEAR(m.At(i, j), m.At(j, i), 1e-15);
    }
  }
}

TEST(SparsifierTest, LshCollisionsKeepClusterEdgesAndStaySparse) {
  SyntheticConfig cfg;
  cfg.n = 400;
  cfg.dim = 16;
  cfg.num_clusters = 4;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.5;
  cfg.mean_box = 200.0;
  LabeledData data = MakeSynthetic(cfg);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  LshParams lp;
  lp.num_tables = 6;
  lp.num_projections = 6;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  SparseMatrix m = Sparsifier::FromLshCollisions(data.data, f, lsh);
  // Sparse: far fewer than n^2 entries.
  EXPECT_LT(m.nnz(), static_cast<int64_t>(cfg.n) * cfg.n / 4);
  // Dense within clusters: each ground-truth item should keep some edges.
  int with_edges = 0, truth = 0;
  for (Index i = 0; i < m.rows(); ++i) {
    if (data.labels[i] < 0) continue;
    ++truth;
    if (!m.RowIndices(i).empty()) ++with_edges;
  }
  EXPECT_GT(with_edges, truth * 8 / 10);
}

}  // namespace
}  // namespace alid
