// Contracts of the sharded runtime (src/shard/): S == 1 is bit-identical to
// a plain OnlineAlid, a fixed shard count is bit-identical across executor
// counts / grains / scheduling (the partition is a pure function of the
// stream, never of the schedule), the router's fan-out merge equals the
// serial per-shard merge with the ascending-(shard, cluster) tie-break, a
// hot publisher never tears a response across generations (the TSan
// claim), the empty-shard / hot-spot / offline / stale-generation edges,
// and the boundary-cluster report (cross-shard LSH collisions with exact
// cross densities).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "serve/cluster_snapshot.h"
#include "shard/shard_router.h"
#include "shard/sharded_stream.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions BaseOptions(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  return opts;
}

// Streams `data` in a fixed shuffled order as batches of `batch`; the
// returned slot log is the concatenated InsertBatch answers.
std::unique_ptr<OnlineAlid> RunPlain(const LabeledData& data,
                                     OnlineAlidOptions opts, Index batch,
                                     std::vector<Index>* slot_log = nullptr) {
  auto online = std::make_unique<OnlineAlid>(data.data.dim(), opts);
  Rng rng(5);
  const auto order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  const auto flush = [&] {
    if (flat.empty()) return;
    const std::vector<Index> slots = online->InsertBatch(flat);
    if (slot_log != nullptr) {
      slot_log->insert(slot_log->end(), slots.begin(), slots.end());
    }
    flat.clear();
  };
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto row = data.data[order[pos]];
    if (static_cast<Index>(flat.size()) / data.data.dim() == batch) flush();
    flat.insert(flat.end(), row.begin(), row.end());
  }
  flush();
  online->Refresh();
  return online;
}

// The sharded twin of RunPlain: identical arrival order and batch splits.
std::unique_ptr<ShardedStream> RunSharded(
    const LabeledData& data, ShardedStreamOptions opts, Index batch,
    std::vector<ShardSlot>* slot_log = nullptr) {
  auto stream = std::make_unique<ShardedStream>(data.data.dim(), opts);
  Rng rng(5);
  const auto order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  const auto flush = [&] {
    if (flat.empty()) return;
    const std::vector<ShardSlot> slots = stream->InsertBatch(flat);
    if (slot_log != nullptr) {
      slot_log->insert(slot_log->end(), slots.begin(), slots.end());
    }
    flat.clear();
  };
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto row = data.data[order[pos]];
    if (static_cast<Index>(flat.size()) / data.data.dim() == batch) flush();
    flat.insert(flat.end(), row.begin(), row.end());
  }
  flush();
  stream->Refresh();
  return stream;
}

// Full structural equality of two OnlineAlid states (the stream_test
// contract: clusters in order, counters, liveness).
void ExpectIdenticalStreams(const OnlineAlid& a, const OnlineAlid& b) {
  DetectionResult da, db;
  da.clusters = a.clusters();
  db.clusters = b.clusters();
  ExpectIdenticalDetections(da, db);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.alive(), b.alive());
  const StreamStats& sa = a.stats();
  const StreamStats& sb = b.stats();
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.absorbed, sb.absorbed);
  EXPECT_EQ(sa.pooled, sb.pooled);
  EXPECT_EQ(sa.evicted, sb.evicted);
  EXPECT_EQ(sa.redetections, sb.redetections);
  EXPECT_EQ(sa.refreshes, sb.refreshes);
  EXPECT_EQ(sa.clusters_born, sb.clusters_born);
  EXPECT_EQ(sa.clusters_dissolved, sb.clusters_dissolved);
  EXPECT_EQ(sa.sketch_prunes, sb.sketch_prunes);
  EXPECT_EQ(sa.sketch_exact, sb.sketch_exact);
}

// The smallest key routing to `shard` — explicit-key ingest for the tests
// that force placements.
uint64_t KeyForShard(const ShardedStream& stream, int shard) {
  for (uint64_t k = 0;; ++k) {
    if (stream.ShardOf(k) == shard) return k;
  }
}

// A Gaussian blob around `center`, flattened row-major.
std::vector<Scalar> Blob(const std::vector<Scalar>& center, Index n,
                         double spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<Scalar> flat;
  flat.reserve(static_cast<size_t>(n) * center.size());
  for (Index i = 0; i < n; ++i) {
    for (const Scalar c : center) flat.push_back(c + rng.Gaussian() * spread);
  }
  return flat;
}

OnlineAlidOptions BlobOptions(int dim, double spread) {
  const double intra = std::sqrt(2.0 * static_cast<double>(dim)) * spread;
  OnlineAlidOptions opts;
  opts.affinity = {.k = -std::log(0.9) / intra, .p = 2.0};
  opts.lsh.segment_length = 3.0 * intra;
  return opts;
}

TEST(ShardTest, SingleShardIsBitIdenticalToPlainStream) {
  LabeledData data = Workload();
  OnlineAlidOptions base = BaseOptions(data);
  base.window = 260;  // evictions + repairs happen mid-stream
  const Index batch = 37;

  std::vector<Index> plain_slots;
  std::unique_ptr<OnlineAlid> plain =
      RunPlain(data, base, batch, &plain_slots);
  ASSERT_GT(plain->clusters().size(), 0u);
  ASSERT_GT(plain->stats().evicted, 0);

  // Serial and pooled sharded runs both reduce to the plain stream, slots
  // included (S == 1 bypasses hashing and gather/scatter entirely).
  for (int executors : {0, 8}) {
    std::unique_ptr<ThreadPool> pool;
    if (executors > 0) pool = std::make_unique<ThreadPool>(executors);
    ShardedStreamOptions opts;
    opts.base = base;
    opts.base.pool = pool.get();
    opts.num_shards = 1;
    std::vector<ShardSlot> slots;
    std::unique_ptr<ShardedStream> sharded =
        RunSharded(data, opts, batch, &slots);
    SCOPED_TRACE(testing::Message() << "executors=" << executors);
    ExpectIdenticalStreams(*plain, sharded->shard(0));
    ASSERT_EQ(slots.size(), plain_slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], (ShardSlot{0, plain_slots[i]})) << "arrival " << i;
    }
    EXPECT_EQ(sharded->size(), plain->size());
    EXPECT_EQ(sharded->alive(), plain->alive());
  }
}

TEST(ShardTest, SingleShardRouterMatchesDirectSnapshot) {
  LabeledData data = Workload(360, 17);
  ShardedStreamOptions opts;
  opts.base = BaseOptions(data);
  opts.num_shards = 1;
  std::unique_ptr<ShardedStream> stream = RunSharded(data, opts, 45);

  ShardRouter router(data.data.dim(), 1);
  const uint64_t gen = router.PublishFromStream(*stream);
  EXPECT_EQ(gen, static_cast<uint64_t>(stream->size()));

  const auto direct = ClusterSnapshot::FromStream(stream->shard(0));
  std::vector<Scalar> queries;
  for (Index i = 0; i < 60; ++i) {
    const auto row = data.data[i];
    queries.insert(queries.end(), row.begin(), row.end());
  }
  const ShardedQueryResponse response = router.Query({.points = queries});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.assignments.size(), 60u);
  for (Index i = 0; i < 60; ++i) {
    const AssignOutcome expected = direct->Assign(data.data[i]);
    const ShardAssignment& got = response.assignments[static_cast<size_t>(i)];
    EXPECT_EQ(got.cluster, expected.cluster) << "point " << i;
    EXPECT_EQ(got.affinity, expected.affinity) << "point " << i;
    EXPECT_EQ(got.margin, expected.margin) << "point " << i;
    EXPECT_EQ(got.generation, gen);
    if (got.cluster >= 0) {
      EXPECT_EQ(got.shard, 0);
    }
  }
}

TEST(ShardTest, FixedShardCountIsBitIdenticalAcrossSchedules) {
  LabeledData data = Workload();
  OnlineAlidOptions base = BaseOptions(data);
  base.window = 260;
  const Index batch = 37;
  const int num_shards = 4;

  ShardedStreamOptions serial;
  serial.base = base;
  serial.num_shards = num_shards;
  std::vector<ShardSlot> baseline_slots;
  std::unique_ptr<ShardedStream> baseline =
      RunSharded(data, serial, batch, &baseline_slots);
  // The partition actually spread the stream (otherwise this test collapses
  // to the S == 1 one).
  int populated = 0;
  for (int s = 0; s < num_shards; ++s) {
    populated += baseline->shard(s).size() > 0 ? 1 : 0;
  }
  ASSERT_EQ(populated, num_shards);

  for (int executors : {1, 8}) {
    for (bool stealing : {true, false}) {
      for (int64_t grain : {int64_t{1}, int64_t{64}}) {
        ThreadPool pool(executors, {.work_stealing = stealing});
        ShardedStreamOptions opts = serial;
        opts.base.pool = &pool;
        opts.base.grain = grain;
        std::vector<ShardSlot> slots;
        std::unique_ptr<ShardedStream> streamed =
            RunSharded(data, opts, batch, &slots);
        SCOPED_TRACE(testing::Message()
                     << "executors=" << executors << " stealing=" << stealing
                     << " grain=" << grain);
        EXPECT_EQ(slots, baseline_slots);
        for (int s = 0; s < num_shards; ++s) {
          SCOPED_TRACE(testing::Message() << "shard=" << s);
          ExpectIdenticalStreams(baseline->shard(s), streamed->shard(s));
        }
      }
    }
  }
}

TEST(ShardTest, RouterMergeMatchesSerialPerShardMerge) {
  LabeledData data = Workload(400, 7);
  ShardedStreamOptions opts;
  opts.base = BaseOptions(data);
  opts.num_shards = 3;
  std::unique_ptr<ShardedStream> stream = RunSharded(data, opts, 50);

  ThreadPool pool(4);
  ShardRouter router(data.data.dim(), 3, {.pool = &pool});
  const uint64_t gen = router.PublishFromStream(*stream);
  const auto pinned = router.snapshot();
  ASSERT_NE(pinned, nullptr);

  const Index num_queries = 80;
  std::vector<Scalar> queries;
  for (Index i = 0; i < num_queries; ++i) {
    const auto row = data.data[i];
    queries.insert(queries.end(), row.begin(), row.end());
  }

  const ShardedQueryResponse response = router.Query({.points = queries});
  ASSERT_TRUE(response.ok());
  for (Index i = 0; i < num_queries; ++i) {
    // The reference merge: serial per-shard Assign, strictly-greater margin
    // replacement (equal margins keep the earliest shard).
    ShardAssignment expected;
    expected.generation = gen;
    for (int s = 0; s < 3; ++s) {
      const AssignOutcome outcome = pinned->shards[s]->Assign(data.data[i]);
      if (outcome.cluster < 0) continue;
      if (expected.cluster < 0 || outcome.margin > expected.margin) {
        static_cast<QueryOutcome&>(expected) = outcome;
        expected.generation = gen;
        expected.shard = s;
      }
    }
    const ShardAssignment& got = response.assignments[static_cast<size_t>(i)];
    EXPECT_EQ(got.cluster, expected.cluster) << "point " << i;
    EXPECT_EQ(got.shard, expected.shard) << "point " << i;
    EXPECT_EQ(got.affinity, expected.affinity) << "point " << i;
    EXPECT_EQ(got.margin, expected.margin) << "point " << i;
  }

  // Ranked fan-out: concatenation of the per-shard rankings under the
  // (affinity desc, shard asc, cluster asc) total order, truncated.
  const int top_k = 3;
  const ShardedQueryResponse ranked =
      router.Query({.points = queries, .top_k = top_k});
  ASSERT_TRUE(ranked.ok());
  for (Index i = 0; i < num_queries; ++i) {
    std::vector<ShardScoredCluster> expected;
    for (int s = 0; s < 3; ++s) {
      for (const ScoredCluster& sc :
           pinned->shards[s]->TopKClusters(data.data[i], top_k)) {
        ShardScoredCluster tagged;
        static_cast<ScoredCluster&>(tagged) = sc;
        tagged.shard = s;
        tagged.generation = gen;
        expected.push_back(tagged);
      }
    }
    std::sort(expected.begin(), expected.end(),
              [](const ShardScoredCluster& a, const ShardScoredCluster& b) {
                if (a.affinity != b.affinity) return a.affinity > b.affinity;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.cluster < b.cluster;
              });
    if (static_cast<int>(expected.size()) > top_k) {
      expected.resize(static_cast<size_t>(top_k));
    }
    EXPECT_EQ(ranked.ranked[static_cast<size_t>(i)], expected)
        << "point " << i;
  }

  // The fan-out counter counts count x shards sub-queries per request.
  bool fanout_seen = false;
  for (const obs::MetricSample& sample : router.metrics().Snapshot()) {
    if (sample.name == "shard_fanout_queries") {
      fanout_seen = true;
      EXPECT_EQ(sample.value, static_cast<int64_t>(2 * num_queries * 3));
    }
  }
  EXPECT_TRUE(fanout_seen);
}

TEST(ShardTest, MergePrefersLowestShardOnExactTies) {
  const int dim = 6;
  const double spread = 1.0;
  ShardedStreamOptions opts;
  opts.base = BlobOptions(dim, spread);
  opts.num_shards = 2;
  ShardedStream stream(dim, opts);

  // The SAME blob into both shards (explicit keys): two bit-identical
  // clusters, so a center query ties exactly — the merge must keep shard 0.
  const std::vector<Scalar> center(dim, 10.0);
  const std::vector<Scalar> blob = Blob(center, 80, spread, 77);
  const std::vector<uint64_t> to0(80, KeyForShard(stream, 0));
  const std::vector<uint64_t> to1(80, KeyForShard(stream, 1));
  stream.InsertBatch(blob, to0);
  stream.InsertBatch(blob, to1);
  stream.Refresh();
  ASSERT_GT(stream.shard(0).clusters().size(), 0u);
  ASSERT_EQ(stream.shard(0).clusters().size(),
            stream.shard(1).clusters().size());

  ShardRouter router(dim, 2);
  router.PublishFromStream(stream);
  const ShardedQueryResponse response = router.Query({.points = center});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.assignments.size(), 1u);
  const ShardAssignment& best = response.assignments[0];
  ASSERT_GE(best.cluster, 0);
  EXPECT_EQ(best.shard, 0);  // the tie-break of the merge contract

  // Both tied candidates surface in the ranking, shard 0 first.
  const ShardedQueryResponse ranked =
      router.Query({.points = center, .top_k = 2});
  ASSERT_EQ(ranked.ranked[0].size(), 2u);
  EXPECT_EQ(ranked.ranked[0][0].affinity, ranked.ranked[0][1].affinity);
  EXPECT_EQ(ranked.ranked[0][0].shard, 0);
  EXPECT_EQ(ranked.ranked[0][1].shard, 1);
}

// The TSan claim: while one publisher hot-swaps sharded generations, every
// reader answers each whole request — every point, every shard — from
// exactly one published generation, and observes generations monotonically.
TEST(ShardTest, HotPublisherKeepsResponsesGenerationConsistent) {
  LabeledData data = Workload(480, 11);
  ShardedStreamOptions opts;
  opts.base = BaseOptions(data);
  opts.num_shards = 2;
  ShardedStream stream(data.data.dim(), opts);
  ShardRouter router(data.data.dim(), 2);

  const int dim = data.data.dim();
  std::vector<Scalar> queries;
  for (Index i = 0; i < 40; ++i) {
    const auto row = data.data[i];
    queries.insert(queries.end(), row.begin(), row.end());
  }

  // Seed one generation so readers never start offline.
  std::vector<Scalar> first;
  for (Index i = 0; i < 80; ++i) {
    const auto row = data.data[i];
    first.insert(first.end(), row.begin(), row.end());
  }
  stream.InsertBatch(first);
  std::vector<uint64_t> published{router.PublishFromStream(stream)};

  std::atomic<bool> torn{false};
  std::atomic<bool> non_monotonic{false};
  std::atomic<bool> bad_status{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ShardedQueryResponse r = router.Query({.points = queries});
        if (!r.ok()) {
          bad_status.store(true);
          continue;
        }
        for (const ShardAssignment& a : r.assignments) {
          if (a.generation != r.generation) torn.store(true);
        }
        if (r.generation < last_seen) non_monotonic.store(true);
        last_seen = r.generation;
      }
    });
  }
  // The single writer: ingest a batch, publish, repeat — generations climb
  // while the readers run.
  std::vector<Scalar> flat;
  for (Index pos = 80; pos < data.size(); ++pos) {
    const auto row = data.data[pos];
    flat.insert(flat.end(), row.begin(), row.end());
    if (flat.size() == static_cast<size_t>(40 * dim)) {
      stream.InsertBatch(flat);
      flat.clear();
      published.push_back(router.PublishFromStream(stream));
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_FALSE(torn.load());
  EXPECT_FALSE(non_monotonic.load());
  EXPECT_FALSE(bad_status.load());
  ASSERT_GE(published.size(), 4u);
  EXPECT_TRUE(std::is_sorted(published.begin(), published.end()));
  EXPECT_EQ(router.generation(), published.back());
}

TEST(ShardTest, EmptyShardsHotSpotAndStatusEdges) {
  const int dim = 6;
  ShardedStreamOptions opts;
  opts.base = BlobOptions(dim, 1.0);
  opts.num_shards = 4;
  ShardedStream stream(dim, opts);

  // Empty-batch ingest is a no-op.
  EXPECT_TRUE(stream.InsertBatch(std::span<const Scalar>{}).empty());

  // Hot spot: every arrival forced onto one shard, the rest stay empty.
  const int hot = 2;
  const std::vector<Scalar> center(dim, 5.0);
  const std::vector<Scalar> blob = Blob(center, 120, 1.0, 13);
  const std::vector<uint64_t> keys(120, KeyForShard(stream, hot));
  const std::vector<ShardSlot> slots = stream.InsertBatch(blob, keys);
  stream.Refresh();
  ASSERT_EQ(slots.size(), 120u);
  for (const ShardSlot& slot : slots) EXPECT_EQ(slot.shard, hot);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(stream.shard(s).size(), s == hot ? 120 : 0) << "shard " << s;
  }
  EXPECT_EQ(stream.size(), 120);
  EXPECT_EQ(stream.stats().arrivals, 120);

  ShardRouter router(dim, 4);
  // Offline before the first publish.
  const ShardedQueryResponse offline = router.Query({.points = center});
  EXPECT_EQ(offline.status, QueryStatus::kOffline);
  EXPECT_EQ(router.generation(), 0u);

  // Queries fan out over empty shards without harm; answers come from the
  // hot one.
  const uint64_t gen = router.PublishFromStream(stream);
  EXPECT_EQ(gen, 120u);
  const ShardedQueryResponse response = router.Query({.points = center});
  ASSERT_TRUE(response.ok());
  ASSERT_GE(response.assignments[0].cluster, 0);
  EXPECT_EQ(response.assignments[0].shard, hot);

  // Generation addressing: the current one answers, anything else is
  // unavailable (the router keeps no history ring).
  EXPECT_TRUE(router.Query({.points = center, .generation = gen}).ok());
  const ShardedQueryResponse stale =
      router.Query({.points = center, .generation = gen + 1});
  EXPECT_EQ(stale.status, QueryStatus::kGenerationUnavailable);
  EXPECT_NE(router.SnapshotAt(0), nullptr);
  EXPECT_NE(router.SnapshotAt(gen), nullptr);
  EXPECT_EQ(router.SnapshotAt(gen + 1), nullptr);

  // Unpublish takes the router offline again.
  router.Unpublish();
  EXPECT_EQ(router.Query({.points = center}).status, QueryStatus::kOffline);
  EXPECT_EQ(router.generation(), 0u);
}

TEST(ShardTest, BoundaryReportFindsSplitClustersOnly) {
  const int dim = 6;
  const double spread = 1.0;
  ShardedStreamOptions opts;
  opts.base = BlobOptions(dim, spread);
  opts.num_shards = 2;
  ShardedStream stream(dim, opts);
  const uint64_t key0 = KeyForShard(stream, 0);
  const uint64_t key1 = KeyForShard(stream, 1);

  // Blob A straddles the partition (alternating forced keys): each shard
  // detects its own half at the same location — the boundary case the
  // report exists for. Blob B lives far away on shard 0 only.
  const std::vector<Scalar> center_a(dim, 10.0);
  std::vector<Scalar> center_b(dim, 10.0);
  center_b[0] = 500.0;
  const std::vector<Scalar> blob_a = Blob(center_a, 160, spread, 21);
  std::vector<uint64_t> alternating(160);
  for (size_t i = 0; i < alternating.size(); ++i) {
    alternating[i] = i % 2 == 0 ? key0 : key1;
  }
  stream.InsertBatch(blob_a, alternating);
  const std::vector<Scalar> blob_b = Blob(center_b, 80, spread, 22);
  stream.InsertBatch(blob_b, std::vector<uint64_t>(80, key0));
  stream.Refresh();
  ASSERT_GT(stream.shard(0).clusters().size(), 0u);
  ASSERT_GT(stream.shard(1).clusters().size(), 0u);

  ShardRouter router(dim, 2);
  router.PublishFromStream(stream);
  const std::vector<BoundaryPair> report =
      router.BoundaryClusters(opts.base.affinity);

  // The split blob collides; the far blob never pairs across shards.
  ASSERT_FALSE(report.empty());
  const auto snapshot = router.snapshot();
  for (const BoundaryPair& pair : report) {
    EXPECT_EQ(pair.shard_a, 0);
    EXPECT_EQ(pair.shard_b, 1);
    EXPECT_GT(pair.shared_buckets, 0);
    EXPECT_GT(pair.cross_density, 0.0);
    // Both endpoints sit at blob A's location: the far cluster B cannot
    // share a bucket with anything on the other shard.
    for (const auto& [shard, cluster] :
         {std::pair<int, int>{pair.shard_a, pair.cluster_a},
          std::pair<int, int>{pair.shard_b, pair.cluster_b}}) {
      const ClusterBlock& block =
          *snapshot->shards[static_cast<size_t>(shard)]
               ->blocks()[static_cast<size_t>(cluster)];
      EXPECT_LT(std::abs(block.row(0)[0] - center_a[0]), 50.0)
          << "pair endpoint is not at the split blob";
    }
  }
  // Deterministic: a pure function of the pinned snapshot.
  EXPECT_EQ(router.BoundaryClusters(opts.base.affinity), report);

  // The sharded instruments saw the hot/cold skew of this workload.
  bool hot_seen = false;
  for (const obs::MetricSample& sample : stream.metrics().Snapshot()) {
    if (sample.name == "hot_shard_arrivals") {
      hot_seen = true;
      EXPECT_GT(sample.value, 0);
    }
  }
  EXPECT_TRUE(hot_seen);
}

}  // namespace
}  // namespace alid
