// Tests of Parallel ALID (Algorithm 3): seed sampling, map/reduce semantics,
// executor-count invariance of the detected structure.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/palid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

struct PalidHarness {
  explicit PalidHarness(const LabeledData& labeled, PalidOptions opts = {}) {
    affinity = std::make_unique<AffinityFunction>(
        AffinityParams{.k = labeled.suggested_k, .p = 2.0});
    oracle = std::make_unique<LazyAffinityOracle>(labeled.data, *affinity);
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = labeled.suggested_lsh_r;
    lsh = std::make_unique<LshIndex>(labeled.data, lp);
    palid = std::make_unique<Palid>(*oracle, *lsh, opts);
  }
  std::unique_ptr<AffinityFunction> affinity;
  std::unique_ptr<LazyAffinityOracle> oracle;
  std::unique_ptr<LshIndex> lsh;
  std::unique_ptr<Palid> palid;
};

LabeledData Workload(Index n = 600) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 12;
  cfg.num_clusters = 4;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.seed = 17;
  return MakeSynthetic(cfg);
}

TEST(PalidTest, SeedsComeFromLargeBuckets) {
  LabeledData data = Workload();
  PalidHarness h(data);
  IndexList seeds = h.palid->SampleSeeds();
  EXPECT_FALSE(seeds.empty());
  // Nearly all sampled seeds should be ground-truth items: noise rarely fills
  // an LSH bucket with > 5 items.
  int truth = 0;
  for (Index s : seeds) truth += data.labels[s] >= 0;
  EXPECT_GT(static_cast<double>(truth) / seeds.size(), 0.9);
}

TEST(PalidTest, DetectsThePlantedClusters) {
  LabeledData data = Workload();
  PalidHarness h(data);
  PalidStats stats;
  DetectionResult result = h.palid->Detect(&stats).Filtered(0.75);
  EXPECT_GT(AverageF1(data.true_clusters, result), 0.85);
  EXPECT_GT(stats.num_seeds, 0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.total_task_seconds, 0.0);
}

TEST(PalidTest, ReduceCollapsesDuplicateDetections) {
  LabeledData data = Workload();
  PalidHarness h(data);
  DetectionResult result = h.palid->Detect();
  // Many seeds per cluster, but the reduce keeps roughly one surviving
  // cluster per dominant cluster (plus possibly small weak ones).
  DetectionResult dense = result.Filtered(0.75);
  EXPECT_LE(dense.clusters.size(), 8u);
  EXPECT_GE(dense.clusters.size(), 3u);
}

TEST(PalidTest, AssignmentPrefersDensestCluster) {
  LabeledData data = Workload();
  PalidHarness h(data);
  DetectionResult result = h.palid->Detect();
  auto labels = result.Assignment(data.size());
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    for (Index g : result.clusters[c].members) {
      ASSERT_GE(labels[g], 0);
      // The assigned cluster's density is at least this cluster's.
      EXPECT_GE(result.clusters[labels[g]].density,
                result.clusters[c].density - 1e-12);
    }
  }
}

TEST(PalidTest, ExecutorCountDoesNotChangeQuality) {
  LabeledData data = Workload(400);
  PalidOptions one;
  one.num_executors = 1;
  PalidOptions four;
  four.num_executors = 4;
  PalidHarness h1(data, one);
  PalidHarness h4(data, four);
  const double f1 = AverageF1(data.true_clusters,
                              h1.palid->Detect().Filtered(0.75));
  const double f4 = AverageF1(data.true_clusters,
                              h4.palid->Detect().Filtered(0.75));
  EXPECT_NEAR(f1, f4, 0.05);
}

TEST(PalidTest, MatchesSequentialAlidQuality) {
  LabeledData data = Workload(400);
  PalidHarness h(data);
  AlidDetector sequential(*h.oracle, *h.lsh, {});
  const double f_seq = AverageF1(data.true_clusters,
                                 sequential.DetectAll().Filtered(0.75));
  const double f_par =
      AverageF1(data.true_clusters, h.palid->Detect().Filtered(0.75));
  EXPECT_NEAR(f_seq, f_par, 0.1);
}

}  // namespace
}  // namespace alid
