// Determinism regression tests for the parallel runtime: PALID's output must
// be bit-identical across executor counts, chunk sizes, scheduling
// disciplines, and with the shared column cache on or off.
#include <memory>

#include <gtest/gtest.h>

#include "core/palid.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 500) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 12;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.seed = 23;
  return MakeSynthetic(cfg);
}

// TestPipeline's cache flag matters here: the oracle's cache is default-on,
// and cache=false restores the stateless oracle so the cached/uncached
// comparisons below stay meaningful.
struct Fixture : TestPipeline {
  explicit Fixture(const LabeledData& labeled, bool cache = false)
      : TestPipeline(labeled, cache) {}
  DetectionResult Detect(PalidOptions opts) const {
    return Palid(*oracle, *lsh, opts).Detect();
  }
};

// Full structural equality, including cluster order: the runtime promises
// seed-ordered reduce output, not merely the same set of clusters.
void ExpectIdentical(const DetectionResult& a, const DetectionResult& b) {
  ExpectIdenticalDetections(a, b);
}

TEST(DeterminismTest, IdenticalAcrossExecutorCounts) {
  LabeledData data = Workload();
  Fixture fx(data);
  PalidOptions one;
  one.num_executors = 1;
  PalidOptions four;
  four.num_executors = 4;
  PalidOptions eight;
  eight.num_executors = 8;
  DetectionResult r1 = fx.Detect(one);
  ASSERT_FALSE(r1.clusters.empty());
  ExpectIdentical(r1, fx.Detect(four));
  ExpectIdentical(r1, fx.Detect(eight));
}

TEST(DeterminismTest, IdenticalAcrossChunkSizes) {
  LabeledData data = Workload();
  Fixture fx(data);
  PalidOptions fine;
  fine.num_executors = 4;
  fine.chunk_size = 1;
  PalidOptions coarse;
  coarse.num_executors = 4;
  coarse.chunk_size = 64;
  PalidOptions automatic;
  automatic.num_executors = 4;
  ExpectIdentical(fx.Detect(fine), fx.Detect(coarse));
  ExpectIdentical(fx.Detect(fine), fx.Detect(automatic));
}

TEST(DeterminismTest, IdenticalUnderFifoAblation) {
  LabeledData data = Workload();
  Fixture fx(data);
  PalidOptions stealing;
  stealing.num_executors = 4;
  PalidOptions fifo;
  fifo.num_executors = 4;
  fifo.work_stealing = false;
  ExpectIdentical(fx.Detect(stealing), fx.Detect(fifo));
}

TEST(DeterminismTest, ColumnCacheNeverChangesDetections) {
  LabeledData data = Workload();
  Fixture plain(data, /*cache=*/false);
  Fixture cached(data, /*cache=*/true);
  PalidOptions opts;
  opts.num_executors = 4;
  DetectionResult without = plain.Detect(opts);
  DetectionResult with = cached.Detect(opts);
  ExpectIdentical(without, with);
  EXPECT_GT(cached.oracle->cache_hits(), 0);  // the cache actually engaged

  // And a cached run at a different executor count still matches.
  PalidOptions two;
  two.num_executors = 2;
  ExpectIdentical(without, cached.Detect(two));
}

TEST(DeterminismTest, SeedSamplingIndependentOfExecutors) {
  LabeledData data = Workload();
  Fixture fx(data);
  PalidOptions one;
  one.num_executors = 1;
  PalidOptions eight;
  eight.num_executors = 8;
  EXPECT_EQ(Palid(*fx.oracle, *fx.lsh, one).SampleSeeds(),
            Palid(*fx.oracle, *fx.lsh, eight).SampleSeeds());
}

TEST(DeterminismTest, RepeatedRunsAreIdentical) {
  LabeledData data = Workload(300);
  Fixture fx(data, /*cache=*/true);
  PalidOptions opts;
  opts.num_executors = 3;
  // A warm cache (second run) must not perturb results either.
  DetectionResult r1 = fx.Detect(opts);
  DetectionResult r2 = fx.Detect(opts);
  ExpectIdentical(r1, r2);
}

}  // namespace
}  // namespace alid
