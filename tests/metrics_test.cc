// Tests of the evaluation metrics: F1, AVG-F, label conversion, uniform
// density.
#include <cmath>

#include <gtest/gtest.h>

#include "data/labeled_data.h"
#include "eval/metrics.h"

namespace alid {
namespace {

TEST(F1Test, PerfectMatch) {
  F1Score s = ComputeF1({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(F1Test, NoOverlap) {
  F1Score s = ComputeF1({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(F1Test, PartialOverlap) {
  // detected {1,2,3,4}, truth {3,4,5,6}: P=0.5, R=0.5, F1=0.5.
  F1Score s = ComputeF1({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(F1Test, AsymmetricSizes) {
  // detected {1}, truth {1,2,3,4}: P=1, R=0.25, F1=0.4.
  F1Score s = ComputeF1({1}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.25);
  EXPECT_NEAR(s.f1, 0.4, 1e-12);
}

TEST(F1Test, EmptyInputsScoreZero) {
  EXPECT_DOUBLE_EQ(ComputeF1({}, {1}).f1, 0.0);
  EXPECT_DOUBLE_EQ(ComputeF1({1}, {}).f1, 0.0);
}

TEST(AverageF1Test, BestMatchPerTruthCluster) {
  std::vector<IndexList> truth{{0, 1, 2}, {10, 11}};
  std::vector<IndexList> detected{{0, 1, 2}, {10, 12}, {5}};
  // Truth 0 matches detected 0 perfectly; truth 1 best-matches {10,12}:
  // P=0.5, R=0.5, F1=0.5. AVG-F = (1 + 0.5)/2.
  EXPECT_NEAR(AverageF1(truth, detected), 0.75, 1e-12);
}

TEST(AverageF1Test, NoDetectionsGivesZero) {
  std::vector<IndexList> truth{{0, 1}};
  EXPECT_DOUBLE_EQ(AverageF1(truth, std::vector<IndexList>{}), 0.0);
}

TEST(AverageF1Test, DetectionResultOverload) {
  std::vector<IndexList> truth{{0, 1}};
  DetectionResult res;
  Cluster c;
  c.members = {0, 1};
  c.weights = {0.5, 0.5};
  c.density = 0.9;
  res.clusters.push_back(c);
  EXPECT_DOUBLE_EQ(AverageF1(truth, res), 1.0);
}

TEST(LabelsToClustersTest, IgnoresNegativesGroupsRest) {
  std::vector<int> labels{0, 1, 0, -1, 1, 2};
  auto clusters = LabelsToClusters(labels);
  ASSERT_EQ(clusters.size(), 3u);
  // Each listed index must carry the same original label.
  size_t total = 0;
  for (const auto& c : clusters) {
    total += c.size();
    for (size_t i = 1; i < c.size(); ++i) {
      EXPECT_EQ(labels[c[i]], labels[c[0]]);
    }
  }
  EXPECT_EQ(total, 5u);
}

TEST(UniformDensityTest, SingletonIsZero) {
  Dataset d(1, {0.0, 1.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  EXPECT_DOUBLE_EQ(UniformDensity(d, f, {0}), 0.0);
}

TEST(UniformDensityTest, PairMatchesHandComputation) {
  Dataset d(1, {0.0, 1.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  // x = (1/2, 1/2): pi = 2 * (1/4) * a01 = a01 / 2.
  EXPECT_NEAR(UniformDensity(d, f, {0, 1}), std::exp(-1.0) / 2.0, 1e-12);
}

TEST(UniformDensityTest, TighterSetIsDenser) {
  Dataset d(1, {0.0, 0.1, 5.0, 5.1, 0.05});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  EXPECT_GT(UniformDensity(d, f, {0, 1, 4}), UniformDensity(d, f, {0, 1, 2}));
}

TEST(NoiseDegreeTest, CountsRatio) {
  LabeledData data;
  data.labels = {0, 0, -1, -1, -1, 1};
  EXPECT_DOUBLE_EQ(data.NoiseDegree(), 1.0);
}

}  // namespace
}  // namespace alid
