// Tests of the workload generators: shapes, label bookkeeping, geometry
// (tight clusters vs dispersed noise) and the paper-matching default sizes.
#include <cmath>

#include <gtest/gtest.h>

#include "data/nart_like.h"
#include "data/ndi_like.h"
#include "data/sift_like.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

template <typename T>
void CheckLabelBookkeeping(const T& data) {
  ASSERT_EQ(static_cast<size_t>(data.size()), data.labels.size());
  // true_clusters[i] must contain exactly the items labeled i.
  for (size_t c = 0; c < data.true_clusters.size(); ++c) {
    for (Index g : data.true_clusters[c]) {
      ASSERT_EQ(data.labels[g], static_cast<int>(c));
    }
  }
  size_t labeled = 0;
  for (int l : data.labels) labeled += l >= 0;
  size_t listed = 0;
  for (const auto& c : data.true_clusters) listed += c.size();
  EXPECT_EQ(labeled, listed);
}

// ---------------------------------------------------------------- Synthetic --

TEST(SyntheticTest, RegimeSizes) {
  SyntheticConfig cfg;
  cfg.n = 10000;
  cfg.num_clusters = 20;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 1.0;
  EXPECT_EQ(RegimeClusterSize(cfg), 500);
  cfg.regime = SyntheticRegime::kSublinear;
  cfg.eta = 0.9;
  EXPECT_EQ(RegimeClusterSize(cfg),
            static_cast<Index>(std::pow(10000.0, 0.9) / 20.0));
  cfg.regime = SyntheticRegime::kBounded;
  cfg.P = 1000;
  EXPECT_EQ(RegimeClusterSize(cfg), 50);
}

TEST(SyntheticTest, LabelsConsistent) {
  SyntheticConfig cfg;
  cfg.n = 500;
  cfg.dim = 6;
  cfg.num_clusters = 5;
  cfg.omega = 0.6;
  LabeledData data = MakeSynthetic(cfg);
  EXPECT_EQ(data.size(), 500);
  CheckLabelBookkeeping(data);
}

TEST(SyntheticTest, IntraDistancesMuchSmallerThanInter) {
  SyntheticConfig cfg;
  cfg.n = 200;
  cfg.dim = 20;
  cfg.num_clusters = 2;
  cfg.omega = 1.0;
  cfg.mean_box = 400.0;
  cfg.overlap_clusters = false;
  LabeledData data = MakeSynthetic(cfg);
  const IndexList& c0 = data.true_clusters[0];
  const IndexList& c1 = data.true_clusters[1];
  const Scalar intra = data.data.Distance(c0[0], c0[1]);
  const Scalar inter = data.data.Distance(c0[0], c1[0]);
  EXPECT_LT(intra * 3.0, inter);
}

TEST(SyntheticTest, NoiseDegreeMatchesRegime) {
  SyntheticConfig cfg;
  cfg.n = 1000;
  cfg.num_clusters = 4;
  cfg.dim = 6;
  cfg.regime = SyntheticRegime::kBounded;
  cfg.P = 200;  // 50 per cluster, 200 truth, 800 noise
  LabeledData data = MakeSynthetic(cfg);
  EXPECT_NEAR(data.NoiseDegree(), 800.0 / 200.0, 1e-9);
}

TEST(SyntheticTest, DeterministicAcrossCalls) {
  SyntheticConfig cfg;
  cfg.n = 100;
  cfg.dim = 4;
  cfg.num_clusters = 2;
  LabeledData a = MakeSynthetic(cfg);
  LabeledData b = MakeSynthetic(cfg);
  EXPECT_EQ(a.data.raw(), b.data.raw());
}

// ---------------------------------------------------------------- NART-like --

TEST(NartLikeTest, PaperShapeDefaults) {
  LabeledData data = MakeNartLike();
  EXPECT_EQ(data.size(), 5301);  // 734 + 4567
  EXPECT_EQ(data.true_clusters.size(), 13u);
  EXPECT_EQ(data.data.dim(), 350);
  CheckLabelBookkeeping(data);
}

TEST(NartLikeTest, VectorsAreTopicDistributions) {
  NartLikeConfig cfg;
  cfg.num_event_articles = 60;
  cfg.num_noise_articles = 100;
  LabeledData data = MakeNartLike(cfg);
  for (Index i = 0; i < data.size(); ++i) {
    Scalar sum = 0.0;
    for (Scalar v : data.data[i]) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(NartLikeTest, EventsAreTighterThanNoise) {
  NartLikeConfig cfg;
  cfg.num_event_articles = 120;
  cfg.num_noise_articles = 200;
  cfg.seed = 3;
  LabeledData data = MakeNartLike(cfg);
  const IndexList& e0 = data.true_clusters[0];
  ASSERT_GE(e0.size(), 2u);
  const Scalar intra = data.data.Distance(e0[0], e0[1]);
  // Noise-noise distance (two diffuse mixtures) should be far larger.
  Index n1 = -1, n2 = -1;
  for (Index i = 0; i < data.size(); ++i) {
    if (data.labels[i] < 0) {
      if (n1 < 0) {
        n1 = i;
      } else {
        n2 = i;
        break;
      }
    }
  }
  EXPECT_LT(intra * 3.0, data.data.Distance(n1, n2));
}

// ----------------------------------------------------------------- NDI-like --

TEST(NdiLikeTest, SubNdiShape) {
  LabeledData data = MakeNdiLike(NdiLikeConfig::SubNdi());
  EXPECT_EQ(data.size(), 1420 + 8520);
  EXPECT_EQ(data.true_clusters.size(), 6u);
  EXPECT_EQ(data.data.dim(), 256);
  CheckLabelBookkeeping(data);
}

TEST(NdiLikeTest, GistValuesInUnitBox) {
  NdiLikeConfig cfg = NdiLikeConfig::SubNdi();
  cfg.num_duplicates = 100;
  cfg.num_noise = 100;
  LabeledData data = MakeNdiLike(cfg);
  for (Index i = 0; i < data.size(); ++i) {
    for (Scalar v : data.data[i]) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(NdiLikeTest, GroupsAreTight) {
  NdiLikeConfig cfg = NdiLikeConfig::SubNdi();
  cfg.num_duplicates = 120;
  cfg.num_noise = 200;
  LabeledData data = MakeNdiLike(cfg);
  const IndexList& g0 = data.true_clusters[0];
  const Scalar intra = data.data.Distance(g0[0], g0[1]);
  // Typical uniform-noise distance in [0,1]^256 is ~ sqrt(256/6) ≈ 6.5.
  EXPECT_LT(intra, 1.0);
}

// ---------------------------------------------------------------- SIFT-like --

TEST(SiftLikeTest, VectorsOnNonNegativeUnitSphere) {
  SiftLikeConfig cfg;
  cfg.n = 300;
  LabeledData data = MakeSiftLike(cfg);
  for (Index i = 0; i < data.size(); ++i) {
    Scalar norm = 0.0;
    for (Scalar v : data.data[i]) {
      EXPECT_GE(v, 0.0);
      norm += v * v;
    }
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(SiftLikeTest, ShapeMatchesConfig) {
  SiftLikeConfig cfg;
  cfg.n = 1000;
  cfg.num_visual_words = 10;
  cfg.word_fraction = 0.4;
  LabeledData data = MakeSiftLike(cfg);
  EXPECT_EQ(data.size(), 1000);
  EXPECT_EQ(data.true_clusters.size(), 10u);
  CheckLabelBookkeeping(data);
  // ~40% of descriptors belong to visual words.
  size_t truth = 0;
  for (int l : data.labels) truth += l >= 0;
  EXPECT_NEAR(static_cast<double>(truth) / data.size(), 0.4, 0.05);
}

TEST(SiftLikeTest, WordsAreTightClutterIsNot) {
  SiftLikeConfig cfg;
  cfg.n = 600;
  cfg.num_visual_words = 5;
  LabeledData data = MakeSiftLike(cfg);
  const IndexList& w0 = data.true_clusters[0];
  const Scalar intra = data.data.Distance(w0[0], w0[1]);
  Index n1 = -1, n2 = -1;
  for (Index i = 0; i < data.size(); ++i) {
    if (data.labels[i] < 0) {
      if (n1 < 0) {
        n1 = i;
      } else {
        n2 = i;
        break;
      }
    }
  }
  ASSERT_GE(n2, 0);
  EXPECT_LT(intra * 2.0, data.data.Distance(n1, n2));
}

}  // namespace
}  // namespace alid
