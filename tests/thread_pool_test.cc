// Tests of the work-stealing executor pool: future-returning Submit,
// ParallelFor coverage, Wait semantics, the FIFO ablation mode, and nested
// posting from inside workers.
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace alid {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 64; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, SubmitPropagatesNonTrivialTypes) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return std::vector<int>{1, 2, 3}; });
  EXPECT_EQ(f.get(), (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, WaitDrainsAllPostedJobs) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Post([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GE(pool.tasks_executed(), 200);
  pool.Wait();  // idempotent on an idle pool
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(0, kN, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRespectsGrainAndEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(
      5, 105,
      [&](int64_t lo, int64_t hi) {
        EXPECT_LE(hi - lo, 7);
        for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
      },
      /*grain=*/7);
  EXPECT_EQ(sum.load(), (104 + 5) * 100 / 2);
  // Empty and reversed ranges are no-ops.
  pool.ParallelFor(3, 3, [&](int64_t, int64_t) { FAIL(); });
  pool.ParallelFor(4, 1, [&](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, FifoModeRunsInSubmissionOrder) {
  // The paper-faithful ablation: one worker, one FIFO queue — jobs observe
  // strict submission order (the work-stealing pool pops its own deque LIFO
  // instead, so this property is specific to the ablation mode).
  ThreadPool pool(1, {.work_stealing = false});
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.Post([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
  EXPECT_EQ(pool.steal_count(), 0);
}

TEST(ThreadPoolTest, WorkStealingExecutesEverythingUnderImbalance) {
  // One long job pins a worker; the stampede of short jobs behind it on the
  // same deque must get stolen by the other workers.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  pool.Post([&] {
    while (!release.load()) std::this_thread::yield();
    done.fetch_add(1);
  });
  for (int i = 0; i < 400; ++i) {
    pool.Post([&done] { done.fetch_add(1); });
  }
  release.store(true);
  pool.Wait();
  EXPECT_EQ(done.load(), 401);
}

TEST(ThreadPoolTest, NestedPostFromWorkerCompletesBeforeWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Post([&pool, &count] {
      // A worker posting follow-up work (goes to its own deque).
      pool.Post([&count] { count.fetch_add(1); });
      count.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 40);
}

}  // namespace
}  // namespace alid
