// Tests of the ROI double-deck hyperball (Proposition 1, Eq. 15/16) and of
// CIVS retrieval (Step 3).
#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "common/random.h"
#include "core/civs.h"
#include "core/lid.h"
#include "core/roi.h"
#include "data/synthetic.h"
#include "lsh/lsh_index.h"

namespace alid {
namespace {

// One tight pack at the origin plus a shell of scattered points.
Dataset PackWithShell(uint64_t seed = 8) {
  Rng rng(seed);
  Dataset d(3);
  for (int i = 0; i < 8; ++i) {
    d.Append(std::vector<Scalar>{rng.Gaussian(0.0, 0.05),
                                 rng.Gaussian(0.0, 0.05),
                                 rng.Gaussian(0.0, 0.05)});
  }
  for (int i = 0; i < 30; ++i) {
    // Points at distances spread between 0.3 and 6.
    const double r = rng.Uniform(0.3, 6.0);
    std::vector<Scalar> p{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    double norm = std::sqrt(p[0] * p[0] + p[1] * p[1] + p[2] * p[2]);
    for (auto& v : p) v = v / norm * r;
    d.Append(p);
  }
  return d;
}

class RoiFixture : public ::testing::Test {
 protected:
  RoiFixture()
      : data_(PackWithShell()),
        affinity_({.k = 1.0, .p = 2.0}),
        oracle_(data_, affinity_) {}

  // Converged dense subgraph of the pack, over the full range.
  Lid ConvergedLid() {
    Lid lid(oracle_, 0, {});
    IndexList all;
    for (Index i = 1; i < data_.size(); ++i) all.push_back(i);
    lid.UpdateRange(all);
    lid.Run();
    return lid;
  }

  Dataset data_;
  AffinityFunction affinity_;
  LazyAffinityOracle oracle_;
};

TEST_F(RoiFixture, InvalidOnEmptySupportOrZeroDensity) {
  EXPECT_FALSE(EstimateRoi(oracle_, {}, 0.5).valid);
  EXPECT_FALSE(EstimateRoi(oracle_, {{0, 1.0}}, 0.0).valid);
}

TEST_F(RoiFixture, CenterIsWeightedCentroid) {
  Roi roi = EstimateRoi(oracle_, {{0, 0.5}, {1, 0.5}}, 0.5);
  ASSERT_TRUE(roi.valid);
  for (int t = 0; t < 3; ++t) {
    EXPECT_NEAR(roi.center[t], 0.5 * (data_[0][t] + data_[1][t]), 1e-12);
  }
}

TEST_F(RoiFixture, OuterRadiusAtLeastInner) {
  Lid lid = ConvergedLid();
  Roi roi = EstimateRoi(oracle_, lid.SupportWeights(), lid.Density());
  ASSERT_TRUE(roi.valid);
  EXPECT_GE(roi.r_out, roi.r_in);
  EXPECT_GE(roi.r_in, 0.0);
}

TEST_F(RoiFixture, Proposition1InnerBall) {
  Lid lid = ConvergedLid();
  const auto sup = lid.SupportWeights();
  Roi roi = EstimateRoi(oracle_, sup, lid.Density());
  ASSERT_TRUE(roi.valid);
  // Property 1: every data item strictly inside the inner ball is infective:
  // pi(s_j, x) > pi(x).
  for (Index j = 0; j < data_.size(); ++j) {
    const Scalar dist = oracle_.DistanceTo(j, roi.center);
    if (dist < roi.r_in - 1e-9) {
      EXPECT_GT(lid.AverageAffinityTo(j), lid.Density() - 1e-9)
          << "inner-ball vertex " << j << " not infective";
    }
  }
}

TEST_F(RoiFixture, Proposition1OuterBall) {
  Lid lid = ConvergedLid();
  const auto sup = lid.SupportWeights();
  Roi roi = EstimateRoi(oracle_, sup, lid.Density());
  ASSERT_TRUE(roi.valid);
  // Property 2: every item strictly outside the outer ball is non-infective.
  for (Index j = 0; j < data_.size(); ++j) {
    const Scalar dist = oracle_.DistanceTo(j, roi.center);
    if (dist > roi.r_out + 1e-9) {
      EXPECT_LT(lid.AverageAffinityTo(j), lid.Density() + 1e-9)
          << "outside-outer-ball vertex " << j << " infective";
    }
  }
}

TEST(RoiThetaTest, LogisticScheduleShape) {
  // theta(c) is increasing and saturates at 1.
  EXPECT_LT(Roi::Theta(1), 0.05);
  EXPECT_GT(Roi::Theta(20), 0.95);
  for (int c = 1; c < 30; ++c) EXPECT_LT(Roi::Theta(c), Roi::Theta(c + 1));
}

TEST(RoiThetaTest, RadiusGrowsFromInnerToOuter) {
  Roi roi;
  roi.valid = true;
  roi.r_in = 1.0;
  roi.r_out = 3.0;
  EXPECT_NEAR(roi.RadiusAt(1), 1.0 + 2.0 * Roi::Theta(1), 1e-12);
  EXPECT_GT(roi.RadiusAt(30), 2.95);
  // The ablation switch jumps straight to the outer ball.
  EXPECT_DOUBLE_EQ(roi.RadiusAt(1, /*logistic_growth=*/false), 3.0);
}

// ------------------------------------------------------------------- CIVS --

class CivsFixture : public ::testing::Test {
 protected:
  CivsFixture() {
    SyntheticConfig cfg;
    cfg.n = 500;
    cfg.dim = 8;
    cfg.num_clusters = 4;
    cfg.regime = SyntheticRegime::kProportional;
    cfg.omega = 0.6;
    cfg.mean_box = 300.0;
    cfg.seed = 21;
    data_ = MakeSynthetic(cfg);
    affinity_ =
        std::make_unique<AffinityFunction>(AffinityParams{
            .k = data_.suggested_k, .p = 2.0});
    oracle_ = std::make_unique<LazyAffinityOracle>(data_.data, *affinity_);
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = data_.suggested_lsh_r;
    lsh_ = std::make_unique<LshIndex>(data_.data, lp);
  }

  Roi RoiAround(Index g, Scalar radius) {
    Roi roi;
    roi.valid = true;
    roi.center.assign(data_.data[g].begin(), data_.data[g].end());
    roi.r_in = radius;
    roi.r_out = radius;
    return roi;
  }

  LabeledData data_;
  std::unique_ptr<AffinityFunction> affinity_;
  std::unique_ptr<LazyAffinityOracle> oracle_;
  std::unique_ptr<LshIndex> lsh_;
};

TEST_F(CivsFixture, RetrievedItemsAreWithinRadiusAndNotSupport) {
  const Index seed = data_.true_clusters[0][0];
  const Scalar radius = 2.0 * data_.suggested_lsh_r;
  Roi roi = RoiAround(seed, radius);
  CivsOptions opts;
  IndexList got = CivsRetrieve(*oracle_, *lsh_, roi, radius, {{seed, 1.0}},
                               nullptr, opts);
  EXPECT_FALSE(got.empty());
  for (Index j : got) {
    EXPECT_NE(j, seed);
    EXPECT_LE(oracle_->DistanceTo(j, roi.center), radius + 1e-9);
  }
}

TEST_F(CivsFixture, FindsMostOfTheSeedCluster) {
  const Index seed = data_.true_clusters[0][0];
  const Scalar radius = 3.0 * data_.suggested_lsh_r;
  Roi roi = RoiAround(seed, radius);
  IndexList got =
      CivsRetrieve(*oracle_, *lsh_, roi, radius, {{seed, 1.0}}, nullptr, {});
  std::set<Index> set(got.begin(), got.end());
  int found = 0;
  for (Index j : data_.true_clusters[0]) {
    if (j != seed && set.count(j)) ++found;
  }
  EXPECT_GT(found, static_cast<int>(data_.true_clusters[0].size()) / 2);
}

TEST_F(CivsFixture, DeltaBudgetKeepsNearest) {
  const Index seed = data_.true_clusters[0][0];
  const Scalar radius = 3.0 * data_.suggested_lsh_r;
  Roi roi = RoiAround(seed, radius);
  CivsOptions small;
  small.delta = 5;
  IndexList got =
      CivsRetrieve(*oracle_, *lsh_, roi, radius, {{seed, 1.0}}, nullptr, small);
  EXPECT_LE(got.size(), 5u);
  // Sorted nearest-first.
  for (size_t t = 1; t < got.size(); ++t) {
    EXPECT_LE(oracle_->DistanceTo(got[t - 1], roi.center),
              oracle_->DistanceTo(got[t], roi.center) + 1e-12);
  }
}

TEST_F(CivsFixture, ExclusionMaskHidesPeeledItems) {
  const Index seed = data_.true_clusters[0][0];
  const Scalar radius = 3.0 * data_.suggested_lsh_r;
  Roi roi = RoiAround(seed, radius);
  std::vector<bool> peeled(data_.size(), false);
  for (Index j : data_.true_clusters[0]) {
    if (j != seed) peeled[j] = true;
  }
  IndexList got =
      CivsRetrieve(*oracle_, *lsh_, roi, radius, {{seed, 1.0}}, &peeled, {});
  for (Index j : got) EXPECT_FALSE(peeled[j]);
}

TEST_F(CivsFixture, AllSupportQueriesCoverMoreThanCenterQuery) {
  // The Fig. 4 motivation: multiple LSRs cover the ROI better than one.
  const IndexList& cluster = data_.true_clusters[1];
  std::vector<std::pair<Index, Scalar>> support;
  const int sup_n = 5;
  for (int i = 0; i < sup_n; ++i) {
    support.emplace_back(cluster[i], 1.0 / sup_n);
  }
  Roi roi;
  roi.valid = true;
  roi.center.assign(data_.data.dim(), 0.0);
  for (const auto& [g, w] : support) {
    for (int t = 0; t < data_.data.dim(); ++t) {
      roi.center[t] += w * data_.data[g][t];
    }
  }
  const Scalar radius = 3.0 * data_.suggested_lsh_r;
  CivsOptions all_sup;
  all_sup.query_from_all_support = true;
  CivsOptions center_only;
  center_only.query_from_all_support = false;
  IndexList a = CivsRetrieve(*oracle_, *lsh_, roi, radius, support, nullptr,
                             all_sup);
  IndexList b = CivsRetrieve(*oracle_, *lsh_, roi, radius, support, nullptr,
                             center_only);
  EXPECT_GE(a.size(), b.size());
}

}  // namespace
}  // namespace alid
