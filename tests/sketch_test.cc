// Tests of the support-sketch branch-and-bound filter and the incremental
// snapshot export: sketch-pruned absorb scoring is bit-identical to full
// scoring on the stream and the serving side (with the fast path proven
// engaged), incremental snapshots are deep-equal to from-scratch rebuilds
// every generation, and the refresh pass's frontier map stage speculates
// deterministically.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "core/support_sketch.h"
#include "data/synthetic.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 460, uint64_t seed = 91, bool overlap = false) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = overlap;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions Options(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  // Engage the sketch at small supports so the modest test workloads
  // exercise the fast path, not just large-a* production streams.
  opts.sketch.min_support = 16;
  return opts;
}

// The stream's arrival mix: the shuffled dataset followed by `probes`
// near-miss points — jittered copies of data rows at several magnitudes, so
// some collide with a cluster's LSH buckets while scoring far below its
// absorb threshold. Those are exactly the arrivals the sketch bound
// rejects.
std::vector<Scalar> ArrivalMix(const LabeledData& data, Index probes) {
  const int dim = data.data.dim();
  Rng rng(5);
  std::vector<Scalar> flat;
  for (Index i : rng.Permutation(data.size())) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  for (Index q = 0; q < probes; ++q) {
    const auto row =
        data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
    const double magnitude = (1 << (q % 5)) * 0.5;  // 0.5x .. 8x jitter
    for (int d = 0; d < dim; ++d) {
      flat.push_back(row[d] + rng.Gaussian() * magnitude);
    }
  }
  return flat;
}

std::unique_ptr<OnlineAlid> RunStream(const LabeledData& data,
                                      OnlineAlidOptions opts, Index batch,
                                      const std::vector<Scalar>& flat) {
  const int dim = data.data.dim();
  auto online = std::make_unique<OnlineAlid>(dim, opts);
  const Index count = static_cast<Index>(flat.size()) / dim;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    online->InsertBatch(std::span<const Scalar>(
        flat.data() + static_cast<size_t>(begin) * dim,
        static_cast<size_t>(size) * dim));
  }
  online->Refresh();
  return online;
}

// Full structural equality of two streams — including every counter the
// sketch filter must not perturb (sketch_prunes/sketch_exact are compared
// only when `same_sketch` is set: the on-vs-off harness expects them to
// differ, that being the point).
void ExpectIdenticalStreams(const OnlineAlid& a, const OnlineAlid& b,
                            bool same_sketch) {
  DetectionResult da, db;
  da.clusters = a.clusters();
  db.clusters = b.clusters();
  ExpectIdenticalDetections(da, db);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.alive(), b.alive());
  const Index slots = std::max(a.size(), Index{1});
  for (Index i = 0; i < slots; ++i) {
    EXPECT_EQ(a.IsAlive(i), b.IsAlive(i)) << "slot " << i;
    EXPECT_EQ(a.ClusterOf(i), b.ClusterOf(i)) << "slot " << i;
  }
  const StreamStats& sa = a.stats();
  const StreamStats& sb = b.stats();
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.absorbed, sb.absorbed);
  EXPECT_EQ(sa.pooled, sb.pooled);
  EXPECT_EQ(sa.evicted, sb.evicted);
  EXPECT_EQ(sa.redetections, sb.redetections);
  EXPECT_EQ(sa.refreshes, sb.refreshes);
  EXPECT_EQ(sa.clusters_born, sb.clusters_born);
  EXPECT_EQ(sa.clusters_dissolved, sb.clusters_dissolved);
  EXPECT_EQ(sa.refresh_rounds, sb.refresh_rounds);
  EXPECT_EQ(sa.refresh_speculations, sb.refresh_speculations);
  EXPECT_EQ(sa.refresh_conflicts, sb.refresh_conflicts);
  if (same_sketch) {
    EXPECT_EQ(sa.sketch_prunes, sb.sketch_prunes);
    EXPECT_EQ(sa.sketch_exact, sb.sketch_exact);
  }
}

TEST(SupportSketchTest, PrefixCoversMassWithDecreasingRestWeights) {
  // Concentrated weights: the prefix should stop early.
  std::vector<Scalar> weights(80, 0.2 / 77.0);
  weights[10] = 0.4;
  weights[40] = 0.3;
  weights[70] = 0.1;
  SupportSketchParams params;
  const SupportSketch sketch =
      BuildSupportSketch(std::span<const Scalar>(weights), params);
  ASSERT_TRUE(sketch.engaged());
  // Heaviest first, ties by position.
  EXPECT_EQ(sketch.ordinals[0], 10);
  EXPECT_EQ(sketch.ordinals[1], 40);
  EXPECT_EQ(sketch.ordinals[2], 70);
  ASSERT_EQ(sketch.weights.size(), sketch.rest_weights.size());
  Scalar prev_rest = 1.0;
  Scalar total = 0.0;
  for (Scalar w : weights) total += w;
  for (size_t t = 0; t < sketch.rest_weights.size(); ++t) {
    EXPECT_LT(sketch.rest_weights[t], prev_rest);
    prev_rest = sketch.rest_weights[t];
  }
  // The prefix stops as soon as it covers prefix_mass of the total, so the
  // final rest weight sits just under the (1 - prefix_mass) complement.
  EXPECT_LE(sketch.rest_weights.back(),
            (1.0 - params.prefix_mass) * total + 1e-12);
  EXPECT_LT(sketch.ordinals.size(), weights.size());  // and it IS a prefix
}

TEST(SupportSketchTest, DisengagesBelowMinSupportOrWhenDisabled) {
  std::vector<Scalar> weights(40, 1.0 / 40.0);
  SupportSketchParams params;  // min_support = 64 > 40
  EXPECT_FALSE(
      BuildSupportSketch(std::span<const Scalar>(weights), params).engaged());
  params.min_support = 8;
  EXPECT_TRUE(
      BuildSupportSketch(std::span<const Scalar>(weights), params).engaged());
  params.prefix_mass = 0.0;
  EXPECT_FALSE(
      BuildSupportSketch(std::span<const Scalar>(weights), params).engaged());
}

TEST(SupportSketchTest, TiesBreakByPositionAndRebuildsAreIdentical) {
  std::vector<Scalar> weights(100, 0.01);
  SupportSketchParams params;
  params.adaptive_mass = false;  // pin the fixed-mass prefix length
  const SupportSketch a =
      BuildSupportSketch(std::span<const Scalar>(weights), params);
  const SupportSketch b =
      BuildSupportSketch(std::span<const Scalar>(weights), params);
  ASSERT_TRUE(a.engaged());
  EXPECT_EQ(a.ordinals.size(), 90u);  // uniform: 90 members cover 0.9
  for (size_t t = 0; t < a.ordinals.size(); ++t) {
    EXPECT_EQ(a.ordinals[t], static_cast<Index>(t));  // ties -> position
  }
  EXPECT_EQ(a.ordinals, b.ordinals);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.rest_weights, b.rest_weights);
}

TEST(SupportSketchTest, AdaptiveMassDeepensFlatProfilesOnly) {
  SupportSketchParams params;  // adaptive_mass on by default
  ASSERT_TRUE(params.adaptive_mass);
  // Uniform weights are maximally flat (n_eff == n), so the effective mass
  // climbs to max_prefix_mass — deeper than the base 0.9 prefix, still a
  // strict prefix, still rebuilt identically.
  std::vector<Scalar> flat(100, 0.01);
  const SupportSketch deep =
      BuildSupportSketch(std::span<const Scalar>(flat), params);
  ASSERT_TRUE(deep.engaged());
  EXPECT_GT(deep.ordinals.size(), 90u);
  EXPECT_LT(deep.ordinals.size(), flat.size());
  const SupportSketch again =
      BuildSupportSketch(std::span<const Scalar>(flat), params);
  EXPECT_EQ(deep.ordinals, again.ordinals);
  EXPECT_EQ(deep.rest_weights, again.rest_weights);
  // A concentrated profile (n_eff ~ 4 of 80) keeps nearly the base mass:
  // the adaptive prefix barely moves relative to adaptive_mass = false.
  std::vector<Scalar> concentrated(80, 0.2 / 77.0);
  concentrated[10] = 0.4;
  concentrated[40] = 0.3;
  concentrated[70] = 0.1;
  SupportSketchParams fixed = params;
  fixed.adaptive_mass = false;
  const SupportSketch on =
      BuildSupportSketch(std::span<const Scalar>(concentrated), params);
  const SupportSketch off =
      BuildSupportSketch(std::span<const Scalar>(concentrated), fixed);
  ASSERT_TRUE(on.engaged());
  EXPECT_GE(on.ordinals.size(), off.ordinals.size());
  EXPECT_LE(on.ordinals.size(), off.ordinals.size() + 8);
}

TEST(SketchStreamTest, PrunedScoringBitIdenticalToFullScoring) {
  // The property the whole optimization rests on: streaming with the sketch
  // filter produces exactly the state streaming without it does — across a
  // batch x window x executor sweep — while the prune counters prove the
  // fast path actually ran.
  LabeledData data = Workload(420, 23, /*overlap=*/true);
  const std::vector<Scalar> flat = ArrivalMix(data, 120);
  int64_t total_prunes = 0;
  for (Index batch : {Index{23}, Index{64}}) {
    for (Index window : {Index{0}, Index{220}}) {
      for (int executors : {0, 4}) {
        std::unique_ptr<ThreadPool> pool;
        if (executors > 0) pool = std::make_unique<ThreadPool>(executors);
        OnlineAlidOptions on = Options(data);
        on.window = window;
        on.pool = pool.get();
        OnlineAlidOptions off = on;
        off.sketch.prefix_mass = 0.0;  // exact scoring everywhere
        SCOPED_TRACE(testing::Message() << "batch=" << batch << " window="
                                        << window << " executors="
                                        << executors);
        std::unique_ptr<OnlineAlid> with = RunStream(data, on, batch, flat);
        std::unique_ptr<OnlineAlid> without =
            RunStream(data, off, batch, flat);
        EXPECT_EQ(without->stats().sketch_prunes, 0);
        EXPECT_EQ(without->stats().sketch_exact, 0);
        total_prunes += with->stats().sketch_prunes;
        ExpectIdenticalStreams(*with, *without, /*same_sketch=*/false);
      }
    }
  }
  // The sweep must exercise the fast path, or the equality above proves
  // nothing about the bound.
  EXPECT_GT(total_prunes, 0);
}

TEST(SketchStreamTest, SketchCountersDeterministicAcrossExecutors) {
  LabeledData data = Workload(380, 7, /*overlap=*/true);
  const std::vector<Scalar> flat = ArrivalMix(data, 80);
  OnlineAlidOptions opts = Options(data);
  opts.window = 240;
  std::unique_ptr<OnlineAlid> serial = RunStream(data, opts, 31, flat);
  for (int executors : {2, 8}) {
    ThreadPool pool(executors);
    OnlineAlidOptions parallel = opts;
    parallel.pool = &pool;
    std::unique_ptr<OnlineAlid> streamed = RunStream(data, parallel, 31, flat);
    SCOPED_TRACE(testing::Message() << "executors=" << executors);
    ExpectIdenticalStreams(*serial, *streamed, /*same_sketch=*/true);
  }
}

TEST(SketchServeTest, AssignAndTopKBitIdenticalWithSketchOnOrOff) {
  LabeledData data = Workload(440, 29, /*overlap=*/true);
  const std::vector<Scalar> flat = ArrivalMix(data, 0);
  OnlineAlidOptions opts = Options(data);
  std::unique_ptr<OnlineAlid> online = RunStream(data, opts, 64, flat);
  ASSERT_GT(online->clusters().size(), 1u);

  const auto with = ClusterSnapshot::FromStream(*online);
  ClusterSnapshotOptions off_options;
  off_options.affinity = opts.affinity;
  off_options.lsh = opts.lsh;
  off_options.absorb_slack = opts.absorb_slack;
  off_options.sketch.prefix_mass = 0.0;
  const auto without = ClusterSnapshot::FromClusters(
      online->oracle().data(), online->clusters(), off_options,
      static_cast<uint64_t>(online->size()));

  const int dim = data.data.dim();
  Rng rng(11);
  int64_t prunes = 0;
  for (int q = 0; q < 600; ++q) {
    std::vector<Scalar> point(dim);
    if (q % 6 == 5) {
      for (int d = 0; d < dim; ++d) point[d] = rng.Uniform(-900.0, 900.0);
    } else {
      // Jitter sweep through the collide-but-fail band (the prune region
      // sits between "absorbs" and "no LSH collision at all").
      const auto row =
          data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
      const double magnitude = 2.0 * (q % 5);  // 0, 2, 4, 6, 8
      for (int d = 0; d < dim; ++d) {
        point[d] = row[d] + rng.Gaussian() * magnitude;
      }
    }
    const AssignOutcome a = with->Assign(point);
    const AssignOutcome b = without->Assign(point);
    EXPECT_EQ(a.cluster, b.cluster) << "query " << q;
    EXPECT_EQ(a.affinity, b.affinity) << "query " << q;
    EXPECT_EQ(a.margin, b.margin) << "query " << q;
    EXPECT_EQ(b.sketch_prunes, 0);
    prunes += a.sketch_prunes;
    for (int k : {1, 3, 8}) {
      const auto ta = with->TopKClusters(point, k);
      const auto tb = without->TopKClusters(point, k);
      ASSERT_EQ(ta.size(), tb.size()) << "query " << q << " k=" << k;
      for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].cluster, tb[i].cluster) << "query " << q;
        EXPECT_EQ(ta[i].affinity, tb[i].affinity) << "query " << q;
        EXPECT_EQ(ta[i].absorbable, tb[i].absorbable) << "query " << q;
      }
    }
  }
  EXPECT_GT(prunes, 0) << "the serve fast path never engaged";
}

// Streams `data` while publishing a chained incremental snapshot and a
// from-scratch snapshot every batch, deep-comparing the two; returns the
// total rows the incremental chain re-used. Phase 2 (after the dataset is
// exhausted) feeds batches localized around one planted cluster — the
// steady-state shape where ingest leaves most clusters untouched.
void RunIncrementalVsScratch(const LabeledData& data, Index window,
                             int64_t* rows_reused_out) {
  OnlineAlidOptions opts = Options(data);
  opts.window = window;
  const int dim = data.data.dim();
  OnlineAlid online(dim, opts);
  Rng rng(5);
  const auto order = rng.Permutation(data.size());

  // Fixed probe set for answer-level equality.
  std::vector<std::vector<Scalar>> probes;
  Rng probe_rng(13);
  for (int q = 0; q < 40; ++q) {
    std::vector<Scalar> p(dim);
    const auto row = data.data[static_cast<Index>(
        probe_rng.UniformInt(0, data.size() - 1))];
    for (int d = 0; d < dim; ++d) {
      p[d] = row[d] + probe_rng.Gaussian() * 0.3;
    }
    probes.push_back(std::move(p));
  }

  std::shared_ptr<const ClusterSnapshot> incremental;
  int64_t rows_reused = 0;
  Index pos = 0;
  const Index batch = 40;
  int localized = 0;
  Rng jitter_rng(29);
  while (pos < data.size() || localized < 6) {
    std::vector<Scalar> flat;
    if (pos < data.size()) {
      const Index end = std::min<Index>(pos + batch, data.size());
      for (; pos < end; ++pos) {
        const auto row = data.data[order[pos]];
        flat.insert(flat.end(), row.begin(), row.end());
      }
    } else {
      ++localized;
      const IndexList& burst = data.true_clusters[0];
      for (int q = 0; q < 30; ++q) {
        const auto row = data.data[burst[static_cast<size_t>(
            jitter_rng.UniformInt(0, static_cast<int>(burst.size()) - 1))]];
        for (int d = 0; d < dim; ++d) {
          flat.push_back(row[d] + jitter_rng.Gaussian() * 0.2);
        }
      }
    }
    online.InsertBatch(flat);
    incremental = ClusterSnapshot::FromStream(online, nullptr, incremental);
    const auto scratch = ClusterSnapshot::FromStream(online);
    SCOPED_TRACE(testing::Message() << "generation " << online.size());

    EXPECT_EQ(scratch->build_info().rows_reused, 0);
    EXPECT_EQ(scratch->build_info().clusters_reused, 0);
    rows_reused += incremental->build_info().rows_reused;

    ASSERT_EQ(incremental->num_clusters(), scratch->num_clusters());
    ASSERT_EQ(incremental->num_members(), scratch->num_members());
    EXPECT_EQ(incremental->generation(), scratch->generation());
    for (int c = 0; c < scratch->num_clusters(); ++c) {
      const ClusterSnapshotInfo a = incremental->ClusterInfo(c);
      const ClusterSnapshotInfo b = scratch->ClusterInfo(c);
      EXPECT_EQ(a.members, b.members) << "cluster " << c;
      EXPECT_EQ(a.weights, b.weights) << "cluster " << c;
      EXPECT_EQ(a.density, b.density) << "cluster " << c;
      EXPECT_EQ(a.verified_density, b.verified_density) << "cluster " << c;
      EXPECT_EQ(a.seed, b.seed) << "cluster " << c;
      const auto sa = incremental->sketch(c);
      const auto sb = scratch->sketch(c);
      ASSERT_EQ(sa.members.size(), sb.members.size()) << "cluster " << c;
      for (size_t t = 0; t < sa.members.size(); ++t) {
        EXPECT_EQ(sa.members[t], sb.members[t]) << "cluster " << c;
        EXPECT_EQ(sa.weights[t], sb.weights[t]) << "cluster " << c;
        EXPECT_EQ(sa.rest_weights[t], sb.rest_weights[t]) << "cluster " << c;
      }
    }
    for (size_t q = 0; q < probes.size(); ++q) {
      const AssignOutcome a = incremental->Assign(probes[q]);
      const AssignOutcome b = scratch->Assign(probes[q]);
      EXPECT_EQ(a.cluster, b.cluster) << "probe " << q;
      EXPECT_EQ(a.affinity, b.affinity) << "probe " << q;
      EXPECT_EQ(a.margin, b.margin) << "probe " << q;
      const auto ta = incremental->TopKClusters(probes[q], 4);
      const auto tb = scratch->TopKClusters(probes[q], 4);
      ASSERT_EQ(ta.size(), tb.size()) << "probe " << q;
      for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].cluster, tb[i].cluster) << "probe " << q;
        EXPECT_EQ(ta[i].affinity, tb[i].affinity) << "probe " << q;
      }
    }
  }
  *rows_reused_out = rows_reused;
}

TEST(SketchSnapshotTest, IncrementalExportDeepEqualsFromScratch) {
  // Every generation, the incremental export (chained on its predecessor)
  // must be indistinguishable from a from-scratch rebuild: same clusters,
  // rows, weights, verified densities, sketches and answers — and the
  // steady-state phase must actually re-use, or the publish optimization
  // silently lost itself.
  LabeledData data = Workload(420, 17);
  int64_t rows_reused = 0;
  RunIncrementalVsScratch(data, /*window=*/0, &rows_reused);
  EXPECT_GT(rows_reused, 0);
}

TEST(SketchSnapshotTest, IncrementalExportDeepEqualsFromScratchUnderWindow) {
  // The windowed variant churns every cluster through expiry repairs and
  // slot re-use — the case where serving a stale inherited row would be
  // catastrophic. Deep equality every generation is the regression net;
  // re-use is not required here (expiry may legitimately touch everything).
  LabeledData data = Workload(420, 17);
  int64_t rows_reused = 0;
  RunIncrementalVsScratch(data, /*window=*/260, &rows_reused);
}

TEST(SketchSnapshotTest, ReuseRequiresCompatibleParameters) {
  // A snapshot built under different scoring parameters must never donate
  // its blocks, even when the stream state did not move.
  LabeledData data = Workload(300, 3);
  OnlineAlidOptions opts = Options(data);
  std::unique_ptr<OnlineAlid> online =
      RunStream(data, opts, 64, ArrivalMix(data, 0));
  const auto first = ClusterSnapshot::FromStream(*online);
  // Same stream, unchanged state: everything re-uses.
  const auto second = ClusterSnapshot::FromStream(*online, nullptr, first);
  EXPECT_EQ(second->build_info().clusters_reused,
            second->build_info().clusters_total);
  EXPECT_EQ(second->build_info().rows_rebuilt, 0);
  // A predecessor with a different absorb slack is rejected wholesale.
  OnlineAlidOptions other = opts;
  other.absorb_slack = opts.absorb_slack / 2;
  std::unique_ptr<OnlineAlid> online2 =
      RunStream(data, other, 64, ArrivalMix(data, 0));
  const auto incompatible =
      ClusterSnapshot::FromStream(*online2, nullptr, first);
  EXPECT_EQ(incompatible->build_info().clusters_reused, 0);
}

TEST(SketchStreamTest, ParallelRefreshSpeculatesAndStaysDeterministic) {
  // A large unassigned pool at refresh time drives the frontier past 1, so
  // the map stage actually speculates — and the streamed state must still
  // be bit-identical across executor counts.
  LabeledData data = Workload(480, 41);
  OnlineAlidOptions opts = Options(data);
  opts.refresh_interval = 400;  // let the pool grow before the first pass
  const std::vector<Scalar> flat = ArrivalMix(data, 40);
  std::unique_ptr<OnlineAlid> serial = RunStream(data, opts, 80, flat);
  EXPECT_GT(serial->stats().refresh_rounds, 0);
  EXPECT_GT(serial->stats().refresh_speculations, 0);
  for (int executors : {2, 8}) {
    ThreadPool pool(executors);
    OnlineAlidOptions parallel = opts;
    parallel.pool = &pool;
    std::unique_ptr<OnlineAlid> streamed = RunStream(data, parallel, 80, flat);
    SCOPED_TRACE(testing::Message() << "executors=" << executors);
    ExpectIdenticalStreams(*serial, *streamed, /*same_sketch=*/true);
  }
  // frontier = 1 pins the strictly-serial peel; the pool contents it
  // produces may differ from the speculative schedule's, but it must be
  // self-consistent across executors too.
  OnlineAlidOptions pinned = opts;
  pinned.refresh_frontier = 1;
  std::unique_ptr<OnlineAlid> pinned_serial = RunStream(data, pinned, 80, flat);
  EXPECT_EQ(pinned_serial->stats().refresh_speculations, 0);
  ThreadPool pool(4);
  pinned.pool = &pool;
  std::unique_ptr<OnlineAlid> pinned_parallel =
      RunStream(data, pinned, 80, flat);
  ExpectIdenticalStreams(*pinned_serial, *pinned_parallel,
                         /*same_sketch=*/true);
}

TEST(SketchServeTest, ServerSurfacesSketchAndPublishTelemetry) {
  LabeledData data = Workload(380, 59, /*overlap=*/true);
  OnlineAlidOptions opts = Options(data);
  std::unique_ptr<OnlineAlid> online =
      RunStream(data, opts, 64, ArrivalMix(data, 0));
  const int dim = data.data.dim();
  ClusterServer server(dim);
  const auto first = ClusterSnapshot::FromStream(*online);
  server.Publish(first);
  server.Publish(ClusterSnapshot::FromStream(*online, nullptr, first));
  const ServeStatsView after_publish = server.stats();
  EXPECT_EQ(after_publish.snapshots_published, 2);
  EXPECT_EQ(after_publish.publish_seconds.size(), 2u);
  EXPECT_GT(after_publish.rows_reused, 0);
  EXPECT_GT(after_publish.clusters_reused, 0);
  // The incremental second publish shared its unchanged clusters' arena
  // blocks instead of copying them; the from-scratch first copied all.
  EXPECT_GT(after_publish.bytes_shared, 0);
  EXPECT_GT(after_publish.bytes_copied, 0);
  EXPECT_EQ(after_publish.generations_retained, 1);

  Rng rng(3);
  for (int q = 0; q < 400; ++q) {
    std::vector<Scalar> point(dim);
    const auto row =
        data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
    const double magnitude = (1 << (q % 4)) * 0.5;
    for (int d = 0; d < dim; ++d) {
      point[d] = row[d] + rng.Gaussian() * magnitude;
    }
    server.Query({.points = point});
  }
  const ServeStatsView view = server.stats();
  EXPECT_GT(view.sketch_prunes + view.sketch_exact, 0);
  server.ResetStats();
  const ServeStatsView reset = server.stats();
  EXPECT_EQ(reset.sketch_prunes, 0);
  EXPECT_EQ(reset.rows_reused, 0);
  EXPECT_EQ(reset.bytes_shared, 0);
  EXPECT_TRUE(reset.publish_seconds.empty());
}

}  // namespace
}  // namespace alid
