// Tests of the partitioning baselines of Appendix C: k-means, spectral
// clustering (full + Nystrom) and mean shift.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "baselines/spectral.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

// Clean well-separated blobs (no noise) for the partitioners.
LabeledData CleanBlobs(Index n = 240, int clusters = 3, uint64_t seed = 5) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 8;
  cfg.num_clusters = clusters;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 1.0;  // all ground truth, no noise
  cfg.mean_box = 400.0;
  cfg.overlap_clusters = false;  // partitioners assume separated blobs
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

double LabelAgreement(const std::vector<int>& labels,
                      const LabeledData& data) {
  return AverageF1(data.true_clusters, LabelsToClusters(labels));
}

// ----------------------------------------------------------------- KMeans --

TEST(KMeansTest, PerfectOnSeparatedBlobs) {
  LabeledData data = CleanBlobs();
  KMeansResult r = RunKMeans(data.data, 3);
  EXPECT_GT(LabelAgreement(r.labels, data), 0.95);
}

TEST(KMeansTest, SseDecreasesWithMoreClusters) {
  LabeledData data = CleanBlobs();
  KMeansOptions opts;
  opts.restarts = 3;
  const Scalar sse2 = RunKMeans(data.data, 2, opts).sse;
  const Scalar sse6 = RunKMeans(data.data, 6, opts).sse;
  EXPECT_LT(sse6, sse2);
}

TEST(KMeansTest, LabelsInRange) {
  LabeledData data = CleanBlobs();
  KMeansResult r = RunKMeans(data.data, 4);
  for (int l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  EXPECT_EQ(r.centers.size(), 4);
}

TEST(KMeansTest, SingleClusterCenterIsCentroid) {
  Dataset d(1, {0.0, 2.0, 4.0});
  KMeansResult r = RunKMeans(d, 1);
  EXPECT_NEAR(r.centers[0][0], 2.0, 1e-9);
}

TEST(KMeansTest, DeterministicWithFixedSeed) {
  LabeledData data = CleanBlobs();
  KMeansResult a = RunKMeans(data.data, 3);
  KMeansResult b = RunKMeans(data.data, 3);
  EXPECT_EQ(a.labels, b.labels);
}

// --------------------------------------------------------------- Spectral --

TEST(SpectralTest, FullRecoverseparatedBlobs) {
  LabeledData data = CleanBlobs(180);
  SpectralOptions opts;
  opts.num_clusters = 3;
  SpectralResult r = SpectralClusterFull(data.data,
      AffinityFunction({.k = data.suggested_k, .p = 2.0}), opts);
  EXPECT_GT(LabelAgreement(r.labels, data), 0.9);
}

TEST(SpectralTest, NystromRecoversSeparatedBlobs) {
  LabeledData data = CleanBlobs(180);
  SpectralOptions opts;
  opts.num_clusters = 3;
  opts.nystrom_landmarks = 60;
  SpectralResult r = SpectralClusterNystrom(
      data.data, AffinityFunction({.k = data.suggested_k, .p = 2.0}), opts);
  EXPECT_GT(LabelAgreement(r.labels, data), 0.85);
}

TEST(SpectralTest, NystromMatchesFullOnCleanData) {
  LabeledData data = CleanBlobs(150, 2);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  SpectralOptions opts;
  opts.num_clusters = 2;
  opts.nystrom_landmarks = 50;
  const double f_full =
      LabelAgreement(SpectralClusterFull(data.data, f, opts).labels, data);
  const double f_nys =
      LabelAgreement(SpectralClusterNystrom(data.data, f, opts).labels, data);
  EXPECT_NEAR(f_full, f_nys, 0.15);
}

TEST(SpectralTest, LabelCountMatchesK) {
  LabeledData data = CleanBlobs(120);
  SpectralOptions opts;
  opts.num_clusters = 3;
  SpectralResult r = SpectralClusterFull(
      data.data, AffinityFunction({.k = data.suggested_k, .p = 2.0}), opts);
  std::set<int> distinct(r.labels.begin(), r.labels.end());
  EXPECT_LE(distinct.size(), 3u);
  EXPECT_GE(distinct.size(), 2u);
}

// -------------------------------------------------------------- MeanShift --

TEST(MeanShiftTest, FindsModesOfSeparatedBlobs) {
  LabeledData data = CleanBlobs(150);
  MeanShiftResult r = RunMeanShift(data.data);
  EXPECT_GT(LabelAgreement(r.labels, data), 0.9);
}

TEST(MeanShiftTest, ModeCountReasonable) {
  LabeledData data = CleanBlobs(150);
  MeanShiftResult r = RunMeanShift(data.data);
  EXPECT_GE(r.modes.size(), 3);
  EXPECT_LE(r.modes.size(), 30);
}

TEST(MeanShiftTest, ExplicitBandwidthRespected) {
  // A huge bandwidth merges everything into one mode.
  LabeledData data = CleanBlobs(100);
  MeanShiftOptions opts;
  opts.bandwidth = 1e4;
  MeanShiftResult r = RunMeanShift(data.data, opts);
  EXPECT_EQ(r.modes.size(), 1);
}

TEST(MeanShiftTest, SubsampledAscentsAssignEveryone) {
  LabeledData data = CleanBlobs(200);
  MeanShiftOptions opts;
  opts.max_ascents = 40;
  MeanShiftResult r = RunMeanShift(data.data, opts);
  for (int l : r.labels) EXPECT_GE(l, 0);
}

// Property sweep: k-means quality depends on getting K right — feeding the
// wrong K on noisy data is the Appendix C failure mode.
class KMeansKProperty : public ::testing::TestWithParam<int> {};

TEST_P(KMeansKProperty, QualityPeaksAtTrueK) {
  SyntheticConfig cfg;
  cfg.n = 300;
  cfg.dim = 8;
  cfg.num_clusters = 3;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.5;  // half noise
  cfg.mean_box = 400.0;
  cfg.seed = 77;
  LabeledData data = MakeSynthetic(cfg);
  KMeansOptions opts;
  opts.restarts = 2;
  const int k = GetParam();
  KMeansResult r = RunKMeans(data.data, k, opts);
  const double f = LabelAgreement(r.labels, data);
  if (k == 4) {
    // True clusters + 1 noise bucket (the Liu et al. protocol): decent F1.
    EXPECT_GT(f, 0.5);
  } else if (k == 1) {
    EXPECT_LT(f, 0.6);
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, KMeansKProperty,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace alid
