// Contracts of the adversarial stream scenario generators
// (bench/scenarios.h): seed-determinism, batch-order stability (a batch is
// a pure function of (config, batch_index) — no generator state threads
// across batches), the shapes each scenario promises (linear drift walk,
// storm-phased burst lifetimes, Zipf head mass), and the end-to-end burst
// property the bench reports on: streaming the burst scenario through a
// windowed OnlineAlid provably churns clusters (births AND dissolutions).
#include "scenarios.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/online_alid.h"

namespace alid::bench {
namespace {

TEST(ScenarioTest, DriftIsSeedDeterministic) {
  DriftScenarioConfig config;
  for (int t : {0, 3, 17}) {
    const ScenarioBatch a = DriftBatch(config, t);
    const ScenarioBatch b = DriftBatch(config, t);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.noise_rows, b.noise_rows);
    EXPECT_EQ(a.points, b.points) << "batch " << t;
  }
  DriftScenarioConfig other = config;
  other.seed += 1;
  EXPECT_NE(DriftBatch(config, 5).points, DriftBatch(other, 5).points);
}

TEST(ScenarioTest, BurstIsSeedDeterministic) {
  BurstScenarioConfig config;
  for (int t : {0, 7, 30}) {
    EXPECT_EQ(BurstBatch(config, t).points, BurstBatch(config, t).points);
  }
}

TEST(ScenarioTest, HeavyTailIsSeedDeterministic) {
  HeavyTailScenarioConfig config;
  for (int t : {0, 9, 25}) {
    EXPECT_EQ(HeavyTailBatch(config, t).points,
              HeavyTailBatch(config, t).points);
  }
}

// Batch k computed cold must equal batch k computed after a sequential
// sweep: nothing about a batch may depend on which batches were generated
// before it (the registry may run --filter subsets, shards, or warmup
// passes in any order).
TEST(ScenarioTest, BatchesAreOrderStable) {
  DriftScenarioConfig drift;
  BurstScenarioConfig burst;
  HeavyTailScenarioConfig tail;
  const ScenarioBatch drift_cold = DriftBatch(drift, 12);
  const ScenarioBatch burst_cold = BurstBatch(burst, 12);
  const ScenarioBatch tail_cold = HeavyTailBatch(tail, 12);
  for (int t = 0; t <= 12; ++t) {
    DriftBatch(drift, t);
    BurstBatch(burst, t);
    HeavyTailBatch(tail, t);
  }
  EXPECT_EQ(DriftBatch(drift, 12).points, drift_cold.points);
  EXPECT_EQ(BurstBatch(burst, 12).points, burst_cold.points);
  EXPECT_EQ(HeavyTailBatch(tail, 12).points, tail_cold.points);
}

TEST(ScenarioTest, DriftCentersWalkLinearly) {
  DriftScenarioConfig config;
  for (int c = 0; c < config.num_clusters; ++c) {
    const std::vector<Scalar> at0 = DriftCenterAt(config, c, 0);
    const std::vector<Scalar> at1 = DriftCenterAt(config, c, 1);
    const std::vector<Scalar> at9 = DriftCenterAt(config, c, 9);
    double step = 0.0;
    double nine = 0.0;
    for (int d = 0; d < config.dim; ++d) {
      step += (at1[d] - at0[d]) * (at1[d] - at0[d]);
      nine += (at9[d] - at0[d]) * (at9[d] - at0[d]);
    }
    EXPECT_NEAR(std::sqrt(step), config.drift_per_batch, 1e-6);
    EXPECT_NEAR(std::sqrt(nine), 9.0 * config.drift_per_batch, 1e-6);
  }
}

TEST(ScenarioTest, BurstSlotsLiveForLifetimeBatchesPerPeriod) {
  BurstScenarioConfig config;
  for (int s = 0; s < config.num_slots; ++s) {
    int first_live = -1;
    for (int t = 0; t < config.period && first_live < 0; ++t) {
      if (BurstSlotLiveAt(config, s, t)) first_live = t;
    }
    ASSERT_GE(first_live, 0) << "slot " << s;
    // Phase-aligned window of two full periods: exactly two generations.
    int live = 0;
    for (int t = first_live; t < first_live + 2 * config.period; ++t) {
      if (BurstSlotLiveAt(config, s, t)) ++live;
    }
    EXPECT_EQ(live, 2 * config.lifetime) << "slot " << s;
    // The generation index advances once per period.
    int generation = -1;
    ASSERT_TRUE(
        BurstSlotLiveAt(config, s, first_live + config.period, &generation));
    EXPECT_EQ(generation, 1);
  }
}

TEST(ScenarioTest, HeavyTailHeadDominates) {
  HeavyTailScenarioConfig config;
  double total = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    total += HeavyTailClusterProbability(config, c);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(HeavyTailClusterProbability(config, 0),
            10.0 * HeavyTailClusterProbability(config, config.num_clusters - 1));

  // The realized batch composition tracks the head mass.
  const ScenarioBatch batch = HeavyTailBatch(config, 0);
  EXPECT_EQ(batch.rows,
            config.points_per_batch +
                static_cast<Index>(config.noise_fraction *
                                   static_cast<double>(
                                       config.points_per_batch)));
  EXPECT_GT(batch.active_sources, 1);
  EXPECT_LT(batch.active_sources, config.num_clusters);
}

TEST(ScenarioTest, EmbeddingIsSeedDeterministicAndOrderStable) {
  EmbeddingScenarioConfig config;
  const ScenarioBatch cold = EmbeddingBatch(config, 12);
  for (int t : {0, 5, 12}) {
    EXPECT_EQ(EmbeddingBatch(config, t).points,
              EmbeddingBatch(config, t).points);
  }
  for (int t = 0; t <= 12; ++t) EmbeddingBatch(config, t);
  EXPECT_EQ(EmbeddingBatch(config, 12).points, cold.points);
  EmbeddingScenarioConfig other = config;
  other.seed += 1;
  EXPECT_NE(EmbeddingBatch(config, 3).points,
            EmbeddingBatch(other, 3).points);
}

TEST(ScenarioTest, EmbeddingBasisIsOrthonormal) {
  EmbeddingScenarioConfig config;
  const std::vector<Scalar> basis = EmbeddingBasis(config);
  ASSERT_EQ(basis.size(), static_cast<size_t>(config.manifold_dim) *
                              static_cast<size_t>(config.dim));
  for (int j = 0; j < config.manifold_dim; ++j) {
    for (int k = j; k < config.manifold_dim; ++k) {
      double dot = 0.0;
      for (int d = 0; d < config.dim; ++d) {
        dot += basis[static_cast<size_t>(j) * config.dim + d] *
               basis[static_cast<size_t>(k) * config.dim + d];
      }
      EXPECT_NEAR(dot, j == k ? 1.0 : 0.0, 1e-9) << j << "," << k;
    }
  }
  EXPECT_EQ(EmbeddingBasis(config), basis);  // pure in the config
}

// Cluster members live near the manifold: removing the span of the basis
// leaves only the ambient jitter, and the scatter along axis 0 of the
// manifold is anisotropy-times wider than along the last axis.
TEST(ScenarioTest, EmbeddingBatchesAreAnisotropicAndNearTheManifold) {
  EmbeddingScenarioConfig config;
  config.points_per_batch = 400;
  config.noise_fraction = 0.0;  // isolate the cluster geometry
  const std::vector<Scalar> basis = EmbeddingBasis(config);
  const ScenarioBatch batch = EmbeddingBatch(config, 0);
  ASSERT_EQ(batch.rows, config.points_per_batch);

  std::vector<double> axis_sq(config.manifold_dim, 0.0);
  std::vector<int> axis_n(config.manifold_dim, 0);
  double residual_sq = 0.0;
  for (Index i = 0; i < batch.rows; ++i) {
    const int c = static_cast<int>(i % config.num_clusters);
    const std::vector<Scalar> center = EmbeddingCenterAt(config, c);
    std::vector<double> delta(config.dim);
    for (int d = 0; d < config.dim; ++d) {
      delta[d] = batch.points[static_cast<size_t>(i) * config.dim + d] -
                 center[d];
    }
    // Project the offset onto each manifold axis; the remainder is the
    // off-manifold residual.
    for (int j = 0; j < config.manifold_dim; ++j) {
      double coord = 0.0;
      for (int d = 0; d < config.dim; ++d) {
        coord += delta[d] * basis[static_cast<size_t>(j) * config.dim + d];
      }
      axis_sq[j] += coord * coord;
      ++axis_n[j];
      for (int d = 0; d < config.dim; ++d) {
        delta[d] -= coord * basis[static_cast<size_t>(j) * config.dim + d];
      }
    }
    for (int d = 0; d < config.dim; ++d) residual_sq += delta[d] * delta[d];
  }
  const double wide = std::sqrt(axis_sq[0] / axis_n[0]);
  const double narrow = std::sqrt(axis_sq[config.manifold_dim - 1] /
                                  axis_n[config.manifold_dim - 1]);
  EXPECT_NEAR(wide, EmbeddingAxisScale(config, 0), 0.25 * wide);
  EXPECT_GT(wide, 3.0 * narrow);  // anisotropy = 8 with sampling slack
  // Per-dimension residual stddev ~ ambient_noise * spread.
  const double residual_rms = std::sqrt(
      residual_sq / (static_cast<double>(batch.rows) *
                     (config.dim - config.manifold_dim)));
  EXPECT_LT(residual_rms, 3.0 * config.ambient_noise * config.spread);
  EXPECT_GT(residual_rms, 0.0);
}

// The property the burst bench reports on: streamed through a windowed
// OnlineAlid, the generation storms force real cluster churn — clusters are
// born AND dissolved, not merely accumulated.
TEST(ScenarioTest, BurstStreamChurnsClusters) {
  BurstScenarioConfig config;
  config.points_per_slot = 16;
  const int num_batches = 30;

  const double intra =
      std::sqrt(2.0 * static_cast<double>(config.dim)) * config.spread;
  OnlineAlidOptions opts;
  opts.affinity = {.k = -std::log(0.9) / intra, .p = 2.0};
  opts.lsh.segment_length = 3.0 * intra;
  opts.window = static_cast<Index>(config.num_slots * config.points_per_slot *
                                   config.lifetime * 3 / 2);
  OnlineAlid online(config.dim, opts);
  for (int t = 0; t < num_batches; ++t) {
    const ScenarioBatch batch = BurstBatch(config, t);
    if (batch.rows > 0) online.InsertBatch(batch.points);
  }
  online.Refresh();
  EXPECT_GT(online.stats().clusters_born, 0);
  EXPECT_GT(online.stats().clusters_dissolved, 0);
  EXPECT_GT(online.stats().evicted, 0);
}

}  // namespace
}  // namespace alid::bench
