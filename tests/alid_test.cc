// End-to-end tests of the ALID detector (Algorithm 2 + peeling).
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/alid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

struct Harness {
  explicit Harness(const LabeledData& labeled, AlidOptions opts = {}) {
    affinity = std::make_unique<AffinityFunction>(
        AffinityParams{.k = labeled.suggested_k, .p = 2.0});
    oracle = std::make_unique<LazyAffinityOracle>(labeled.data, *affinity);
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = labeled.suggested_lsh_r;
    lsh = std::make_unique<LshIndex>(labeled.data, lp);
    detector = std::make_unique<AlidDetector>(*oracle, *lsh, opts);
  }
  std::unique_ptr<AffinityFunction> affinity;
  std::unique_ptr<LazyAffinityOracle> oracle;
  std::unique_ptr<LshIndex> lsh;
  std::unique_ptr<AlidDetector> detector;
};

LabeledData SmallWorkload(Index n = 600, uint64_t seed = 4) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 12;
  cfg.num_clusters = 4;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.6;  // 60% ground truth, 40% noise
  cfg.mean_box = 300.0;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

TEST(AlidDetectorTest, DetectOneFindsTheSeedCluster) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  const Index seed = data.true_clusters[0][0];
  Cluster c = h.detector->DetectOne(seed);
  EXPECT_GT(c.density, 0.5);
  // Most members belong to the seed's true cluster.
  std::set<Index> truth(data.true_clusters[0].begin(),
                        data.true_clusters[0].end());
  int hits = 0;
  for (Index g : c.members) hits += truth.count(g) != 0;
  EXPECT_GT(static_cast<double>(hits) / c.members.size(), 0.9);
  EXPECT_GT(static_cast<double>(hits) / truth.size(), 0.7);
}

TEST(AlidDetectorTest, ClusterWeightsAreSimplex) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  Cluster c = h.detector->DetectOne(data.true_clusters[1][0]);
  Scalar sum = 0.0;
  for (Scalar w : c.weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(c.members.begin(), c.members.end()));
}

TEST(AlidDetectorTest, NoiseSeedYieldsLowDensityCluster) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  // Find a noise item.
  Index noise_seed = -1;
  for (Index i = 0; i < data.size(); ++i) {
    if (data.labels[i] < 0) {
      noise_seed = i;
      break;
    }
  }
  ASSERT_GE(noise_seed, 0);
  Cluster c = h.detector->DetectOne(noise_seed);
  EXPECT_LT(c.density, h.detector->options().density_threshold);
}

TEST(AlidDetectorTest, DetectAllCoversEveryItemExactlyOnce) {
  LabeledData data = SmallWorkload(400);
  Harness h(data);
  DetectionResult all = h.detector->DetectAll();
  std::vector<int> seen(data.size(), 0);
  for (const Cluster& c : all.clusters) {
    for (Index g : c.members) ++seen[g];
  }
  for (Index i = 0; i < data.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "item " << i << " peeled " << seen[i] << " times";
  }
}

TEST(AlidDetectorTest, FilteredKeepsOnlyDenseClusters) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  DetectionResult all = h.detector->DetectAll();
  DetectionResult kept = all.Filtered(0.75);
  EXPECT_LT(kept.clusters.size(), all.clusters.size());
  for (const Cluster& c : kept.clusters) {
    EXPECT_GE(c.density, 0.75);
    EXPECT_GE(c.members.size(), 2u);
  }
}

TEST(AlidDetectorTest, RecoversAllPlantedClusters) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  DetectionResult result = h.detector->DetectAll().Filtered(0.75);
  const double avg_f = AverageF1(data.true_clusters, result);
  EXPECT_GT(avg_f, 0.85) << "AVG-F too low on a clean synthetic workload";
}

TEST(AlidDetectorTest, ExcludeMaskKeepsPeeledItemsOut) {
  LabeledData data = SmallWorkload();
  Harness h(data);
  std::vector<bool> exclude(data.size(), false);
  for (Index g : data.true_clusters[0]) {
    if (g != data.true_clusters[0][0]) exclude[g] = true;
  }
  Cluster c = h.detector->DetectOne(data.true_clusters[0][0], &exclude);
  for (Index g : c.members) {
    EXPECT_FALSE(exclude[g]) << "peeled item " << g << " re-detected";
  }
}

TEST(AlidDetectorTest, TouchesFarFewerEntriesThanFullMatrix) {
  LabeledData data = SmallWorkload(800);
  Harness h(data);
  h.oracle->ResetCounters();
  h.detector->DetectAll();
  const int64_t n = data.size();
  EXPECT_LT(h.oracle->entries_computed(), n * n / 4)
      << "lazy evaluation should avoid most of the affinity matrix";
}

TEST(AlidDetectorTest, JumpRoiAblationStillDetects) {
  LabeledData data = SmallWorkload();
  AlidOptions opts;
  opts.logistic_roi_growth = false;
  Harness h(data, opts);
  DetectionResult result = h.detector->DetectAll().Filtered(0.75);
  EXPECT_GT(AverageF1(data.true_clusters, result), 0.8);
}

TEST(AlidDetectorTest, CenterOnlyCivsAblationDegradesOrMatches) {
  LabeledData data = SmallWorkload();
  Harness all_support(data);
  AlidOptions opts;
  opts.civs.query_from_all_support = false;
  Harness center_only(data, opts);
  const double f_all = AverageF1(
      data.true_clusters, all_support.detector->DetectAll().Filtered(0.75));
  const double f_center = AverageF1(
      data.true_clusters, center_only.detector->DetectAll().Filtered(0.75));
  EXPECT_GE(f_all, f_center - 0.05);
}

// Property sweep over the three a* regimes of Table 1: detection quality is
// regime-independent (the regimes only change the cost profile).
class AlidRegimeProperty
    : public ::testing::TestWithParam<SyntheticRegime> {};

TEST_P(AlidRegimeProperty, HighQualityInEveryRegime) {
  SyntheticConfig cfg;
  cfg.n = 500;
  cfg.dim = 12;
  cfg.num_clusters = 4;
  cfg.regime = GetParam();
  cfg.omega = 0.6;
  cfg.eta = 0.9;
  cfg.P = 240;
  cfg.mean_box = 300.0;
  cfg.seed = 31;
  LabeledData data = MakeSynthetic(cfg);
  Harness h(data);
  DetectionResult result = h.detector->DetectAll().Filtered(0.75);
  EXPECT_GT(AverageF1(data.true_clusters, result), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Regimes, AlidRegimeProperty,
                         ::testing::Values(SyntheticRegime::kProportional,
                                           SyntheticRegime::kSublinear,
                                           SyntheticRegime::kBounded));

}  // namespace
}  // namespace alid
