// Edge-case and failure-injection tests: degenerate datasets (duplicates,
// singletons, collinear points), extreme kernel scales, empty sparse graphs,
// and dense/CSR parity of the baselines.
#include <cmath>

#include <gtest/gtest.h>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/ap.h"
#include "baselines/iid.h"
#include "baselines/kmeans.h"
#include "baselines/replicator.h"
#include "core/alid.h"
#include "core/lid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

// ------------------------------------------------------ duplicate points --

TEST(EdgeCaseTest, ExactDuplicatesFormAPerfectCluster) {
  // Three identical points: pairwise affinity e^0 = 1, pi -> 2/3.
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 9.0, 9.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  LazyAffinityOracle oracle(d, f);
  Lid lid(oracle, 0, {});
  lid.UpdateRange({1, 2, 3});
  lid.Run();
  ASSERT_TRUE(lid.converged());
  EXPECT_NEAR(lid.Density(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(lid.Support().size(), 3u);
}

TEST(EdgeCaseTest, TwoIdenticalPointsSplitWeightEvenly) {
  Dataset d(1, {5.0, 5.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  LazyAffinityOracle oracle(d, f);
  Lid lid(oracle, 0, {});
  lid.UpdateRange({1});
  lid.Run();
  EXPECT_NEAR(lid.WeightOf(0), 0.5, 1e-6);
  EXPECT_NEAR(lid.WeightOf(1), 0.5, 1e-6);
  EXPECT_NEAR(lid.Density(), 0.5, 1e-9);  // x^T A x = 2 * 0.25 * 1
}

// ------------------------------------------------------------- singletons --

TEST(EdgeCaseTest, SingletonDatasetDetection) {
  Dataset d(3, {1.0, 2.0, 3.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  LazyAffinityOracle oracle(d, f);
  LshIndex lsh(d, {});
  AlidDetector detector(oracle, lsh, {});
  DetectionResult r = detector.DetectAll();
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].members, IndexList{0});
  EXPECT_DOUBLE_EQ(r.clusters[0].density, 0.0);
  EXPECT_TRUE(r.Filtered(0.75).clusters.empty());
}

TEST(EdgeCaseTest, IidOnSingleActiveVertex) {
  Dataset d(1, {0.0, 4.0});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  AffinityMatrix m(d, f);
  IidDetector iid{AffinityView(&m.matrix())};
  std::vector<bool> active{true, false};
  Cluster c = iid.ExtractOne(&active);
  ASSERT_EQ(c.members.size(), 1u);
  EXPECT_EQ(c.members[0], 0);
}

// -------------------------------------------------------- extreme kernels --

TEST(EdgeCaseTest, VerySharpKernelIsolatesEverything) {
  // k so large that all affinities are ~0: every point is its own cluster.
  Dataset d(1, {0.0, 1.0, 2.0, 3.0});
  AffinityFunction f({.k = 500.0, .p = 2.0});
  LazyAffinityOracle oracle(d, f);
  LshIndex lsh(d, {});
  AlidDetector detector(oracle, lsh, {});
  DetectionResult r = detector.DetectAll();
  EXPECT_TRUE(r.Filtered(0.5).clusters.empty());
}

TEST(EdgeCaseTest, VeryFlatKernelMergesEverything) {
  // k tiny: all affinities ~1, the whole set is one dominant cluster.
  Dataset d(1, {0.0, 0.1, 0.2, 0.3, 0.4});
  AffinityFunction f({.k = 1e-4, .p = 2.0});
  LazyAffinityOracle oracle(d, f);
  Lid lid(oracle, 0, {});
  lid.UpdateRange({1, 2, 3, 4});
  lid.Run();
  EXPECT_EQ(lid.Support().size(), 5u);
  EXPECT_GT(lid.Density(), 0.79);  // -> (n-1)/n as affinities -> 1
}

TEST(EdgeCaseTest, L1NormKernelWorksEndToEnd) {
  SyntheticConfig cfg;
  cfg.n = 200;
  cfg.dim = 6;
  cfg.num_clusters = 2;
  cfg.omega = 0.8;
  cfg.overlap_clusters = false;
  LabeledData data = MakeSynthetic(cfg);
  // L1 distances are ~sqrt(d) larger than L2; rescale k accordingly.
  AffinityFunction f(
      {.k = data.suggested_k / std::sqrt(6.0), .p = 1.0});
  LazyAffinityOracle oracle(data.data, f);
  LshParams lp;
  lp.segment_length = data.suggested_lsh_r * std::sqrt(6.0);
  LshIndex lsh(data.data, lp);
  AlidDetector detector(oracle, lsh, {});
  DetectionResult r = detector.DetectAll().Filtered(0.6);
  EXPECT_GT(AverageF1(data.true_clusters, r), 0.7);
}

// --------------------------------------------------------- empty graphs --

TEST(EdgeCaseTest, ReplicatorOnZeroMatrixStopsGracefully) {
  SparseMatrix zero = SparseMatrix::FromTriplets(5, 5, {});
  AffinityView view(&zero);
  std::vector<Scalar> x(5, 0.2);
  const int iters = RunReplicatorDynamics(view, x, {});
  EXPECT_EQ(iters, 0);  // pi == 0 on entry
}

TEST(EdgeCaseTest, ApOnEdgelessGraphMakesSingletons) {
  SparseMatrix zero = SparseMatrix::FromTriplets(4, 4, {});
  ApDetector ap{AffinityView(&zero)};
  DetectionResult r = ap.Detect();
  // No similarities: everyone is their own exemplar (or joins nobody).
  std::vector<int> seen(4, 0);
  for (const Cluster& c : r.clusters) {
    for (Index g : c.members) ++seen[g];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

// --------------------------------------------------- dense / CSR parity --

TEST(EdgeCaseTest, IidDenseAndCsrViewsAgree) {
  SyntheticConfig cfg;
  cfg.n = 120;
  cfg.dim = 6;
  cfg.num_clusters = 2;
  cfg.omega = 0.8;
  cfg.overlap_clusters = false;
  LabeledData data = MakeSynthetic(cfg);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix dense(data.data, f);
  SparseMatrix csr = Sparsifier::Dense(data.data, f);
  Cluster a = IidDetector{AffinityView(&dense.matrix())}.ExtractOne();
  Cluster b = IidDetector{AffinityView(&csr)}.ExtractOne();
  EXPECT_EQ(a.members, b.members);
  EXPECT_NEAR(a.density, b.density, 1e-9);
}

TEST(EdgeCaseTest, ReplicatorDenseAndCsrViewsAgree) {
  SyntheticConfig cfg;
  cfg.n = 80;
  cfg.dim = 5;
  cfg.num_clusters = 2;
  cfg.omega = 1.0;
  cfg.overlap_clusters = false;
  LabeledData data = MakeSynthetic(cfg);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix dense(data.data, f);
  SparseMatrix csr = Sparsifier::Dense(data.data, f);
  std::vector<Scalar> xa(80, 1.0 / 80), xb(80, 1.0 / 80);
  ReplicatorOptions opts;
  opts.max_iterations = 100;
  RunReplicatorDynamics(AffinityView(&dense.matrix()), xa, opts);
  RunReplicatorDynamics(AffinityView(&csr), xb, opts);
  for (Index i = 0; i < 80; ++i) EXPECT_NEAR(xa[i], xb[i], 1e-9);
}

// -------------------------------------------------------------- k-means --

TEST(EdgeCaseTest, KMeansKEqualsN) {
  Dataset d(1, {0.0, 1.0, 2.0});
  KMeansResult r = RunKMeans(d, 3);
  std::set<int> labels(r.labels.begin(), r.labels.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(r.sse, 0.0, 1e-12);
}

TEST(EdgeCaseTest, KMeansAllIdenticalPoints) {
  Dataset d(1, {5.0, 5.0, 5.0, 5.0});
  KMeansResult r = RunKMeans(d, 2);
  EXPECT_NEAR(r.sse, 0.0, 1e-12);
}

// --------------------------------------------------------- misc plumbing --

TEST(EdgeCaseTest, DetectionResultAssignmentPrefersDenser) {
  DetectionResult r;
  Cluster weak;
  weak.members = {0, 1};
  weak.density = 0.4;
  Cluster strong;
  strong.members = {1, 2};
  strong.density = 0.9;
  r.clusters = {weak, strong};
  auto labels = r.Assignment(3);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);  // overlap goes to the denser cluster
  EXPECT_EQ(labels[2], 1);
}

TEST(EdgeCaseTest, FilteredDropsSingletonsEvenIfDense) {
  DetectionResult r;
  Cluster single;
  single.members = {3};
  single.density = 0.99;
  r.clusters = {single};
  EXPECT_TRUE(r.Filtered(0.75).clusters.empty());
}

}  // namespace
}  // namespace alid
