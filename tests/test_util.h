#ifndef ALID_TESTS_TEST_UTIL_H_
#define ALID_TESTS_TEST_UTIL_H_

// Helpers shared by the test binaries (each tests/*.cc builds standalone, so
// everything here is header-only).
#include <memory>

#include <gtest/gtest.h>

#include "affinity/lazy_affinity_oracle.h"
#include "core/cluster.h"
#include "data/labeled_data.h"
#include "lsh/lsh_index.h"

namespace alid {

/// The standard oracle + LSH pipeline the integration/determinism/stress
/// tests run ALID and PALID through. The oracle's column cache is default-on;
/// cache=false restores the paper-faithful stateless oracle for
/// cached-vs-uncached comparisons.
struct TestPipeline {
  explicit TestPipeline(const LabeledData& labeled, bool cache = true) {
    affinity = std::make_unique<AffinityFunction>(
        AffinityParams{.k = labeled.suggested_k, .p = 2.0});
    oracle = std::make_unique<LazyAffinityOracle>(labeled.data, *affinity);
    if (!cache) oracle->DisableColumnCache();
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = labeled.suggested_lsh_r;
    lsh = std::make_unique<LshIndex>(labeled.data, lp);
  }
  std::unique_ptr<AffinityFunction> affinity;
  std::unique_ptr<LazyAffinityOracle> oracle;
  std::unique_ptr<LshIndex> lsh;
};

/// Full structural equality of two detection results, including cluster
/// order: the parallel runtime promises deterministically ordered output,
/// not merely the same set of clusters.
inline void ExpectIdenticalDetections(const DetectionResult& a,
                                      const DetectionResult& b) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].seed, b.clusters[c].seed) << "cluster " << c;
    EXPECT_EQ(a.clusters[c].members, b.clusters[c].members) << "cluster " << c;
    EXPECT_EQ(a.clusters[c].weights, b.clusters[c].weights) << "cluster " << c;
    EXPECT_EQ(a.clusters[c].density, b.clusters[c].density) << "cluster " << c;
  }
}

}  // namespace alid

#endif  // ALID_TESTS_TEST_UTIL_H_
