// Determinism regression tests for the parallelized baselines: every
// baseline running on ThreadPool::ParallelFor must produce bit-identical
// labels/centroids/weights across executor counts {1, 2, 4, 8}, chunk
// grains, FIFO-vs-stealing scheduling, and against the serial (pool-less)
// path — the same guarantee PALID's runtime makes, so Table 1 / Figure 7
// comparisons stay apples-to-apples.
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/ap.h"
#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "baselines/sea.h"
#include "baselines/spectral.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "lsh/lsh_index.h"
#include "test_util.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 400, int clusters = 2, uint64_t seed = 31) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 8;
  cfg.num_clusters = clusters;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 1.0;  // big clusters, so SEA supports cross the parallel gate
  cfg.mean_box = 400.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

/// Runs `run` under every scheduling configuration the runtime supports and
/// checks each result equals the serial reference via `expect_equal`. The
/// grain is fixed across configurations (it is part of the FP reduction
/// order); a second sweep with a different fixed grain re-checks at other
/// chunk boundaries.
template <typename Result>
void ExpectSchedulingInvariant(
    const std::function<Result(ThreadPool*, int64_t grain)>& run,
    const std::function<void(const Result&, const Result&)>& expect_equal) {
  for (int64_t grain : {0, 7, 64}) {
    const Result reference = run(nullptr, grain);
    for (int executors : {1, 2, 4, 8}) {
      for (bool stealing : {true, false}) {
        ThreadPool pool(executors, {.work_stealing = stealing});
        const Result parallel = run(&pool, grain);
        SCOPED_TRACE(::testing::Message()
                     << "executors=" << executors << " stealing=" << stealing
                     << " grain=" << grain);
        expect_equal(reference, parallel);
      }
    }
  }
}

TEST(BaselineDeterminismTest, KMeansBitIdenticalAcrossExecutors) {
  LabeledData data = Workload();
  ExpectSchedulingInvariant<KMeansResult>(
      [&](ThreadPool* pool, int64_t grain) {
        KMeansOptions opts;
        opts.restarts = 2;
        opts.pool = pool;
        opts.grain = grain;
        return RunKMeans(data.data, 3, opts);
      },
      [](const KMeansResult& a, const KMeansResult& b) {
        EXPECT_EQ(a.labels, b.labels);
        EXPECT_EQ(a.centers.raw(), b.centers.raw());
        EXPECT_EQ(a.sse, b.sse);
        EXPECT_EQ(a.sse_history, b.sse_history);
        EXPECT_EQ(a.iterations, b.iterations);
      });
}

TEST(BaselineDeterminismTest, MeanShiftBitIdenticalAcrossExecutors) {
  LabeledData data = Workload(260);
  ExpectSchedulingInvariant<MeanShiftResult>(
      [&](ThreadPool* pool, int64_t grain) {
        MeanShiftOptions opts;
        opts.max_ascents = 80;  // exercises the nearest-mode assignment too
        opts.pool = pool;
        opts.grain = grain;
        return RunMeanShift(data.data, opts);
      },
      [](const MeanShiftResult& a, const MeanShiftResult& b) {
        EXPECT_EQ(a.labels, b.labels);
        EXPECT_EQ(a.modes.raw(), b.modes.raw());
      });
}

TEST(BaselineDeterminismTest, SpectralFullBitIdenticalAcrossExecutors) {
  LabeledData data = Workload(180, 3);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  ExpectSchedulingInvariant<SpectralResult>(
      [&](ThreadPool* pool, int64_t grain) {
        SpectralOptions opts;
        opts.num_clusters = 3;
        opts.pool = pool;
        opts.grain = grain;
        return SpectralClusterFull(data.data, affinity, opts);
      },
      [](const SpectralResult& a, const SpectralResult& b) {
        EXPECT_EQ(a.labels, b.labels);
      });
}

TEST(BaselineDeterminismTest, SpectralNystromBitIdenticalAcrossExecutors) {
  LabeledData data = Workload(200, 3);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  ExpectSchedulingInvariant<SpectralResult>(
      [&](ThreadPool* pool, int64_t grain) {
        SpectralOptions opts;
        opts.num_clusters = 3;
        opts.nystrom_landmarks = 60;
        opts.pool = pool;
        opts.grain = grain;
        return SpectralClusterNystrom(data.data, affinity, opts);
      },
      [](const SpectralResult& a, const SpectralResult& b) {
        EXPECT_EQ(a.labels, b.labels);
      });
}

TEST(BaselineDeterminismTest, ApBitIdenticalAcrossExecutors) {
  LabeledData data = Workload(220, 3);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix matrix(data.data, affinity);
  ExpectSchedulingInvariant<DetectionResult>(
      [&](ThreadPool* pool, int64_t grain) {
        ApOptions opts;
        opts.max_iterations = 120;
        opts.pool = pool;
        opts.grain = grain;
        return ApDetector(AffinityView(&matrix.matrix()), opts).Detect();
      },
      ExpectIdenticalDetections);
}

TEST(BaselineDeterminismTest, SeaBitIdenticalAcrossExecutors) {
  LabeledData data = Workload(400, 2);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  SparseMatrix sparse = Sparsifier::Dense(data.data, affinity);
  // Supports of ~200 members sit far above SeaOptions::kMinParallelSupport,
  // so the pooled sweeps genuinely engage.
  ASSERT_GT(static_cast<int>(data.true_clusters[0].size()),
            SeaOptions::kMinParallelSupport);
  ExpectSchedulingInvariant<DetectionResult>(
      [&](ThreadPool* pool, int64_t grain) {
        SeaOptions opts;
        opts.pool = pool;
        opts.grain = grain;
        return SeaDetector(AffinityView(&sparse), opts).DetectAll();
      },
      ExpectIdenticalDetections);
}

TEST(BaselineDeterminismTest, ParallelAffinityMatrixMatchesSerial) {
  LabeledData data = Workload(150, 2);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix serial(data.data, affinity);
  for (int executors : {2, 8}) {
    ThreadPool pool(executors);
    AffinityMatrix parallel(data.data, affinity, &pool);
    EXPECT_EQ(serial.matrix().raw(), parallel.matrix().raw());
    EXPECT_EQ(serial.entries_computed(), parallel.entries_computed());
  }
}

}  // namespace
}  // namespace alid
