// Unit tests for the common substrate: Dataset, DenseMatrix, SparseMatrix,
// Rng, MemoryTracker, ThreadPool and the simplex helpers.
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/dataset.h"
#include "common/matrix.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/sparse_matrix.h"
#include "common/thread_pool.h"
#include "core/simplex.h"

namespace alid {
namespace {

// ---------------------------------------------------------------- Dataset --

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(3);
  d.Append(std::vector<Scalar>{1.0, 2.0, 3.0});
  d.Append(std::vector<Scalar>{4.0, 5.0, 6.0});
  ASSERT_EQ(d.size(), 2);
  EXPECT_EQ(d.dim(), 3);
  EXPECT_DOUBLE_EQ(d[1][0], 4.0);
  EXPECT_DOUBLE_EQ(d[0][2], 3.0);
}

TEST(DatasetTest, FlatConstructorChecksShape) {
  Dataset d(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(d.size(), 2);
  EXPECT_DOUBLE_EQ(d[1][1], 4.0);
}

TEST(DatasetTest, EuclideanDistance) {
  Dataset d(2, {0.0, 0.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Distance(0, 1, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(d.SquaredL2(0, 1), 25.0);
}

TEST(DatasetTest, ManhattanDistance) {
  Dataset d(2, {0.0, 0.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Distance(0, 1, 1.0), 7.0);
}

TEST(DatasetTest, GeneralLpDistance) {
  Dataset d(1, {0.0, 2.0});
  EXPECT_NEAR(d.Distance(0, 1, 3.0), 2.0, 1e-12);
}

TEST(DatasetTest, DistanceToQueryPoint) {
  Dataset d(2, {1.0, 1.0});
  std::vector<Scalar> q{4.0, 5.0};
  EXPECT_DOUBLE_EQ(d.DistanceTo(0, q, 2.0), 5.0);
}

TEST(DatasetTest, SubsetPreservesRows) {
  Dataset d(1, {10.0, 20.0, 30.0, 40.0});
  Dataset s = d.Subset({3, 1});
  ASSERT_EQ(s.size(), 2);
  EXPECT_DOUBLE_EQ(s[0][0], 40.0);
  EXPECT_DOUBLE_EQ(s[1][0], 20.0);
}

TEST(DatasetTest, DiameterEstimateCoversPointPair) {
  Dataset d(1, {0.0, 10.0});
  // Centroid 5, max radius 5, diameter estimate 10.
  EXPECT_NEAR(d.DiameterEstimate(), 10.0, 1e-9);
}

TEST(DatasetTest, DotProduct) {
  std::vector<Scalar> a{1.0, 2.0, 3.0}, b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

// ------------------------------------------------------------ DenseMatrix --

TEST(DenseMatrixTest, MatVec) {
  DenseMatrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  std::vector<Scalar> x{1.0, 1.0, 1.0};
  auto y = m.MatVec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(DenseMatrixTest, QuadraticFormMatchesManualSum) {
  DenseMatrix m(2, 2, 0.0);
  m(0, 1) = 0.5;
  m(1, 0) = 0.5;
  std::vector<Scalar> x{0.5, 0.5};
  // x^T A x = 2 * 0.5 * 0.25 = 0.25.
  EXPECT_DOUBLE_EQ(m.QuadraticForm(x), 0.25);
}

TEST(DenseMatrixTest, TransposeRoundTrip) {
  DenseMatrix m(2, 3, 0.0);
  m(0, 1) = 7.0;
  m(1, 2) = -2.0;
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
}

TEST(DenseMatrixTest, SymmetryError) {
  DenseMatrix m(2, 2, 0.0);
  m(0, 1) = 1.0;
  m(1, 0) = 1.0 + 1e-3;
  EXPECT_NEAR(m.SymmetryError(), 1e-3, 1e-12);
}

// ----------------------------------------------------------- SparseMatrix --

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.0}});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(SparseMatrixTest, AtMissingEntryIsZero) {
  auto m = SparseMatrix::FromTriplets(3, 3, {{0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(m.At(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(SparseMatrixTest, MatVecMatchesDense) {
  auto m = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, 2.0}, {2, 2, 5.0}, {1, 2, -1.0}});
  std::vector<Scalar> x{1.0, 2.0, 3.0};
  auto y = m.MatVec(x);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(SparseMatrixTest, QuadraticForm) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  std::vector<Scalar> x{0.5, 0.5};
  EXPECT_DOUBLE_EQ(m.QuadraticForm(x), 0.5);
}

TEST(SparseMatrixTest, SparseDegree) {
  auto m = SparseMatrix::FromTriplets(10, 10, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.SparseDegree(), 1.0 - 2.0 / 100.0);
}

TEST(SparseMatrixTest, RowViews) {
  auto m = SparseMatrix::FromTriplets(2, 4, {{1, 0, 3.0}, {1, 3, 4.0}});
  EXPECT_TRUE(m.RowIndices(0).empty());
  ASSERT_EQ(m.RowIndices(1).size(), 2u);
  EXPECT_EQ(m.RowIndices(1)[1], 3);
  EXPECT_DOUBLE_EQ(m.RowValues(1)[0], 3.0);
}

// -------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  auto s = rng.SampleWithoutReplacement(100, 30);
  std::set<Index> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  EXPECT_GE(*set.begin(), 0);
  EXPECT_LT(*set.rbegin(), 100);
}

TEST(RngTest, SampleAllReturnsEverything) {
  Rng rng(3);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<Index> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(11);
  auto p = rng.Permutation(50);
  std::set<Index> set(p.begin(), p.end());
  EXPECT_EQ(set.size(), 50u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(1234);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// ----------------------------------------------------------MemoryTracker --

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Reset();
  {
    ScopedMemoryCharge c1(1000);
    EXPECT_EQ(t.current_bytes(), 1000);
    {
      ScopedMemoryCharge c2(500);
      EXPECT_EQ(t.current_bytes(), 1500);
    }
    EXPECT_EQ(t.current_bytes(), 1000);
  }
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 1500);
}

TEST(MemoryTrackerTest, AdjustGrowsCharge) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Reset();
  ScopedMemoryCharge c(100);
  c.Adjust(400);
  EXPECT_EQ(t.current_bytes(), 400);
  c.Adjust(50);
  EXPECT_EQ(t.current_bytes(), 50);
}

// --------------------------------------------------------------ThreadPool --

TEST(ThreadPoolTest, RunsAllJobs) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Post([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  pool.Post([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Post([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  std::atomic<int> sum{0};
  ThreadPool pool(1);
  for (int i = 1; i <= 10; ++i) {
    pool.Post([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 55);
}

// ----------------------------------------------------------------- Simplex --

TEST(SimplexTest, BarycenterIsOnSimplex) {
  auto x = Barycenter(10);
  EXPECT_TRUE(IsOnSimplex(x));
  EXPECT_DOUBLE_EQ(x[3], 0.1);
}

TEST(SimplexTest, DetectsOffSimplex) {
  std::vector<Scalar> x{0.5, 0.6};
  EXPECT_FALSE(IsOnSimplex(x));
  std::vector<Scalar> y{-0.2, 1.2};
  EXPECT_FALSE(IsOnSimplex(y));
}

TEST(SimplexTest, ProjectClampsAndNormalizes) {
  std::vector<Scalar> x{-1.0, 2.0, 2.0};
  ProjectToSimplex(x);
  EXPECT_TRUE(IsOnSimplex(x));
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(SimplexTest, L1Distance) {
  std::vector<Scalar> a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 2.0);
}

// Property sweep: projection always lands on the simplex for random inputs.
class SimplexProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProjectionProperty, AlwaysLandsOnSimplex) {
  Rng rng(GetParam());
  std::vector<Scalar> x(1 + GetParam() % 37);
  for (auto& v : x) v = rng.Gaussian(0.0, 3.0);
  // Ensure at least one positive entry so the projection is defined.
  x[0] = std::abs(x[0]) + 0.1;
  ProjectToSimplex(x);
  EXPECT_TRUE(IsOnSimplex(x, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, SimplexProjectionProperty,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace alid
