// Tests of the observability layer (src/obs/): metrics-registry snapshot
// consistency under concurrent writers, histogram bucket-edge semantics,
// exporter formats, the span tracer's bounded drop-oldest rings, the
// disabled tracer's zero-allocation contract, the shared latency reservoir
// under Reset()-vs-Record() races — and the layer's defining promise:
// streamed and served results are bit-identical with tracing on or off.
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "obs/latency_reservoir.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"
#include "test_util.h"

// Allocation probe for the disabled-tracer contract: global operator new
// bumps a relaxed counter, so a test can assert a code region allocated
// nothing. Deletes route to free() to match; the array and aligned forms
// keep their defaults (nothing in the probed region uses them). GCC pairs
// its builtin operator-new knowledge with the free() below and flags
// -Wmismatched-new-delete at inlined call sites; the pairing is correct
// (the replaced new allocates with malloc), so the warning is disarmed.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::atomic<int64_t> g_heap_allocations{0};

void* operator new(size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }

namespace alid {
namespace {

using obs::LatencyReservoir;
using obs::MetricsRegistry;
using obs::ObsOptions;
using obs::TraceRecorder;

TEST(MetricsTest, CountersGaugesAndCallbacks) {
  MetricsRegistry registry;
  obs::Counter* hits = registry.AddCounter("hits");
  obs::Gauge* depth = registry.AddGauge("depth");
  int64_t level = 7;
  registry.AddCallbackGauge("level", [&level] { return level; });

  hits->Add(3);
  hits->Add();
  depth->Set(10);
  depth->Add(-4);

  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "hits");
  EXPECT_EQ(samples[0].value, 4);
  EXPECT_EQ(samples[1].name, "depth");
  EXPECT_EQ(samples[1].value, 6);
  EXPECT_EQ(samples[2].name, "level");
  EXPECT_EQ(samples[2].value, 7);

  level = -2;  // callback gauges read at export time, not registration time
  EXPECT_EQ(registry.Snapshot()[2].value, -2);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  obs::Histogram* hist = registry.AddHistogram("lat", {1.0, 2.0, 4.0});

  hist->Observe(0.5);  // <= 1.0 -> bucket 0
  hist->Observe(1.0);  // == edge, inclusive -> bucket 0
  hist->Observe(1.5);  // -> bucket 1
  hist->Observe(2.0);  // == edge -> bucket 1
  hist->Observe(4.0);  // == last edge -> bucket 2
  hist->Observe(9.0);  // beyond every edge -> the +inf bucket

  const auto buckets = hist->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
  EXPECT_EQ(hist->count(), 6);
  EXPECT_DOUBLE_EQ(hist->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(MetricsTest, ExporterFormats) {
  MetricsRegistry registry;
  registry.AddCounter("absorbed")->Add(12);
  registry.AddGauge("alive")->Set(5);
  obs::Histogram* hist = registry.AddHistogram("batch_ms", {1.0});
  hist->Observe(0.5);
  hist->Observe(3.0);

  EXPECT_EQ(registry.ToJsonFields(),
            "\"absorbed\":12,\"alive\":5,\"batch_ms_count\":2,"
            "\"batch_ms_sum\":3.5");
  std::string braced = "{";  // built with += — GCC-12 -Wrestrict trips on +
  braced += registry.ToJsonFields();
  braced += "}";
  EXPECT_EQ(registry.ToJson(), braced);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE alid_absorbed counter"), std::string::npos);
  EXPECT_NE(prom.find("alid_absorbed 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE alid_alive gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE alid_batch_ms histogram"), std::string::npos);
  // Cumulative le buckets: the +inf bucket equals the total count.
  EXPECT_NE(prom.find("alid_batch_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("alid_batch_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
}

// The registry's core concurrency contract: registration is locked,
// updates are relaxed atomics, and Snapshot()/exporters may run at any
// time against concurrent writers. Final totals must be exact — relaxed
// ordering loses no increments. Run under TSan via the concurrency suite.
TEST(MetricsTest, SnapshotConsistentUnderConcurrentWriters) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.AddCounter("events");
  obs::Gauge* gauge = registry.AddGauge("level");
  obs::Histogram* hist = registry.AddHistogram("obs", {0.25, 0.5, 0.75});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto samples = registry.Snapshot();
      ASSERT_EQ(samples.size(), 3u);
      EXPECT_GE(samples[0].value, 0);
      EXPECT_FALSE(registry.ToJsonFields().empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        gauge->Set(t);
        hist->Observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter->value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : hist->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count());
}

TEST(TraceTest, RingWrapsDropOldestAndCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(ObsOptions{.trace_enabled = true,
                             .trace_ring_capacity = 8});
  for (int i = 0; i < 20; ++i) {
    ALID_TRACE_SCOPE("test", "wrap");
  }
  // This thread's ring holds the newest 8 of 20 events; Enable() re-armed
  // every ring, so other threads contribute nothing here.
  EXPECT_EQ(recorder.buffered_events(), 8);
  EXPECT_EQ(recorder.dropped_events(), 12);

  const std::string json = recorder.ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wrap\""), std::string::npos);

  recorder.Clear();
  EXPECT_EQ(recorder.buffered_events(), 0);
  EXPECT_EQ(recorder.dropped_events(), 0);
  EXPECT_TRUE(recorder.enabled());  // Clear keeps the enabled state
  recorder.Disable();
}

TEST(TraceTest, WriteChromeTraceRoundTrips) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(ObsOptions{.trace_enabled = true,
                             .trace_ring_capacity = 64});
  {
    ALID_TRACE_SCOPE("test", "outer");
    ALID_TRACE_SCOPE("test", "inner");
  }
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path));
  ASSERT_FALSE(recorder.WriteChromeTrace("/nonexistent-dir/trace.json"));
  recorder.Disable();
  recorder.Clear();

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  std::fclose(file);
  EXPECT_NE(contents.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"inner\""), std::string::npos);
}

// The disabled hot path's contract: one relaxed load and a branch — no
// heap allocation whatsoever. The probe counts every global operator new
// across a large span loop with tracing off.
TEST(TraceTest, DisabledSpansAllocateNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    ALID_TRACE_SCOPE("test", "disabled");
  }
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

TEST(LatencyReservoirTest, HalvesWhenFullKeepingTheRecentWindow) {
  LatencyReservoir reservoir(8);
  for (int i = 0; i < 10; ++i) reservoir.Record(static_cast<double>(i));
  // At the 9th record the full reservoir halved (dropping 0..3), so the
  // survivors are exactly the recent window 4..9.
  const std::vector<double> samples = reservoir.Samples();
  ASSERT_EQ(samples.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(samples[i], 4.0 + i);
  EXPECT_EQ(reservoir.max_samples(), 8u);

  reservoir.Reset();
  EXPECT_EQ(reservoir.size(), 0u);
  reservoir.Record(1.5);
  EXPECT_EQ(reservoir.size(), 1u);
}

// Reset() racing concurrent Record()s is an allowed call pattern
// (ClusterServer::ResetStats against live queries): the reservoir must
// stay bounded and usable, never crash or leak samples past the cap.
// Run under TSan via the concurrency suite.
TEST(LatencyReservoirTest, ResetDuringConcurrentRecord) {
  LatencyReservoir reservoir(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reservoir.Record(static_cast<double>(t * kPerThread + i));
        if (i % 4096 == 0) {
          EXPECT_LE(reservoir.Samples().size(), 64u);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) reservoir.Reset();
  for (auto& thread : writers) thread.join();
  EXPECT_LE(reservoir.size(), 64u);
  reservoir.Record(3.25);
  const std::vector<double> samples = reservoir.Samples();
  EXPECT_DOUBLE_EQ(samples.back(), 3.25);
}

// The reservoir->histogram mirror (LatencyReservoir::AttachHistogram):
// every Record lands in the histogram, and unlike the bounded sample
// window the histogram is cumulative — halving never uncounts anything.
TEST(LatencyReservoirTest, AttachedHistogramMirrorsEveryRecord) {
  MetricsRegistry registry;
  obs::Histogram* hist =
      registry.AddHistogram("lat_seconds", obs::LatencyHistogramEdges());
  LatencyReservoir reservoir(8);
  reservoir.AttachHistogram(hist);
  for (int i = 0; i < 20; ++i) reservoir.Record(1e-4);
  EXPECT_LE(reservoir.size(), 8u);  // the sample window halved
  EXPECT_EQ(hist->count(), 20);     // the histogram kept every record
  EXPECT_DOUBLE_EQ(hist->sum(), 20 * 1e-4);
}

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions StreamOptions(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  opts.window = 260;  // evictions + repairs happen mid-stream
  return opts;
}

std::unique_ptr<OnlineAlid> RunStream(const LabeledData& data,
                                      const OnlineAlidOptions& opts,
                                      Index batch) {
  auto online = std::make_unique<OnlineAlid>(data.data.dim(), opts);
  Rng rng(5);
  const auto order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto row = data.data[order[pos]];
    if (static_cast<Index>(flat.size()) / data.data.dim() ==
        static_cast<Index>(batch)) {
      online->InsertBatch(flat);
      flat.clear();
    }
    flat.insert(flat.end(), row.begin(), row.end());
  }
  if (!flat.empty()) online->InsertBatch(flat);
  return online;
}

void ExpectIdenticalStreamState(const OnlineAlid& a, const OnlineAlid& b) {
  DetectionResult da, db;
  da.clusters = a.clusters();
  db.clusters = b.clusters();
  ExpectIdenticalDetections(da, db);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.alive(), b.alive());
  const StreamStats sa = a.stats();
  const StreamStats sb = b.stats();
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.absorbed, sb.absorbed);
  EXPECT_EQ(sa.pooled, sb.pooled);
  EXPECT_EQ(sa.evicted, sb.evicted);
  EXPECT_EQ(sa.redetections, sb.redetections);
  EXPECT_EQ(sa.refreshes, sb.refreshes);
  EXPECT_EQ(sa.sketch_prunes, sb.sketch_prunes);
  EXPECT_EQ(sa.sketch_exact, sb.sketch_exact);
  EXPECT_EQ(sa.refresh_rounds, sb.refresh_rounds);
  EXPECT_EQ(sa.refresh_speculations, sb.refresh_speculations);
  EXPECT_EQ(sa.refresh_conflicts, sb.refresh_conflicts);
}

// Satellite contract of the latency export: the stream's ingest latency
// and the server's query/publish latencies ship as histogram-typed metrics
// through the registry exporters, not only as bounded reservoir samples.
TEST(MetricsTest, LatencyHistogramsShipThroughExporters) {
  LabeledData data = Workload(300, 5);
  std::unique_ptr<OnlineAlid> online =
      RunStream(data, StreamOptions(data), 50);
  ClusterServer server(data.data.dim());
  server.Publish(ClusterSnapshot::FromStream(*online));
  server.Query(QueryRequest{.points = data.data[0]});

  const auto histogram_count =
      [](const MetricsRegistry& registry,
         const std::string& name) -> int64_t {
    for (const auto& sample : registry.Snapshot()) {
      if (sample.name == name) {
        EXPECT_EQ(sample.kind, obs::MetricKind::kHistogram);
        EXPECT_EQ(sample.edges, obs::LatencyHistogramEdges());
        return sample.count;
      }
    }
    ADD_FAILURE() << "no histogram named " << name;
    return -1;
  };
  // One observation per InsertBatch / Query / Publish call.
  EXPECT_EQ(histogram_count(online->metrics(), "ingest_seconds"),
            static_cast<int64_t>(online->stats().batch_seconds.size()));
  EXPECT_EQ(histogram_count(server.metrics(), "query_seconds"), 1);
  EXPECT_EQ(histogram_count(server.metrics(), "publish_seconds"), 1);

  // And the text exporters carry them end to end.
  EXPECT_NE(online->metrics().ToJsonFields().find("\"ingest_seconds_count\":"),
            std::string::npos);
  EXPECT_NE(
      server.metrics().ToPrometheusText().find(
          "# TYPE alid_query_seconds histogram"),
      std::string::npos);
}

// The tracer's defining promise: spans only timestamp — they read no
// algorithm state and feed nothing back — so the streamed state is
// bit-identical with tracing on or off, even with rings wrapping hard
// (a tiny capacity maximizes drop-path executions mid-stream).
TEST(TraceTest, StreamStateBitIdenticalTracingOnVsOff) {
  LabeledData data = Workload();
  const OnlineAlidOptions opts = StreamOptions(data);
  TraceRecorder& recorder = TraceRecorder::Global();

  recorder.Disable();
  recorder.Clear();
  std::unique_ptr<OnlineAlid> untraced = RunStream(data, opts, 37);
  ASSERT_GT(untraced->clusters().size(), 0u);
  ASSERT_GT(untraced->stats().evicted, 0);

  recorder.Enable(ObsOptions{.trace_enabled = true,
                             .trace_ring_capacity = 32});
  std::unique_ptr<OnlineAlid> traced = RunStream(data, opts, 37);
  recorder.Disable();
  EXPECT_GT(recorder.buffered_events() + recorder.dropped_events(), 0);
  recorder.Clear();

  ExpectIdenticalStreamState(*untraced, *traced);
}

TEST(TraceTest, ServeAnswersBitIdenticalTracingOnVsOff) {
  LabeledData data = Workload(360, 17);
  std::unique_ptr<OnlineAlid> online =
      RunStream(data, StreamOptions(data), 41);
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();

  const int dim = data.data.dim();
  ClusterServer server(dim);
  server.Publish(ClusterSnapshot::FromStream(*online));

  // Query points: jittered copies of data rows, some near misses.
  Rng rng(23);
  std::vector<Scalar> queries;
  for (Index q = 0; q < 200; ++q) {
    const auto row = data.data[q % data.size()];
    for (int d = 0; d < dim; ++d) {
      queries.push_back(row[d] +
                        static_cast<Scalar>(0.01 * rng.Uniform()));
    }
  }

  const QueryResponse untraced = server.Query(QueryRequest{.points = queries});
  recorder.Enable(ObsOptions{.trace_enabled = true,
                             .trace_ring_capacity = 64});
  const QueryResponse traced = server.Query(QueryRequest{.points = queries});
  recorder.Disable();
  recorder.Clear();

  ASSERT_TRUE(untraced.ok());
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(untraced.assignments.size(), traced.assignments.size());
  for (size_t i = 0; i < untraced.assignments.size(); ++i) {
    EXPECT_EQ(untraced.assignments[i], traced.assignments[i])
        << "query " << i;
  }
}

// ColumnCache::RegisterMetrics exposes the cache atomics as callback
// gauges: values must track the live cache, not a registration-time copy.
TEST(MetricsTest, ColumnCacheGaugesTrackTheLiveCache) {
  LabeledData data = Workload(120, 3);
  TestPipeline pipeline(data);

  MetricsRegistry registry;
  ASSERT_NE(pipeline.oracle->column_cache(), nullptr);
  pipeline.oracle->column_cache()->RegisterMetrics(&registry, "cache");

  auto read = [&registry](const std::string& name) -> int64_t {
    for (const auto& sample : registry.Snapshot()) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "no gauge named " << name;
    return -1;
  };
  EXPECT_EQ(read("cache_hits"), 0);
  EXPECT_GT(read("cache_budget_bytes"), 0);

  // Touch the oracle twice: the second pass hits the freshly cached rows.
  for (int pass = 0; pass < 2; ++pass) {
    for (Index i = 0; i + 1 < data.size(); i += 2) {
      pipeline.oracle->Entry(i, i + 1);
    }
  }
  EXPECT_GT(read("cache_hits"), 0);
  EXPECT_GT(read("cache_bytes"), 0);
}

}  // namespace
}  // namespace alid
