// Unit tests for the bench harness's shared numerics: the Percentile helper
// behind the latency records' p50/p95/p99 keys and the strict benchmark
// scale parser shared by ALID_BENCH_SCALE and --scale (a malformed scale
// must exit loudly, never silently run default sizes).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "registry.h"

namespace alid::bench {
namespace {

TEST(PercentileTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 1.0), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryQuantile) {
  const std::vector<double> one{42.5};
  EXPECT_DOUBLE_EQ(Percentile(one, 0.0), 42.5);
  EXPECT_DOUBLE_EQ(Percentile(one, 0.5), 42.5);
  EXPECT_DOUBLE_EQ(Percentile(one, 0.99), 42.5);
  EXPECT_DOUBLE_EQ(Percentile(one, 1.0), 42.5);
}

TEST(PercentileTest, EndpointsAreMinAndMax) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, SortsItsCopyBeforeInterpolating) {
  // Deliberately unsorted; the median of {1,3,5,9} interpolates 3..5.
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 4.0);
  // The caller's ordering must not leak into the answer.
  const std::vector<double> sorted{1.0, 3.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), Percentile(sorted, 0.25));
  EXPECT_DOUBLE_EQ(Percentile(v, 0.95), Percentile(sorted, 0.95));
}

TEST(PercentileTest, LinearInterpolationBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.75), 7.5);
}

TEST(ParseBenchScaleTest, AcceptsOrdinaryValues) {
  double scale = 0.0;
  std::string error;
  EXPECT_TRUE(ParseBenchScale("1", &scale, &error)) << error;
  EXPECT_DOUBLE_EQ(scale, 1.0);
  EXPECT_TRUE(ParseBenchScale("2.5", &scale, &error)) << error;
  EXPECT_DOUBLE_EQ(scale, 2.5);
  EXPECT_TRUE(ParseBenchScale("0.05", &scale, &error)) << error;
  EXPECT_DOUBLE_EQ(scale, 0.05);
  EXPECT_TRUE(ParseBenchScale("1e1", &scale, &error)) << error;
  EXPECT_DOUBLE_EQ(scale, 10.0);
}

TEST(ParseBenchScaleTest, RejectsGarbage) {
  double scale = 0.0;
  std::string error;
  // The original bug: atof("abc") == 0.0 silently shrank every size to
  // nothing. Garbage must be an error, not a scale.
  EXPECT_FALSE(ParseBenchScale("abc", &scale, &error));
  EXPECT_NE(error.find("not a number"), std::string::npos) << error;
  EXPECT_FALSE(ParseBenchScale("2x", &scale, &error));  // trailing junk
  EXPECT_NE(error.find("not a number"), std::string::npos) << error;
  EXPECT_FALSE(ParseBenchScale("", &scale, &error));
  EXPECT_FALSE(ParseBenchScale(nullptr, &scale, &error));
}

TEST(ParseBenchScaleTest, RejectsOutOfRangeAndNonFinite) {
  double scale = 0.0;
  std::string error;
  EXPECT_FALSE(ParseBenchScale("1e400", &scale, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(ParseBenchScale("inf", &scale, &error));
  EXPECT_FALSE(ParseBenchScale("nan", &scale, &error));
}

TEST(ParseBenchScaleTest, RejectsBelowFloor) {
  double scale = 0.0;
  std::string error;
  EXPECT_FALSE(ParseBenchScale("0", &scale, &error));
  EXPECT_NE(error.find("floor"), std::string::npos) << error;
  EXPECT_FALSE(ParseBenchScale("0.01", &scale, &error));
  EXPECT_FALSE(ParseBenchScale("-1", &scale, &error));
}

TEST(ParseBenchScaleDeathTest, OrDieExitsWithCodeTwoNamingTheSource) {
  EXPECT_EXIT(ParseBenchScaleOrDie("abc", "ALID_BENCH_SCALE"),
              ::testing::ExitedWithCode(2),
              "invalid benchmark scale from ALID_BENCH_SCALE");
  EXPECT_EXIT(ParseBenchScaleOrDie("0.001", "--scale"),
              ::testing::ExitedWithCode(2),
              "invalid benchmark scale from --scale");
}

TEST(ParseBenchScaleDeathTest, OrDieReturnsTheParsedValueWhenValid) {
  EXPECT_DOUBLE_EQ(ParseBenchScaleOrDie("3.5", "--scale"), 3.5);
}

}  // namespace
}  // namespace alid::bench
