// Cross-module integration tests: the full ALID pipeline against the
// full-matrix baselines on shared workloads, complexity-counter assertions
// matching Table 1's qualitative claims, and the Fig. 6 sparsity mechanism.
#include <memory>

#include <gtest/gtest.h>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/iid.h"
#include "baselines/sea.h"
#include "common/memory_tracker.h"
#include "core/alid.h"
#include "core/palid.h"
#include "data/ndi_like.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace alid {
namespace {

using Pipeline = TestPipeline;

TEST(IntegrationTest, AlidMatchesIidQualityAtFractionOfTheEntries) {
  SyntheticConfig cfg;
  cfg.n = 700;
  cfg.dim = 12;
  cfg.num_clusters = 5;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.5;
  cfg.mean_box = 300.0;
  cfg.seed = 23;
  LabeledData data = MakeSynthetic(cfg);
  Pipeline p(data);

  AlidDetector alid_detector(*p.oracle, *p.lsh, {});
  p.oracle->ResetCounters();
  const double f_alid = AverageF1(
      data.true_clusters, alid_detector.DetectAll().Filtered(0.75));
  const int64_t alid_entries = p.oracle->entries_computed();

  AffinityMatrix matrix(data.data, *p.affinity);
  IidDetector iid(AffinityView(&matrix.matrix()));
  const double f_iid =
      AverageF1(data.true_clusters, iid.DetectAll().Filtered(0.75));
  const int64_t iid_entries = matrix.entries_computed();

  EXPECT_GT(f_alid, f_iid - 0.07)
      << "ALID quality should match the full-matrix method";
  EXPECT_LT(alid_entries, iid_entries / 2)
      << "ALID should touch far fewer affinity entries";
}

TEST(IntegrationTest, AlidPeakMemoryFarBelowFullMatrix) {
  SyntheticConfig cfg;
  cfg.n = 1200;
  cfg.dim = 12;
  cfg.num_clusters = 6;
  cfg.regime = SyntheticRegime::kBounded;
  cfg.P = 240;
  cfg.mean_box = 300.0;
  cfg.seed = 29;
  LabeledData data = MakeSynthetic(cfg);
  Pipeline p(data);

  p.oracle->ResetCounters();
  AlidDetector detector(*p.oracle, *p.lsh, {});
  detector.DetectAll();
  const int64_t alid_peak = p.oracle->peak_bytes();
  const int64_t full_matrix_bytes =
      static_cast<int64_t>(data.size()) * data.size() * sizeof(Scalar);
  EXPECT_LT(alid_peak, full_matrix_bytes / 10)
      << "O(a*(a*+delta)) local matrices should dwarf O(n^2)";
}

TEST(IntegrationTest, SubNdiLikePipelineAllMethods) {
  // A scaled-down Sub-NDI-like workload every affinity method can handle.
  NdiLikeConfig cfg = NdiLikeConfig::SubNdi();
  cfg.num_duplicates = 300;
  cfg.num_noise = 900;
  cfg.seed = 41;
  LabeledData data = MakeNdiLike(cfg);
  Pipeline p(data);

  AlidDetector alid_detector(*p.oracle, *p.lsh, {});
  const double f_alid = AverageF1(
      data.true_clusters, alid_detector.DetectAll().Filtered(0.75));
  EXPECT_GT(f_alid, 0.8);

  AffinityMatrix matrix(data.data, *p.affinity);
  const double f_iid = AverageF1(
      data.true_clusters,
      IidDetector(AffinityView(&matrix.matrix())).DetectAll().Filtered(0.75));
  EXPECT_GT(f_iid, 0.8);

  SparseMatrix sparse =
      Sparsifier::FromLshCollisions(data.data, *p.affinity, *p.lsh);
  const double f_sea = AverageF1(
      data.true_clusters,
      SeaDetector(AffinityView(&sparse)).DetectAll().Filtered(0.6));
  EXPECT_GT(f_sea, 0.6);
}

TEST(IntegrationTest, SparseDegreeRisesAsSegmentShrinks) {
  // The Fig. 6 overlay: smaller r => sparser LSH-induced matrix.
  SyntheticConfig cfg;
  cfg.n = 400;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.5;
  cfg.mean_box = 300.0;
  cfg.seed = 37;
  LabeledData data = MakeSynthetic(cfg);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  double prev_degree = -1.0;
  for (double scale : {4.0, 1.0, 0.25}) {
    LshParams lp;
    lp.num_tables = 6;
    lp.num_projections = 6;
    lp.segment_length = data.suggested_lsh_r * scale;
    LshIndex lsh(data.data, lp);
    SparseMatrix m = Sparsifier::FromLshCollisions(data.data, f, lsh);
    if (prev_degree >= 0.0) {
      EXPECT_GE(m.SparseDegree() + 1e-9, prev_degree)
          << "sparse degree should not drop as r shrinks";
    }
    prev_degree = m.SparseDegree();
  }
}

TEST(IntegrationTest, PalidAndAlidAgreeOnSiftLikeWords) {
  SyntheticConfig cfg;
  cfg.n = 500;
  cfg.dim = 16;
  cfg.num_clusters = 4;
  cfg.omega = 0.5;
  cfg.mean_box = 300.0;
  cfg.seed = 43;
  LabeledData data = MakeSynthetic(cfg);
  Pipeline p(data);
  AlidDetector alid_detector(*p.oracle, *p.lsh, {});
  Palid palid(*p.oracle, *p.lsh, {});
  const double f_seq = AverageF1(
      data.true_clusters, alid_detector.DetectAll().Filtered(0.75));
  const double f_par =
      AverageF1(data.true_clusters, palid.Detect().Filtered(0.75));
  EXPECT_NEAR(f_seq, f_par, 0.1);
}

}  // namespace
}  // namespace alid
