// Concurrency tests: the substrates PALID shares across executors must be
// safe under concurrent use, and the atomic counters must not lose updates.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "core/alid.h"
#include "core/palid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 400) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = 55;
  return MakeSynthetic(cfg);
}

TEST(ConcurrencyTest, ParallelDetectOneMatchesSequential) {
  LabeledData data = Workload();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  LshParams lp;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  AlidDetector detector(oracle, lsh, {});

  // One seed per true cluster; run all four detections sequentially ...
  std::vector<Index> seeds;
  for (const auto& c : data.true_clusters) seeds.push_back(c[0]);
  std::vector<Cluster> sequential;
  for (Index s : seeds) sequential.push_back(detector.DetectOne(s));

  // ... and concurrently from four threads against the same detector.
  std::vector<Cluster> parallel(seeds.size());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < seeds.size(); ++t) {
    threads.emplace_back(
        [&, t] { parallel[t] = detector.DetectOne(seeds[t]); });
  }
  for (auto& th : threads) th.join();

  for (size_t t = 0; t < seeds.size(); ++t) {
    EXPECT_EQ(sequential[t].members, parallel[t].members) << "seed " << t;
    EXPECT_NEAR(sequential[t].density, parallel[t].density, 1e-12);
  }
}

TEST(ConcurrencyTest, OracleCountersAreExactUnderContention) {
  LabeledData data = Workload(100);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  // The paper-faithful stateless oracle: every request is a kernel eval, so
  // the counter must equal the exact request count under contention.
  oracle.DisableColumnCache();
  oracle.ResetCounters();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Post([&] {
        for (int i = 0; i < kPerThread; ++i) {
          oracle.Entry(i % 100, (i + 1) % 100);
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(oracle.entries_computed(), kThreads * kPerThread);
}

TEST(ConcurrencyTest, CachedOracleCountersPartitionRequestsExactly) {
  LabeledData data = Workload(100);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);  // default-on cache
  oracle.ResetCounters();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  constexpr int kDistinctPairs = 100;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Post([&] {
        for (int i = 0; i < kPerThread; ++i) {
          oracle.Entry(i % 100, (i + 1) % 100);
        }
      });
    }
    pool.Wait();
  }
  // Every request either hit the cache or was a true kernel eval — the
  // Table 1 honesty contract, now under contention. Two threads racing the
  // same cold pair may both compute it (both evals are real work), so the
  // computed count is bounded below by the distinct pairs, not equal to it.
  EXPECT_EQ(oracle.cache_hits() + oracle.entries_computed(),
            kThreads * kPerThread);
  EXPECT_GE(oracle.entries_computed(), kDistinctPairs);
  EXPECT_LT(oracle.entries_computed(), kThreads * kPerThread / 2);
}

TEST(ConcurrencyTest, MemoryTrackerBalancedUnderContention) {
  MemoryTracker::Global().Reset();
  {
    ThreadPool pool(4);
    for (int t = 0; t < 200; ++t) {
      pool.Post([] { ScopedMemoryCharge charge(64); });
    }
    pool.Wait();
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), 0);
  EXPECT_GE(MemoryTracker::Global().peak_bytes(), 64);
}

TEST(ConcurrencyTest, PalidDeterministicAcrossExecutorCounts) {
  LabeledData data = Workload();
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  LshParams lp;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);

  auto detect_members = [&](int executors) {
    PalidOptions opts;
    opts.num_executors = executors;
    Palid palid(oracle, lsh, opts);
    DetectionResult r = palid.Detect().Filtered(0.75);
    std::set<IndexList> members;
    for (const Cluster& c : r.clusters) members.insert(c.members);
    return members;
  };
  // Map tasks are independent and the reduce is order-insensitive, so the
  // surviving member sets must not depend on the executor count.
  EXPECT_EQ(detect_members(1), detect_members(3));
}

TEST(ConcurrencyTest, LshQueriesThreadSafe) {
  LabeledData data = Workload();
  LshParams lp;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  std::vector<std::vector<Index>> sequential(20);
  for (Index i = 0; i < 20; ++i) {
    sequential[i] = lsh.QueryByIndex(i);
    std::sort(sequential[i].begin(), sequential[i].end());
  }
  std::atomic<bool> mismatch{false};
  {
    ThreadPool pool(4);
    for (int rep = 0; rep < 50; ++rep) {
      pool.Post([&, rep] {
        const Index i = rep % 20;
        auto res = lsh.QueryByIndex(i);
        std::sort(res.begin(), res.end());
        if (res != sequential[i]) mismatch.store(true);
      });
    }
    pool.Wait();
  }
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace alid
