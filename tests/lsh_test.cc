// Tests of the p-stable LSH index: recall on planted clusters, selectivity
// against noise, bucket iteration and determinism.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"
#include "lsh/lsh_index.h"

namespace alid {
namespace {

LabeledData TightClusters(Index n = 300, int dim = 8, int clusters = 3) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.num_clusters = clusters;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;  // collision stats need separated clusters
  cfg.seed = 9;
  return MakeSynthetic(cfg);
}

LshParams DefaultParams(const LabeledData& data) {
  LshParams p;
  p.num_tables = 8;
  p.num_projections = 6;
  p.segment_length = data.suggested_lsh_r;
  return p;
}

TEST(LshIndexTest, QueryExcludesSelf) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  auto res = lsh.QueryByIndex(0);
  EXPECT_EQ(std::count(res.begin(), res.end(), 0), 0);
}

TEST(LshIndexTest, SameClusterRecallIsHigh) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  // For members of cluster 0, most same-cluster items should collide.
  const IndexList& truth = data.true_clusters[0];
  double recall_sum = 0.0;
  for (Index i : truth) {
    auto res = lsh.QueryByIndex(i);
    std::set<Index> set(res.begin(), res.end());
    int hit = 0;
    for (Index j : truth) {
      if (j != i && set.count(j)) ++hit;
    }
    recall_sum += static_cast<double>(hit) / (truth.size() - 1);
  }
  EXPECT_GT(recall_sum / truth.size(), 0.8);
}

TEST(LshIndexTest, CrossClusterCollisionsAreRare) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  const IndexList& c0 = data.true_clusters[0];
  const IndexList& c1 = data.true_clusters[1];
  int cross = 0, total = 0;
  for (Index i : c0) {
    auto res = lsh.QueryByIndex(i);
    std::set<Index> set(res.begin(), res.end());
    for (Index j : c1) {
      cross += set.count(j) != 0;
      ++total;
    }
  }
  EXPECT_LT(static_cast<double>(cross) / total, 0.05);
}

TEST(LshIndexTest, QueryByPointMatchesQueryByIndexBuckets) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  // Querying with an item's own coordinates returns its bucket mates (and
  // possibly the item itself).
  auto by_index = lsh.QueryByIndex(5);
  auto by_point = lsh.QueryByPoint(data.data[5]);
  std::set<Index> a(by_index.begin(), by_index.end());
  std::set<Index> b(by_point.begin(), by_point.end());
  b.erase(5);
  EXPECT_EQ(a, b);
}

TEST(LshIndexTest, VisitBucketsSeesClusterSizedBuckets) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  int big_buckets = 0;
  size_t biggest = 0;
  lsh.VisitBuckets(6, [&](std::span<const Index> items) {
    ++big_buckets;
    biggest = std::max(biggest, items.size());
  });
  EXPECT_GT(big_buckets, 0);
  // At least one bucket should capture a large chunk of some cluster.
  EXPECT_GE(biggest, data.true_clusters[0].size() / 2);
}

TEST(LshIndexTest, DeterministicAcrossInstances) {
  LabeledData data = TightClusters();
  LshIndex a(data.data, DefaultParams(data));
  LshIndex b(data.data, DefaultParams(data));
  for (Index i = 0; i < 20; ++i) {
    auto ra = a.QueryByIndex(i);
    auto rb = b.QueryByIndex(i);
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb);
  }
}

TEST(LshIndexTest, MemoryBytesAccounted) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  EXPECT_GT(lsh.MemoryBytes(), 0u);
}

TEST(LshIndexTest, MeanCandidatesDiagnosticRuns) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  const double mean = lsh.MeanCandidatesPerItem(100);
  EXPECT_GE(mean, 0.0);
  EXPECT_LT(mean, static_cast<double>(data.size()));
}

// Property sweep over the segment length r: recall and candidate volume both
// grow with r (the Fig. 6 mechanism: larger r => denser sparsified matrix).
class LshSegmentLengthProperty : public ::testing::TestWithParam<double> {};

TEST_P(LshSegmentLengthProperty, CandidateVolumeGrowsWithR) {
  LabeledData data = TightClusters();
  LshParams small = DefaultParams(data);
  small.segment_length = data.suggested_lsh_r * GetParam();
  LshParams large = small;
  large.segment_length = small.segment_length * 4.0;
  LshIndex lsh_small(data.data, small);
  LshIndex lsh_large(data.data, large);
  EXPECT_LE(lsh_small.MeanCandidatesPerItem(150),
            lsh_large.MeanCandidatesPerItem(150) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(SegmentScales, LshSegmentLengthProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace alid
