// Tests of the p-stable LSH index: recall on planted clusters, selectivity
// against noise, bucket iteration and determinism.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"
#include "lsh/lsh_index.h"

namespace alid {
namespace {

LabeledData TightClusters(Index n = 300, int dim = 8, int clusters = 3) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.num_clusters = clusters;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;  // collision stats need separated clusters
  cfg.seed = 9;
  return MakeSynthetic(cfg);
}

LshParams DefaultParams(const LabeledData& data) {
  LshParams p;
  p.num_tables = 8;
  p.num_projections = 6;
  p.segment_length = data.suggested_lsh_r;
  return p;
}

TEST(LshIndexTest, QueryExcludesSelf) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  auto res = lsh.QueryByIndex(0);
  EXPECT_EQ(std::count(res.begin(), res.end(), 0), 0);
}

TEST(LshIndexTest, SameClusterRecallIsHigh) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  // For members of cluster 0, most same-cluster items should collide.
  const IndexList& truth = data.true_clusters[0];
  double recall_sum = 0.0;
  for (Index i : truth) {
    auto res = lsh.QueryByIndex(i);
    std::set<Index> set(res.begin(), res.end());
    int hit = 0;
    for (Index j : truth) {
      if (j != i && set.count(j)) ++hit;
    }
    recall_sum += static_cast<double>(hit) / (truth.size() - 1);
  }
  EXPECT_GT(recall_sum / truth.size(), 0.8);
}

TEST(LshIndexTest, CrossClusterCollisionsAreRare) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  const IndexList& c0 = data.true_clusters[0];
  const IndexList& c1 = data.true_clusters[1];
  int cross = 0, total = 0;
  for (Index i : c0) {
    auto res = lsh.QueryByIndex(i);
    std::set<Index> set(res.begin(), res.end());
    for (Index j : c1) {
      cross += set.count(j) != 0;
      ++total;
    }
  }
  EXPECT_LT(static_cast<double>(cross) / total, 0.05);
}

TEST(LshIndexTest, QueryByPointMatchesQueryByIndexBuckets) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  // Querying with an item's own coordinates returns its bucket mates (and
  // possibly the item itself).
  auto by_index = lsh.QueryByIndex(5);
  auto by_point = lsh.QueryByPoint(data.data[5]);
  std::set<Index> a(by_index.begin(), by_index.end());
  std::set<Index> b(by_point.begin(), by_point.end());
  b.erase(5);
  EXPECT_EQ(a, b);
}

TEST(LshIndexTest, VisitBucketsSeesClusterSizedBuckets) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  int big_buckets = 0;
  size_t biggest = 0;
  lsh.VisitBuckets(6, [&](std::span<const Index> items) {
    ++big_buckets;
    biggest = std::max(biggest, items.size());
  });
  EXPECT_GT(big_buckets, 0);
  // At least one bucket should capture a large chunk of some cluster.
  EXPECT_GE(biggest, data.true_clusters[0].size() / 2);
}

TEST(LshIndexTest, DeterministicAcrossInstances) {
  LabeledData data = TightClusters();
  LshIndex a(data.data, DefaultParams(data));
  LshIndex b(data.data, DefaultParams(data));
  for (Index i = 0; i < 20; ++i) {
    auto ra = a.QueryByIndex(i);
    auto rb = b.QueryByIndex(i);
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb);
  }
}

TEST(LshIndexTest, MemoryBytesAccounted) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  EXPECT_GT(lsh.MemoryBytes(), 0u);
}

TEST(LshIndexTest, MeanCandidatesDiagnosticRuns) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  const double mean = lsh.MeanCandidatesPerItem(100);
  EXPECT_GE(mean, 0.0);
  EXPECT_LT(mean, static_cast<double>(data.size()));
}

// Property sweep over the segment length r: recall and candidate volume both
// grow with r (the Fig. 6 mechanism: larger r => denser sparsified matrix).
class LshSegmentLengthProperty : public ::testing::TestWithParam<double> {};

TEST_P(LshSegmentLengthProperty, CandidateVolumeGrowsWithR) {
  LabeledData data = TightClusters();
  LshParams small = DefaultParams(data);
  small.segment_length = data.suggested_lsh_r * GetParam();
  LshParams large = small;
  large.segment_length = small.segment_length * 4.0;
  LshIndex lsh_small(data.data, small);
  LshIndex lsh_large(data.data, large);
  EXPECT_LE(lsh_small.MeanCandidatesPerItem(150),
            lsh_large.MeanCandidatesPerItem(150) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(SegmentScales, LshSegmentLengthProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(LshIndexTest, PointQueryOutParamMatchesAllocatingForm) {
  LabeledData data = TightClusters();
  LshIndex lsh(data.data, DefaultParams(data));
  std::vector<Index> out;
  for (Index i = 0; i < 25; ++i) {
    lsh.QueryByPoint(data.data[i], &out);
    auto allocated = lsh.QueryByPoint(data.data[i]);
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    std::sort(allocated.begin(), allocated.end());
    EXPECT_EQ(sorted, allocated) << "point " << i;
    // Repeated calls re-use the scratch and stay self-consistent.
    std::vector<Index> again;
    lsh.QueryByPoint(data.data[i], &again);
    EXPECT_EQ(out, again);
  }
}

// Seeded fuzz of the streaming mutations: random interleavings of
// RemoveItem / re-insertion (with recomputed keys) must leave the index
// answering every query exactly like a freshly built index from which the
// currently removed slots were removed once — no ghost bucket entries, no
// lost items, no drift in live bookkeeping.
class LshRemoveReinsertFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LshRemoveReinsertFuzz, InterleavedRemovalsMatchFreshIndex) {
  LabeledData data = TightClusters(240);
  const LshParams params = DefaultParams(data);
  LshIndex fuzzed(data.data, params);

  Rng rng(GetParam());
  const Index n = data.size();
  std::vector<uint8_t> removed(n, 0);
  std::vector<Index> removed_list;
  std::vector<uint64_t> keys(params.num_tables);
  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    if (op == 0 || removed_list.empty()) {
      // Remove a random live item (if any are left).
      if (static_cast<size_t>(n) == removed_list.size()) continue;
      Index target = static_cast<Index>(rng.UniformInt(0, n - 1));
      while (removed[target] != 0) target = (target + 1) % n;
      fuzzed.RemoveItem(target);
      removed[target] = 1;
      removed_list.push_back(target);
    } else if (op == 1) {
      // Re-insert a random removed slot (its row is unchanged, so the
      // recomputed keys are the original ones — the stream's slot re-use
      // path with an identical occupant).
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(removed_list.size()) - 1));
      const Index target = removed_list[pick];
      fuzzed.ComputeItemKeys(target, keys.data());
      fuzzed.InsertItemWithKeys(target, keys);
      removed[target] = 0;
      removed_list[pick] = removed_list.back();
      removed_list.pop_back();
    } else {
      // Query a random live item mid-interleaving; results must only ever
      // contain live items.
      if (static_cast<size_t>(n) == removed_list.size()) continue;
      Index probe = static_cast<Index>(rng.UniformInt(0, n - 1));
      while (removed[probe] != 0) probe = (probe + 1) % n;
      for (Index j : fuzzed.QueryByIndex(probe)) {
        ASSERT_EQ(removed[j], 0) << "ghost item " << j;
      }
    }
  }

  // Reference: a fresh index over the same data minus the removed set.
  LshIndex fresh(data.data, params);
  for (Index i = 0; i < n; ++i) {
    if (removed[i] != 0) fresh.RemoveItem(i);
  }
  ASSERT_EQ(fuzzed.live_count(), fresh.live_count());
  ASSERT_EQ(fuzzed.size(), fresh.size());
  for (Index i = 0; i < n; ++i) {
    ASSERT_EQ(fuzzed.IsItemRemoved(i), fresh.IsItemRemoved(i)) << i;
    if (removed[i] != 0) continue;
    auto got = fuzzed.QueryByIndex(i);
    auto want = fresh.QueryByIndex(i);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "item " << i;
  }
  // Batched queries agree too (the CIVS path over the surviving items).
  IndexList live;
  for (Index i = 0; i < n && static_cast<int>(live.size()) < 40; ++i) {
    if (removed[i] == 0) live.push_back(i);
  }
  std::vector<Index> got_batch;
  std::vector<Index> want_batch;
  fuzzed.QueryByIndexBatch(live, &got_batch);
  fresh.QueryByIndexBatch(live, &want_batch);
  std::sort(got_batch.begin(), got_batch.end());
  std::sort(want_batch.begin(), want_batch.end());
  EXPECT_EQ(got_batch, want_batch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LshRemoveReinsertFuzz,
                         ::testing::Values(1u, 17u, 404u, 9001u));

}  // namespace
}  // namespace alid
