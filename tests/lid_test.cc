// Correctness tests of LID (Algorithm 1): simplex invariants, density
// monotonicity (Theorem 2), KKT/immunity conditions at convergence
// (Theorem 1), incremental (A x) maintenance (Eq. 14), and the Eq. 17 range
// update — all validated against brute-force computations on materialized
// matrices.
#include <cmath>

#include <gtest/gtest.h>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "common/random.h"
#include "core/lid.h"
#include "core/simplex.h"
#include "data/synthetic.h"

namespace alid {
namespace {

// A small scattered dataset with one clear dense pack around the origin.
Dataset PackAndOutliers(uint64_t seed = 3, int pack = 6, int outliers = 5) {
  Rng rng(seed);
  Dataset d(2);
  for (int i = 0; i < pack; ++i) {
    d.Append(std::vector<Scalar>{rng.Gaussian(0.0, 0.05),
                                 rng.Gaussian(0.0, 0.05)});
  }
  for (int i = 0; i < outliers; ++i) {
    d.Append(std::vector<Scalar>{rng.Uniform(3.0, 8.0),
                                 rng.Uniform(3.0, 8.0)});
  }
  return d;
}

// Brute-force pi(s_j, x) over the support of a Lid instance.
Scalar BruteAverageAffinity(const Dataset& data, const AffinityFunction& f,
                            const std::vector<std::pair<Index, Scalar>>& sup,
                            Index j) {
  Scalar s = 0.0;
  for (const auto& [g, w] : sup) s += w * f(data, g, j);
  return s;
}

Scalar BruteDensity(const Dataset& data, const AffinityFunction& f,
                    const std::vector<std::pair<Index, Scalar>>& sup) {
  Scalar s = 0.0;
  for (const auto& [gi, wi] : sup) {
    for (const auto& [gj, wj] : sup) s += wi * wj * f(data, gi, gj);
  }
  return s;
}

class LidFixture : public ::testing::Test {
 protected:
  LidFixture()
      : data_(PackAndOutliers()),
        affinity_({.k = 1.0, .p = 2.0}),
        oracle_(data_, affinity_) {}

  // Puts every vertex into the seed's local range so LID solves the global
  // StQP directly.
  Lid MakeGlobalLid(Index seed) {
    Lid lid(oracle_, seed, {});
    IndexList all;
    for (Index i = 0; i < data_.size(); ++i) {
      if (i != seed) all.push_back(i);
    }
    lid.UpdateRange(all);
    return lid;
  }

  Dataset data_;
  AffinityFunction affinity_;
  LazyAffinityOracle oracle_;
};

TEST_F(LidFixture, StartsAsSeedSingleton) {
  Lid lid(oracle_, 2, {});
  EXPECT_EQ(lid.beta(), IndexList{2});
  EXPECT_DOUBLE_EQ(lid.Density(), 0.0);
  EXPECT_DOUBLE_EQ(lid.WeightOf(2), 1.0);
}

TEST_F(LidFixture, RunConvergesAndStaysOnSimplex) {
  Lid lid = MakeGlobalLid(0);
  lid.Run();
  EXPECT_TRUE(lid.converged());
  Scalar sum = 0.0;
  for (const auto& [g, w] : lid.SupportWeights()) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(LidFixture, ConvergedSubgraphIsImmune) {
  Lid lid = MakeGlobalLid(0);
  lid.Run();
  const Scalar pi = lid.Density();
  const auto sup = lid.SupportWeights();
  // Theorem 1: at a dense subgraph, pi(s_j, x) <= pi(x) for all j, with
  // equality on the support.
  for (Index j = 0; j < data_.size(); ++j) {
    const Scalar aff = BruteAverageAffinity(data_, affinity_, sup, j);
    EXPECT_LE(aff, pi + 1e-7) << "vertex " << j << " still infective";
  }
  for (const auto& [g, w] : sup) {
    const Scalar aff = BruteAverageAffinity(data_, affinity_, sup, g);
    EXPECT_NEAR(aff, pi, 1e-7) << "support vertex " << g;
  }
}

TEST_F(LidFixture, DensityMatchesBruteForce) {
  Lid lid = MakeGlobalLid(1);
  lid.Run();
  EXPECT_NEAR(lid.Density(),
              BruteDensity(data_, affinity_, lid.SupportWeights()), 1e-9);
}

TEST_F(LidFixture, DensityIsMonotoneAcrossInvasions) {
  LidOptions opts;
  opts.max_iterations = 1;  // single invasion per Run()
  Lid lid(oracle_, 0, opts);
  IndexList all;
  for (Index i = 1; i < data_.size(); ++i) all.push_back(i);
  lid.UpdateRange(all);
  Scalar prev = lid.Density();
  for (int step = 0; step < 200 && !lid.converged(); ++step) {
    lid.Run();
    const Scalar now = lid.Density();
    EXPECT_GE(now, prev - 1e-12) << "Theorem 2 violated at step " << step;
    prev = now;
  }
}

TEST_F(LidFixture, FindsThePackNotTheOutliers) {
  Lid lid = MakeGlobalLid(0);  // seed inside the pack
  lid.Run();
  IndexList support = lid.Support();
  // The dense pack is items 0..5; outliers are 6..10.
  for (Index g : support) EXPECT_LT(g, 6) << "outlier in dominant cluster";
  EXPECT_GE(support.size(), 3u);
}

TEST_F(LidFixture, AverageAffinityToMatchesBruteForce) {
  Lid lid = MakeGlobalLid(0);
  lid.Run();
  const auto sup = lid.SupportWeights();
  for (Index j = 0; j < data_.size(); ++j) {
    EXPECT_NEAR(lid.AverageAffinityTo(j),
                BruteAverageAffinity(data_, affinity_, sup, j), 1e-9);
  }
}

TEST_F(LidFixture, UpdateRangeKeepsDensityAndWeights) {
  Lid lid(oracle_, 0, {});
  lid.UpdateRange({1, 2, 3});
  lid.Run();
  const Scalar before = lid.Density();
  const auto sup_before = lid.SupportWeights();
  lid.UpdateRange({4, 5, 6, 7});
  // x is unchanged by the range update (Eq. 17 only extends the rows).
  EXPECT_NEAR(lid.Density(), before, 1e-9);
  EXPECT_EQ(lid.SupportWeights(), sup_before);
}

TEST_F(LidFixture, UpdateRangeDropsNonSupportMembers) {
  Lid lid(oracle_, 0, {});
  lid.UpdateRange({1, 2, 3, 6, 7});  // includes outliers
  lid.Run();
  // Outliers get zero weight; after the next update they leave beta.
  lid.UpdateRange({4});
  for (Index g : lid.beta()) {
    EXPECT_TRUE(g <= 5 || lid.WeightOf(g) > 0.0 || g == 4)
        << "non-support vertex " << g << " kept in beta";
  }
}

TEST_F(LidFixture, RangeUpdateThenRunImprovesDensity) {
  Lid lid(oracle_, 0, {});
  lid.UpdateRange({1, 2});
  lid.Run();
  const Scalar small_pi = lid.Density();
  lid.UpdateRange({3, 4, 5});
  lid.Run();
  EXPECT_GE(lid.Density(), small_pi - 1e-12);
}

TEST_F(LidFixture, ColumnsOnlyComputedForInvadedVertices) {
  oracle_.ResetCounters();
  Lid lid = MakeGlobalLid(0);
  lid.Run();
  // Far fewer kernel evaluations than the full n^2 matrix.
  const int64_t n = data_.size();
  EXPECT_LT(oracle_.entries_computed(), n * n);
}

TEST_F(LidFixture, MemoryChargeReleasedOnDestruction) {
  oracle_.ResetCounters();
  {
    Lid lid = MakeGlobalLid(0);
    lid.Run();
    EXPECT_GT(oracle_.current_bytes(), 0);
  }
  EXPECT_EQ(oracle_.current_bytes(), 0);
}

// Property sweep: for every seed, the converged local dense subgraph is
// immune against the whole range (Theorem 1) and lives on the simplex.
class LidSeedProperty : public ::testing::TestWithParam<int> {};

TEST_P(LidSeedProperty, ConvergenceInvariantsHoldFromAnySeed) {
  Dataset data = PackAndOutliers(77, 7, 6);
  AffinityFunction affinity({.k = 1.0, .p = 2.0});
  LazyAffinityOracle oracle(data, affinity);
  const Index seed = GetParam() % data.size();
  Lid lid(oracle, seed, {});
  IndexList all;
  for (Index i = 0; i < data.size(); ++i) {
    if (i != seed) all.push_back(i);
  }
  lid.UpdateRange(all);
  lid.Run();
  ASSERT_TRUE(lid.converged());
  const Scalar pi = lid.Density();
  const auto sup = lid.SupportWeights();
  Scalar sum = 0.0;
  for (const auto& [g, w] : sup) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (Index j = 0; j < data.size(); ++j) {
    EXPECT_LE(BruteAverageAffinity(data, affinity, sup, j), pi + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSeeds, LidSeedProperty, ::testing::Range(0, 13));

// Property sweep over kernel scales: invariants hold as the affinity
// landscape sharpens.
class LidScaleProperty : public ::testing::TestWithParam<double> {};

TEST_P(LidScaleProperty, ImmunityHoldsAcrossKernelScales) {
  Dataset data = PackAndOutliers(5, 8, 4);
  AffinityFunction affinity({.k = GetParam(), .p = 2.0});
  LazyAffinityOracle oracle(data, affinity);
  Lid lid(oracle, 0, {});
  IndexList all;
  for (Index i = 1; i < data.size(); ++i) all.push_back(i);
  lid.UpdateRange(all);
  lid.Run();
  const Scalar pi = lid.Density();
  for (Index j = 0; j < data.size(); ++j) {
    EXPECT_LE(lid.AverageAffinityTo(j), pi + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(KernelScales, LidScaleProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace alid
