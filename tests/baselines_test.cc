// Tests of the EGT/affinity baselines: IID, replicator dynamics / dominant
// sets, SEA and affinity propagation — including cross-checks against each
// other and against LID's first-order optimality conditions.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/ap.h"
#include "baselines/iid.h"
#include "baselines/replicator.h"
#include "baselines/sea.h"
#include "lsh/lsh_index.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 300, uint64_t seed = 13) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 3;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.7;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;  // baseline unit tests use separated blobs
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

class BaselinesFixture : public ::testing::Test {
 protected:
  BaselinesFixture()
      : data_(Workload()),
        affinity_({.k = data_.suggested_k, .p = 2.0}),
        matrix_(data_.data, affinity_),
        view_(&matrix_.matrix()) {}

  LabeledData data_;
  AffinityFunction affinity_;
  AffinityMatrix matrix_;
  AffinityView view_;
};

// --------------------------------------------------------------------- IID --

TEST_F(BaselinesFixture, IidExtractsImmuneSubgraph) {
  IidDetector iid(view_);
  Cluster c = iid.ExtractOne();
  ASSERT_FALSE(c.members.empty());
  // Theorem 1: pi(s_j, x) <= pi(x) for every vertex at convergence.
  std::vector<Scalar> x(data_.size(), 0.0);
  for (size_t t = 0; t < c.members.size(); ++t) x[c.members[t]] = c.weights[t];
  auto ax = matrix_.matrix().MatVec(x);
  for (Index j = 0; j < data_.size(); ++j) {
    EXPECT_LE(ax[j], c.density + 1e-7);
  }
}

TEST_F(BaselinesFixture, IidDensityMatchesQuadraticForm) {
  IidDetector iid(view_);
  Cluster c = iid.ExtractOne();
  std::vector<Scalar> x(data_.size(), 0.0);
  for (size_t t = 0; t < c.members.size(); ++t) x[c.members[t]] = c.weights[t];
  EXPECT_NEAR(c.density, matrix_.matrix().QuadraticForm(x), 1e-8);
}

TEST_F(BaselinesFixture, IidPeelingRecoversPlantedClusters) {
  IidDetector iid(view_);
  DetectionResult result = iid.DetectAll().Filtered(0.75);
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.85);
}

// The paper's sparsification route (Section 5.1): keep the affinities of
// LSH-colliding pairs. Unlike a k-NN graph, this preserves the intra-cluster
// cliques, so the EGT methods still see the dense subgraphs.
SparseMatrix LshSparsified(const LabeledData& data,
                           const AffinityFunction& affinity,
                           int num_tables = 12) {
  LshParams lp;
  lp.num_tables = num_tables;
  lp.num_projections = 6;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  return Sparsifier::FromLshCollisions(data.data, affinity, lsh);
}

TEST_F(BaselinesFixture, IidRunsOnSparseMatrixToo) {
  SparseMatrix sparse = LshSparsified(data_, affinity_);
  IidDetector iid{AffinityView(&sparse)};
  DetectionResult result = iid.DetectAll().Filtered(0.5);
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.6);
}

// ---------------------------------------------------------------- RD / DS --

TEST_F(BaselinesFixture, ReplicatorIncreasesDensity) {
  std::vector<Scalar> x(data_.size(), 1.0 / data_.size());
  const Scalar before = matrix_.matrix().QuadraticForm(x);
  ReplicatorOptions opts;
  opts.max_iterations = 50;
  RunReplicatorDynamics(view_, x, opts);
  EXPECT_GT(matrix_.matrix().QuadraticForm(x), before);
}

TEST_F(BaselinesFixture, ReplicatorPreservesSimplex) {
  std::vector<Scalar> x(data_.size(), 1.0 / data_.size());
  ReplicatorOptions opts;
  opts.max_iterations = 200;
  RunReplicatorDynamics(view_, x, opts);
  Scalar sum = 0.0;
  for (Scalar v : x) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(BaselinesFixture, DominantSetAgreesWithIidDensity) {
  IidDetector iid(view_);
  DominantSetDetector ds(view_);
  const Scalar pi_iid = iid.ExtractOne().density;
  const Scalar pi_ds = ds.ExtractOne().density;
  // Both solve the same StQP from the same start: densities should agree.
  EXPECT_NEAR(pi_iid, pi_ds, 0.02);
}

TEST_F(BaselinesFixture, DominantSetPeelingQuality) {
  DominantSetDetector ds(view_);
  DetectionResult result = ds.DetectAll().Filtered(0.75);
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.8);
}

// --------------------------------------------------------------------- SEA --

TEST_F(BaselinesFixture, SeaGrowsSeedIntoItsCluster) {
  SparseMatrix sparse = LshSparsified(data_, affinity_);
  SeaDetector sea{AffinityView(&sparse)};
  const Index seed = data_.true_clusters[0][0];
  Cluster c = sea.ExtractFrom(seed);
  std::set<Index> truth(data_.true_clusters[0].begin(),
                        data_.true_clusters[0].end());
  int hits = 0;
  for (Index g : c.members) hits += truth.count(g) != 0;
  ASSERT_FALSE(c.members.empty());
  EXPECT_GT(static_cast<double>(hits) / c.members.size(), 0.9);
}

TEST_F(BaselinesFixture, SeaDetectAllQualityOnSparseGraph) {
  // SEA's quality tracks the sparsified graph's recall (the paper's Fig. 6
  // observation) — with enough LSH tables it recovers the clusters well.
  SparseMatrix sparse = LshSparsified(data_, affinity_, 16);
  SeaDetector sea{AffinityView(&sparse)};
  DetectionResult result = sea.DetectAll().Filtered(0.6);
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.65);
}

TEST_F(BaselinesFixture, SeaIsolatedSeedReturnsSingleton) {
  // An empty graph: no edges at all.
  SparseMatrix empty = SparseMatrix::FromTriplets(10, 10, {});
  SeaDetector sea{AffinityView(&empty)};
  Cluster c = sea.ExtractFrom(3);
  ASSERT_EQ(c.members.size(), 1u);
  EXPECT_EQ(c.members[0], 3);
  EXPECT_DOUBLE_EQ(c.density, 0.0);
}

// ---------------------------------------------------------------------- AP --

TEST_F(BaselinesFixture, ApPartitionsAllItems) {
  ApDetector ap(view_);
  DetectionResult result = ap.Detect();
  std::vector<int> seen(data_.size(), 0);
  for (const Cluster& c : result.clusters) {
    for (Index g : c.members) ++seen[g];
  }
  for (Index i = 0; i < data_.size(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST_F(BaselinesFixture, ApFindsThePlantedClusters) {
  ApDetector ap(view_);
  DetectionResult result = ap.Detect();
  // AP over-segments noise, but each true cluster should map onto some
  // detected cluster well.
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.7);
}

TEST_F(BaselinesFixture, ApRunsOnSparsifiedMatrix) {
  SparseMatrix sparse = LshSparsified(data_, affinity_);
  // On a sparsified matrix the surviving similarities are the high
  // intra-cluster ones, so the median-preference default over-segments; the
  // preference must sit below them (the "carefully tuned" knob of Sec. 5).
  ApOptions opts;
  opts.preference = 0.01;
  ApDetector ap{AffinityView(&sparse), opts};
  DetectionResult result = ap.Detect();
  EXPECT_GT(AverageF1(data_.true_clusters, result), 0.6);
}

TEST(ApEdgeCaseTest, TwoObviousPairs) {
  // Four points: two tight pairs far apart => two clusters.
  Dataset d(1, {0.0, 0.1, 10.0, 10.1});
  AffinityFunction f({.k = 1.0, .p = 2.0});
  AffinityMatrix m(d, f);
  ApDetector ap{AffinityView(&m.matrix())};
  DetectionResult result = ap.Detect();
  ASSERT_EQ(result.clusters.size(), 2u);
  std::set<Index> c0(result.clusters[0].members.begin(),
                     result.clusters[0].members.end());
  EXPECT_TRUE((c0 == std::set<Index>{0, 1}) || (c0 == std::set<Index>{2, 3}));
}

// Cross-method property: on the same dense matrix, the EGT methods find
// clusters of comparable density for the same planted structure.
class EgtAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EgtAgreementProperty, IidAndDsDensitiesAgree) {
  LabeledData data = Workload(200, GetParam());
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix m(data.data, f);
  AffinityView view(&m.matrix());
  const Scalar pi_iid = IidDetector(view).ExtractOne().density;
  const Scalar pi_ds = DominantSetDetector(view).ExtractOne().density;
  EXPECT_NEAR(pi_iid, pi_ds, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EgtAgreementProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace alid
