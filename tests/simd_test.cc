// Tests of the SIMD kernel subsystem: runtime dispatch sanity, SoA tile
// layout, bit-identity of every compiled-in ISA's tile kernels against the
// scalar oracle and against the row-major reference loops, and end-to-end
// bit-identity of the stream (absorb) and serve (Assign/TopK) decisions
// across ISA paths — the contract that lets the vector path be the default.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/dataset.h"
#include "common/random.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "serve/cluster_snapshot.h"
#include "simd/simd_dispatch.h"
#include "simd/soa_block.h"
#include "test_util.h"

namespace alid {
namespace {

// Bitwise double equality (EXPECT_EQ would accept -0.0 == +0.0).
void ExpectSameBits(Scalar a, Scalar b, const char* what, int where) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  EXPECT_EQ(ba, bb) << what << " lane/index " << where << ": " << a
                    << " vs " << b;
}

Dataset RandomRows(Index n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> row(dim);
  for (Index i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.Uniform(-50.0, 50.0);
    d.Append(row);
  }
  return d;
}

std::vector<Scalar> RandomQuery(int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Scalar> q(dim);
  for (auto& v : q) v = rng.Uniform(-50.0, 50.0);
  return q;
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailableAndListedFirst) {
  const auto isas = AvailableSimdIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), SimdIsa::kScalar);
  ASSERT_NE(SimdOpsFor(SimdIsa::kScalar), nullptr);
  EXPECT_STREQ(SimdOpsFor(SimdIsa::kScalar)->name, "scalar");
}

TEST(SimdDispatchTest, ActiveOpsComeFromAnAvailableIsa) {
  const SimdKernelOps* active = ActiveSimdOps();
  ASSERT_NE(active, nullptr);
  bool found = false;
  for (SimdIsa isa : AvailableSimdIsas()) {
    if (SimdOpsFor(isa) == active) {
      found = true;
      EXPECT_EQ(isa, ActiveSimdIsa());
      EXPECT_STREQ(SimdIsaName(isa), active->name);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimdDispatchTest, EveryAvailableIsaHasOpsAndAName) {
  for (SimdIsa isa : AvailableSimdIsas()) {
    const SimdKernelOps* ops = SimdOpsFor(isa);
    ASSERT_NE(ops, nullptr) << SimdIsaName(isa);
    EXPECT_NE(ops->tile_squared_l2, nullptr) << SimdIsaName(isa);
    EXPECT_NE(ops->tile_l1, nullptr) << SimdIsaName(isa);
    EXPECT_STREQ(ops->name, SimdIsaName(isa));
  }
}

TEST(SimdDispatchTest, ScalarEnvPinForcesTheScalarPath) {
  // The CI force-fallback leg reruns this binary with ALID_SIMD=scalar; the
  // dispatch must then resolve scalar no matter what the CPU supports. An
  // unset/auto env leaves dispatch free, and the test asserts nothing.
  const char* pin = std::getenv("ALID_SIMD");
  if (pin != nullptr && std::string(pin) == "scalar") {
    EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
    EXPECT_EQ(ActiveSimdOps(), SimdOpsFor(SimdIsa::kScalar));
  }
}

TEST(SimdDispatchTest, ScopedOverridePinsAndRestores) {
  const SimdIsa before = ActiveSimdIsa();
  {
    ScopedSimdIsaOverride pin(SimdIsa::kScalar);
    EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
    EXPECT_EQ(ActiveSimdOps(), SimdOpsFor(SimdIsa::kScalar));
  }
  EXPECT_EQ(ActiveSimdIsa(), before);
}

TEST(SoaBlockTest, TilesAreDimensionMajorWithZeroPaddedTail) {
  const int dim = 5;
  const Index n = 11;  // 1 full tile + 3 live lanes in the second
  Dataset rows = RandomRows(n, dim, 7);
  SoaBlock block;
  block.GatherRows(rows, [] {
    IndexList all;
    for (Index i = 0; i < 11; ++i) all.push_back(i);
    return all;
  }());
  ASSERT_EQ(block.count(), n);
  ASSERT_EQ(block.dim(), dim);
  ASSERT_EQ(block.num_tiles(), 2);
  for (Index t = 0; t < block.num_tiles(); ++t) {
    const Scalar* tile = block.tile(t);
    for (int k = 0; k < dim; ++k) {
      for (int l = 0; l < kSimdTileLanes; ++l) {
        const Index member = t * kSimdTileLanes + l;
        const Scalar want = member < n ? rows[member][k] : 0.0;
        ExpectSameBits(tile[k * kSimdTileLanes + l], want, "tile layout",
                       k * kSimdTileLanes + l);
      }
    }
  }
}

TEST(SoaBlockTest, FromRowMajorMatchesGatherRows) {
  const int dim = 6;
  const Index n = 13;
  Dataset rows = RandomRows(n, dim, 11);
  IndexList all;
  for (Index i = 0; i < n; ++i) all.push_back(i);
  SoaBlock gathered, contiguous;
  gathered.GatherRows(rows, all);
  contiguous.FromRowMajor(rows.raw().data(), n, dim);
  ASSERT_EQ(gathered.count(), contiguous.count());
  ASSERT_EQ(gathered.num_tiles(), contiguous.num_tiles());
  const size_t tile_scalars = static_cast<size_t>(dim) * kSimdTileLanes;
  for (Index t = 0; t < gathered.num_tiles(); ++t) {
    EXPECT_EQ(std::memcmp(gathered.tile(t), contiguous.tile(t),
                          tile_scalars * sizeof(Scalar)),
              0)
        << "tile " << t;
  }
}

// Every compiled-in ISA's tile kernels must produce bit-identical outputs to
// the scalar ops AND to the row-major reference accumulation, across odd
// dimensions and ragged final tiles.
TEST(SimdKernelTest, TileKernelsBitIdenticalToScalarReference) {
  for (const int dim : {1, 3, 8, 17}) {
    for (const Index n : {1, 7, 8, 9, 24, 29}) {
      Dataset rows = RandomRows(n, dim, 100 + dim * 31 + n);
      const std::vector<Scalar> query = RandomQuery(dim, 900 + n);
      SoaBlock block;
      block.FromRowMajor(rows.raw().data(), n, dim);
      for (Index t = 0; t < block.num_tiles(); ++t) {
        // Row-major reference: ascending-dimension separate subtract /
        // multiply / add, exactly the Dataset::SquaredL2 loop (the whole
        // build compiles with -ffp-contract=off, this test included).
        Scalar ref_sq[kSimdTileLanes] = {0};
        Scalar ref_l1[kSimdTileLanes] = {0};
        for (int l = 0; l < kSimdTileLanes; ++l) {
          const Index member = t * kSimdTileLanes + l;
          if (member >= n) continue;
          Scalar acc2 = 0.0, acc1 = 0.0;
          for (int k = 0; k < dim; ++k) {
            const Scalar diff = rows[member][k] - query[k];
            acc2 += diff * diff;
            acc1 += std::abs(diff);
          }
          ref_sq[l] = acc2;
          ref_l1[l] = acc1;
        }
        for (SimdIsa isa : AvailableSimdIsas()) {
          const SimdKernelOps* ops = SimdOpsFor(isa);
          Scalar out_sq[kSimdTileLanes], out_l1[kSimdTileLanes];
          ops->tile_squared_l2(block.tile(t), dim, query.data(), out_sq);
          ops->tile_l1(block.tile(t), dim, query.data(), out_l1);
          SCOPED_TRACE(testing::Message()
                       << "isa=" << SimdIsaName(isa) << " dim=" << dim
                       << " n=" << n << " tile=" << t);
          for (int l = 0; l < kSimdTileLanes; ++l) {
            if (t * kSimdTileLanes + l >= n) continue;
            ExpectSameBits(out_sq[l], ref_sq[l], "squared_l2", l);
            ExpectSameBits(out_l1[l], ref_l1[l], "l1", l);
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, TileDistancesBitIdenticalToLpDistance) {
  const int dim = 9;
  const Index n = 21;
  Dataset rows = RandomRows(n, dim, 41);
  const std::vector<Scalar> query = RandomQuery(dim, 42);
  SoaBlock block;
  block.FromRowMajor(rows.raw().data(), n, dim);
  for (const double p : {2.0, 1.0}) {
    ASSERT_TRUE(SimdSupportsNorm(p));
    for (SimdIsa isa : AvailableSimdIsas()) {
      const SimdKernelOps* ops = SimdOpsFor(isa);
      for (Index t = 0; t < block.num_tiles(); ++t) {
        Scalar out[kSimdTileLanes];
        TileDistances(*ops, block, t, query.data(), p, out);
        for (int l = 0; l < kSimdTileLanes; ++l) {
          const Index member = t * kSimdTileLanes + l;
          if (member >= n) continue;
          SCOPED_TRACE(testing::Message() << "isa=" << SimdIsaName(isa)
                                          << " p=" << p << " member="
                                          << member);
          ExpectSameBits(out[l], LpDistance(rows[member], query, p),
                         "TileDistances", l);
        }
      }
    }
  }
}

TEST(SimdKernelTest, GatheredDistancesBitIdenticalToDatasetDistanceTo) {
  const int dim = 12;
  Dataset rows = RandomRows(64, dim, 77);
  const std::vector<Scalar> query = RandomQuery(dim, 78);
  // An arbitrary non-contiguous gather with duplicates and a ragged tail.
  const IndexList items{3, 60, 7, 7, 0, 31, 12, 45, 63, 2, 18};
  for (const double p : {2.0, 1.0}) {
    for (SimdIsa isa : AvailableSimdIsas()) {
      std::vector<Scalar> out(items.size());
      GatheredDistances(*SimdOpsFor(isa), rows, items, query, p, out.data());
      for (size_t i = 0; i < items.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "isa=" << SimdIsaName(isa)
                                        << " p=" << p << " i=" << i);
        ExpectSameBits(out[i], rows.DistanceTo(items[i], query, p),
                       "GatheredDistances", static_cast<int>(i));
      }
    }
  }
}

TEST(SimdKernelTest, WeightedKernelSumBitIdenticalToScalarLoop) {
  const int dim = 10;
  const Index n = 19;
  Dataset rows = RandomRows(n, dim, 55);
  const std::vector<Scalar> query = RandomQuery(dim, 56);
  Rng rng(57);
  std::vector<Scalar> weights(n);
  for (auto& w : weights) w = rng.Uniform(0.0, 1.0);
  SoaBlock block;
  block.FromRowMajor(rows.raw().data(), n, dim);
  for (const double p : {2.0, 1.0}) {
    AffinityFunction fn({.k = 0.37, .p = p});
    // The member-order serial accumulation of the row-major scalar path.
    Scalar want = 0.0;
    for (Index i = 0; i < n; ++i) {
      want += weights[i] * fn.FromDistance(rows.DistanceTo(i, query, p));
    }
    for (SimdIsa isa : AvailableSimdIsas()) {
      const Scalar got =
          SoaWeightedKernelSum(*SimdOpsFor(isa), block, weights, fn,
                               query.data());
      SCOPED_TRACE(testing::Message() << "isa=" << SimdIsaName(isa)
                                      << " p=" << p);
      ExpectSameBits(got, want, "SoaWeightedKernelSum", 0);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity across ISA paths.

LabeledData Workload(Index n = 420, uint64_t seed = 91) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  // Overlapping clusters put arrivals in LSH reach of losing candidates —
  // the situation where the sketch walk actually rejects some of them.
  cfg.overlap_clusters = true;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions StreamOptions(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 96;
  // Engage the sketch on this workload's modest clusters so the tiled
  // prefix walk is exercised, not just the exact tile summation.
  opts.sketch.min_support = 16;
  return opts;
}

// The shuffled dataset followed by `probes` near-miss arrivals — jittered
// copies of data rows, some of which collide with a cluster's LSH buckets
// while scoring far below its absorb threshold: exactly the arrivals the
// sketch bound rejects (same mix as sketch_test's prune-provoking streams).
std::vector<Scalar> ArrivalMix(const LabeledData& data, Index probes) {
  const int dim = data.data.dim();
  Rng rng(5);
  std::vector<Scalar> flat;
  for (Index i : rng.Permutation(data.size())) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  for (Index q = 0; q < probes; ++q) {
    const auto row =
        data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
    const double magnitude = (1 << (q % 5)) * 0.5;  // 0.5x .. 8x jitter
    for (int d = 0; d < dim; ++d) {
      flat.push_back(row[d] + rng.Gaussian() * magnitude);
    }
  }
  return flat;
}

std::unique_ptr<OnlineAlid> RunStream(const LabeledData& data,
                                      const OnlineAlidOptions& opts,
                                      Index batch,
                                      const std::vector<Scalar>& flat) {
  const int dim = data.data.dim();
  auto online = std::make_unique<OnlineAlid>(dim, opts);
  const Index count = static_cast<Index>(flat.size()) / dim;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    online->InsertBatch(std::span<const Scalar>(
        flat.data() + static_cast<size_t>(begin) * dim,
        static_cast<size_t>(size) * dim));
  }
  online->Refresh();
  return online;
}

void ExpectIdenticalStreams(const OnlineAlid& a, const OnlineAlid& b) {
  DetectionResult da, db;
  da.clusters = a.clusters();
  db.clusters = b.clusters();
  ExpectIdenticalDetections(da, db);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.alive(), b.alive());
  const StreamStats& sa = a.stats();
  const StreamStats& sb = b.stats();
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.absorbed, sb.absorbed);
  EXPECT_EQ(sa.pooled, sb.pooled);
  EXPECT_EQ(sa.evicted, sb.evicted);
  EXPECT_EQ(sa.redetections, sb.redetections);
  EXPECT_EQ(sa.clusters_born, sb.clusters_born);
  EXPECT_EQ(sa.clusters_dissolved, sb.clusters_dissolved);
  // The sketch filter's prune/exact split is part of the contract: the tiled
  // walk must take the same branch at every checkpoint as the scalar walk.
  EXPECT_EQ(sa.sketch_prunes, sb.sketch_prunes);
  EXPECT_EQ(sa.sketch_exact, sb.sketch_exact);
}

// The tentpole's headline contract: a stream run entirely on the scalar
// oracle path and a stream run on the dispatched vector path make the same
// absorb/pool/evict decisions, produce the same clusters (weights and
// densities bit-equal), and even take the same sketch prune branches.
TEST(SimdStreamTest, StreamBitIdenticalAcrossIsaPaths) {
  LabeledData data = Workload();
  const std::vector<Scalar> flat = ArrivalMix(data, 120);
  const Index batch = 37;
  int64_t total_prunes = 0;

  for (const Index window : {Index{0}, Index{260}}) {
    OnlineAlidOptions opts = StreamOptions(data);
    opts.window = window;  // 260: evictions + repairs happen mid-stream

    std::unique_ptr<OnlineAlid> scalar;
    {
      ScopedSimdIsaOverride pin(SimdIsa::kScalar);
      scalar = RunStream(data, opts, batch, flat);
    }
    ASSERT_GT(scalar->clusters().size(), 0u);
    total_prunes += scalar->stats().sketch_prunes;

    for (SimdIsa isa : AvailableSimdIsas()) {
      ScopedSimdIsaOverride pin(isa);
      std::unique_ptr<OnlineAlid> vec = RunStream(data, opts, batch, flat);
      SCOPED_TRACE(testing::Message()
                   << "isa=" << SimdIsaName(isa) << " window=" << window);
      ExpectIdenticalStreams(*scalar, *vec);
      for (Index i = 0; i < scalar->size(); ++i) {
        ASSERT_EQ(scalar->IsAlive(i), vec->IsAlive(i)) << "slot " << i;
        ASSERT_EQ(scalar->ClusterOf(i), vec->ClusterOf(i)) << "slot " << i;
      }
    }
  }
  // The sweep must take the tiled sketch walk's reject branch somewhere, or
  // the equality above says nothing about it.
  EXPECT_GT(total_prunes, 0);
}

// Flat serve query mix: jittered data rows sweeping through the
// collide-but-fail band (the prune region between "absorbs" and "no LSH
// collision at all"), with far-off uniform noise mixed in.
std::vector<Scalar> ServeQueries(const LabeledData& data, int count) {
  const int dim = data.data.dim();
  Rng rng(11);
  std::vector<Scalar> queries;
  for (int q = 0; q < count; ++q) {
    if (q % 6 == 5) {
      for (int d = 0; d < dim; ++d) {
        queries.push_back(rng.Uniform(-900.0, 900.0));
      }
    } else {
      const auto row =
          data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
      const double magnitude = 2.0 * (q % 5);  // 0, 2, 4, 6, 8
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * magnitude);
      }
    }
  }
  return queries;
}

void ExpectSameOutcome(const AssignOutcome& a, const AssignOutcome& b,
                       Index q) {
  EXPECT_EQ(a.cluster, b.cluster) << "query " << q;
  ExpectSameBits(a.affinity, b.affinity, "affinity", static_cast<int>(q));
  ExpectSameBits(a.margin, b.margin, "margin", static_cast<int>(q));
  EXPECT_EQ(a.sketch_prunes, b.sketch_prunes) << "query " << q;
  EXPECT_EQ(a.sketch_exact, b.sketch_exact) << "query " << q;
}

TEST(SimdServeTest, AssignAndTopKBitIdenticalAcrossIsaPaths) {
  LabeledData data = Workload(460, 23);
  auto online =
      RunStream(data, StreamOptions(data), 37, ArrivalMix(data, 0));
  const auto snap = ClusterSnapshot::FromStream(*online);
  ASSERT_GT(snap->num_clusters(), 1);
  const int dim = data.data.dim();
  const std::vector<Scalar> queries = ServeQueries(data, 300);
  const Index count = static_cast<Index>(queries.size()) / dim;

  std::vector<AssignOutcome> expected(count);
  std::vector<std::vector<ScoredCluster>> expected_topk(count);
  {
    ScopedSimdIsaOverride pin(SimdIsa::kScalar);
    for (Index q = 0; q < count; ++q) {
      const std::span<const Scalar> point(queries.data() + q * dim, dim);
      expected[q] = snap->Assign(point);
      expected_topk[q] = snap->TopKClusters(point, 3);
    }
  }

  int pruned = 0;
  for (const auto& o : expected) pruned += o.sketch_prunes;
  EXPECT_GT(pruned, 0);  // the tiled sketch walk must actually engage

  for (SimdIsa isa : AvailableSimdIsas()) {
    ScopedSimdIsaOverride pin(isa);
    SCOPED_TRACE(testing::Message() << "isa=" << SimdIsaName(isa));
    for (Index q = 0; q < count; ++q) {
      const std::span<const Scalar> point(queries.data() + q * dim, dim);
      ExpectSameOutcome(snap->Assign(point), expected[q], q);
      const auto topk = snap->TopKClusters(point, 3);
      ASSERT_EQ(topk.size(), expected_topk[q].size()) << "query " << q;
      for (size_t r = 0; r < topk.size(); ++r) {
        EXPECT_EQ(topk[r].cluster, expected_topk[q][r].cluster)
            << "query " << q << " rank " << r;
        ExpectSameBits(topk[r].affinity, expected_topk[q][r].affinity,
                       "topk affinity", static_cast<int>(r));
        EXPECT_EQ(topk[r].absorbable, expected_topk[q][r].absorbable)
            << "query " << q << " rank " << r;
      }
    }
  }
}

// AssignBatch only reorders the work query-major; winner, affinity, margin
// and the sketch counters must match a standalone Assign of every point —
// including ragged batch sizes that do not fill the query block.
TEST(SimdServeTest, AssignBatchBitIdenticalToPerQueryAssign) {
  LabeledData data = Workload(460, 23);
  auto online =
      RunStream(data, StreamOptions(data), 37, ArrivalMix(data, 0));
  const auto snap = ClusterSnapshot::FromStream(*online);
  const int dim = data.data.dim();
  const std::vector<Scalar> queries = ServeQueries(data, 300);
  const Index count = static_cast<Index>(queries.size()) / dim;

  for (const Index take : {Index{1}, Index{31}, Index{32}, Index{33}, count}) {
    const std::span<const Scalar> points(queries.data(),
                                         static_cast<size_t>(take) * dim);
    std::vector<AssignOutcome> batch(take);
    snap->AssignBatch(points, batch);
    for (Index q = 0; q < take; ++q) {
      SCOPED_TRACE(testing::Message() << "take=" << take);
      ExpectSameOutcome(batch[q], snap->Assign(points.subspan(q * dim, dim)),
                        q);
    }
  }
  // Empty batch is a no-op, not a crash.
  std::vector<AssignOutcome> none;
  snap->AssignBatch(std::span<const Scalar>(), none);
}

}  // namespace
}  // namespace alid
