// Tests of OnlineAlid, the streaming extension (the paper's stated future
// work): incremental insertion, cluster absorption, pool detection, and
// agreement with batch ALID on the same stream.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace alid {
namespace {

LabeledData Workload(Index n = 500, uint64_t seed = 61) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 10;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = seed;
  return MakeSynthetic(cfg);
}

OnlineAlidOptions Options(const LabeledData& data) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 128;
  return opts;
}

TEST(OnlineAlidTest, StreamingDetectsThePlantedClusters) {
  LabeledData data = Workload();
  OnlineAlid online(data.data.dim(), Options(data));
  // Feed in a shuffled order, as a stream would arrive.
  Rng rng(3);
  for (Index i : rng.Permutation(data.size())) {
    online.Insert(data.data[i]);
  }
  online.Refresh();
  EXPECT_GE(online.clusters().size(), 3u);
  EXPECT_LE(online.clusters().size(), 8u);
  for (const Cluster& c : online.clusters()) {
    EXPECT_GE(c.density, 0.75);
  }
}

TEST(OnlineAlidTest, MatchesBatchQualityOnTheSameStream) {
  LabeledData data = Workload(400);
  OnlineAlid online(data.data.dim(), Options(data));
  // Stream in the generator's order; remember stream index -> original id.
  for (Index i = 0; i < data.size(); ++i) online.Insert(data.data[i]);
  online.Refresh();
  std::vector<IndexList> detected;
  for (const Cluster& c : online.clusters()) detected.push_back(c.members);
  EXPECT_GT(AverageF1(data.true_clusters, detected), 0.8);
}

TEST(OnlineAlidTest, NewcomerIsAbsorbedIntoItsCluster) {
  LabeledData data = Workload(300);
  OnlineAlid online(data.data.dim(), Options(data));
  // Feed everything except the last member of cluster 0, then refresh so the
  // cluster exists; the held-out member must be absorbed on arrival.
  const Index held_out = data.true_clusters[0].back();
  std::vector<Index> stream_of;  // stream index -> original index
  for (Index i = 0; i < data.size(); ++i) {
    if (i == held_out) continue;
    stream_of.push_back(i);
    online.Insert(data.data[i]);
  }
  online.Refresh();
  const size_t before = online.clusters().size();
  ASSERT_GT(before, 0u);
  const Index idx = online.Insert(data.data[held_out]);
  EXPECT_GE(online.ClusterOf(idx), 0)
      << "held-out cluster member not absorbed on insert";
}

TEST(OnlineAlidTest, NoiseStaysUnassigned) {
  LabeledData data = Workload(300);
  OnlineAlid online(data.data.dim(), Options(data));
  for (Index i = 0; i < data.size(); ++i) online.Insert(data.data[i]);
  online.Refresh();
  int noise_assigned = 0, noise_total = 0;
  Index stream_idx = 0;
  for (Index i = 0; i < data.size(); ++i, ++stream_idx) {
    if (data.labels[i] < 0) {
      ++noise_total;
      noise_assigned += online.ClusterOf(stream_idx) >= 0;
    }
  }
  ASSERT_GT(noise_total, 0);
  EXPECT_LT(static_cast<double>(noise_assigned) / noise_total, 0.1);
}

TEST(OnlineAlidTest, AssignmentConsistentWithClusterMembership) {
  LabeledData data = Workload(300);
  OnlineAlid online(data.data.dim(), Options(data));
  for (Index i = 0; i < data.size(); ++i) online.Insert(data.data[i]);
  online.Refresh();
  for (size_t c = 0; c < online.clusters().size(); ++c) {
    for (Index m : online.clusters()[c].members) {
      EXPECT_EQ(online.ClusterOf(m), static_cast<int>(c));
    }
  }
}

TEST(OnlineAlidTest, EmptyStreamIsFine) {
  LabeledData data = Workload(50);
  OnlineAlid online(data.data.dim(), Options(data));
  online.Refresh();
  EXPECT_TRUE(online.clusters().empty());
  EXPECT_EQ(online.size(), 0);
}

}  // namespace
}  // namespace alid
