// Equivalence tests between the localized dynamics (LID) and the canonical
// full-matrix dynamics (IID): on the same graph, from the same start, the
// localized algorithm must trace the same evolutionary game. This is the
// strongest correctness argument for Algorithm 1 — Section 4.1 derives it as
// an exact localization, not an approximation.
#include <cmath>

#include <gtest/gtest.h>

#include "affinity/affinity_matrix.h"
#include "affinity/lazy_affinity_oracle.h"
#include "baselines/iid.h"
#include "common/random.h"
#include "core/lid.h"
#include "data/synthetic.h"

namespace alid {
namespace {

// A modest random scatter with some structure.
Dataset Scatter(Index n, uint64_t seed) {
  Rng rng(seed);
  Dataset d(3);
  for (Index i = 0; i < n; ++i) {
    const double cx = (i % 3) * 2.5;  // three loose columns
    d.Append(std::vector<Scalar>{cx + rng.Gaussian(0.0, 0.4),
                                 rng.Gaussian(0.0, 0.4),
                                 rng.Gaussian(0.0, 0.4)});
  }
  return d;
}

// Runs LID over the full range starting from `seed` and returns its
// converged state as a dense vector.
std::vector<Scalar> RunLidGlobal(const Dataset& data,
                                 const AffinityFunction& f, Index seed) {
  LazyAffinityOracle oracle(data, f);
  Lid lid(oracle, seed, {});
  IndexList rest;
  for (Index i = 0; i < data.size(); ++i) {
    if (i != seed) rest.push_back(i);
  }
  lid.UpdateRange(rest);
  lid.Run();
  std::vector<Scalar> x(data.size(), 0.0);
  for (const auto& [g, w] : lid.SupportWeights()) x[g] = w;
  return x;
}

class EquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceProperty, LidReachesAFixedPointOfTheFullDynamics) {
  Dataset data = Scatter(40, GetParam());
  AffinityFunction f({.k = 1.2, .p = 2.0});
  AffinityMatrix matrix(data, f);

  std::vector<Scalar> x = RunLidGlobal(data, f, 0);
  // A fixed point of the infection-immunization dynamics satisfies the
  // Theorem 1 conditions on the *full* matrix.
  auto ax = matrix.matrix().MatVec(x);
  const Scalar pi = matrix.matrix().QuadraticForm(x);
  for (Index j = 0; j < data.size(); ++j) {
    EXPECT_LE(ax[j], pi + 1e-7);
    if (x[j] > 0.0) {
      EXPECT_NEAR(ax[j], pi, 1e-7);
    }
  }
}

TEST_P(EquivalenceProperty, LidAndIidDensitiesMatchFromEquivalentStarts) {
  Dataset data = Scatter(40, GetParam());
  AffinityFunction f({.k = 1.2, .p = 2.0});
  AffinityMatrix matrix(data, f);

  // IID from the barycenter finds the strongest dense subgraph; LID from a
  // seed inside that subgraph must find one of (at least) that density or a
  // different local optimum — but both must be genuine local maxima. Compare
  // the densities of the subgraphs found from the *same* seed discipline:
  // run LID from every vertex, take the best; IID's single extraction can
  // never beat the best local optimum.
  Scalar best_lid = 0.0;
  for (Index s = 0; s < data.size(); ++s) {
    std::vector<Scalar> x = RunLidGlobal(data, f, s);
    best_lid = std::max(best_lid, matrix.matrix().QuadraticForm(x));
  }
  IidDetector iid{AffinityView(&matrix.matrix())};
  const Scalar pi_iid = iid.ExtractOne().density;
  EXPECT_GE(best_lid, pi_iid - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77));

TEST(EquivalenceTest, LidInvasionMatchesBruteForceLineSearch) {
  // One LID invasion from a known state must pick the eps that Theorem 2
  // prescribes: verify against a fine brute-force line search on pi((1-e)x +
  // e y) for the chosen direction y.
  Dataset data = Scatter(12, 9);
  AffinityFunction f({.k = 1.2, .p = 2.0});
  AffinityMatrix matrix(data, f);
  LazyAffinityOracle oracle(data, f);

  LidOptions opts;
  opts.max_iterations = 1;
  Lid lid(oracle, 0, opts);
  IndexList rest;
  for (Index i = 1; i < data.size(); ++i) rest.push_back(i);
  lid.UpdateRange(rest);
  lid.Run();  // exactly one invasion

  // Identify the invaded vertex: from the singleton start only an infection
  // can happen, so the support is now {0, y*}.
  IndexList support = lid.Support();
  ASSERT_EQ(support.size(), 2u);
  const Index invaded = support[0] == 0 ? support[1] : support[0];

  // Theorem 2's eps maximizes pi along the chosen direction: the reached
  // density must match a fine brute-force line search over eps for y*.
  const Scalar pi_after = lid.Density();
  Scalar best_line = 0.0;
  for (int t = 0; t <= 1000; ++t) {
    const Scalar eps = t / 1000.0;
    std::vector<Scalar> z(data.size(), 0.0);
    z[0] = 1.0 - eps;
    z[invaded] += eps;
    best_line = std::max(best_line, matrix.matrix().QuadraticForm(z));
  }
  EXPECT_NEAR(pi_after, best_line, 1e-5)
      << "eps_y(x) must maximize pi along the invasion direction";
}

}  // namespace
}  // namespace alid
