// Quickstart: detect dominant clusters in a small noisy point set.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The five-step recipe every ALID application follows:
//   1. put your vectors in a Dataset,
//   2. pick the affinity scale k (Eq. 1) — SuggestScalingFactor helps,
//   3. build the LSH index CIVS will search,
//   4. run AlidDetector::DetectAll(),
//   5. keep the clusters with density >= 0.75 (the paper's rule).
#include <cstdio>

#include "core/alid.h"
#include "common/random.h"

int main() {
  using namespace alid;

  // 1. Three tight 2-D blobs plus scattered noise.
  Rng rng(7);
  Dataset points(2);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 9.0}};
  for (const auto& c : centers) {
    for (int i = 0; i < 30; ++i) {
      points.Append(std::vector<Scalar>{c[0] + rng.Gaussian(0.0, 0.15),
                                        c[1] + rng.Gaussian(0.0, 0.15)});
    }
  }
  for (int i = 0; i < 60; ++i) {  // background noise
    points.Append(std::vector<Scalar>{rng.Uniform(-5.0, 15.0),
                                      rng.Uniform(-5.0, 14.0)});
  }

  // 2. Affinity kernel a_ij = exp(-k ||v_i - v_j||_2), k tuned so that a
  //    typical blob-mate pair lands near affinity 0.9.
  AffinityFunction affinity({.k = 0.3, .p = 2.0});
  LazyAffinityOracle oracle(points, affinity);

  // 3. LSH index: segment length around 3x the within-blob distance.
  LshParams lsh_params;
  lsh_params.segment_length = 1.0;
  LshIndex lsh(points, lsh_params);

  // 4. Detect every dominant cluster by peeling.
  AlidDetector detector(oracle, lsh);
  DetectionResult all = detector.DetectAll();

  // 5. Keep the coherent ones.
  DetectionResult dense = all.Filtered(/*min_density=*/0.75);

  std::printf("found %zu dominant clusters among %d points:\n",
              dense.clusters.size(), points.size());
  for (size_t c = 0; c < dense.clusters.size(); ++c) {
    const Cluster& cluster = dense.clusters[c];
    // Weighted centroid = the cluster's representative location.
    double cx = 0.0, cy = 0.0;
    for (size_t t = 0; t < cluster.members.size(); ++t) {
      cx += cluster.weights[t] * points[cluster.members[t]][0];
      cy += cluster.weights[t] * points[cluster.members[t]][1];
    }
    std::printf("  cluster %zu: %3zu members, density %.3f, center "
                "(%.2f, %.2f)\n",
                c, cluster.members.size(), cluster.density, cx, cy);
  }
  std::printf("the %d noise points were filtered out (their subgraphs never "
              "reach density 0.75)\n",
              points.size() - [&] {
                int kept = 0;
                for (const Cluster& c : dense.clusters) {
                  kept += static_cast<int>(c.members.size());
                }
                return kept;
              }());
  return 0;
}
