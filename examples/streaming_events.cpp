// Streaming dominant-cluster detection on the shared runtime — the paper's
// future-work extension grown into a windowed, batch-parallel subsystem.
//
// News items arrive in batches. Each batch is hashed and scored against the
// live events in parallel on a shared work-stealing pool (the streamed state
// is bit-identical for any executor count), absorbed in arrival order, and a
// sliding window expires old coverage: expired items leave the LSH index,
// their cached affinities are invalidated, and the events they supported are
// locally re-detected. No global recomputation ever runs, and the index and
// cache footprints stay bounded by the window, not the stream.
//
//   ./build/example_streaming_events
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  // A stream with four bursty topics among background chatter.
  SyntheticConfig config;
  config.n = 1200;
  config.dim = 16;
  config.num_clusters = 4;
  config.omega = 0.5;
  config.mean_box = 300.0;
  config.overlap_clusters = false;  // distinct topics for a clean demo
  LabeledData stream = MakeSynthetic(config);

  constexpr Index kBatch = 64;    // arrivals absorbed per ingest tick
  constexpr Index kWindow = 800;  // live coverage kept per tick

  ThreadPool pool(4);  // the shared runtime the batch phases run on
  OnlineAlidOptions options;
  options.affinity = {.k = stream.suggested_k, .p = 2.0};
  options.lsh.segment_length = stream.suggested_lsh_r;
  options.refresh_interval = 200;
  options.window = kWindow;
  options.pool = &pool;
  OnlineAlid online(stream.data.dim(), options);

  Rng rng(99);
  const auto order = rng.Permutation(stream.size());
  // slot -> generator index of its *current* occupant (slots are re-used
  // once the window starts expiring arrivals).
  std::vector<Index> generator_of(stream.size(), -1);

  std::vector<Scalar> batch;
  std::vector<Index> batch_gen;
  Index fed = 0;
  for (Index step = 0; step < stream.size(); ++step) {
    const auto point = stream.data[order[step]];
    batch.insert(batch.end(), point.begin(), point.end());
    batch_gen.push_back(order[step]);
    if (static_cast<Index>(batch_gen.size()) < kBatch &&
        step + 1 < stream.size()) {
      continue;
    }
    const std::vector<Index> slots = online.InsertBatch(batch);
    for (size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] >= static_cast<Index>(generator_of.size())) {
        generator_of.resize(slots[k] + 1, -1);
      }
      generator_of[slots[k]] = batch_gen[k];
    }
    fed += static_cast<Index>(batch_gen.size());
    batch.clear();
    batch_gen.clear();
    if (fed % 320 == 0) {
      const StreamStats& s = online.stats();
      std::printf("after %4d arrivals: %d live clusters, %d items in "
                  "window, %lld absorbed, %lld evicted\n",
                  fed, s.clusters_alive, s.alive,
                  static_cast<long long>(s.absorbed),
                  static_cast<long long>(s.evicted));
    }
  }
  online.Refresh();

  // Score the live window: ground truth restricted to the items that are
  // still inside it, translated into slot space.
  std::vector<IndexList> truth;
  for (const IndexList& cluster : stream.true_clusters) {
    IndexList t;
    for (Index slot = 0; slot < static_cast<Index>(generator_of.size());
         ++slot) {
      if (!online.IsAlive(slot)) continue;
      if (std::find(cluster.begin(), cluster.end(), generator_of[slot]) !=
          cluster.end()) {
        t.push_back(slot);
      }
    }
    if (!t.empty()) truth.push_back(std::move(t));
  }
  std::vector<IndexList> detected;
  for (const Cluster& c : online.clusters()) detected.push_back(c.members);

  const StreamStats& stats = online.stats();
  std::printf("\nend of stream: %zu dominant clusters over the %d-item "
              "window, AVG-F %.3f against the live bursts\n",
              online.clusters().size(), online.alive(),
              AverageF1(truth, detected));
  std::printf("stream totals: %lld arrivals, %lld absorbed on entry, %lld "
              "evicted, %lld local re-detections, %lld cached affinities "
              "invalidated, %lld executor steals\n",
              static_cast<long long>(stats.arrivals),
              static_cast<long long>(stats.absorbed),
              static_cast<long long>(stats.evicted),
              static_cast<long long>(stats.redetections),
              static_cast<long long>(stats.cache_entries_invalidated),
              static_cast<long long>(pool.steal_count()));
  std::printf("absorb fast path: %lld candidate scorings pruned by the "
              "support sketch, %lld exact fallbacks; refresh map stage: "
              "%lld rounds, %lld speculative detections, %lld conflicts\n",
              static_cast<long long>(stats.sketch_prunes),
              static_cast<long long>(stats.sketch_exact),
              static_cast<long long>(stats.refresh_rounds),
              static_cast<long long>(stats.refresh_speculations),
              static_cast<long long>(stats.refresh_conflicts));
  const std::vector<int> latency = stats.LatencyHistogram(8);
  std::printf("ingest-latency histogram (%zu batches, 8 bins to max): ",
              stats.batch_seconds.size());
  for (int count : latency) std::printf("%d ", count);
  std::printf("\n");
  return 0;
}
