// Streaming dominant-cluster detection — the paper's future-work extension.
//
// News items arrive one at a time. OnlineAlid hashes each arrival into the
// growing LSH index, absorbs it into an existing event if it is infective
// against one (the Theorem 1 test), and periodically peels brand-new events
// out of the unassigned pool. No global recomputation ever runs.
//
//   ./build/examples/streaming_events
#include <cstdio>

#include "common/random.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  // A stream with four bursty topics among background chatter.
  SyntheticConfig config;
  config.n = 1200;
  config.dim = 16;
  config.num_clusters = 4;
  config.omega = 0.5;
  config.mean_box = 300.0;
  config.overlap_clusters = false;  // distinct topics for a clean demo
  LabeledData stream = MakeSynthetic(config);

  OnlineAlidOptions options;
  options.affinity = {.k = stream.suggested_k, .p = 2.0};
  options.lsh.segment_length = stream.suggested_lsh_r;
  options.refresh_interval = 200;
  OnlineAlid online(stream.data.dim(), options);

  Rng rng(99);
  auto order = rng.Permutation(stream.size());
  std::vector<Index> original_of;  // stream position -> generator index
  for (Index step = 0; step < stream.size(); ++step) {
    original_of.push_back(order[step]);
    online.Insert(stream.data[order[step]]);
    if ((step + 1) % 300 == 0) {
      std::printf("after %4d arrivals: %zu live clusters\n", step + 1,
                  online.clusters().size());
    }
  }
  online.Refresh();

  std::vector<IndexList> detected;
  for (const Cluster& c : online.clusters()) detected.push_back(c.members);
  // Translate ground truth into stream positions for scoring.
  std::vector<Index> position_of(stream.size());
  for (Index pos = 0; pos < stream.size(); ++pos) {
    position_of[original_of[pos]] = pos;
  }
  std::vector<IndexList> truth;
  for (const IndexList& cluster : stream.true_clusters) {
    IndexList t;
    for (Index g : cluster) t.push_back(position_of[g]);
    std::sort(t.begin(), t.end());
    truth.push_back(std::move(t));
  }
  std::printf("\nend of stream: %zu dominant clusters, AVG-F %.3f against "
              "the planted bursts\n",
              online.clusters().size(), AverageF1(truth, detected));
  return 0;
}
