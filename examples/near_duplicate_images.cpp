// Near-duplicate image grouping (the paper's NDI scenario), comparing ALID
// with the full-matrix baselines it replaces.
//
// Images are GIST descriptors; groups of near-duplicates form dominant
// clusters under a sea of diverse-content photos. This example runs ALID,
// IID and SEA on the same (Sub-NDI-sized) workload and prints quality, time
// and the affinity-entry footprint — the trade-off Figure 6/7 quantify.
//
//   ./build/examples/near_duplicate_images
#include <cstdio>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/iid.h"
#include "baselines/sea.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/alid.h"
#include "data/ndi_like.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  NdiLikeConfig config = NdiLikeConfig::SubNdi();
  // Shrink to demo size so the O(n^2) baselines stay snappy.
  config.num_duplicates = 400;
  config.num_noise = 2400;
  LabeledData images = MakeNdiLike(config);
  std::printf("collection: %d images, %zu near-duplicate groups, noise "
              "degree %.1f\n\n",
              images.size(), images.true_clusters.size(),
              images.NoiseDegree());

  AffinityFunction affinity({.k = images.suggested_k, .p = 2.0});
  LshParams lsh_params;
  lsh_params.segment_length = images.suggested_lsh_r;
  LshIndex lsh(images.data, lsh_params);

  std::printf("%-6s %-8s %-10s %-14s\n", "method", "AVG-F", "time(s)",
              "affinity entries");
  {
    LazyAffinityOracle oracle(images.data, affinity);
    WallTimer t;
    AlidDetector detector(oracle, lsh);
    DetectionResult r = detector.DetectAll().Filtered(0.75);
    std::printf("%-6s %-8.3f %-10.3f %lld\n", "ALID",
                AverageF1(images.true_clusters, r), t.Seconds(),
                static_cast<long long>(oracle.entries_computed()));
  }
  {
    WallTimer t;
    AffinityMatrix matrix(images.data, affinity);
    IidDetector iid{AffinityView(&matrix.matrix())};
    DetectionResult r = iid.DetectAll().Filtered(0.75);
    std::printf("%-6s %-8.3f %-10.3f %lld\n", "IID",
                AverageF1(images.true_clusters, r), t.Seconds(),
                static_cast<long long>(matrix.entries_computed()));
  }
  {
    WallTimer t;
    // SEA needs a denser sparsified graph than ALID's CIVS does (the Fig. 6
    // sensitivity): double the segment length for its matrix.
    LshParams sea_lp = lsh_params;
    sea_lp.segment_length *= 2.0;
    sea_lp.num_tables = 16;
    LshIndex sea_lsh(images.data, sea_lp);
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(images.data, affinity, sea_lsh);
    // SEA's replicator sweeps run on a shared worker pool (bit-identical
    // to the serial run).
    ThreadPool pool(4);
    SeaDetector sea{AffinityView(&sparse), {.pool = &pool}};
    DetectionResult r = sea.DetectAll().Filtered(0.6);
    std::printf("%-6s %-8.3f %-10.3f %lld\n", "SEA",
                AverageF1(images.true_clusters, r), t.Seconds(),
                static_cast<long long>(sparse.nnz() / 2));
  }
  std::printf("\ntakeaway: equal detection quality, but ALID touches a "
              "small local fraction of the %lld-entry affinity matrix.\n",
              static_cast<long long>(images.size()) * images.size());
  return 0;
}
