// Hot-event detection in a news stream (the paper's NART scenario).
//
// A crawl of news articles contains a handful of "hot events" — bursts of
// highly similar coverage — buried in daily reporting. Each article is a
// topic-distribution vector (as LDA would produce). ALID surfaces the events
// as dominant clusters without being told how many there are, and leaves the
// daily-news background unclustered.
//
//   ./build/examples/news_events
#include <algorithm>
#include <cstdio>

#include "core/alid.h"
#include "data/nart_like.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  // A synthetic stand-in for the paper's 5,301-article NART crawl: 13 hot
  // events (734 articles) under 4,567 daily-news items.
  NartLikeConfig config;
  LabeledData news = MakeNartLike(config);
  std::printf("corpus: %d articles (%zu labeled events, noise degree %.1f)\n",
              news.size(), news.true_clusters.size(), news.NoiseDegree());

  AffinityFunction affinity({.k = news.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(news.data, affinity);
  LshParams lsh_params;
  lsh_params.segment_length = news.suggested_lsh_r;
  LshIndex lsh(news.data, lsh_params);

  AlidDetector detector(oracle, lsh);
  DetectionResult events = detector.DetectAll().Filtered(0.75);

  // Rank detected events by "heat" (density x coverage).
  std::sort(events.clusters.begin(), events.clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.density * a.members.size() >
                     b.density * b.members.size();
            });

  std::printf("\ndetected %zu hot events:\n", events.clusters.size());
  for (size_t e = 0; e < events.clusters.size(); ++e) {
    const Cluster& c = events.clusters[e];
    // Match against the labeled ground truth for the demo printout.
    double best_f1 = 0.0;
    int best_truth = -1;
    for (size_t t = 0; t < news.true_clusters.size(); ++t) {
      const double f1 = ComputeF1(c.members, news.true_clusters[t]).f1;
      if (f1 > best_f1) {
        best_f1 = f1;
        best_truth = static_cast<int>(t);
      }
    }
    std::printf("  #%zu: %3zu articles, coherence %.3f -> ground-truth "
                "event %d (F1 %.3f)\n",
                e + 1, c.members.size(), c.density, best_truth, best_f1);
  }
  std::printf("\nAVG-F over all labeled events: %.3f\n",
              AverageF1(news.true_clusters, events));
  std::printf("affinity entries computed: %lld of %lld possible (%.2f%%)\n",
              static_cast<long long>(oracle.entries_computed()),
              static_cast<long long>(news.size()) * news.size(),
              100.0 * oracle.entries_computed() /
                  (static_cast<double>(news.size()) * news.size()));
  return 0;
}
