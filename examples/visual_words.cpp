// Visual-word mining with Parallel ALID (the paper's SIFT-50M scenario).
//
// SIFT descriptors from repeated image patches form "visual words" — tight
// dominant clusters on the non-negative unit sphere — while descriptors from
// random regions are clutter. PALID maps one ALID run per sampled LSH-bucket
// seed onto a pool of executors and reduces overlapping detections by
// density, exactly Algorithm 3.
//
//   ./build/examples/visual_words
#include <cstdio>

#include "common/thread_pool.h"
#include "core/palid.h"
#include "data/sift_like.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  SiftLikeConfig config;
  config.n = 10000;
  config.num_visual_words = 50;
  config.word_fraction = 0.3;
  LabeledData sifts = MakeSiftLike(config);
  std::printf("%d SIFT-like descriptors, %d planted visual words, %.0f%% "
              "clutter\n\n",
              sifts.size(), config.num_visual_words,
              100.0 * (1.0 - config.word_fraction));

  AffinityFunction affinity({.k = sifts.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(sifts.data, affinity);
  LshParams lsh_params;
  lsh_params.segment_length = sifts.suggested_lsh_r;
  LshIndex lsh(sifts.data, lsh_params);

  std::printf("%-10s %-8s %-10s %-12s %-8s\n", "executors", "seeds",
              "wall(s)", "task-sum(s)", "AVG-F");
  for (int executors : {1, 2, 4}) {
    // PALID runs its map stage on an externally shared executor pool — the
    // same substrate a serving process would also schedule other work on.
    ThreadPool pool(executors);
    PalidOptions options;
    options.pool = &pool;
    Palid palid(oracle, lsh, options);
    PalidStats stats;
    DetectionResult words = palid.Detect(&stats).Filtered(0.75);
    std::printf("%-10d %-8d %-10.3f %-12.3f %-8.3f\n", executors,
                stats.num_seeds, stats.wall_seconds,
                stats.total_task_seconds,
                AverageF1(sifts.true_clusters, words));
  }
  std::printf("\neach map task is one Algorithm-2 run from one seed; the "
              "reduce assigns items to their densest containing cluster.\n");
  return 0;
}
