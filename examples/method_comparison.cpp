// Every detector in the library on one noisy workload — a tour of the full
// API surface: the four affinity-based methods (ALID, IID, SEA, AP) and the
// four partitioning baselines (k-means, SC-FL, SC-NYS, mean shift) from the
// paper's Appendix C comparison.
//
//   ./build/examples/method_comparison
#include <cstdio>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/ap.h"
#include "baselines/iid.h"
#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "baselines/sea.h"
#include "baselines/spectral.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/alid.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace alid;

  // One shared work-stealing pool drives every parallelized hot loop below;
  // each method's output is bit-identical to its serial run.
  ThreadPool pool(4);

  SyntheticConfig config;
  config.n = 1200;
  config.dim = 32;
  config.num_clusters = 6;
  config.regime = SyntheticRegime::kProportional;
  config.omega = 0.4;  // 40% clustered, 60% noise
  LabeledData data = MakeSynthetic(config);
  const int k_true = static_cast<int>(data.true_clusters.size());
  std::printf("workload: n=%d, %d true clusters, noise degree %.1f\n\n",
              data.size(), k_true, data.NoiseDegree());
  std::printf("%-22s %-8s %-8s\n", "method", "AVG-F", "time(s)");

  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  auto row = [](const char* name, double f, double secs) {
    std::printf("%-22s %-8.3f %-8.3f\n", name, f, secs);
  };

  {  // ALID — no cluster count needed, no full matrix.
    WallTimer t;
    LazyAffinityOracle oracle(data.data, affinity);
    LshParams lp;
    lp.segment_length = data.suggested_lsh_r;
    LshIndex lsh(data.data, lp);
    AlidDetector detector(oracle, lsh);
    row("ALID", AverageF1(data.true_clusters,
                          detector.DetectAll().Filtered(0.75)),
        t.Seconds());
  }
  {
    WallTimer t;  // matrix materialization is part of IID's cost
    AffinityMatrix matrix(data.data, affinity);
    IidDetector iid{AffinityView(&matrix.matrix())};
    row("IID (full matrix)",
        AverageF1(data.true_clusters, iid.DetectAll().Filtered(0.75)),
        t.Seconds());
  }
  {
    WallTimer t;
    LshParams lp;
    lp.segment_length = data.suggested_lsh_r;
    lp.num_tables = 16;
    // SEA needs a denser sparsified graph to preserve cluster cohesiveness
    // (the Fig. 6 sensitivity): double the LSH segment length for it.
    lp.segment_length *= 2.0;
    LshIndex lsh(data.data, lp);
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(data.data, affinity, lsh);
    SeaDetector sea{AffinityView(&sparse), {.pool = &pool}};
    row("SEA (sparse graph)",
        AverageF1(data.true_clusters, sea.DetectAll().Filtered(0.6)),
        t.Seconds());
  }
  {
    WallTimer t;
    AffinityMatrix matrix(data.data, affinity);
    ApDetector ap{AffinityView(&matrix.matrix()), {.pool = &pool}};
    row("AP (full matrix)", AverageF1(data.true_clusters, ap.Detect()),
        t.Seconds());
  }
  {  // Partitioning methods need K up front; noise gets one extra bucket.
    WallTimer t;
    KMeansResult km =
        RunKMeans(data.data, k_true + 1, {.restarts = 3, .pool = &pool});
    row("k-means (K=true+1)",
        AverageF1(data.true_clusters, LabelsToClusters(km.labels)),
        t.Seconds());
  }
  {
    WallTimer t;
    SpectralOptions so;
    so.num_clusters = k_true + 1;
    so.pool = &pool;
    SpectralResult sc = SpectralClusterFull(data.data, affinity, so);
    row("SC-FL (K=true+1)",
        AverageF1(data.true_clusters, LabelsToClusters(sc.labels)),
        t.Seconds());
  }
  {
    WallTimer t;
    SpectralOptions so;
    so.num_clusters = k_true + 1;
    so.nystrom_landmarks = 120;
    so.pool = &pool;
    SpectralResult sc = SpectralClusterNystrom(data.data, affinity, so);
    row("SC-NYS (K=true+1)",
        AverageF1(data.true_clusters, LabelsToClusters(sc.labels)),
        t.Seconds());
  }
  {
    WallTimer t;
    MeanShiftOptions ms;
    ms.bandwidth = data.suggested_lsh_r / 2.0;
    ms.max_ascents = 150;
    ms.pool = &pool;
    MeanShiftResult r = RunMeanShift(data.data, ms);
    row("mean shift",
        AverageF1(data.true_clusters, LabelsToClusters(r.labels)),
        t.Seconds());
  }

  std::printf("\nthe affinity-based methods detect the unknown number of "
              "clusters and shrug off the noise; the partitioners must be "
              "told K and still absorb noise into their parts.\n");
  return 0;
}
