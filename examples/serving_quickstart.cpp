// Serving quickstart: stream -> snapshot -> generation-addressed queries,
// end to end.
//
// The write side streams arrivals through OnlineAlid and periodically
// exports an immutable ClusterSnapshot; the read side answers Query()
// requests at full speed against whatever snapshot is currently published —
// an RCU swap, so queries never block on ingest and never see torn state.
// Consecutive snapshots share their unchanged clusters' arena blocks, so a
// publish costs O(changed bytes), retired generations stay addressable
// through the server's history ring (bounded time travel), and
// GenerationDiff explains what changed between any two of them.
//
//   ./build/example_serving_quickstart
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"

int main() {
  using namespace alid;

  // A stream with four bursty topics among background chatter.
  SyntheticConfig config;
  config.n = 1200;
  config.dim = 16;
  config.num_clusters = 4;
  config.omega = 0.5;
  config.mean_box = 300.0;
  config.overlap_clusters = false;
  LabeledData stream = MakeSynthetic(config);
  const int dim = stream.data.dim();

  ThreadPool pool(4);  // one shared runtime for ingest AND batched queries
  OnlineAlidOptions options;
  options.affinity = {.k = stream.suggested_k, .p = 2.0};
  options.lsh.segment_length = stream.suggested_lsh_r;
  options.refresh_interval = 200;
  options.pool = &pool;
  OnlineAlid online(dim, options);

  ClusterServer server(dim, {.pool = &pool});

  // Ingest in batches; after each batch, export + publish a fresh snapshot.
  // (In production the export runs on a refresh thread; queries keep
  // answering from the previous snapshot while the new one builds.)
  Rng rng(99);
  const auto order = rng.Permutation(stream.size());
  std::vector<Scalar> batch;
  for (Index pos = 0; pos < stream.size(); ++pos) {
    const auto point = stream.data[order[pos]];
    batch.insert(batch.end(), point.begin(), point.end());
    if (batch.size() == static_cast<size_t>(200 * dim) ||
        pos + 1 == stream.size()) {
      online.InsertBatch(batch);
      batch.clear();
      online.Refresh();
      // Incremental export: chaining on the served snapshot lets every
      // cluster the batch left untouched *share* its arena blocks (a
      // refcount bump) — publish cost tracks what changed, not the window.
      server.Publish(
          ClusterSnapshot::FromStream(online, &pool, server.snapshot()));
      const SnapshotBuildInfo& build = server.snapshot()->build_info();
      std::printf("published snapshot @%llu arrivals: %d clusters over %d "
                  "support members (%.1f ms build, %d/%d clusters re-used, "
                  "%lld bytes shared / %lld copied)\n",
                  static_cast<unsigned long long>(server.generation()),
                  server.snapshot()->num_clusters(),
                  server.snapshot()->num_members(),
                  build.build_seconds * 1e3, build.clusters_reused,
                  build.clusters_total,
                  static_cast<long long>(build.bytes_shared),
                  static_cast<long long>(build.bytes_copied));
    }
  }

  // Steady state: a localized burst (tight jitter around one topic) leaves
  // the other clusters untouched — their blocks move into the next
  // generation as refcount bumps, and the ledger shows it.
  const uint64_t before_burst = server.generation();
  {
    Rng jitter(7);
    const auto& burst = stream.true_clusters.front();
    batch.clear();
    for (int q = 0; q < 32; ++q) {
      const auto row = stream.data[burst[static_cast<size_t>(
          jitter.UniformInt(0, static_cast<int>(burst.size()) - 1))]];
      for (int d = 0; d < dim; ++d) {
        batch.push_back(row[d] + jitter.Gaussian() * 0.05);
      }
    }
    online.InsertBatch(batch);
    server.Publish(
        ClusterSnapshot::FromStream(online, &pool, server.snapshot()));
    const SnapshotBuildInfo& build = server.snapshot()->build_info();
    std::printf("localized burst -> generation %llu: %d/%d clusters "
                "unchanged, %lld bytes shared / %lld copied\n",
                static_cast<unsigned long long>(server.generation()),
                build.clusters_reused, build.clusters_total,
                static_cast<long long>(build.bytes_shared),
                static_cast<long long>(build.bytes_copied));
  }

  // Single query: where does a brand-new item belong, and how strongly?
  const auto probe = stream.data[order[7]];
  const QueryOutcome single =
      server.Query({.points = probe}).assignments.front();
  if (single.cluster >= 0) {
    std::printf("\nprobe -> cluster %d (affinity %.3f, margin %.3f) under "
                "snapshot generation %llu\n",
                single.cluster, single.affinity, single.margin,
                static_cast<unsigned long long>(single.generation));
  } else {
    std::printf("\nprobe -> unassigned (noise)\n");
  }

  // Ranked alternatives plus the metadata behind the winner: top_k > 0
  // switches the same Query() call into ranked mode.
  const QueryResponse ranked = server.Query({.points = probe, .top_k = 3});
  for (const ScoredCluster& s : ranked.ranked.front()) {
    const ClusterSnapshotInfo info = server.ClusterInfo(s.cluster);
    std::printf("  candidate cluster %d: pi=%.3f%s, support %d, density "
                "%.3f (verified %.3f)\n",
                s.cluster, s.affinity, s.absorbable ? " [absorbable]" : "",
                info.size, info.density, info.verified_density);
  }

  // Batched queries run chunked on the shared pool — bit-identical to the
  // serial loop, and every answer of one batch names one generation.
  std::vector<Scalar> queries;
  Rng noise(3);
  for (int q = 0; q < 512; ++q) {
    const auto row = stream.data[static_cast<Index>(
        noise.UniformInt(0, stream.size() - 1))];
    for (int d = 0; d < dim; ++d) {
      queries.push_back(row[d] + noise.Gaussian() * 0.05);
    }
  }
  const QueryResponse answers = server.Query({.points = queries});
  int assigned = 0;
  for (const QueryOutcome& r : answers.assignments) {
    assigned += r.cluster >= 0 ? 1 : 0;
  }
  std::printf("\nbatch of %zu jittered queries: %d assigned, %zu noise, all "
              "answered by generation %llu\n",
              answers.assignments.size(), assigned,
              answers.assignments.size() - assigned,
              static_cast<unsigned long long>(answers.generation));

  // Bounded time travel: retired generations stay addressable through the
  // history ring, and an as-of query reproduces exactly the answers that
  // generation gave when it was current.
  const uint64_t current = server.generation();
  const uint64_t past = before_burst;  // the generation the burst retired
  const QueryResponse asof =
      server.Query({.points = probe, .generation = past});
  if (asof.ok()) {
    std::printf("\nas-of generation %llu the probe mapped to cluster %d "
                "(today: %d)\n",
                static_cast<unsigned long long>(asof.generation),
                asof.assignments.front().cluster, single.cluster);
    // ...and GenerationDiff explains what changed in between.
    const GenerationDiffResult diff = server.GenerationDiff(past, current);
    std::printf("generations %llu -> %llu: %zu born, %zu died, %zu drifted, "
                "%d unchanged (the unchanged ones share their arena blocks)\n",
                static_cast<unsigned long long>(diff.from),
                static_cast<unsigned long long>(diff.to), diff.births.size(),
                diff.deaths.size(), diff.drifted.size(), diff.unchanged);
  }

  const ServeStatsView stats = server.stats();
  std::printf("\nserver totals: %lld queries (%lld singles, %lld batch "
              "calls), %lld assigned, %lld snapshots published, %.0f QPS "
              "overall\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.single_queries),
              static_cast<long long>(stats.batch_calls),
              static_cast<long long>(stats.assigned),
              static_cast<long long>(stats.snapshots_published), stats.qps);
  std::printf("support-sketch filter: %lld candidates pruned by the bound, "
              "%lld scored exactly; incremental publishes re-used %lld "
              "member rows across %lld clusters\n",
              static_cast<long long>(stats.sketch_prunes),
              static_cast<long long>(stats.sketch_exact),
              static_cast<long long>(stats.rows_reused),
              static_cast<long long>(stats.clusters_reused));
  std::printf("arena ledger: %lld bytes shared vs %lld copied across "
              "publishes; history ring holds %d generations at %lld extra "
              "bytes\n",
              static_cast<long long>(stats.bytes_shared),
              static_cast<long long>(stats.bytes_copied),
              stats.generations_retained,
              static_cast<long long>(stats.history_ring_bytes));
  std::printf("per-query latency histogram (%zu samples, 8 bins to max): ",
              stats.query_seconds.size());
  for (int count : stats.LatencyHistogram(8)) std::printf("%d ", count);
  std::printf("\n");
  return 0;
}
