// Serving quickstart: stream -> snapshot -> queries, end to end.
//
// The write side streams arrivals through OnlineAlid and periodically
// exports an immutable ClusterSnapshot; the read side answers assignment
// queries at full speed against whatever snapshot is currently published —
// an RCU swap, so queries never block on ingest and never see torn state.
//
//   ./build/example_serving_quickstart
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"

int main() {
  using namespace alid;

  // A stream with four bursty topics among background chatter.
  SyntheticConfig config;
  config.n = 1200;
  config.dim = 16;
  config.num_clusters = 4;
  config.omega = 0.5;
  config.mean_box = 300.0;
  config.overlap_clusters = false;
  LabeledData stream = MakeSynthetic(config);
  const int dim = stream.data.dim();

  ThreadPool pool(4);  // one shared runtime for ingest AND batched queries
  OnlineAlidOptions options;
  options.affinity = {.k = stream.suggested_k, .p = 2.0};
  options.lsh.segment_length = stream.suggested_lsh_r;
  options.refresh_interval = 200;
  options.pool = &pool;
  OnlineAlid online(dim, options);

  ClusterServer server(dim, {.pool = &pool});

  // Ingest in batches; after each batch, export + publish a fresh snapshot.
  // (In production the export runs on a refresh thread; queries keep
  // answering from the previous snapshot while the new one builds.)
  Rng rng(99);
  const auto order = rng.Permutation(stream.size());
  std::vector<Scalar> batch;
  for (Index pos = 0; pos < stream.size(); ++pos) {
    const auto point = stream.data[order[pos]];
    batch.insert(batch.end(), point.begin(), point.end());
    if (batch.size() == static_cast<size_t>(200 * dim) ||
        pos + 1 == stream.size()) {
      online.InsertBatch(batch);
      batch.clear();
      online.Refresh();
      // Incremental export: chaining on the served snapshot lets every
      // cluster the batch left untouched move over as block copies —
      // publish cost tracks what changed, not the window.
      server.Publish(
          ClusterSnapshot::FromStream(online, &pool, server.snapshot()));
      const SnapshotBuildInfo& build = server.snapshot()->build_info();
      std::printf("published snapshot @%llu arrivals: %d clusters over %d "
                  "support members (%.1f ms build, %d/%d clusters re-used)\n",
                  static_cast<unsigned long long>(server.generation()),
                  server.snapshot()->num_clusters(),
                  server.snapshot()->num_members(),
                  build.build_seconds * 1e3, build.clusters_reused,
                  build.clusters_total);
    }
  }

  // Single query: where does a brand-new item belong, and how strongly?
  const auto probe = stream.data[order[7]];
  const AssignResult single = server.Assign(probe);
  if (single.cluster >= 0) {
    std::printf("\nprobe -> cluster %d (affinity %.3f, margin %.3f) under "
                "snapshot generation %llu\n",
                single.cluster, single.affinity, single.margin,
                static_cast<unsigned long long>(single.generation));
  } else {
    std::printf("\nprobe -> unassigned (noise)\n");
  }

  // Ranked alternatives plus the metadata behind the winner.
  for (const ScoredCluster& s : server.TopKClusters(probe, 3)) {
    const ClusterSnapshotInfo info = server.ClusterInfo(s.cluster);
    std::printf("  candidate cluster %d: pi=%.3f%s, support %d, density "
                "%.3f (verified %.3f)\n",
                s.cluster, s.affinity, s.absorbable ? " [absorbable]" : "",
                info.size, info.density, info.verified_density);
  }

  // Batched queries run chunked on the shared pool — bit-identical to the
  // serial loop, and every answer of one batch names one generation.
  std::vector<Scalar> queries;
  Rng noise(3);
  for (int q = 0; q < 512; ++q) {
    const auto row = stream.data[static_cast<Index>(
        noise.UniformInt(0, stream.size() - 1))];
    for (int d = 0; d < dim; ++d) {
      queries.push_back(row[d] + noise.Gaussian() * 0.05);
    }
  }
  const std::vector<AssignResult> answers = server.AssignBatch(queries);
  int assigned = 0;
  for (const AssignResult& r : answers) assigned += r.cluster >= 0 ? 1 : 0;
  std::printf("\nbatch of %zu jittered queries: %d assigned, %zu noise, all "
              "answered by generation %llu\n",
              answers.size(), assigned, answers.size() - assigned,
              static_cast<unsigned long long>(answers.front().generation));

  const ServeStatsView stats = server.stats();
  std::printf("\nserver totals: %lld queries (%lld singles, %lld batch "
              "calls), %lld assigned, %lld snapshots published, %.0f QPS "
              "overall\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.single_queries),
              static_cast<long long>(stats.batch_calls),
              static_cast<long long>(stats.assigned),
              static_cast<long long>(stats.snapshots_published), stats.qps);
  std::printf("support-sketch filter: %lld candidates pruned by the bound, "
              "%lld scored exactly; incremental publishes re-used %lld "
              "member rows across %lld clusters\n",
              static_cast<long long>(stats.sketch_prunes),
              static_cast<long long>(stats.sketch_exact),
              static_cast<long long>(stats.rows_reused),
              static_cast<long long>(stats.clusters_reused));
  std::printf("per-query latency histogram (%zu samples, 8 bins to max): ",
              stats.query_seconds.size());
  for (int count : stats.LatencyHistogram(8)) std::printf("%d ", count);
  std::printf("\n");
  return 0;
}
