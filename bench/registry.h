#ifndef ALID_BENCH_REGISTRY_H_
#define ALID_BENCH_REGISTRY_H_

// Unified benchmark registry — the one harness behind every bench in this
// repo (the init/run/teardown idiom of the classic C bench registries,
// grown typed options and a JSON trajectory contract).
//
// Each benchmark registers a unique name, a set of labels (the CI shard and
// gate-selection axis), the JSON record names it promises to emit, and its
// callbacks. One driver binary (`alid_bench`, bench/bench_main.cc) runs any
// subset via --filter/--labels, so a new benchmark joins the CI perf
// trajectory by registering — never by editing the workflow.
//
// The JSON contract: a benchmark emits machine-readable results through
// BenchContext::EmitJson as single-line records ({"bench":"<record>",...}).
// The registry prints them in the legacy `JSON {...}` stdout format (what CI
// greps into bench_trajectory.jsonl), mirrors them into --json-out, injects
// the registration labels as a top-level "labels" key (what
// tools/check_speedup.py selects sweeps by), and fails the run when a
// benchmark ends without emitting every record it promised — the
// silently-no-op regression class tools/bench_compare.py --schema-check
// re-checks on the merged CI artifact.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace alid::bench {

class BenchContext;
using BenchFn = std::function<void(BenchContext&)>;

/// One registered benchmark.
struct BenchmarkDef {
  std::string name;                  ///< Unique registry name.
  std::vector<std::string> labels;   ///< Shard/gate labels ("paper", ...).
  std::vector<std::string> records;  ///< JSON record names it must emit.
  BenchFn init;                      ///< Optional once-per-run setup.
  BenchFn run;                       ///< The measured body (required).
  BenchFn teardown;                  ///< Optional cleanup.
};

/// Options shared by every benchmark of one driver invocation.
struct BenchOptions {
  /// Global size multiplier (ALID_BENCH_SCALE env, overridable by --scale).
  double scale = 1.0;
  /// Un-measured run() repetitions before the measured ones (JSON dropped).
  int warmup = 0;
  /// Measured run() repetitions; JSON records are emitted only on the last
  /// so a record can never appear twice in one trajectory.
  int iterations = 1;
  /// Secondary JSON sink (one record per line, no "JSON " prefix), or null.
  std::FILE* json_out = nullptr;
  /// When non-empty, span tracing is enabled for the whole invocation and
  /// the buffered events are written here as Chrome trace-event JSON after
  /// the last benchmark (load the file in Perfetto / chrome://tracing).
  std::string trace_out;
};

/// Per-benchmark execution context handed to init/run/teardown.
class BenchContext {
 public:
  BenchContext(const BenchmarkDef* def, const BenchOptions* options)
      : def_(def), options_(options) {}

  const BenchOptions& options() const { return *options_; }
  const BenchmarkDef& benchmark() const { return *def_; }

  /// The global size multiplier of this invocation.
  double scale() const { return options_->scale; }

  /// `base` scaled by the global multiplier, as a size.
  Index Scaled(double base) const {
    return static_cast<Index>(base * options_->scale);
  }

  /// True on the iteration whose JSON records reach the trajectory (the
  /// last measured one); false during warmup and earlier iterations.
  bool measured() const { return measured_; }

  /// Emits one single-line JSON record ({"bench":"<name>",...}). The record
  /// name must be one this benchmark registered; the registry injects the
  /// registration labels, prints the legacy `JSON {...}` stdout line and
  /// mirrors the record into --json-out. Dropped (but still validated)
  /// outside the final measured iteration.
  void EmitJson(const std::string& record);

  /// Marks the benchmark failed (the driver exits non-zero) with a reason.
  void Fail(const std::string& message);

  bool failed() const { return failed_; }

 private:
  friend class BenchRegistry;

  const BenchmarkDef* def_;
  const BenchOptions* options_;
  bool measured_ = true;
  bool failed_ = false;
  std::vector<std::string> emitted_;  // record names seen this iteration
};

/// The process-wide registry behind ALID_BENCHMARK.
class BenchRegistry {
 public:
  static BenchRegistry& Instance();

  /// Registers one benchmark (names must be unique; enforced at run time so
  /// a static-init collision cannot abort before main prints anything).
  void Register(BenchmarkDef def);

  /// Benchmarks sorted by name (registration order is link order — not a
  /// contract anything may depend on).
  std::vector<const BenchmarkDef*> Sorted() const;

  /// The driver: parses --list/--list-records/--filter/--labels/--warmup/
  /// --iterations/--json-out/--trace-out/--scale, runs the selected
  /// benchmarks and returns the process exit code (0 ok; 1 a benchmark
  /// failed or broke its record promise; 2 usage error or an empty
  /// selection).
  int RunMain(int argc, char** argv);

 private:
  std::vector<BenchmarkDef> benchmarks_;
};

/// Registration hook used by the ALID_BENCHMARK macros.
int RegisterBenchmark(BenchmarkDef def);

/// Splits a comma-separated list ("a,b" -> {"a","b"}; "" -> {}).
std::vector<std::string> SplitCsv(const std::string& csv);

/// Parses a benchmark size multiplier. Accepts a finite decimal >= 0.05
/// (the floor below which every Scaled() size collapses to a handful of
/// items and the "benchmark" measures nothing); rejects garbage, trailing
/// junk, non-finite and out-of-range values by returning false with an
/// explanation in *error. The one parser behind ALID_BENCH_SCALE, --scale
/// and bench_util.h's Scale(), so all three agree on what a valid scale is.
bool ParseBenchScale(const char* text, double* scale, std::string* error);

/// ParseBenchScale or exit(2) with the error on stderr, naming `source`
/// (e.g. "ALID_BENCH_SCALE", "--scale"). A malformed scale used to fall
/// back to 1.0 silently — a run claiming paper-grid numbers at toy sizes;
/// now it refuses to run instead.
double ParseBenchScaleOrDie(const char* text, const char* source);

/// printf-appends to `out` (the JSON-record builder every bench shares).
void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Keeps `value` observable without a store — the micro-loop sink (the
/// google-benchmark idiom, local so the registry has no extra dependency).
template <typename T>
inline void KeepAlive(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Times `fn` adaptively: repeats batches until `min_seconds` of total work
/// accumulates, returns seconds per call. The component-micro helper.
double TimePerCall(const std::function<void()>& fn, double min_seconds = 0.02);

#define ALID_BENCH_CONCAT_(a, b) a##b
#define ALID_BENCH_CONCAT(a, b) ALID_BENCH_CONCAT_(a, b)

/// Registers a benchmark with init and teardown callbacks.
#define ALID_BENCHMARK_FULL(name, labels, records, init_fn, run_fn,   \
                            teardown_fn)                              \
  static const int ALID_BENCH_CONCAT(alid_bench_registered_,          \
                                     __COUNTER__) =                   \
      ::alid::bench::RegisterBenchmark(                               \
          {name, ::alid::bench::SplitCsv(labels),                     \
           ::alid::bench::SplitCsv(records), init_fn, run_fn,         \
           teardown_fn})

/// Registers a run-only benchmark (no init/teardown).
#define ALID_BENCHMARK(name, labels, records, run_fn) \
  ALID_BENCHMARK_FULL(name, labels, records, nullptr, run_fn, nullptr)

}  // namespace alid::bench

#endif  // ALID_BENCH_REGISTRY_H_
