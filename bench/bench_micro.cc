// Component microbenchmarks: kernel evaluation, lazy column computation,
// LSH build/query, one LID invasion, replicator iteration, eigensolvers, and
// sketch-filtered vs full absorb scoring.
//
// Mostly not a paper artifact — used to attribute the figure-level costs to
// components. Two registrations: "micro_components" reports seconds-per-call
// for each component kernel (adaptive timed loops, KeepAlive sinks — the
// google-benchmark idiom without the dependency), and "micro_sketch" keeps
// the sketch-vs-full absorb sweep with its exactness contract — a sketch
// that changed one answer bit would be a bug, not a speedup, so a mismatch
// fails the benchmark (and with it the CI bench step).
#include "bench_util.h"
#include "registry.h"

#include <cstring>
#include <memory>

#include "baselines/replicator.h"
#include "common/random.h"
#include "core/lid.h"
#include "data/synthetic.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "serve/cluster_snapshot.h"
#include "simd/simd_dispatch.h"
#include "simd/soa_block.h"

namespace alid::bench {
namespace {

LabeledData MakeData(Index n, int dim) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.num_clusters = 10;
  cfg.omega = 0.6;
  cfg.seed = 901;
  return MakeSynthetic(cfg);
}

DenseMatrix RandomSymmetric(Index n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

struct ComponentRow {
  std::string component;
  int arg;
  double seconds_per_call;
};

void RunComponents(BenchContext& ctx) {
  std::printf("Component micro-costs (adaptive timed loops)\n");
  std::vector<ComponentRow> rows;
  auto time_component = [&](const char* component, int arg,
                            const std::function<void()>& fn) {
    const double per_call = TimePerCall(fn);
    std::printf("  %-22s arg=%-5d %.3e s/call\n", component, arg, per_call);
    rows.push_back({component, arg, per_call});
  };

  for (int dim : {16, 128, 512}) {
    LabeledData data = MakeData(1000, dim);
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    Index i = 0;
    time_component("kernel_evaluation", dim, [&] {
      KeepAlive(f(data.data, i % 1000, (i * 7 + 1) % 1000));
      ++i;
    });
  }

  {
    LabeledData data = MakeData(4000, 100);
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    for (int rows_per_col : {64, 256, 1024}) {
      LazyAffinityOracle oracle(data.data, f);
      IndexList col_rows(rows_per_col);
      for (size_t t = 0; t < col_rows.size(); ++t) {
        col_rows[t] = static_cast<Index>(t * 3);
      }
      Index col = 0;
      time_component("lazy_column", rows_per_col, [&] {
        KeepAlive(oracle.Column(col_rows, col % 4000));
        ++col;
      });
    }
  }

  for (int n : {1000, 4000}) {
    LabeledData data = MakeData(n, 100);
    time_component("lsh_build", n, [&] {
      LshParams lp;
      lp.num_tables = 8;
      lp.num_projections = 6;
      lp.segment_length = data.suggested_lsh_r;
      LshIndex lsh(data.data, lp);
      KeepAlive(lsh.size());
    });
  }

  {
    LabeledData data = MakeData(8000, 100);
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = data.suggested_lsh_r;
    LshIndex lsh(data.data, lp);
    Index i = 0;
    time_component("lsh_query", 8000, [&] {
      KeepAlive(lsh.QueryByIndex(i % 8000));
      ++i;
    });
  }

  for (int n : {1000, 4000}) {
    LabeledData data = MakeData(n, 100);
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    LazyAffinityOracle oracle(data.data, f);
    time_component("lid_detection", n, [&] {
      Lid lid(oracle, 0, {});
      IndexList cluster0 = data.true_clusters[0];
      cluster0.erase(cluster0.begin());  // the seed itself
      lid.UpdateRange(cluster0);
      KeepAlive(lid.Run());
    });
  }

  for (int n : {500, 1000}) {
    LabeledData data = MakeData(n, 50);
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    AffinityMatrix matrix(data.data, f);
    AffinityView view(&matrix.matrix());
    std::vector<Scalar> x(data.size(),
                          1.0 / static_cast<Scalar>(data.size()));
    ReplicatorOptions opts;
    opts.max_iterations = 1;
    time_component("replicator_iteration", n, [&] {
      KeepAlive(RunReplicatorDynamics(view, x, opts));
    });
  }

  for (int n : {32, 64, 128}) {
    DenseMatrix m = RandomSymmetric(n, 5);
    time_component("jacobi_eigen", n, [&] { KeepAlive(JacobiEigenSolver(m)); });
  }

  for (int n : {256, 512}) {
    DenseMatrix m = RandomSymmetric(n, 7);
    auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
    time_component("lanczos_top4", n,
                   [&] { KeepAlive(LanczosTopK(n, 4, matvec)); });
  }

  std::string json = "{\"bench\":\"micro_components\",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendF(json,
            "%s{\"component\":\"%s\",\"arg\":%d,"
            "\"seconds_per_call\":%.9f}",
            i == 0 ? "" : ",", rows[i].component.c_str(), rows[i].arg,
            rows[i].seconds_per_call);
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("micro_components", "micro", "micro_components",
               RunComponents);

// ---------------------------------------------------------------------------
// Sketch-filtered vs full Theorem-1 absorb scoring at a* in {64, 256, 1024}.
//
// One dense Gaussian cluster of a* members is exported into two snapshots —
// sketch on and sketch off — and assignment queries from three bands
// (absorbing jitter, the collide-but-fail near-miss band, far points) score
// against it. The LSH segment length is set far above the data scale so
// every query collides and the measurement isolates the scoring itself;
// answers are bit-identical by the sketch's exactness contract (asserted).
// ---------------------------------------------------------------------------
struct AbsorbFixture {
  static constexpr int dim = 12;
  static constexpr Index kQueryCount = 512;

  Dataset data;
  std::shared_ptr<const ClusterSnapshot> with_sketch;
  std::shared_ptr<const ClusterSnapshot> without_sketch;
  std::vector<Scalar> queries;  // row-major, kQueryCount x dim

  explicit AbsorbFixture(Index support) : data(dim) {
    Rng rng(811);
    std::vector<Scalar> center(dim);
    for (auto& v : center) v = rng.Uniform(0.0, 100.0);
    for (Index i = 0; i < support; ++i) {
      std::vector<Scalar> point(dim);
      for (int d = 0; d < dim; ++d) point[d] = center[d] + rng.Gaussian();
      data.Append(point);
    }
    Cluster cluster;
    cluster.seed = 0;
    for (Index i = 0; i < support; ++i) {
      cluster.members.push_back(i);
      cluster.weights.push_back(1.0 / static_cast<Scalar>(support));
    }
    ClusterSnapshotOptions options;
    // Kernel tuned so in-cluster pairs sit near 0.9 => density ~0.8+.
    options.affinity.k = AffinityFunction::SuggestScalingFactor(
        data, /*p=*/2.0, /*target_affinity=*/0.9);
    AffinityFunction fn(options.affinity);
    LazyAffinityOracle oracle(data, fn);
    Scalar density = 0.0;
    for (Index a = 0; a < support; ++a) {
      for (Index b = 0; b < support; ++b) {
        density += cluster.weights[a] * cluster.weights[b] *
                   oracle.Entry(a, b);
      }
    }
    cluster.density = density;
    // Every query lands in every bucket: the sweep times scoring, not
    // candidate retrieval.
    options.lsh.segment_length = 1e9;
    with_sketch =
        ClusterSnapshot::FromClusters(data, {&cluster, 1}, options);
    ClusterSnapshotOptions off = options;
    off.sketch.prefix_mass = 0.0;
    without_sketch =
        ClusterSnapshot::FromClusters(data, {&cluster, 1}, off);

    for (Index q = 0; q < kQueryCount; ++q) {
      const auto row =
          data[static_cast<Index>(rng.UniformInt(0, support - 1))];
      const int band = static_cast<int>(q % 3);
      const double magnitude = band == 0 ? 0.2 : (band == 1 ? 6.0 : 40.0);
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * magnitude);
      }
    }
  }

  std::span<const Scalar> Query(Index q) const {
    return {queries.data() + static_cast<size_t>(q % kQueryCount) * dim,
            static_cast<size_t>(dim)};
  }
};

// The trajectory record: wall seconds over a fixed query sweep per support
// size, sketch vs full, plus the prune/exact counters and an equality spot
// check.
void RunSketch(BenchContext& ctx) {
  std::printf("Sketch-filtered vs full absorb scoring\n");
  std::string json = "{\"bench\":\"micro_sketch\",\"rows\":[";
  bool first = true;
  bool all_match = true;
  for (Index support : {Index{64}, Index{256}, Index{1024}}) {
    AbsorbFixture fixture(support);
    constexpr int kSweep = 4096;
    int64_t prunes = 0;
    int64_t exact = 0;
    int mismatches = 0;
    for (Index q = 0; q < AbsorbFixture::kQueryCount; ++q) {
      const AssignOutcome a = fixture.with_sketch->Assign(fixture.Query(q));
      const AssignOutcome b =
          fixture.without_sketch->Assign(fixture.Query(q));
      if (a.cluster != b.cluster || a.affinity != b.affinity ||
          a.margin != b.margin) {
        ++mismatches;
        all_match = false;
      }
      prunes += a.sketch_prunes;
      exact += a.sketch_exact;
    }
    WallTimer full_timer;
    for (int q = 0; q < kSweep; ++q) {
      KeepAlive(fixture.without_sketch->Assign(fixture.Query(q)));
    }
    const double full_seconds = full_timer.Seconds();
    WallTimer sketch_timer;
    for (int q = 0; q < kSweep; ++q) {
      KeepAlive(fixture.with_sketch->Assign(fixture.Query(q)));
    }
    const double sketch_seconds = sketch_timer.Seconds();
    std::printf("  support=%-5d full %.4fs  sketch %.4fs  speedup %.2fx  "
                "prunes %lld  exact %lld  mismatches %d\n",
                support, full_seconds, sketch_seconds,
                sketch_seconds > 0.0 ? full_seconds / sketch_seconds : 0.0,
                static_cast<long long>(prunes),
                static_cast<long long>(exact), mismatches);
    AppendF(json,
            "%s{\"support\":%d,\"queries\":%d,\"full_seconds\":%.6f,"
            "\"sketch_seconds\":%.6f,\"speedup\":%.4f,"
            "\"sketch_prunes\":%lld,"
            "\"sketch_exact\":%lld,\"mismatches\":%d}",
            first ? "" : ",", support, kSweep, full_seconds, sketch_seconds,
            sketch_seconds > 0.0 ? full_seconds / sketch_seconds : 0.0,
            static_cast<long long>(prunes), static_cast<long long>(exact),
            mismatches);
    first = false;
  }
  json += "]}";
  ctx.EmitJson(json);
  if (!all_match) {
    ctx.Fail("sketch-pruned absorb scoring disagreed with full scoring — "
             "the exactness contract is broken");
  }
}

ALID_BENCHMARK("micro_sketch", "micro", "micro_sketch", RunSketch);

// ---------------------------------------------------------------------------
// Row-major scalar vs SoA tile kernels, one column per available ISA.
//
// The Eq.-1 inner loop of absorb/serve scoring — the weighted kernel sum of
// one cluster's support against a query — timed three ways per dimension:
// the row-major scalar loop (the pre-SIMD path), the SoA tiles through the
// scalar ops (layout effect alone), and the SoA tiles through each vector
// ISA the host can run (scalar/avx2/widest — the dispatch axis). Outputs
// are bit-compared against the row-major loop first; a single differing bit
// fails the benchmark, because the vector path is only allowed to exist
// under the exactness contract (README "SIMD dispatch"). The "simd_kernel"
// record is the gate-able result: per-ISA member-evaluations/sec and the
// speedup over the row-major baseline.
// ---------------------------------------------------------------------------
struct KernelFixture {
  Dataset data;
  std::vector<Scalar> weights;
  SoaBlock block;
  std::vector<Scalar> queries;  // row-major, num_queries x dim
  Index num_queries = 0;
  int dim;

  KernelFixture(Index support, int dim_, uint64_t seed)
      : data(dim_), dim(dim_) {
    Rng rng(seed);
    std::vector<Scalar> center(dim);
    for (auto& v : center) v = rng.Uniform(0.0, 100.0);
    std::vector<Scalar> point(dim);
    for (Index i = 0; i < support; ++i) {
      for (int d = 0; d < dim; ++d) point[d] = center[d] + rng.Gaussian();
      data.Append(point);
    }
    weights.assign(support, 1.0 / static_cast<Scalar>(support));
    block.FromRowMajor(data.raw().data(), support, dim);
    num_queries = 64;
    for (Index q = 0; q < num_queries; ++q) {
      const auto row = data[static_cast<Index>(rng.UniformInt(0, support - 1))];
      const double magnitude = 0.5 * static_cast<double>(q % 8);
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * magnitude);
      }
    }
  }

  const Scalar* Query(Index q) const {
    return queries.data() + static_cast<size_t>(q % num_queries) * dim;
  }
};

// The pre-SIMD inner loop, verbatim: serial member-order accumulation over
// row-major storage.
Scalar RowMajorKernelSum(const KernelFixture& f, const AffinityFunction& fn,
                         const Scalar* query) {
  const std::span<const Scalar> q(query, static_cast<size_t>(f.dim));
  Scalar sum = 0.0;
  for (Index i = 0; i < f.data.size(); ++i) {
    sum += f.weights[i] * fn.FromDistance(f.data.DistanceTo(i, q));
  }
  return sum;
}

void RunSimd(BenchContext& ctx) {
  const auto isas = AvailableSimdIsas();
  std::printf("SoA tile kernels vs row-major scalar (active ISA: %s)\n",
              SimdIsaName(ActiveSimdIsa()));
  std::string json = "{\"bench\":\"simd_kernel\",\"active_isa\":\"";
  json += SimdIsaName(ActiveSimdIsa());
  json += "\",\"rows\":[";
  bool first = true;
  int64_t total_mismatches = 0;
  for (int dim : {16, 64, 256}) {
    const Index support =
        std::max<Index>(ctx.Scaled(2048), 4 * kSimdTileLanes);
    KernelFixture fixture(support, dim, 3001 + dim);
    AffinityFunction fn(
        {.k = AffinityFunction::SuggestScalingFactor(fixture.data, 2.0, 0.9),
         .p = 2.0});

    Index q = 0;
    const double rowmajor_per_call = TimePerCall([&] {
      KeepAlive(RowMajorKernelSum(fixture, fn, fixture.Query(q)));
      ++q;
    });

    for (SimdIsa isa : isas) {
      const SimdKernelOps& ops = *SimdOpsFor(isa);
      // Exactness first: the tile path must reproduce the row-major sum
      // bit for bit on every probe query before its timing means anything.
      int mismatches = 0;
      for (Index probe = 0; probe < fixture.num_queries; ++probe) {
        const Scalar want =
            RowMajorKernelSum(fixture, fn, fixture.Query(probe));
        const Scalar got = SoaWeightedKernelSum(
            ops, fixture.block, fixture.weights, fn, fixture.Query(probe));
        if (std::memcmp(&want, &got, sizeof(Scalar)) != 0) ++mismatches;
      }
      total_mismatches += mismatches;

      Index v = 0;
      const double per_call = TimePerCall([&] {
        KeepAlive(SoaWeightedKernelSum(ops, fixture.block, fixture.weights,
                                       fn, fixture.Query(v)));
        ++v;
      });
      const double evals_per_sec =
          per_call > 0.0 ? static_cast<double>(support) / per_call : 0.0;
      const double speedup =
          per_call > 0.0 ? rowmajor_per_call / per_call : 0.0;
      std::printf("  dim=%-4d support=%-5d %-7s %.3e s/call  "
                  "%10.0f evals/s  speedup %.2fx  mismatches %d\n",
                  dim, support, ops.name, per_call, evals_per_sec, speedup,
                  mismatches);
      AppendF(json,
              "%s{\"dim\":%d,\"support\":%d,\"isa\":\"%s\","
              "\"seconds_per_call\":%.9f,\"evals_per_sec\":%.0f,"
              "\"speedup_vs_rowmajor\":%.4f,\"mismatches\":%d}",
              first ? "" : ",", dim, support, ops.name, per_call,
              evals_per_sec, speedup, mismatches);
      first = false;
    }
  }
  json += "]}";
  ctx.EmitJson(json);
  if (total_mismatches > 0) {
    ctx.Fail("SoA tile kernel disagreed with the row-major scalar loop — "
             "the bit-exactness contract is broken");
  }
}

ALID_BENCHMARK("micro_simd", "micro", "simd_kernel", RunSimd);

}  // namespace
}  // namespace alid::bench
