// Component microbenchmarks (google-benchmark): kernel evaluation, lazy
// column computation, LSH build/query, one LID invasion, replicator
// iteration, eigensolvers. Not a paper artifact — used to attribute the
// figure-level costs to components.
#include <benchmark/benchmark.h>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "baselines/replicator.h"
#include "affinity/affinity_matrix.h"
#include "common/random.h"
#include "core/lid.h"
#include "data/synthetic.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "lsh/lsh_index.h"

namespace alid {
namespace {

LabeledData MakeData(Index n, int dim) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.num_clusters = 10;
  cfg.omega = 0.6;
  cfg.seed = 901;
  return MakeSynthetic(cfg);
}

void BM_KernelEvaluation(benchmark::State& state) {
  LabeledData data = MakeData(1000, static_cast<int>(state.range(0)));
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  Index i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f(data.data, i % 1000, (i * 7 + 1) % 1000));
    ++i;
  }
}
BENCHMARK(BM_KernelEvaluation)->Arg(16)->Arg(128)->Arg(512);

void BM_LazyColumn(benchmark::State& state) {
  LabeledData data = MakeData(4000, 100);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, f);
  IndexList rows(state.range(0));
  for (size_t t = 0; t < rows.size(); ++t) rows[t] = static_cast<Index>(t * 3);
  Index col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Column(rows, col % 4000));
    ++col;
  }
}
BENCHMARK(BM_LazyColumn)->Arg(64)->Arg(256)->Arg(1024);

void BM_LshBuild(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 100);
  for (auto _ : state) {
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = data.suggested_lsh_r;
    LshIndex lsh(data.data, lp);
    benchmark::DoNotOptimize(lsh.size());
  }
}
BENCHMARK(BM_LshBuild)->Arg(1000)->Arg(4000);

void BM_LshQuery(benchmark::State& state) {
  LabeledData data = MakeData(8000, 100);
  LshParams lp;
  lp.num_tables = 8;
  lp.num_projections = 6;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  Index i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.QueryByIndex(i % 8000));
    ++i;
  }
}
BENCHMARK(BM_LshQuery);

void BM_LidDetection(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 100);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, f);
  for (auto _ : state) {
    Lid lid(oracle, 0, {});
    IndexList cluster0 = data.true_clusters[0];
    cluster0.erase(cluster0.begin());  // the seed itself
    lid.UpdateRange(cluster0);
    benchmark::DoNotOptimize(lid.Run());
  }
}
BENCHMARK(BM_LidDetection)->Arg(1000)->Arg(4000);

void BM_ReplicatorIteration(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 50);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix matrix(data.data, f);
  AffinityView view(&matrix.matrix());
  std::vector<Scalar> x(data.size(), 1.0 / data.size());
  ReplicatorOptions opts;
  opts.max_iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunReplicatorDynamics(view, x, opts));
  }
}
BENCHMARK(BM_ReplicatorIteration)->Arg(500)->Arg(1000);

void BM_JacobiEigen(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JacobiEigenSolver(m));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(128);

void BM_LanczosTop4(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(7);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(LanczosTopK(n, 4, matvec));
  }
}
BENCHMARK(BM_LanczosTop4)->Arg(256)->Arg(512);

}  // namespace
}  // namespace alid

BENCHMARK_MAIN();
