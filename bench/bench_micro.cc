// Component microbenchmarks (google-benchmark): kernel evaluation, lazy
// column computation, LSH build/query, one LID invasion, replicator
// iteration, eigensolvers, and sketch-filtered vs full absorb scoring.
// Mostly not a paper artifact — used to attribute the figure-level costs to
// components — but the absorb-scoring section also prints a single-line
// JSON record so the sketch speedup joins the bench trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "baselines/replicator.h"
#include "affinity/affinity_matrix.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/lid.h"
#include "data/synthetic.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"
#include "lsh/lsh_index.h"
#include "serve/cluster_snapshot.h"

namespace alid {
namespace {

LabeledData MakeData(Index n, int dim) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.num_clusters = 10;
  cfg.omega = 0.6;
  cfg.seed = 901;
  return MakeSynthetic(cfg);
}

void BM_KernelEvaluation(benchmark::State& state) {
  LabeledData data = MakeData(1000, static_cast<int>(state.range(0)));
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  Index i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f(data.data, i % 1000, (i * 7 + 1) % 1000));
    ++i;
  }
}
BENCHMARK(BM_KernelEvaluation)->Arg(16)->Arg(128)->Arg(512);

void BM_LazyColumn(benchmark::State& state) {
  LabeledData data = MakeData(4000, 100);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, f);
  IndexList rows(state.range(0));
  for (size_t t = 0; t < rows.size(); ++t) rows[t] = static_cast<Index>(t * 3);
  Index col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Column(rows, col % 4000));
    ++col;
  }
}
BENCHMARK(BM_LazyColumn)->Arg(64)->Arg(256)->Arg(1024);

void BM_LshBuild(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 100);
  for (auto _ : state) {
    LshParams lp;
    lp.num_tables = 8;
    lp.num_projections = 6;
    lp.segment_length = data.suggested_lsh_r;
    LshIndex lsh(data.data, lp);
    benchmark::DoNotOptimize(lsh.size());
  }
}
BENCHMARK(BM_LshBuild)->Arg(1000)->Arg(4000);

void BM_LshQuery(benchmark::State& state) {
  LabeledData data = MakeData(8000, 100);
  LshParams lp;
  lp.num_tables = 8;
  lp.num_projections = 6;
  lp.segment_length = data.suggested_lsh_r;
  LshIndex lsh(data.data, lp);
  Index i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.QueryByIndex(i % 8000));
    ++i;
  }
}
BENCHMARK(BM_LshQuery);

void BM_LidDetection(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 100);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, f);
  for (auto _ : state) {
    Lid lid(oracle, 0, {});
    IndexList cluster0 = data.true_clusters[0];
    cluster0.erase(cluster0.begin());  // the seed itself
    lid.UpdateRange(cluster0);
    benchmark::DoNotOptimize(lid.Run());
  }
}
BENCHMARK(BM_LidDetection)->Arg(1000)->Arg(4000);

void BM_ReplicatorIteration(benchmark::State& state) {
  LabeledData data = MakeData(state.range(0), 50);
  AffinityFunction f({.k = data.suggested_k, .p = 2.0});
  AffinityMatrix matrix(data.data, f);
  AffinityView view(&matrix.matrix());
  std::vector<Scalar> x(data.size(), 1.0 / data.size());
  ReplicatorOptions opts;
  opts.max_iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunReplicatorDynamics(view, x, opts));
  }
}
BENCHMARK(BM_ReplicatorIteration)->Arg(500)->Arg(1000);

void BM_JacobiEigen(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JacobiEigenSolver(m));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(128);

void BM_LanczosTop4(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(7);
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  auto matvec = [&](std::span<const Scalar> x) { return m.MatVec(x); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(LanczosTopK(n, 4, matvec));
  }
}
BENCHMARK(BM_LanczosTop4)->Arg(256)->Arg(512);

// ---------------------------------------------------------------------------
// Sketch-filtered vs full Theorem-1 absorb scoring at a* in {64, 256, 1024}.
//
// One dense Gaussian cluster of a* members is exported into two snapshots —
// sketch on and sketch off — and assignment queries from three bands
// (absorbing jitter, the collide-but-fail near-miss band, far points) score
// against it. The LSH segment length is set far above the data scale so
// every query collides and the measurement isolates the scoring itself;
// answers are bit-identical by the sketch's exactness contract (asserted).
// ---------------------------------------------------------------------------
struct AbsorbFixture {
  static constexpr int dim = 12;
  static constexpr Index kQueryCount = 512;

  Dataset data;
  std::shared_ptr<const ClusterSnapshot> with_sketch;
  std::shared_ptr<const ClusterSnapshot> without_sketch;
  std::vector<Scalar> queries;  // row-major, kQueryCount x dim

  explicit AbsorbFixture(Index support) : data(dim) {
    Rng rng(811);
    std::vector<Scalar> center(dim);
    for (auto& v : center) v = rng.Uniform(0.0, 100.0);
    for (Index i = 0; i < support; ++i) {
      std::vector<Scalar> point(dim);
      for (int d = 0; d < dim; ++d) point[d] = center[d] + rng.Gaussian();
      data.Append(point);
    }
    Cluster cluster;
    cluster.seed = 0;
    for (Index i = 0; i < support; ++i) {
      cluster.members.push_back(i);
      cluster.weights.push_back(1.0 / static_cast<Scalar>(support));
    }
    ClusterSnapshotOptions options;
    // Kernel tuned so in-cluster pairs sit near 0.9 => density ~0.8+.
    options.affinity.k = AffinityFunction::SuggestScalingFactor(
        data, /*p=*/2.0, /*target_affinity=*/0.9);
    AffinityFunction fn(options.affinity);
    LazyAffinityOracle oracle(data, fn);
    Scalar density = 0.0;
    for (Index a = 0; a < support; ++a) {
      for (Index b = 0; b < support; ++b) {
        density += cluster.weights[a] * cluster.weights[b] *
                   oracle.Entry(a, b);
      }
    }
    cluster.density = density;
    // Every query lands in every bucket: the sweep times scoring, not
    // candidate retrieval.
    options.lsh.segment_length = 1e9;
    with_sketch =
        ClusterSnapshot::FromClusters(data, {&cluster, 1}, options);
    ClusterSnapshotOptions off = options;
    off.sketch.prefix_mass = 0.0;
    without_sketch =
        ClusterSnapshot::FromClusters(data, {&cluster, 1}, off);

    for (Index q = 0; q < kQueryCount; ++q) {
      const auto row =
          data[static_cast<Index>(rng.UniformInt(0, support - 1))];
      const int band = static_cast<int>(q % 3);
      const double magnitude = band == 0 ? 0.2 : (band == 1 ? 6.0 : 40.0);
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * magnitude);
      }
    }
  }

  std::span<const Scalar> Query(Index q) const {
    return {queries.data() + static_cast<size_t>(q % kQueryCount) * dim,
            static_cast<size_t>(dim)};
  }
};

void BM_AbsorbScoreFull(benchmark::State& state) {
  AbsorbFixture fixture(state.range(0));
  Index q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.without_sketch->Assign(fixture.Query(q)));
    ++q;
  }
}
BENCHMARK(BM_AbsorbScoreFull)->Arg(64)->Arg(256)->Arg(1024);

void BM_AbsorbScoreSketch(benchmark::State& state) {
  AbsorbFixture fixture(state.range(0));
  Index q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.with_sketch->Assign(fixture.Query(q)));
    ++q;
  }
}
BENCHMARK(BM_AbsorbScoreSketch)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// The trajectory record: wall seconds over a fixed query sweep per support
// size, sketch vs full, plus the prune/exact counters and an equality spot
// check — a sketch that changed one bit would be a bug, not a speedup, so
// any mismatch fails the binary (and with it the CI bench step).
// Returns true iff every sketch answer matched its full-scoring twin.
bool PrintAbsorbScoreJson() {
  std::printf("\nJSON {\"bench\":\"micro_sketch\",\"rows\":[");
  bool first = true;
  bool all_match = true;
  for (Index support : {Index{64}, Index{256}, Index{1024}}) {
    AbsorbFixture fixture(support);
    constexpr int kSweep = 4096;
    int64_t prunes = 0;
    int64_t exact = 0;
    int mismatches = 0;
    for (Index q = 0; q < AbsorbFixture::kQueryCount; ++q) {
      const AssignOutcome a = fixture.with_sketch->Assign(fixture.Query(q));
      const AssignOutcome b =
          fixture.without_sketch->Assign(fixture.Query(q));
      if (a.cluster != b.cluster || a.affinity != b.affinity ||
          a.margin != b.margin) {
        ++mismatches;
        all_match = false;
      }
      prunes += a.sketch_prunes;
      exact += a.sketch_exact;
    }
    WallTimer full_timer;
    for (int q = 0; q < kSweep; ++q) {
      benchmark::DoNotOptimize(
          fixture.without_sketch->Assign(fixture.Query(q)));
    }
    const double full_seconds = full_timer.Seconds();
    WallTimer sketch_timer;
    for (int q = 0; q < kSweep; ++q) {
      benchmark::DoNotOptimize(fixture.with_sketch->Assign(fixture.Query(q)));
    }
    const double sketch_seconds = sketch_timer.Seconds();
    std::printf(
        "%s{\"support\":%d,\"queries\":%d,\"full_seconds\":%.6f,"
        "\"sketch_seconds\":%.6f,\"speedup\":%.4f,\"sketch_prunes\":%lld,"
        "\"sketch_exact\":%lld,\"mismatches\":%d}",
        first ? "" : ",", support, kSweep, full_seconds, sketch_seconds,
        sketch_seconds > 0.0 ? full_seconds / sketch_seconds : 0.0,
        static_cast<long long>(prunes), static_cast<long long>(exact),
        mismatches);
    first = false;
  }
  std::printf("]}\n");
  if (!all_match) {
    std::fprintf(stderr, "FATAL: sketch-pruned absorb scoring disagreed "
                         "with full scoring — the exactness contract is "
                         "broken\n");
  }
  return all_match;
}

}  // namespace alid

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return alid::PrintAbsorbScoreJson() ? 0 : 1;
}
