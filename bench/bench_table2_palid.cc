// Table 2 — PALID parallel performance (Section 5.3/4.6).
//
// Runs PALID on a SIFT-like workload with 1/2/4/8 executors and reports wall
// time, the speedup ratio against 1 executor, and the aggregate map-task
// time. On the paper's 8-core Spark cluster the speedup reaches 7.51 at 8
// executors; on this host the wall-clock speedup saturates at the physical
// core count, so the aggregate-task-time / wall-time ratio is also printed —
// it shows the realized concurrency of the executor pool independent of the
// hardware.
#include "bench_util.h"

#include "core/palid.h"
#include "data/sift_like.h"
#include "eval/metrics.h"

namespace alid::bench {
namespace {

void Main() {
  std::printf("Table 2: PALID executors sweep on SIFT-like data "
              "(scale %.2f)\n", Scale());
  SiftLikeConfig cfg;
  cfg.n = Scaled(8000);
  cfg.num_visual_words = 40;
  cfg.word_fraction = 0.3;
  cfg.seed = 701;
  LabeledData data = MakeSiftLike(cfg);
  std::printf("n=%d descriptors, %d planted visual words\n", data.size(),
              cfg.num_visual_words);

  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  LshIndex lsh(data.data, MakeLshParams(data));

  PrintHeader("executors sweep");
  std::printf("%-10s %-8s %-10s %-10s %-12s %-10s %-8s\n", "method",
              "execs", "wall(s)", "speedup", "task-sum(s)", "conc.", "AVG-F");
  double base_wall = 0.0;
  for (int execs : {1, 2, 4, 8}) {
    PalidOptions opts;
    opts.num_executors = execs;
    Palid palid(oracle, lsh, opts);
    PalidStats stats;
    DetectionResult result = palid.Detect(&stats).Filtered(0.75);
    if (execs == 1) base_wall = stats.wall_seconds;
    const double speedup =
        stats.wall_seconds > 0.0 ? base_wall / stats.wall_seconds : 0.0;
    const double concurrency = stats.wall_seconds > 0.0
                                   ? stats.total_task_seconds /
                                         stats.wall_seconds
                                   : 0.0;
    std::printf("PALID-%d    %-8d %-10.3f %-10.2f %-12.3f %-10.2f %-8.3f\n",
                execs, execs, stats.wall_seconds, speedup,
                stats.total_task_seconds, concurrency,
                AverageF1(data.true_clusters, result));
  }
  std::printf("\nExpected shape (paper Table 2): near-linear speedup in the "
              "executor count up to the hardware's parallelism (7.51x at 8 "
              "executors on 8 cores). On a 1-core host wall-clock speedup "
              "stays ~1; the concurrency column shows the pool still "
              "distributes the map tasks.\n");
}

}  // namespace
}  // namespace alid::bench

int main() {
  alid::bench::Main();
  return 0;
}
