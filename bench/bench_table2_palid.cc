// Table 2 — PALID parallel performance (Section 5.3/4.6).
//
// Runs PALID on a SIFT-like workload with 1/2/4/8 executors and reports wall
// time, the speedup ratio against 1 executor, the aggregate map-task time,
// executor steal counts and the shared-column-cache hit rate; a final row
// runs the paper-faithful FIFO ablation at the widest executor count. On the
// paper's 8-core Spark cluster the speedup reaches 7.51 at 8 executors; on
// this host the wall-clock speedup saturates at the physical core count, so
// the aggregate-task-time / wall-time ratio is also printed — it shows the
// realized concurrency of the executor pool independent of the hardware.
//
// The last line is a single-line JSON record of the sweep for the bench
// trajectory (machine-readable, stable key names).
#include "bench_util.h"
#include "registry.h"

#include <string_view>

#include "core/palid.h"
#include "data/sift_like.h"
#include "eval/metrics.h"

namespace alid::bench {
namespace {

struct SweepRow {
  const char* method;
  int executors;
  PalidStats stats;
  double speedup;
  double concurrency;
  double avg_f;
};

SweepRow RunOnce(const LabeledData& data, const LshIndex& lsh,
                 const AffinityFunction& affinity, int executors,
                 bool work_stealing, double base_wall) {
  // A fresh oracle (with its default-on, auto-budgeted cache) per
  // configuration keeps the sweep fair: no run benefits from a
  // predecessor's warm cache.
  LazyAffinityOracle oracle(data.data, affinity);
  PalidOptions opts;
  opts.num_executors = executors;
  opts.work_stealing = work_stealing;
  SweepRow row;
  row.method = work_stealing ? "PALID" : "PALID-FIFO";
  row.executors = executors;
  Palid palid(oracle, lsh, opts);
  DetectionResult result = palid.Detect(&row.stats).Filtered(0.75);
  row.speedup = row.stats.wall_seconds > 0.0 && base_wall > 0.0
                    ? base_wall / row.stats.wall_seconds
                    : 0.0;
  row.concurrency = row.stats.wall_seconds > 0.0
                        ? row.stats.total_task_seconds / row.stats.wall_seconds
                        : 0.0;
  row.avg_f = AverageF1(data.true_clusters, result);
  return row;
}

void PrintRow(const SweepRow& row) {
  std::printf("%-11s %-6d %-10.3f %-9.2f %-12.3f %-7.2f %-8lld %-9.3f %-8.3f\n",
              row.method, row.executors, row.stats.wall_seconds, row.speedup,
              row.stats.total_task_seconds, row.concurrency,
              static_cast<long long>(row.stats.steals),
              row.stats.cache_hit_rate, row.avg_f);
}

void PrintHistogram(const SweepRow& row) {
  const std::vector<int> histogram = row.stats.TaskHistogram(8);
  std::printf("task-busy histogram (%d tasks, 8 bins to max): ",
              row.stats.num_tasks);
  for (int count : histogram) std::printf("%d ", count);
  std::printf("\n");
}

void EmitSweepJson(BenchContext& ctx, const std::vector<SweepRow>& rows,
                   Index n) {
  std::string json;
  AppendF(json, "{\"bench\":\"table2_palid\",\"n\":%d,\"rows\":[", n);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    AppendF(
        json,
        "%s{\"method\":\"%s\",\"executors\":%d,\"wall_seconds\":%.6f,"
        "\"speedup\":%.4f,\"gate_speedup\":%s,\"task_seconds\":%.6f,"
        "\"concurrency\":%.4f,"
        "\"steals\":%lld,\"cache_hits\":%lld,\"entries_computed\":%lld,"
        "\"cache_hit_rate\":%.4f,\"cache_evictions\":%lld,"
        "\"cache_stale_drops\":%lld,"
        "\"cache_bytes\":%lld,\"cache_budget_bytes\":%lld,"
        "\"num_seeds\":%d,\"num_tasks\":%d,\"avg_f\":%.4f}",
        i == 0 ? "" : ",", r.method, r.executors, r.stats.wall_seconds,
        r.speedup,
        std::string_view(r.method) == "PALID" ? "true" : "false",
        r.stats.total_task_seconds, r.concurrency,
        static_cast<long long>(r.stats.steals),
        static_cast<long long>(r.stats.cache_hits),
        static_cast<long long>(r.stats.entries_computed),
        r.stats.cache_hit_rate,
        static_cast<long long>(r.stats.cache_evictions),
        static_cast<long long>(r.stats.cache_stale_drops),
        static_cast<long long>(r.stats.cache_bytes),
        static_cast<long long>(r.stats.cache_budget_bytes),
        r.stats.num_seeds, r.stats.num_tasks, r.avg_f);
  }
  json += "]}";
  ctx.EmitJson(json);
}

void Run(BenchContext& ctx) {
  std::printf("Table 2: PALID executors sweep on SIFT-like data "
              "(scale %.2f)\n", ctx.scale());
  SiftLikeConfig cfg;
  cfg.n = ctx.Scaled(8000);
  cfg.num_visual_words = 40;
  cfg.word_fraction = 0.3;
  cfg.seed = 701;
  LabeledData data = MakeSiftLike(cfg);
  std::printf("n=%d descriptors, %d planted visual words\n", data.size(),
              cfg.num_visual_words);

  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LshIndex lsh(data.data, MakeLshParams(data));

  PrintHeader("executors sweep (work-stealing pool + shared column cache)");
  std::printf("%-11s %-6s %-10s %-9s %-12s %-7s %-8s %-9s %-8s\n", "method",
              "execs", "wall(s)", "speedup", "task-sum(s)", "conc.", "steals",
              "hit-rate", "AVG-F");
  std::vector<SweepRow> rows;
  double base_wall = 0.0;
  for (int execs : {1, 2, 4, 8}) {
    rows.push_back(RunOnce(data, lsh, affinity, execs,
                           /*work_stealing=*/true, base_wall));
    if (execs == 1) {
      base_wall = rows.back().stats.wall_seconds;
      rows.back().speedup = 1.0;  // the row is its own baseline
    }
    PrintRow(rows.back());
  }
  // Ablation: the seed's coarse single-FIFO-queue executor at max width.
  rows.push_back(RunOnce(data, lsh, affinity, 8, /*work_stealing=*/false,
                         base_wall));
  PrintRow(rows.back());
  // Histogram of the widest work-stealing run, found by name (robust to
  // sweep edits).
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    if (std::string_view(it->method) == "PALID") {
      PrintHistogram(*it);
      break;
    }
  }

  std::printf("\nExpected shape (paper Table 2): near-linear speedup in the "
              "executor count up to the hardware's parallelism (7.51x at 8 "
              "executors on 8 cores). On a 1-core host wall-clock speedup "
              "stays ~1; the concurrency column shows the pool still "
              "distributes the map tasks.\n");
  EmitSweepJson(ctx, rows, data.size());
}

ALID_BENCHMARK("table2_palid", "runtime,speedup", "table2_palid", Run);

}  // namespace
}  // namespace alid::bench
