// Shard-parallel ingest & serve: hash-partitioned intra-process shards
// (src/shard/) at fixed total work.
//
// Sweeps shard count S in {1, 2, 4, 8} x executors {1, 8} over the SAME
// arrival stream: every configuration ingests identical bytes, so the wall
// columns isolate what sharding buys — S independent ingest pipelines whose
// serial phases overlap on the pool. The S >= 4 sweeps are marked
// gate_speedup (the 1-executor row is the serial no-pool baseline); the
// S = 1 rows double as the overhead control, and the record carries
// shard_s1_overhead_ratio — min-wall S=1 sharded over min-wall plain
// OnlineAlid — which CI pins at <= 1.05 (the S == 1 fast path must stay a
// pure delegation).
//
// After the sweep, one router phase at S = 4 publishes the sharded
// snapshot bundle, fans out an assignment and a top-k query batch, and
// emits the boundary-cluster report; the router's registry fields (incl.
// the CI-gated shard_fanout_queries counter) embed in the record.
#include "bench_util.h"
#include "registry.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "shard/shard_router.h"
#include "shard/sharded_stream.h"

namespace alid::bench {
namespace {

struct ShardRow {
  int shards = 1;
  int executors = 1;
  double wall_seconds = 0.0;
  double speedup = 0.0;  // vs the 1-executor row of the same S
  double items_per_second = 0.0;
  double p50_batch_seconds = 0.0;
  double p95_batch_seconds = 0.0;
  int64_t arrivals = 0;
  int64_t absorbed = 0;
  int64_t evicted = 0;
  int64_t sketch_prunes = 0;
  int64_t sketch_exact = 0;
  int64_t hot_shard_arrivals = 0;   // max per-shard arrivals (skew)
  int64_t cold_shard_arrivals = 0;  // min per-shard arrivals
  int clusters = 0;
  bool gated = false;
};

OnlineAlidOptions BaseOptions(const LabeledData& data, Index window) {
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  // Short enough that every shard's slice of the stream detects its
  // clusters early and later arrivals take the absorb hot path — the
  // interval is per-shard arrivals, so high S slows the per-shard clock.
  opts.refresh_interval = 64;
  opts.window = window;
  return opts;
}

std::vector<Scalar> ArrivalStream(const LabeledData& data) {
  Rng rng(17);
  const std::vector<Index> order = rng.Permutation(data.size());
  std::vector<Scalar> flat;
  flat.reserve(static_cast<size_t>(data.size()) * data.data.dim());
  for (Index i : order) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

double PlainIngestWall(const LabeledData& data,
                       const std::vector<Scalar>& arrivals, Index batch,
                       Index window) {
  OnlineAlid online(data.data.dim(), BaseOptions(data, window));
  const int dim = data.data.dim();
  const Index count = static_cast<Index>(arrivals.size()) / dim;
  WallTimer timer;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    online.InsertBatch(std::span<const Scalar>(
        arrivals.data() + static_cast<size_t>(begin) * dim,
        static_cast<size_t>(size) * dim));
  }
  online.Refresh();
  return timer.Seconds();
}

// Builds (or rebuilds) one sharded stream over the arrival sequence and
// fills a sweep row. `out` (optional) receives the finished stream for the
// router phase.
ShardRow RunSharded(const LabeledData& data,
                    const std::vector<Scalar>& arrivals, Index batch,
                    Index window, int shards, int executors,
                    std::unique_ptr<ShardedStream>* out = nullptr,
                    std::unique_ptr<ThreadPool>* pool_out = nullptr) {
  ShardRow row;
  row.shards = shards;
  row.executors = executors;

  std::unique_ptr<ThreadPool> pool;
  if (executors > 1) pool = std::make_unique<ThreadPool>(executors);

  ShardedStreamOptions opts;
  opts.base = BaseOptions(data, window);
  opts.base.pool = pool.get();
  opts.num_shards = shards;
  auto stream = std::make_unique<ShardedStream>(data.data.dim(), opts);

  const int dim = data.data.dim();
  const Index count = static_cast<Index>(arrivals.size()) / dim;
  WallTimer timer;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    stream->InsertBatch(std::span<const Scalar>(
        arrivals.data() + static_cast<size_t>(begin) * dim,
        static_cast<size_t>(size) * dim));
  }
  stream->Refresh();
  row.wall_seconds = timer.Seconds();

  const StreamStats stats = stream->stats();
  row.arrivals = stats.arrivals;
  row.items_per_second =
      row.wall_seconds > 0.0
          ? static_cast<double>(stats.arrivals) / row.wall_seconds
          : 0.0;
  row.p50_batch_seconds = Percentile(stats.batch_seconds, 0.50);
  row.p95_batch_seconds = Percentile(stats.batch_seconds, 0.95);
  row.absorbed = stats.absorbed;
  row.evicted = stats.evicted;
  row.sketch_prunes = stats.sketch_prunes;
  row.sketch_exact = stats.sketch_exact;
  row.clusters = stats.clusters_alive;
  for (int s = 0; s < shards; ++s) {
    const int64_t size = static_cast<int64_t>(stream->shard(s).size());
    row.hot_shard_arrivals = std::max(row.hot_shard_arrivals, size);
    row.cold_shard_arrivals =
        s == 0 ? size : std::min(row.cold_shard_arrivals, size);
  }
  if (out != nullptr) *out = std::move(stream);
  if (pool_out != nullptr) *pool_out = std::move(pool);
  return row;
}

void PrintRow(const ShardRow& r) {
  std::printf("%-7d %-6d %-9.3f %-9.2f %-9.1f %-10.4f %-10.4f %-8lld "
              "%-8lld %-9lld %-9lld %-9d\n",
              r.shards, r.executors, r.wall_seconds, r.speedup,
              r.items_per_second, r.p50_batch_seconds, r.p95_batch_seconds,
              static_cast<long long>(r.absorbed),
              static_cast<long long>(r.evicted),
              static_cast<long long>(r.hot_shard_arrivals),
              static_cast<long long>(r.cold_shard_arrivals), r.clusters);
}

void Run(BenchContext& ctx) {
  std::printf("Sharded ingest: shard count x executors at fixed total work "
              "(scale %.2f)\n", ctx.scale());
  SyntheticConfig cfg;
  cfg.n = ctx.Scaled(1600);
  cfg.dim = 16;
  cfg.num_clusters = 8;
  cfg.omega = 0.6;
  cfg.mean_box = 400.0;
  cfg.overlap_clusters = false;
  cfg.seed = 1005;
  LabeledData data = MakeSynthetic(cfg);
  const Index batch = 256;
  const Index window = ctx.Scaled(900);
  const std::vector<Scalar> arrivals = ArrivalStream(data);
  std::printf("n=%d arrivals, dim=%d, batch=%d, window=%d\n", data.size(),
              cfg.dim, batch, window);

  // S = 1 overhead control, serial on both sides (min of 3 — the
  // noise-robust estimator on shared runners). The sharded wrapper at
  // S == 1 delegates straight to one OnlineAlid, so the ratio measures
  // pure wrapper cost; CI pins it <= 1.05.
  double plain_wall = PlainIngestWall(data, arrivals, batch, window);
  double s1_wall =
      RunSharded(data, arrivals, batch, window, 1, 1).wall_seconds;
  for (int i = 0; i < 2; ++i) {
    plain_wall =
        std::min(plain_wall, PlainIngestWall(data, arrivals, batch, window));
    s1_wall = std::min(
        s1_wall,
        RunSharded(data, arrivals, batch, window, 1, 1).wall_seconds);
  }
  const double overhead_ratio =
      plain_wall > 0.0 ? s1_wall / plain_wall : 1.0;
  std::printf("S=1 overhead: plain %.3fs vs sharded %.3fs (x%.4f)\n",
              plain_wall, s1_wall, overhead_ratio);

  PrintHeader("shard sweep (identical arrival bytes per configuration)");
  std::printf("%-7s %-6s %-9s %-9s %-9s %-10s %-10s %-8s %-8s %-9s %-9s "
              "%-9s\n",
              "shards", "execs", "wall(s)", "speedup", "items/s", "p50(s)",
              "p95(s)", "absorb", "evict", "hot", "cold", "clusters");
  std::vector<ShardRow> rows;
  std::unique_ptr<ShardedStream> served;
  std::unique_ptr<ThreadPool> served_pool;
  for (int shards : {1, 2, 4, 8}) {
    double base_wall = 0.0;
    for (int executors : {1, 8}) {
      const bool keep = shards == 4 && executors == 8;
      ShardRow row =
          RunSharded(data, arrivals, batch, window, shards, executors,
                     keep ? &served : nullptr, keep ? &served_pool : nullptr);
      if (executors == 1) {
        base_wall = row.wall_seconds;
        row.speedup = 1.0;
      } else {
        row.speedup = row.wall_seconds > 0.0 && base_wall > 0.0
                          ? base_wall / row.wall_seconds
                          : 0.0;
      }
      // Only the S >= 4 sweeps carry the 2x CI ratio gate: sharding is the
      // axis under test, and two shards cannot promise 2x wall.
      row.gated = shards >= 4;
      PrintRow(row);
      rows.push_back(row);
    }
  }

  // Router phase on the S=4 pooled stream: one sharded publish, an
  // assignment fan-out, a top-k fan-out, and the boundary report.
  ShardRouter router(data.data.dim(), 4, {.pool = served_pool.get()});
  WallTimer publish_timer;
  const uint64_t generation = router.PublishFromStream(*served);
  const double publish_seconds = publish_timer.Seconds();
  const Index num_queries = std::min<Index>(data.size(), 400);
  std::vector<Scalar> queries;
  for (Index i = 0; i < num_queries; ++i) {
    const auto row = data.data[i];
    queries.insert(queries.end(), row.begin(), row.end());
  }
  WallTimer query_timer;
  const ShardedQueryResponse assigned = router.Query({.points = queries});
  const double query_wall = query_timer.Seconds();
  const ShardedQueryResponse ranked =
      router.Query({.points = queries, .top_k = 3});
  int64_t assigned_points = 0;
  for (const ShardAssignment& a : assigned.assignments) {
    assigned_points += a.cluster >= 0 ? 1 : 0;
  }
  const std::vector<BoundaryPair> boundary =
      router.BoundaryClusters(BaseOptions(data, window).affinity);
  Scalar max_cross = 0.0;
  for (const BoundaryPair& pair : boundary) {
    max_cross = std::max(max_cross, pair.cross_density);
  }
  std::printf("router: generation %llu, %d/%d assigned, %d ranked batches, "
              "%zu boundary pairs (max cross density %.4f)\n",
              static_cast<unsigned long long>(generation),
              static_cast<int>(assigned_points), num_queries,
              static_cast<int>(ranked.ranked.size()), boundary.size(),
              max_cross);

  std::printf("\nExpected shape: for a fixed S the state is bit-identical "
              "down the executor column (tests/shard_test.cc), so only wall "
              "time moves; S >= 4 with 8 executors overlaps the per-shard "
              "serial phases — the speedup the single-stream barrier "
              "pipeline cannot reach — while the S=1 rows stay within 5%% "
              "of the plain stream. hot/cold show the hash partition's "
              "natural skew; boundary pairs are the cross-shard cluster "
              "halves a reconciliation pass would merge.\n");

  std::string json;
  AppendF(json,
          "{\"bench\":\"shard\",\"n\":%d,\"dim\":%d,\"batch\":%d,"
          "\"window\":%d,\"plain_wall_seconds\":%.6f,"
          "\"s1_wall_seconds\":%.6f,\"shard_s1_overhead_ratio\":%.4f,"
          "\"publish_wall_seconds\":%.6f,\"query_wall_seconds\":%.6f,"
          "\"assigned_points\":%lld,\"boundary_pairs\":%zu,"
          "\"boundary_max_cross_density\":%.6f,%s,\"rows\":[",
          data.size(), cfg.dim, batch, window, plain_wall, s1_wall,
          overhead_ratio, publish_seconds, query_wall,
          static_cast<long long>(assigned_points), boundary.size(),
          max_cross, router.metrics().ToJsonFields().c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    AppendF(json,
            "%s{\"method\":\"sharded(S=%d)\",\"shards\":%d,"
            "\"executors\":%d,\"wall_seconds\":%.6f,\"speedup\":%.4f,"
            "\"items_per_second\":%.2f,\"p50_batch_seconds\":%.6f,"
            "\"p95_batch_seconds\":%.6f,\"ingest_p95_seconds\":%.6f,"
            "\"arrivals\":%lld,\"absorbed\":%lld,\"evicted\":%lld,"
            "\"sketch_prunes\":%lld,\"sketch_exact\":%lld,"
            "\"hot_shard_arrivals\":%lld,\"cold_shard_arrivals\":%lld,"
            "\"clusters\":%d%s}",
            i == 0 ? "" : ",", r.shards, r.shards, r.executors,
            r.wall_seconds, r.speedup, r.items_per_second,
            r.p50_batch_seconds, r.p95_batch_seconds, r.p95_batch_seconds,
            static_cast<long long>(r.arrivals),
            static_cast<long long>(r.absorbed),
            static_cast<long long>(r.evicted),
            static_cast<long long>(r.sketch_prunes),
            static_cast<long long>(r.sketch_exact),
            static_cast<long long>(r.hot_shard_arrivals),
            static_cast<long long>(r.cold_shard_arrivals), r.clusters,
            r.gated ? ",\"gate_speedup\":true" : "");
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("shard", "runtime,shard,speedup", "shard", Run);

}  // namespace
}  // namespace alid::bench
