#include "registry.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/timer.h"
#include "obs/trace.h"

namespace alid::bench {
namespace {

/// Extracts the record name out of a single-line JSON record — the value of
/// its "bench" key. Returns "" when the key is missing.
std::string RecordName(const std::string& record) {
  static constexpr std::string_view kKey = "\"bench\":\"";
  const size_t at = record.find(kKey);
  if (at == std::string::npos) return "";
  const size_t begin = at + kKey.size();
  const size_t end = record.find('"', begin);
  return end == std::string::npos ? "" : record.substr(begin, end - begin);
}

std::string JoinCsv(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += ",";
    out += part;
  }
  return out;
}

double EnvScale() {
  const char* s = std::getenv("ALID_BENCH_SCALE");
  // Unset or empty means "default sizes" (the unset-variable shell idiom);
  // anything else must parse, loudly.
  if (s == nullptr || *s == '\0') return 1.0;
  return ParseBenchScaleOrDie(s, "ALID_BENCH_SCALE");
}

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string* value) {
  if (!arg.starts_with(name)) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg.front() != '=') return false;
  *value = std::string(arg.substr(1));
  return true;
}

void PrintUsage() {
  std::printf(
      "alid_bench — the unified benchmark registry driver\n\n"
      "  --list            print name, labels and promised JSON records\n"
      "  --list-records    print every promised JSON record name, one per\n"
      "                    line (the --schema-check expectation list)\n"
      "  --filter=F[,F...] run benchmarks whose name contains F or whose\n"
      "                    labels include F (repeatable; matches OR)\n"
      "  --labels=L[,L...] alias of --filter (label-only selection reads\n"
      "                    better in CI shards)\n"
      "  --warmup=N        un-measured run() repetitions first (default 0)\n"
      "  --iterations=N    measured repetitions; JSON only on the last\n"
      "                    (default 1)\n"
      "  --json-out=PATH   also append every JSON record to PATH\n"
      "  --trace-out=PATH  enable span tracing for the whole run and write\n"
      "                    the Chrome trace-event JSON to PATH at the end\n"
      "  --scale=X         size multiplier (default ALID_BENCH_SCALE or 1)\n");
}

}  // namespace

void BenchContext::EmitJson(const std::string& record) {
  const std::string name = RecordName(record);
  if (name.empty()) {
    Fail("EmitJson record carries no \"bench\" key: " + record);
    return;
  }
  if (std::find(def_->records.begin(), def_->records.end(), name) ==
      def_->records.end()) {
    Fail("benchmark '" + def_->name + "' emitted unregistered record '" +
         name + "' (add it to the registration's records list)");
    return;
  }
  emitted_.push_back(name);
  if (!measured_) return;
  // The registration labels ride along in every record so the gate tools
  // can select sweeps without hard-coding record names.
  std::string labeled = record;
  const size_t brace = labeled.find('{');
  if (brace != std::string::npos) {
    labeled.insert(brace + 1, "\"labels\":\"" + JoinCsv(def_->labels) +
                                  "\",");
  }
  std::printf("\nJSON %s\n", labeled.c_str());
  if (options_->json_out != nullptr) {
    std::fprintf(options_->json_out, "%s\n", labeled.c_str());
    std::fflush(options_->json_out);
  }
}

void BenchContext::Fail(const std::string& message) {
  failed_ = true;
  std::fprintf(stderr, "BENCH FAILURE [%s]: %s\n", def_->name.c_str(),
               message.c_str());
}

BenchRegistry& BenchRegistry::Instance() {
  static BenchRegistry* registry = new BenchRegistry();
  return *registry;
}

void BenchRegistry::Register(BenchmarkDef def) {
  benchmarks_.push_back(std::move(def));
}

std::vector<const BenchmarkDef*> BenchRegistry::Sorted() const {
  std::vector<const BenchmarkDef*> sorted;
  sorted.reserve(benchmarks_.size());
  for (const BenchmarkDef& def : benchmarks_) sorted.push_back(&def);
  std::sort(sorted.begin(), sorted.end(),
            [](const BenchmarkDef* a, const BenchmarkDef* b) {
              return a->name < b->name;
            });
  return sorted;
}

int RegisterBenchmark(BenchmarkDef def) {
  BenchRegistry::Instance().Register(std::move(def));
  return 0;
}

bool ParseBenchScale(const char* text, double* scale, std::string* error) {
  if (text == nullptr || *text == '\0') {
    if (error != nullptr) *error = "empty scale value";
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    if (error != nullptr) {
      *error = std::string("not a number: '") + text + "'";
    }
    return false;
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    if (error != nullptr) {
      *error = std::string("out of range: '") + text + "'";
    }
    return false;
  }
  if (v < 0.05) {
    if (error != nullptr) {
      AppendF(*error = "", "scale %g below the 0.05 floor (sizes would "
                           "collapse to nothing)", v);
    }
    return false;
  }
  *scale = v;
  return true;
}

double ParseBenchScaleOrDie(const char* text, const char* source) {
  double scale = 1.0;
  std::string error;
  if (!ParseBenchScale(text, &scale, &error)) {
    std::fprintf(stderr, "invalid benchmark scale from %s: %s\n", source,
                 error.c_str());
    std::exit(2);
  }
  return scale;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    if (end > begin) parts.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

void AppendF(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed > 0) {
    const size_t old = out.size();
    out.resize(old + static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data() + old, static_cast<size_t>(needed) + 1, fmt,
                   args);
    out.resize(old + static_cast<size_t>(needed));
  }
  va_end(args);
}

double TimePerCall(const std::function<void()>& fn, double min_seconds) {
  fn();  // warm caches and fault in pages before anything is timed
  int64_t batch = 1;
  while (true) {
    WallTimer timer;
    for (int64_t i = 0; i < batch; ++i) fn();
    const double seconds = timer.Seconds();
    if (seconds >= min_seconds) {
      return seconds / static_cast<double>(batch);
    }
    // Grow geometrically toward the time floor (at least 2x, at most 16x so
    // one overshoot cannot balloon a slow call's wall time).
    const int64_t target =
        seconds > 0.0 ? static_cast<int64_t>(
                            static_cast<double>(batch) * min_seconds /
                            seconds * 1.3)
                      : batch * 16;
    batch = std::clamp<int64_t>(target, batch * 2, batch * 16);
  }
}

int BenchRegistry::RunMain(int argc, char** argv) {
  BenchOptions options;
  options.scale = EnvScale();
  bool list = false;
  bool list_records = false;
  std::vector<std::string> filters;
  std::string json_out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (arg == "--list") {
      list = true;
    } else if (arg == "--list-records") {
      list_records = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "--filter", &value) ||
               ParseFlag(arg, "--labels", &value)) {
      for (std::string& part : SplitCsv(value)) {
        filters.push_back(std::move(part));
      }
    } else if (ParseFlag(arg, "--warmup", &value)) {
      options.warmup = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--iterations", &value)) {
      options.iterations = std::max(1, std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--json-out", &value)) {
      json_out_path = value;
    } else if (ParseFlag(arg, "--trace-out", &value)) {
      options.trace_out = value;
    } else if (ParseFlag(arg, "--scale", &value)) {
      options.scale = ParseBenchScaleOrDie(value.c_str(), "--scale");
    } else {
      std::fprintf(stderr, "unknown argument: %s\n\n",
                   std::string(arg).c_str());
      PrintUsage();
      return 2;
    }
  }

  const std::vector<const BenchmarkDef*> sorted = Sorted();
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i]->name == sorted[i + 1]->name) {
      std::fprintf(stderr, "duplicate benchmark name: %s\n",
                   sorted[i]->name.c_str());
      return 2;
    }
  }

  if (list) {
    for (const BenchmarkDef* def : sorted) {
      std::printf("%s\t%s\t%s\n", def->name.c_str(),
                  JoinCsv(def->labels).c_str(),
                  JoinCsv(def->records).c_str());
    }
    return 0;
  }
  if (list_records) {
    for (const BenchmarkDef* def : sorted) {
      for (const std::string& record : def->records) {
        std::printf("%s\n", record.c_str());
      }
    }
    return 0;
  }

  auto selected = [&](const BenchmarkDef& def) {
    if (filters.empty()) return true;
    for (const std::string& filter : filters) {
      if (def.name.find(filter) != std::string::npos) return true;
      if (std::find(def.labels.begin(), def.labels.end(), filter) !=
          def.labels.end()) {
        return true;
      }
    }
    return false;
  };

  if (!json_out_path.empty()) {
    options.json_out = std::fopen(json_out_path.c_str(), "w");
    if (options.json_out == nullptr) {
      std::fprintf(stderr, "cannot open --json-out file: %s\n",
                   json_out_path.c_str());
      return 2;
    }
  }

  if (!options.trace_out.empty()) {
    obs::TraceRecorder::Global().Enable();
  }

  int ran = 0;
  bool failed = false;
  for (const BenchmarkDef* def : sorted) {
    if (!selected(*def)) continue;
    ++ran;
    std::printf("\n==== %s [%s] (scale %.2f) ====\n", def->name.c_str(),
                JoinCsv(def->labels).c_str(), options.scale);
    std::fflush(stdout);
    BenchContext context(def, &options);
    WallTimer timer;
    if (def->init) def->init(context);
    for (int pass = 0; pass < options.warmup + options.iterations; ++pass) {
      context.measured_ = pass + 1 == options.warmup + options.iterations;
      context.emitted_.clear();
      def->run(context);
    }
    if (def->teardown) def->teardown(context);
    for (const std::string& record : def->records) {
      if (std::find(context.emitted_.begin(), context.emitted_.end(),
                    record) == context.emitted_.end()) {
        context.Fail("promised JSON record '" + record +
                     "' was never emitted — the benchmark silently "
                     "no-opped or its EmitJson call regressed");
      }
    }
    std::printf("---- %s done in %.3fs%s ----\n", def->name.c_str(),
                timer.Seconds(), context.failed() ? " [FAILED]" : "");
    std::fflush(stdout);
    failed = failed || context.failed();
  }
  if (options.json_out != nullptr) std::fclose(options.json_out);
  if (!options.trace_out.empty() && ran > 0) {
    const obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (recorder.WriteChromeTrace(options.trace_out)) {
      std::printf("trace: %lld spans (%lld dropped) -> %s\n",
                  static_cast<long long>(recorder.buffered_events()),
                  static_cast<long long>(recorder.dropped_events()),
                  options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write --trace-out file: %s\n",
                   options.trace_out.c_str());
      failed = true;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr,
                 "no benchmark matched the filter — run --list for names "
                 "and labels\n");
    return 2;
  }
  std::printf("\nran %d benchmark%s: %s\n", ran, ran == 1 ? "" : "s",
              failed ? "FAILED" : "all ok");
  return failed ? 1 : 0;
}

}  // namespace alid::bench
