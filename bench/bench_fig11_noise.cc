// Figure 11 — noise resistance analysis (Appendix C).
//
// Sweeps the noise degree (#noise / #ground truth) on NART-like and
// Sub-NDI-like workloads and reports AVG-F for the affinity-based methods
// (AP, IID, SEA, ALID — full matrices for the baselines, per the appendix's
// protocol) and the partitioning baselines (k-means, SC-FL, SC-NYS with
// K = true clusters + 1 as Liu et al. set it, and mean shift).
//
// Paper shape to reproduce: the partitioning methods' AVG-F collapses as the
// noise degree grows while the affinity-based methods degrade slowly; mean
// shift is competitive on NART-like text but falls behind on the image-like
// features.
#include "bench_util.h"
#include "registry.h"

#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "baselines/spectral.h"
#include "common/thread_pool.h"
#include "data/nart_like.h"
#include "data/ndi_like.h"

namespace alid::bench {
namespace {

double ScoreLabels(const LabeledData& data, const std::vector<int>& labels) {
  return AverageF1(data.true_clusters, LabelsToClusters(labels));
}

void SweepNoise(const char* name, const char* dataset,
                const std::function<LabeledData(double)>& make,
                const std::vector<double>& degrees, ThreadPool* pool,
                std::string& json) {
  PrintHeader(name);
  std::printf("%-8s %6s %6s %6s %6s %6s %6s %6s %6s\n", "noise", "AP", "IID",
              "SEA", "ALID", "KM", "SC-FL", "SC-NYS", "MS");
  for (double degree : degrees) {
    LabeledData data = make(degree);
    const int k_true = static_cast<int>(data.true_clusters.size());
    AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});

    WallTimer wall;
    const double f_ap =
        RunAp(data, /*r_scale=*/-1.0, /*max_iterations=*/200, pool).avg_f;
    const double f_iid = RunIid(data, /*r_scale=*/-1.0).avg_f;
    const double f_sea = RunSea(data, /*r_scale=*/-1.0, pool).avg_f;
    const double f_alid = RunAlid(data).avg_f;

    // Partitioning methods get K = true clusters + 1 (noise as an extra
    // cluster), the Liu et al. protocol the appendix follows.
    KMeansOptions km;
    km.restarts = 2;
    km.pool = pool;
    const double f_km =
        ScoreLabels(data, RunKMeans(data.data, k_true + 1, km).labels);
    SpectralOptions so;
    so.num_clusters = k_true + 1;
    so.nystrom_landmarks = std::min<Index>(150, data.size() / 2);
    so.pool = pool;
    const double f_scfl =
        ScoreLabels(data, SpectralClusterFull(data.data, affinity, so).labels);
    const double f_scnys = ScoreLabels(
        data, SpectralClusterNystrom(data.data, affinity, so).labels);
    MeanShiftOptions ms;
    ms.max_ascents = std::min<Index>(150, data.size());
    ms.pool = pool;
    // The appendix tunes MS's bandwidth per data set; 1.5x the intra-cluster
    // scale is the tuned value for these workloads.
    ms.bandwidth = data.suggested_lsh_r / 2.0;
    const double f_ms = ScoreLabels(data, RunMeanShift(data.data, ms).labels);

    std::printf("%-8.1f %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f\n",
                data.NoiseDegree(), f_ap, f_iid, f_sea, f_alid, f_km, f_scfl,
                f_scnys, f_ms);
    AppendF(json,
            "%s{\"dataset\":\"%s\",\"noise_degree\":%.1f,"
            "\"wall_seconds\":%.6f,\"avg_f_ap\":%.4f,\"avg_f_iid\":%.4f,"
            "\"avg_f_sea\":%.4f,\"avg_f_alid\":%.4f,\"avg_f_km\":%.4f,"
            "\"avg_f_scfl\":%.4f,\"avg_f_scnys\":%.4f,\"avg_f_ms\":%.4f}",
            json.back() == '[' ? "" : ",", dataset, data.NoiseDegree(),
            wall.Seconds(), f_ap, f_iid, f_sea, f_alid, f_km, f_scfl,
            f_scnys, f_ms);
  }
}

void Run(BenchContext& ctx) {
  std::printf("Figure 11: noise resistance — AVG-F vs noise degree "
              "(scale %.2f)\n", ctx.scale());
  // One shared work-stealing pool under every parallelized baseline: the
  // sweep measures noise resistance, and every method's output is
  // bit-identical to its serial run, so only wall-clock moves.
  ThreadPool pool(4);
  const std::vector<double> degrees{0.0, 1.0, 2.0, 4.0, 6.0};
  std::string json = "{\"bench\":\"fig11_noise\",\"rows\":[";

  const Index nart_truth = ctx.Scaled(200);
  SweepNoise("(a) NART-like", "nart",
             [&](double degree) {
               NartLikeConfig cfg;
               cfg.num_events = 13;
               cfg.num_event_articles = nart_truth;
               cfg.num_noise_articles =
                   static_cast<Index>(degree * nart_truth);
               cfg.seed = 501;
               return MakeNartLike(cfg);
             },
             degrees, &pool, json);

  const Index ndi_truth = ctx.Scaled(200);
  SweepNoise("(b) Sub-NDI-like", "subndi",
             [&](double degree) {
               NdiLikeConfig cfg = NdiLikeConfig::SubNdi();
               cfg.num_duplicates = ndi_truth;
               cfg.num_noise = static_cast<Index>(degree * ndi_truth);
               cfg.seed = 502;
               return MakeNdiLike(cfg);
             },
             degrees, &pool, json);

  std::printf("\nExpected shape: partitioning methods (KM, SC-FL, SC-NYS) "
              "fall fastest with noise; affinity-based methods stay high; "
              "MS holds up on text-like but degrades on image-like data.\n");
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("fig11_noise", "paper,quality,noise", "fig11_noise", Run);

}  // namespace
}  // namespace alid::bench
