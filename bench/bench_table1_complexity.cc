// Table 1 — complexity of the affinity-matrix work under the three a*
// regimes (Section 4.5), verified empirically.
//
// For each regime the bench measures ALID's affinity-entry count (time-side
// cost) and peak local-matrix bytes (space-side cost) across growing n, fits
// log-log slopes, and prints them against the theoretical orders:
//   a* = omega*n/20 : time O(n^2),     space O(n^2)
//   a* = n^eta/20   : time O(n^{1+eta}), space O(n^{2 eta})
//   a* <= P/20      : time O(n),       space O(1)
//
// With the column cache default-on, two time-side counts exist: *requested*
// entries (computed + cache hits — the paper-faithful Table 1 quantity the
// theory slope is checked against) and *computed* entries (true kernel evals
// after cache reuse — the honest work actually done). Both slopes print, and
// the per-regime cache activity lands in the JSON trajectory record.
#include "bench_util.h"
#include "registry.h"

#include "data/synthetic.h"

namespace alid::bench {
namespace {

struct RegimeSpec {
  const char* name;
  SyntheticRegime regime;
  double theory_time_slope;
  double theory_space_slope;
};

struct RegimeResult {
  const char* name;
  double requested_slope = 0.0;
  double computed_slope = 0.0;
  double space_slope = 0.0;
  int64_t cache_hits = 0;       // at the largest n
  int64_t cache_evictions = 0;  // at the largest n
  int64_t cache_budget = 0;     // at the largest n
};

void Run(BenchContext& ctx) {
  std::printf("Table 1: affinity-work complexity of ALID per a* regime "
              "(scale %.2f)\n", ctx.scale());
  const std::vector<double> sizes{800, 1600, 3200, 6400};
  const RegimeSpec specs[] = {
      {"a*=omega*n (omega=1)", SyntheticRegime::kProportional, 2.0, 2.0},
      {"a*=n^eta (eta=0.9)", SyntheticRegime::kSublinear, 1.9, 1.8},
      {"a*<=P (P=400)", SyntheticRegime::kBounded, 1.0, 0.0},
  };

  std::vector<RegimeResult> results;
  std::printf("\n%-22s %-11s %-11s %-11s %-12s %-12s\n", "regime",
              "t-slope(th)", "t-slope(rq)", "t-slope(ms)", "sp-slope(th)",
              "sp-slope(ms)");
  for (const RegimeSpec& spec : specs) {
    RegimeResult result;
    result.name = spec.name;
    std::vector<double> xs, requested, computed, bytes;
    for (double base : sizes) {
      SyntheticConfig cfg;
      cfg.n = ctx.Scaled(base);
      cfg.dim = 100;
      cfg.num_clusters = 20;
      cfg.regime = spec.regime;
      cfg.omega = 1.0;
      cfg.eta = 0.9;
      cfg.P = 400;  // paper: P=1000 vs n<=1e5; scaled to this grid
      cfg.seed = 601;
      LabeledData data = MakeSynthetic(cfg);

      AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
      LazyAffinityOracle oracle(data.data, affinity);
      LshIndex lsh(data.data, MakeLshParams(data));
      AlidDetector detector(oracle, lsh, {});
      oracle.ResetCounters();
      detector.DetectAll();
      xs.push_back(data.size());
      requested.push_back(static_cast<double>(oracle.entries_computed() +
                                              oracle.cache_hits()));
      computed.push_back(static_cast<double>(oracle.entries_computed()));
      bytes.push_back(static_cast<double>(oracle.peak_bytes()));
      result.cache_hits = oracle.cache_hits();
      result.cache_evictions = oracle.cache_evictions();
      result.cache_budget = oracle.cache_budget_bytes();
    }
    result.requested_slope = LogLogSlope(xs, requested);
    result.computed_slope = LogLogSlope(xs, computed);
    result.space_slope = LogLogSlope(xs, bytes);
    std::printf("%-22s %-11.1f %-11.2f %-11.2f %-12.1f %-12.2f\n", spec.name,
                spec.theory_time_slope, result.requested_slope,
                result.computed_slope, spec.theory_space_slope,
                result.space_slope);
    results.push_back(result);
  }
  std::printf("\nNote: the theory column compares against the *requested* "
              "slope (rq). Space for the bounded regime is O(a*(a*+delta)) — "
              "constant in n, so its measured slope should hover near 0; "
              "the sublinear regime's theoretical slopes are 1+eta and "
              "2*eta.\n");
  std::string json = "{\"bench\":\"table1_complexity\",\"rows\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const RegimeResult& r = results[i];
    AppendF(json,
            "%s{\"regime\":\"%s\",\"requested_slope\":%.4f,"
            "\"computed_slope\":%.4f,\"space_slope\":%.4f,\"cache_hits\":%lld,"
            "\"cache_evictions\":%lld,\"cache_budget_bytes\":%lld}",
            i == 0 ? "" : ",", r.name, r.requested_slope, r.computed_slope,
            r.space_slope, static_cast<long long>(r.cache_hits),
            static_cast<long long>(r.cache_evictions),
            static_cast<long long>(r.cache_budget));
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("table1_complexity", "paper,complexity", "table1_complexity",
               Run);

}  // namespace
}  // namespace alid::bench
