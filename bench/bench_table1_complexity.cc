// Table 1 — complexity of the affinity-matrix work under the three a*
// regimes (Section 4.5), verified empirically.
//
// For each regime the bench measures ALID's affinity-entry count (time-side
// cost) and peak local-matrix bytes (space-side cost) across growing n, fits
// log-log slopes, and prints them against the theoretical orders:
//   a* = omega*n/20 : time O(n^2),     space O(n^2)
//   a* = n^eta/20   : time O(n^{1+eta}), space O(n^{2 eta})
//   a* <= P/20      : time O(n),       space O(1)
#include "bench_util.h"

#include "data/synthetic.h"

namespace alid::bench {
namespace {

struct RegimeSpec {
  const char* name;
  SyntheticRegime regime;
  double theory_time_slope;
  double theory_space_slope;
};

void Main() {
  std::printf("Table 1: affinity-work complexity of ALID per a* regime "
              "(scale %.2f)\n", Scale());
  const std::vector<double> sizes{800, 1600, 3200, 6400};
  const RegimeSpec specs[] = {
      {"a*=omega*n (omega=1)", SyntheticRegime::kProportional, 2.0, 2.0},
      {"a*=n^eta (eta=0.9)", SyntheticRegime::kSublinear, 1.9, 1.8},
      {"a*<=P (P=400)", SyntheticRegime::kBounded, 1.0, 0.0},
  };

  std::printf("\n%-22s %-14s %-14s %-14s %-14s\n", "regime",
              "time slope(th)", "time slope(ms)", "space slope(th)",
              "space slope(ms)");
  for (const RegimeSpec& spec : specs) {
    std::vector<double> xs, entries, bytes;
    for (double base : sizes) {
      SyntheticConfig cfg;
      cfg.n = Scaled(base);
      cfg.dim = 100;
      cfg.num_clusters = 20;
      cfg.regime = spec.regime;
      cfg.omega = 1.0;
      cfg.eta = 0.9;
      cfg.P = 400;  // paper: P=1000 vs n<=1e5; scaled to this grid
      cfg.seed = 601;
      LabeledData data = MakeSynthetic(cfg);

      AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
      LazyAffinityOracle oracle(data.data, affinity);
      LshIndex lsh(data.data, MakeLshParams(data));
      AlidDetector detector(oracle, lsh, {});
      oracle.ResetCounters();
      detector.DetectAll();
      xs.push_back(data.size());
      entries.push_back(static_cast<double>(oracle.entries_computed()));
      bytes.push_back(static_cast<double>(oracle.peak_bytes()));
    }
    std::printf("%-22s %-14.1f %-14.2f %-14.1f %-14.2f\n", spec.name,
                spec.theory_time_slope, LogLogSlope(xs, entries),
                spec.theory_space_slope, LogLogSlope(xs, bytes));
  }
  std::printf("\nNote: space for the bounded regime is O(a*(a*+delta)) — "
              "constant in n, so its measured slope should hover near 0; "
              "the sublinear regime's theoretical slopes are 1+eta and "
              "2*eta.\n");
}

}  // namespace
}  // namespace alid::bench

int main() {
  alid::bench::Main();
  return 0;
}
