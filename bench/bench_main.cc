// The one benchmark driver: every bench/bench_*.cc registers itself with
// the registry (bench/registry.h) and this main runs any subset of them —
// `--list` to see what exists, `--filter`/`--labels` to pick a shard. CI
// runs the shards with distinct filters and greps the `JSON ` lines of each
// into one merged bench_trajectory.jsonl; nothing here needs editing when a
// benchmark is added.
#include "registry.h"

int main(int argc, char** argv) {
  return alid::bench::BenchRegistry::Instance().RunMain(argc, argv);
}
