// Figure 9 — single-machine scalability on SIFT-50M subsets (Section 5.3).
//
// Runs the four affinity-based methods on growing SIFT-like subsets and
// reports runtime and algorithmic memory. As in the paper, every O(n^2)
// method stops at the size its materialized matrix allows, while ALID keeps
// going (the paper: baselines die at 0.04M SIFTs; ALID processes 1.29M on
// 10 GB).
#include "bench_util.h"
#include "registry.h"

#include "data/sift_like.h"

namespace alid::bench {
namespace {

void Run(BenchContext& ctx) {
  std::printf("Figure 9: memory and runtime on SIFT-like subsets "
              "(scale %.2f)\n", ctx.scale());
  PrintHeader("SIFT-like subsets: the O(n^2) methods hit their wall first");
  const std::vector<double> sizes{1000, 2000, 4000, 8000, 16000, 32000};
  constexpr double kApCap = 1400.0;
  constexpr double kDenseCap = 2200.0;

  std::string json = "{\"bench\":\"fig9_sift\",\"rows\":[";
  std::vector<double> xs, alid_time, alid_mem;
  for (double base : sizes) {
    SiftLikeConfig cfg;
    cfg.n = ctx.Scaled(base);
    // Visual words are size-bounded in real collections (a patch repeats in
    // a bounded number of images): the paper's a* <= P regime, which is what
    // lets ALID scale past the O(n^2) wall on SIFT-50M.
    cfg.num_visual_words = 20;
    cfg.fixed_word_size = 30;
    cfg.seed = 301;
    LabeledData data = MakeSiftLike(cfg);
    char config[64];
    std::snprintf(config, sizeof(config), "n=%d", data.size());
    if (base <= kApCap) PrintStatsRow(config, RunAp(data));
    if (base <= kDenseCap) {
      PrintStatsRow(config, RunIid(data));
      PrintStatsRow(config, RunSea(data, /*r_scale=*/1.0));
    }
    RunStats alid = RunAlid(data);
    PrintStatsRow(config, alid);
    AppendF(json,
            "%s{\"method\":\"ALID\",\"n\":%d,\"wall_seconds\":%.6f,"
            "\"peak_bytes\":%lld,\"avg_f\":%.4f}",
            xs.empty() ? "" : ",", data.size(), alid.seconds,
            static_cast<long long>(alid.peak_bytes), alid.avg_f);
    xs.push_back(data.size());
    alid_time.push_back(alid.seconds);
    alid_mem.push_back(static_cast<double>(alid.peak_bytes));
  }
  const double time_slope = LogLogSlope(xs, alid_time);
  const double mem_slope = LogLogSlope(xs, alid_mem);
  std::printf("  ALID empirical orders of growth: runtime slope %.2f, "
              "memory slope %.2f\n", time_slope, mem_slope);
  std::printf("\nExpected shape: baselines' runtime/memory slopes ~2 and "
              "they stop early; ALID's slopes are far lower and it scales "
              "beyond every baseline's wall.\n");
  AppendF(json, "],\"time_slope\":%.4f,\"mem_slope\":%.4f}", time_slope,
          mem_slope);
  ctx.EmitJson(json);
}

ALID_BENCHMARK("fig9_sift", "paper,scalability", "fig9_sift", Run);

}  // namespace
}  // namespace alid::bench
