// Figure 7 — scalability analysis (Section 5.2).
//
// Runs AP / IID / SEA / ALID over growing data sizes on the three synthetic
// a* regimes of Table 1 (a* = ωn/20, a* = n^η/20, a* = P/20) and on the
// NDI-like workload, reporting runtime (a-d), algorithmic memory (e-h) and
// AVG-F (i-l), plus the empirical log-log orders of growth.
//
// Paper shapes to reproduce: under a double-log axis ALID's runtime slope is
// ~2 for a*=ωn, ~1.7 for a*=n^0.9 and ~1 for a*=P, always below the
// baselines; ALID's memory curve is orders of magnitude below the O(n^2)
// methods; AVG-F stays comparable across methods. The O(n^2) baselines are
// capped at the sizes a 1-core machine can materialize.
#include "bench_util.h"

#include "data/ndi_like.h"
#include "data/synthetic.h"

namespace alid::bench {
namespace {

constexpr double kBaselineCap = 3000.0;  // dense O(n^2) methods stop here
constexpr double kApCap = 1500.0;        // AP message passing stops here

LabeledData MakeRegime(SyntheticRegime regime, Index n, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 100;  // the paper's synthetic dimensionality
  cfg.num_clusters = 20;
  cfg.regime = regime;
  cfg.omega = 1.0;
  cfg.eta = 0.9;
  cfg.P = 1000;
  cfg.seed = seed;
  return cfg.n > 0 ? MakeSynthetic(cfg) : LabeledData{};
}

void SweepSizes(const char* name,
                const std::function<LabeledData(Index)>& make,
                const std::vector<double>& sizes) {
  PrintHeader(name);
  std::vector<double> xs, alid_time, alid_mem;
  for (double base : sizes) {
    const Index n = Scaled(base);
    LabeledData data = make(n);
    char config[64];
    std::snprintf(config, sizeof(config), "n=%d", data.size());
    if (base <= kApCap) PrintStatsRow(config, RunAp(data));
    if (base <= kBaselineCap) {
      PrintStatsRow(config, RunIid(data));
      PrintStatsRow(config, RunSea(data, /*r_scale=*/1.0));
    }
    RunStats alid = RunAlid(data);
    PrintStatsRow(config, alid);
    xs.push_back(data.size());
    alid_time.push_back(alid.seconds);
    alid_mem.push_back(static_cast<double>(alid.peak_bytes));
  }
  std::printf("  ALID empirical orders of growth: runtime slope %.2f, "
              "memory slope %.2f (log-log fit)\n",
              LogLogSlope(xs, alid_time), LogLogSlope(xs, alid_mem));
}

void Main() {
  std::printf("Figure 7: scalability on the three a* regimes and NDI "
              "(scale %.2f)\n", Scale());
  const std::vector<double> sizes{700, 1400, 2800, 5600, 11200};

  SweepSizes("(a,e,i) a* = omega*n/20, omega=1.0",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kProportional, n, 101);
             },
             sizes);
  SweepSizes("(b,f,j) a* = n^eta/20, eta=0.9",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kSublinear, n, 102);
             },
             sizes);
  SweepSizes("(c,g,k) a* = P/20, P=1000",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kBounded, n, 103);
             },
             sizes);
  SweepSizes("(d,h,l) NDI-like subsets",
             [](Index n) {
               NdiLikeConfig cfg;
               cfg.num_groups = 12;
               cfg.num_duplicates = n / 8;
               cfg.num_noise = n - n / 8;
               cfg.seed = 104;
               return MakeNdiLike(cfg);
             },
             sizes);

  std::printf("\nExpected shape (paper, log-log): ALID runtime slopes "
              "~2 / ~1.7 / ~1 on the three regimes; memory far below the "
              "O(n^2) baselines; AVG-F comparable across methods.\n");
}

}  // namespace
}  // namespace alid::bench

int main() {
  alid::bench::Main();
  return 0;
}
