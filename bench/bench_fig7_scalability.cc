// Figure 7 — scalability analysis (Section 5.2).
//
// Runs AP / IID / SEA / ALID over growing data sizes on the three synthetic
// a* regimes of Table 1 (a* = ωn/20, a* = n^η/20, a* = P/20) and on the
// NDI-like workload, reporting runtime (a-d), algorithmic memory (e-h) and
// AVG-F (i-l), plus the empirical log-log orders of growth.
//
// Paper shapes to reproduce: under a double-log axis ALID's runtime slope is
// ~2 for a*=ωn, ~1.7 for a*=n^0.9 and ~1 for a*=P, always below the
// baselines; ALID's memory curve is orders of magnitude below the O(n^2)
// methods; AVG-F stays comparable across methods. The O(n^2) baselines are
// capped at the sizes a 1-core machine can materialize.
//
// A second section sweeps 1/2/4/8 executors over the *parallelized*
// baselines (k-means, mean shift, SC-FL, AP, SEA) and PALID, all on one
// shared work-stealing pool per width — the same-substrate comparison the
// scalability literature demands. Every baseline's output is bit-identical
// across the sweep (tests/baseline_determinism_test.cc), so only wall time
// moves. The sweep's JSON record carries per-baseline speedup columns for
// the bench trajectory; the PALID rows are marked `gate_speedup` so
// tools/check_speedup.py holds them to the ROADMAP's >=2x-at-8 claim.
#include "bench_util.h"
#include "registry.h"

#include <memory>
#include <string_view>

#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "baselines/spectral.h"
#include "common/thread_pool.h"
#include "core/palid.h"
#include "data/ndi_like.h"
#include "data/synthetic.h"

namespace alid::bench {
namespace {

constexpr double kBaselineCap = 3000.0;  // dense O(n^2) methods stop here
constexpr double kApCap = 1500.0;        // AP message passing stops here

LabeledData MakeRegime(SyntheticRegime regime, Index n, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 100;  // the paper's synthetic dimensionality
  cfg.num_clusters = 20;
  cfg.regime = regime;
  cfg.omega = 1.0;
  cfg.eta = 0.9;
  cfg.P = 1000;
  cfg.seed = seed;
  return cfg.n > 0 ? MakeSynthetic(cfg) : LabeledData{};
}

void SweepSizes(BenchContext& ctx, const char* name, const char* regime,
                const std::function<LabeledData(Index)>& make,
                const std::vector<double>& sizes, std::string& json) {
  PrintHeader(name);
  std::vector<double> xs, alid_time, alid_mem;
  for (double base : sizes) {
    const Index n = ctx.Scaled(base);
    LabeledData data = make(n);
    char config[64];
    std::snprintf(config, sizeof(config), "n=%d", data.size());
    if (base <= kApCap) PrintStatsRow(config, RunAp(data));
    if (base <= kBaselineCap) {
      PrintStatsRow(config, RunIid(data));
      PrintStatsRow(config, RunSea(data, /*r_scale=*/1.0));
    }
    RunStats alid = RunAlid(data);
    PrintStatsRow(config, alid);
    AppendF(json,
            "%s{\"regime\":\"%s\",\"method\":\"ALID\",\"n\":%d,"
            "\"wall_seconds\":%.6f,\"peak_bytes\":%lld,\"avg_f\":%.4f}",
            json.back() == '[' ? "" : ",", regime, data.size(), alid.seconds,
            static_cast<long long>(alid.peak_bytes), alid.avg_f);
    xs.push_back(data.size());
    alid_time.push_back(alid.seconds);
    alid_mem.push_back(static_cast<double>(alid.peak_bytes));
  }
  std::printf("  ALID empirical orders of growth: runtime slope %.2f, "
              "memory slope %.2f (log-log fit)\n",
              LogLogSlope(xs, alid_time), LogLogSlope(xs, alid_mem));
}

struct ParallelRow {
  const char* method;
  int executors;
  double wall_seconds;
  double speedup;  // vs the method's own 1-executor (serial) row
};

// Sweeps 1/2/4/8 executors over every parallelized baseline and PALID, one
// shared pool per width. "1 executor" runs the serial path (no pool) — the
// honest single-substrate baseline, since a pooled ParallelFor lets the
// calling thread participate alongside the workers.
void ParallelBaselineSweep(BenchContext& ctx) {
  PrintHeader("parallel baselines: executor sweep on one shared pool");
  SyntheticConfig cfg;
  cfg.n = ctx.Scaled(3000);
  cfg.dim = 32;
  cfg.num_clusters = 20;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 1.0;
  cfg.seed = 105;
  LabeledData data = MakeSynthetic(cfg);
  const int k = cfg.num_clusters;
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  // Shared inputs built once, outside the timed sections: the sweep times
  // each method's own hot loops, not input materialization.
  LshIndex lsh(data.data, MakeLshParams(data));
  SparseMatrix sparse =
      Sparsifier::FromLshCollisions(data.data, affinity, lsh);

  std::vector<ParallelRow> rows;
  std::printf("%-10s %-6s %-10s %-8s\n", "method", "execs", "wall(s)",
              "speedup");
  for (int execs : {1, 2, 4, 8}) {
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool = nullptr;
    if (execs > 1) {
      owned = std::make_unique<ThreadPool>(execs);
      pool = owned.get();
    }
    auto time_method = [&](const char* name,
                           const std::function<void()>& run) {
      WallTimer timer;
      run();
      rows.push_back({name, execs, timer.Seconds(), 0.0});
    };
    time_method("KMEANS", [&] {
      KMeansOptions o;
      o.pool = pool;
      RunKMeans(data.data, k, o);
    });
    time_method("MEANSHIFT", [&] {
      MeanShiftOptions o;
      o.pool = pool;
      o.max_ascents = 64;
      RunMeanShift(data.data, o);
    });
    time_method("SC-FL", [&] {
      SpectralOptions o;
      o.num_clusters = k;
      o.pool = pool;
      SpectralClusterFull(data.data, affinity, o);
    });
    time_method("AP", [&] {
      ApOptions o;
      o.max_iterations = 100;
      o.preference = 0.01;  // below the surviving similarities (Sec. 5)
      o.pool = pool;
      ApDetector(AffinityView(&sparse), o).Detect();
    });
    time_method("SEA", [&] {
      SeaOptions o;
      o.pool = pool;
      SeaDetector(AffinityView(&sparse), o).DetectAll();
    });
    time_method("PALID", [&] {
      // Fresh oracle (and cache) per row keeps the sweep fair; the map
      // tasks run on the same shared pool as the baselines above.
      LazyAffinityOracle oracle(data.data, affinity);
      PalidOptions o;
      if (pool != nullptr) {
        o.pool = pool;
      } else {
        o.num_executors = 1;
      }
      Palid(oracle, lsh, o).Detect();
    });
  }
  for (ParallelRow& row : rows) {
    for (const ParallelRow& base : rows) {
      if (base.executors == 1 &&
          std::string_view(base.method) == row.method) {
        row.speedup = row.wall_seconds > 0.0
                          ? base.wall_seconds / row.wall_seconds
                          : 0.0;
      }
    }
    std::printf("%-10s %-6d %-10.3f %-8.2f\n", row.method, row.executors,
                row.wall_seconds, row.speedup);
  }
  std::printf("Expected shape: every method's 8-executor wall time at or "
              "below its serial wall time on multi-core hardware (identical "
              "output bits either way).\n");
  std::string json;
  AppendF(json, "{\"bench\":\"fig7_parallel_baselines\",\"n\":%d,\"rows\":[",
          data.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendF(json,
            "%s{\"method\":\"%s\",\"executors\":%d,\"wall_seconds\":%.6f,"
            "\"speedup\":%.4f,\"gate_speedup\":%s}",
            i == 0 ? "" : ",", rows[i].method, rows[i].executors,
            rows[i].wall_seconds, rows[i].speedup,
            std::string_view(rows[i].method) == "PALID" ? "true" : "false");
  }
  json += "]}";
  ctx.EmitJson(json);
}

void Run(BenchContext& ctx) {
  std::printf("Figure 7: scalability on the three a* regimes and NDI "
              "(scale %.2f)\n", ctx.scale());
  const std::vector<double> sizes{700, 1400, 2800, 5600, 11200};
  std::string json = "{\"bench\":\"fig7_scalability\",\"rows\":[";

  SweepSizes(ctx, "(a,e,i) a* = omega*n/20, omega=1.0", "proportional",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kProportional, n, 101);
             },
             sizes, json);
  SweepSizes(ctx, "(b,f,j) a* = n^eta/20, eta=0.9", "sublinear",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kSublinear, n, 102);
             },
             sizes, json);
  SweepSizes(ctx, "(c,g,k) a* = P/20, P=1000", "bounded",
             [](Index n) {
               return MakeRegime(SyntheticRegime::kBounded, n, 103);
             },
             sizes, json);
  SweepSizes(ctx, "(d,h,l) NDI-like subsets", "ndi",
             [](Index n) {
               NdiLikeConfig cfg;
               cfg.num_groups = 12;
               cfg.num_duplicates = n / 8;
               cfg.num_noise = n - n / 8;
               cfg.seed = 104;
               return MakeNdiLike(cfg);
             },
             sizes, json);

  std::printf("\nExpected shape (paper, log-log): ALID runtime slopes "
              "~2 / ~1.7 / ~1 on the three regimes; memory far below the "
              "O(n^2) baselines; AVG-F comparable across methods.\n");
  json += "]}";
  ctx.EmitJson(json);

  ParallelBaselineSweep(ctx);
}

ALID_BENCHMARK("fig7_scalability", "paper,scalability,speedup",
               "fig7_scalability,fig7_parallel_baselines", Run);

}  // namespace
}  // namespace alid::bench
