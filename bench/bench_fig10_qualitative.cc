// Figure 10 — qualitative visual-word detection on partial-duplicate images
// (Section 5.3).
//
// The paper overlays detected SIFTs (green) and filtered noise (red) on the
// "KFC grandpa" images. Our text stand-in plants visual words in SIFT-like
// data and reports, per method, how many true visual-word descriptors were
// kept (green), how many clutter descriptors leaked in, and the resulting
// precision/recall of the kept set — the quantitative content of the figure.
#include "bench_util.h"
#include "registry.h"

#include "core/palid.h"
#include "data/sift_like.h"

namespace alid::bench {
namespace {

struct KeptStats {
  int kept_true = 0;    // green points that are really visual-word SIFTs
  int kept_noise = 0;   // red points wrongly kept
  double precision = 0.0;
  double recall = 0.0;
};

KeptStats Score(const LabeledData& data, const DetectionResult& dense) {
  KeptStats s;
  std::vector<bool> kept(data.size(), false);
  for (const Cluster& c : dense.clusters) {
    for (Index g : c.members) kept[g] = true;
  }
  int total_true = 0;
  for (Index i = 0; i < data.size(); ++i) {
    const bool is_true = data.labels[i] >= 0;
    total_true += is_true;
    if (kept[i]) {
      if (is_true) {
        ++s.kept_true;
      } else {
        ++s.kept_noise;
      }
    }
  }
  const int kept_total = s.kept_true + s.kept_noise;
  s.precision = kept_total > 0 ? static_cast<double>(s.kept_true) / kept_total
                               : 0.0;
  s.recall = total_true > 0 ? static_cast<double>(s.kept_true) / total_true
                            : 0.0;
  return s;
}

void Report(std::string& json, const char* method, const LabeledData& data,
            const DetectionResult& result, double seconds,
            double keep_threshold = 0.75) {
  DetectionResult dense = result.Filtered(keep_threshold);
  KeptStats s = Score(data, dense);
  std::printf("%-7s kept %5d true SIFTs (green), leaked %4d noise (red)  "
              "precision %.3f  recall %.3f  clusters %zu  time %.2fs\n",
              method, s.kept_true, s.kept_noise, s.precision, s.recall,
              dense.clusters.size(), seconds);
  AppendF(json,
          "%s{\"method\":\"%s\",\"kept_true\":%d,\"kept_noise\":%d,"
          "\"precision\":%.4f,\"recall\":%.4f,\"wall_seconds\":%.6f}",
          json.back() == '[' ? "" : ",", method, s.kept_true, s.kept_noise,
          s.precision, s.recall, seconds);
}

void Run(BenchContext& ctx) {
  std::printf("Figure 10: qualitative visual-word detection "
              "(scale %.2f)\n", ctx.scale());
  SiftLikeConfig cfg;
  cfg.n = ctx.Scaled(1600);
  cfg.num_visual_words = 12;
  cfg.word_fraction = 0.35;
  cfg.seed = 401;
  LabeledData data = MakeSiftLike(cfg);
  std::printf("planted %d visual words over %d descriptors (%.0f%% clutter)\n",
              cfg.num_visual_words, data.size(),
              100.0 * (1.0 - cfg.word_fraction));
  PrintHeader("per-method kept/filtered SIFTs (pi(x) >= 0.75 clusters)");

  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  LshIndex lsh(data.data, MakeLshParams(data));

  std::string json = "{\"bench\":\"fig10_qualitative\",\"rows\":[";
  {
    WallTimer t;
    Palid palid(oracle, lsh, {});
    DetectionResult r = palid.Detect();
    Report(json, "PALID", data, r, t.Seconds());
  }
  {
    WallTimer t;
    AlidDetector alid_detector(oracle, lsh, {});
    Report(json, "ALID", data, alid_detector.DetectAll(), t.Seconds());
  }
  {
    WallTimer t;
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    AffinityMatrix matrix(data.data, f);
    IidDetector iid{AffinityView(&matrix.matrix())};
    Report(json, "IID", data, iid.DetectAll(), t.Seconds());
  }
  {
    WallTimer t;
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    SparseMatrix sparse = Sparsifier::FromLshCollisions(data.data, f, lsh);
    SeaDetector sea{AffinityView(&sparse)};
    Report(json, "SEA", data, sea.DetectAll(), t.Seconds());
  }
  {
    WallTimer t;
    AffinityFunction f({.k = data.suggested_k, .p = 2.0});
    AffinityMatrix matrix(data.data, f);
    ApDetector ap{AffinityView(&matrix.matrix())};
    // AP partitions everything (no peeling threshold of its own); its word
    // clusters absorb some clutter, so the density cut sits lower (0.6).
    Report(json, "AP", data, ap.Detect(), t.Seconds(),
           /*keep_threshold=*/0.6);
  }

  std::printf("\nExpected shape: every affinity-based method keeps most "
              "visual-word SIFTs and filters out nearly all clutter "
              "(high precision at high recall), matching Fig. 10(b)-(f).\n");
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("fig10_qualitative", "paper,quality", "fig10_qualitative",
               Run);

}  // namespace
}  // namespace alid::bench
