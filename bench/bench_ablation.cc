// Ablation bench — the design choices DESIGN.md §5 calls out, measured:
//   1. ROI growth schedule: logistic theta(c) (paper) vs jump-to-outer-ball.
//   2. CIVS query strategy: all support points (paper) vs center-only.
//   3. Lazy column oracle vs materializing the full matrix (entries touched).
//   4. CIVS budget delta sweep: quality/time trade-off.
//   5. Peeling density threshold tau sweep: precision/recall trade-off.
//   6. Streaming ingest substrate: serial vs the shared executor pool
//      (bit-identical state, only wall time moves — a mismatch fails the
//      benchmark, not just a printout).
#include "bench_util.h"
#include "registry.h"

#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/sift_like.h"
#include "data/synthetic.h"

namespace alid::bench {
namespace {

LabeledData Workload(Index n) {
  SyntheticConfig cfg;
  cfg.n = n;
  cfg.dim = 50;
  cfg.num_clusters = 10;
  cfg.regime = SyntheticRegime::kProportional;
  cfg.omega = 0.6;
  cfg.seed = 801;
  return MakeSynthetic(cfg);
}

void Run(BenchContext& ctx) {
  std::printf("Ablations of ALID's design choices (scale %.2f)\n",
              ctx.scale());
  LabeledData data = Workload(ctx.Scaled(3000));
  std::string json = "{\"bench\":\"ablation\",\"rows\":[";

  PrintHeader("1. ROI growth schedule (Eq. 16)");
  {
    for (bool logistic : {true, false}) {
      AlidOptions opts;
      opts.logistic_roi_growth = logistic;
      AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
      LazyAffinityOracle oracle(data.data, affinity);
      LshIndex lsh(data.data, MakeLshParams(data));
      AlidDetector detector(oracle, lsh, opts);
      oracle.ResetCounters();
      WallTimer timer;
      DetectionResult result = detector.DetectAll();
      const double seconds = timer.Seconds();
      const double avg_f =
          AverageF1(data.true_clusters, result.Filtered(0.75));
      std::printf("  %-22s AVG-F %.3f  time %.3fs  kernel entries %lld  "
                  "ROI distance scans %lld\n",
                  logistic ? "logistic theta(c)" : "jump to outer ball",
                  avg_f, seconds,
                  static_cast<long long>(oracle.entries_computed()),
                  static_cast<long long>(oracle.distances_computed()));
      AppendF(json,
              "%s{\"ablation\":\"roi_schedule\",\"mode\":\"%s\","
              "\"wall_seconds\":%.6f,\"avg_f\":%.4f,\"entries\":%lld}",
              json.back() == '[' ? "" : ",",
              logistic ? "logistic" : "outer_ball", seconds, avg_f,
              static_cast<long long>(oracle.entries_computed()));
    }
    std::printf("  finding: AVG-F identical; with LSH-backed CIVS the\n"
                "  candidate list comes from the LSH buckets (not from the\n"
                "  radius), so jumping to the outer ball converges in fewer\n"
                "  outer iterations and scans *less*. The paper's schedule\n"
                "  pays off when the ROI scan is a true spatial range query\n"
                "  (cost grows with radius); see EXPERIMENTS.md.\n");
  }

  PrintHeader("2. CIVS query strategy (Fig. 4)");
  {
    AlidOptions all_support;
    AlidOptions center_only;
    center_only.civs.query_from_all_support = false;
    PrintStatsRow("all support queries", RunAlid(data, 1.0, all_support));
    PrintStatsRow("center-only query", RunAlid(data, 1.0, center_only));
    std::printf("  expectation: center-only misses ROI regions, losing "
                "recall/AVG-F.\n");
  }

  PrintHeader("3. lazy columns vs full materialization");
  {
    RunStats lazy = RunAlid(data);
    const int64_t full_entries =
        static_cast<int64_t>(data.size()) * (data.size() - 1) / 2;
    std::printf("  lazy oracle touched %lld entries; the full matrix costs "
                "%lld (x%.1f more)\n",
                static_cast<long long>(lazy.entries),
                static_cast<long long>(full_entries),
                lazy.entries > 0
                    ? static_cast<double>(full_entries) / lazy.entries
                    : 0.0);
  }

  PrintHeader("4. CIVS budget delta sweep");
  for (int delta : {10, 50, 200, 800, 3200}) {
    AlidOptions opts;
    opts.civs.delta = delta;
    char config[32];
    std::snprintf(config, sizeof(config), "delta=%d", delta);
    const RunStats stats = RunAlid(data, 1.0, opts);
    PrintStatsRow(config, stats);
    AppendF(json,
            "%s{\"ablation\":\"civs_delta\",\"delta\":%d,"
            "\"wall_seconds\":%.6f,\"avg_f\":%.4f}",
            json.back() == '[' ? "" : ",", delta, stats.seconds,
            stats.avg_f);
  }
  std::printf("  expectation: tiny delta starves the range update; past the "
              "cluster size, bigger delta only costs time.\n");

  PrintHeader("5. peeling threshold tau sweep (SIFT-like: clutter forms "
              "weak ~0.5-density groups)");
  {
    // SIFT-like data puts weak clutter groups just below the paper's
    // threshold, so the sweep shows both failure directions.
    SiftLikeConfig sift;
    sift.n = ctx.Scaled(2000);
    sift.num_visual_words = 10;
    sift.word_fraction = 0.35;
    sift.seed = 802;
    LabeledData sdata = MakeSiftLike(sift);
    AffinityFunction affinity({.k = sdata.suggested_k, .p = 2.0});
    LazyAffinityOracle oracle(sdata.data, affinity);
    LshIndex lsh(sdata.data, MakeLshParams(sdata));
    AlidDetector detector(oracle, lsh, {});
    DetectionResult raw = detector.DetectAll();
    for (double tau : {0.2, 0.35, 0.5, 0.65, 0.75, 0.85, 0.95}) {
      DetectionResult kept = raw.Filtered(tau);
      std::printf("  tau=%.2f  AVG-F %.3f  clusters kept %zu\n", tau,
                  AverageF1(sdata.true_clusters, kept), kept.clusters.size());
    }
    std::printf("  finding: AVG-F scores each true cluster by its best "
                "match, so extra weak clusters below tau never lower it — "
                "the failure mode is one-sided: tau above the true-cluster "
                "densities drops everything. The paper's 0.75 sits safely "
                "below the ~0.9 planted densities.\n");
  }

  PrintHeader("6. streaming ingest substrate (windowed OnlineAlid)");
  {
    // The same shuffled stream, batched, on no pool vs the shared
    // work-stealing pool: the batch hash/score phases are the only
    // parallel parts, so the streamed state is bit-identical and the
    // wall-time delta isolates the substrate.
    LabeledData stream = Workload(ctx.Scaled(1200));
    Rng rng(31);
    const auto order = rng.Permutation(stream.size());
    const int dim = stream.data.dim();
    auto run = [&](ThreadPool* pool) {
      OnlineAlidOptions opts;
      opts.affinity = {.k = stream.suggested_k, .p = 2.0};
      opts.lsh.segment_length = stream.suggested_lsh_r;
      opts.window = ctx.Scaled(700);
      opts.pool = pool;
      auto online = std::make_unique<OnlineAlid>(dim, opts);
      std::vector<Scalar> batch;
      WallTimer timer;
      for (Index pos = 0; pos < stream.size(); ++pos) {
        const auto point = stream.data[order[pos]];
        batch.insert(batch.end(), point.begin(), point.end());
        if (static_cast<Index>(batch.size()) == 128 * dim) {
          online->InsertBatch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) online->InsertBatch(batch);
      online->Refresh();
      const double seconds = timer.Seconds();
      std::printf("  %-22s wall %.3fs  clusters %zu  absorbed %lld  "
                  "evicted %lld  steals %lld\n",
                  pool == nullptr ? "serial ingest" : "shared pool (4)",
                  seconds, online->clusters().size(),
                  static_cast<long long>(online->stats().absorbed),
                  static_cast<long long>(online->stats().evicted),
                  static_cast<long long>(
                      pool != nullptr ? pool->steal_count() : 0));
      AppendF(json,
              "%s{\"ablation\":\"stream_substrate\",\"mode\":\"%s\","
              "\"wall_seconds\":%.6f,\"clusters\":%zu}",
              json.back() == '[' ? "" : ",",
              pool == nullptr ? "serial" : "pooled", seconds,
              online->clusters().size());
      return online;
    };
    auto serial = run(nullptr);
    ThreadPool pool(4);
    auto pooled = run(&pool);
    const bool identical =
        serial->clusters().size() == pooled->clusters().size() &&
        serial->stats().absorbed == pooled->stats().absorbed &&
        serial->stats().evicted == pooled->stats().evicted;
    std::printf("  state identical: %s\n",
                identical ? "yes" : "NO — determinism bug");
    if (!identical) {
      ctx.Fail("streaming ingest state diverged between the serial and "
               "pooled substrates — the determinism contract is broken");
    }
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("ablation", "paper,ablation", "ablation", Run);

}  // namespace
}  // namespace alid::bench
