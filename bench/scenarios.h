#ifndef ALID_BENCH_SCENARIOS_H_
#define ALID_BENCH_SCENARIOS_H_

// Adversarial stream scenario generators — the workloads the synthetic
// regimes of data/synthetic.h never produce, aimed at the runtime's weak
// points:
//
//   drift       — cluster centers walk a constant velocity per batch, so a
//                 cluster's support slowly leaves its own LSH buckets and
//                 absorb region; stresses refresh/re-detection (the stream
//                 must dissolve the stale cluster and re-detect the moved
//                 one) rather than steady absorb.
//   burst       — cluster generations are born in storms and die `lifetime`
//                 batches later; stresses the frontier ramp (cold absorb on
//                 brand-new clusters) and incremental publish (rows_reused
//                 collapses in birth storms).
//   heavy_tail  — Zipf cluster membership: one giant head cluster, a long
//                 tail of rare ones; stresses support-sketch prune rates
//                 (the head's support saturates the scoring path) and the
//                 column cache's budgeting across many tiny columns.
//
// Every generator is a pure function of (config, batch_index): batch k can
// be produced without batches 0..k-1 and in any order, and the same
// (config, batch_index) pair always yields the same bytes (seed-determinism
// and batch-order stability, asserted by tests/scenario_test.cc). All draws
// are counter-based (Rng over SplitMix64-mixed keys), never generator state
// threaded across batches.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace alid::bench {

/// Concept drift: `num_clusters` Gaussian clusters whose centers translate
/// by `drift_per_batch` along a per-cluster unit velocity every batch.
struct DriftScenarioConfig {
  int dim = 16;
  int num_clusters = 6;
  Index points_per_batch = 96;   ///< Cluster arrivals per batch (pre-noise).
  double spread = 1.0;           ///< Intra-cluster stddev.
  double mean_box = 400.0;       ///< Base centers drawn from [0, mean_box).
  double drift_per_batch = 2.5;  ///< Center displacement per batch.
  double noise_fraction = 0.15;  ///< Extra far-noise arrivals per batch.
  uint64_t seed = 1001;
};

/// Burst arrivals: `num_slots` cluster slots, each reborn at a fresh center
/// every `period` batches and alive for `lifetime` of them. Slot phases are
/// drawn from a few storm offsets, so births (and `lifetime` batches later,
/// deaths) arrive in storms rather than uniformly.
struct BurstScenarioConfig {
  int dim = 16;
  int num_slots = 12;
  int period = 12;            ///< Batches between a slot's rebirths.
  int lifetime = 5;           ///< Batches a generation keeps arriving.
  int num_storms = 3;         ///< Distinct birth phases slots cluster on.
  Index points_per_slot = 24; ///< Arrivals per live slot per batch.
  double spread = 1.0;
  double mean_box = 600.0;
  double noise_fraction = 0.1;  ///< Relative to the live-slot arrivals.
  uint64_t seed = 2002;
};

/// Heavy-tailed cluster sizes: arrivals pick their cluster from a Zipf
/// distribution over `num_clusters` centers (head cluster gets the bulk,
/// the tail is starved).
struct HeavyTailScenarioConfig {
  int dim = 16;
  int num_clusters = 48;
  double zipf_exponent = 1.2;
  Index points_per_batch = 128;
  double spread = 1.0;
  double mean_box = 800.0;
  double noise_fraction = 0.05;
  uint64_t seed = 3003;
};

/// High-dimensional embedding streams: realistic text/image-embedding
/// geometry — points clustered on a low-dimensional manifold inside a high
/// ambient dimension, with anisotropic within-cluster scatter — where LSH
/// bucket occupancy skews and cache locality behaves unlike isotropic
/// synthetic Gaussians. Cluster centers live in the span of a shared
/// `manifold_dim`-column orthonormal basis (seed-keyed); each arrival adds
/// manifold-coordinate Gaussian scatter whose per-axis scale decays
/// geometrically (axis 0 at `spread`, the last axis `anisotropy`x tighter)
/// plus a small isotropic ambient jitter off the manifold.
struct EmbeddingScenarioConfig {
  int dim = 64;            ///< Ambient embedding dimension.
  int manifold_dim = 6;    ///< Intrinsic dimension of the cluster manifold.
  int num_clusters = 10;
  Index points_per_batch = 96;
  double spread = 1.0;     ///< Scatter stddev along the widest manifold axis.
  double anisotropy = 8.0; ///< Widest / narrowest manifold-axis stddev ratio.
  double ambient_noise = 0.05;  ///< Off-manifold jitter, fraction of spread.
  double mean_box = 40.0;  ///< Manifold coordinates of centers in [0, box).
  double noise_fraction = 0.05;  ///< Extra ambient far-noise arrivals.
  uint64_t seed = 4004;
};

/// One generated batch: row-major points plus the bookkeeping the scenario
/// benches report against (how many arrivals were cluster members vs noise,
/// and which generations/clusters produced them).
struct ScenarioBatch {
  std::vector<Scalar> points;  ///< Row-major, `rows x dim`.
  Index rows = 0;
  Index noise_rows = 0;        ///< Of `rows`, how many are far noise.
  /// Distinct source clusters (drift/heavy-tail) or live generations
  /// (burst) that contributed at least one arrival to this batch.
  int active_sources = 0;
};

ScenarioBatch DriftBatch(const DriftScenarioConfig& config, int batch_index);
ScenarioBatch BurstBatch(const BurstScenarioConfig& config, int batch_index);
ScenarioBatch HeavyTailBatch(const HeavyTailScenarioConfig& config,
                             int batch_index);
ScenarioBatch EmbeddingBatch(const EmbeddingScenarioConfig& config,
                             int batch_index);

/// The center of drift cluster `c` at batch `t` (exposed so tests can check
/// the walk is linear and the bench can report the displacement).
std::vector<Scalar> DriftCenterAt(const DriftScenarioConfig& config,
                                  int cluster, int batch_index);

/// True iff burst slot `s` has a live generation at batch `t`; `generation`
/// (optional) receives its index.
bool BurstSlotLiveAt(const BurstScenarioConfig& config, int slot,
                     int batch_index, int* generation = nullptr);

/// The Zipf probability of cluster `c` under `config` (normalized).
double HeavyTailClusterProbability(const HeavyTailScenarioConfig& config,
                                   int cluster);

/// The shared manifold basis of the embedding scenario: `manifold_dim`
/// orthonormal columns of length `dim`, column-major (column j occupies
/// [j * dim, (j + 1) * dim)). A pure function of (seed, dim, manifold_dim),
/// exposed so tests can verify orthonormality and manifold residuals.
std::vector<Scalar> EmbeddingBasis(const EmbeddingScenarioConfig& config);

/// The ambient-space center of embedding cluster `c` (basis * manifold
/// coordinates; exposed for the anisotropy/manifold tests).
std::vector<Scalar> EmbeddingCenterAt(const EmbeddingScenarioConfig& config,
                                      int cluster);

/// The scatter stddev along manifold axis `axis` (geometric decay from
/// `spread` at axis 0 down to spread / anisotropy at the last axis).
double EmbeddingAxisScale(const EmbeddingScenarioConfig& config, int axis);

}  // namespace alid::bench

#endif  // ALID_BENCH_SCENARIOS_H_
