// Figure 6 — sparsity influence analysis (Section 5.1).
//
// Sweeps the LSH segment length r on NART-like and Sub-NDI-like workloads and
// reports, for AP / SEA / IID on the LSH-sparsified affinity matrix and for
// ALID with the same LSH module:
//   (a)(b) AVG-F vs r, with the induced sparse degree overlaid;
//   (c)(d) runtime vs r.
//
// Paper shapes to reproduce: every method's AVG-F rises to a plateau as r
// grows (sparse degree falls); ALID reaches its plateau already at extreme
// sparse degrees and stays the fastest at large r, while AP's runtime blows
// up first (message-passing over the densifying edge set).
#include "bench_util.h"

#include "affinity/sparsifier.h"
#include "data/nart_like.h"
#include "data/ndi_like.h"

namespace alid::bench {
namespace {

void SweepDataset(const char* name, const LabeledData& data,
                  const std::vector<double>& r_scales) {
  PrintHeader(name);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  for (double r_scale : r_scales) {
    // Induced sparse degree of this r (the overlay curve of Fig. 6).
    LshIndex lsh(data.data, MakeLshParams(data, r_scale));
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(data.data, affinity, lsh);
    char config[64];
    std::snprintf(config, sizeof(config), "r=%.2f (SD=%.4f)",
                  r_scale * data.suggested_lsh_r, sparse.SparseDegree());
    PrintStatsRow(config, RunAp(data, r_scale));
    PrintStatsRow(config, RunSea(data, r_scale));
    PrintStatsRow(config, RunIid(data, r_scale));
    PrintStatsRow(config, RunAlid(data, r_scale));
  }
}

void Main() {
  std::printf("Figure 6: sparsity influence on detection quality and "
              "runtime (scale %.2f)\n", Scale());

  NartLikeConfig nart;
  nart.num_event_articles = Scaled(300);
  nart.num_noise_articles = Scaled(1800);
  LabeledData nart_data = MakeNartLike(nart);
  SweepDataset("NART-like: AVG-F / runtime vs segment length r", nart_data,
               {0.25, 0.5, 1.0, 2.0, 4.0});

  NdiLikeConfig sub_ndi = NdiLikeConfig::SubNdi();
  sub_ndi.num_duplicates = Scaled(560);
  sub_ndi.num_noise = Scaled(3400);
  LabeledData ndi_data = MakeNdiLike(sub_ndi);
  SweepDataset("Sub-NDI-like: AVG-F / runtime vs segment length r", ndi_data,
               {0.25, 0.5, 1.0, 2.0, 4.0});

  std::printf("\nExpected shape: AVG-F plateaus as r grows (sparse degree "
              "drops); ALID plateaus earliest and stays fastest; AP slows "
              "most at large r.\n");
}

}  // namespace
}  // namespace alid::bench

int main() {
  alid::bench::Main();
  return 0;
}
