// Figure 6 — sparsity influence analysis (Section 5.1).
//
// Sweeps the LSH segment length r on NART-like and Sub-NDI-like workloads and
// reports, for AP / SEA / IID on the LSH-sparsified affinity matrix and for
// ALID with the same LSH module:
//   (a)(b) AVG-F vs r, with the induced sparse degree overlaid;
//   (c)(d) runtime vs r.
//
// Paper shapes to reproduce: every method's AVG-F rises to a plateau as r
// grows (sparse degree falls); ALID reaches its plateau already at extreme
// sparse degrees and stays the fastest at large r, while AP's runtime blows
// up first (message-passing over the densifying edge set).
#include "bench_util.h"
#include "registry.h"

#include "affinity/sparsifier.h"
#include "data/nart_like.h"
#include "data/ndi_like.h"

namespace alid::bench {
namespace {

struct SparsityRow {
  const char* dataset;
  double r_scale;
  double sparse_degree;
  RunStats stats;
};

void SweepDataset(const char* name, const char* dataset,
                  const LabeledData& data,
                  const std::vector<double>& r_scales,
                  std::vector<SparsityRow>& rows) {
  PrintHeader(name);
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  for (double r_scale : r_scales) {
    // Induced sparse degree of this r (the overlay curve of Fig. 6).
    LshIndex lsh(data.data, MakeLshParams(data, r_scale));
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(data.data, affinity, lsh);
    char config[64];
    std::snprintf(config, sizeof(config), "r=%.2f (SD=%.4f)",
                  r_scale * data.suggested_lsh_r, sparse.SparseDegree());
    for (const RunStats& stats :
         {RunAp(data, r_scale), RunSea(data, r_scale), RunIid(data, r_scale),
          RunAlid(data, r_scale)}) {
      PrintStatsRow(config, stats);
      rows.push_back({dataset, r_scale, sparse.SparseDegree(), stats});
    }
  }
}

void Run(BenchContext& ctx) {
  std::printf("Figure 6: sparsity influence on detection quality and "
              "runtime (scale %.2f)\n", ctx.scale());

  std::vector<SparsityRow> rows;
  NartLikeConfig nart;
  nart.num_event_articles = ctx.Scaled(300);
  nart.num_noise_articles = ctx.Scaled(1800);
  LabeledData nart_data = MakeNartLike(nart);
  SweepDataset("NART-like: AVG-F / runtime vs segment length r", "nart",
               nart_data, {0.25, 0.5, 1.0, 2.0, 4.0}, rows);

  NdiLikeConfig sub_ndi = NdiLikeConfig::SubNdi();
  sub_ndi.num_duplicates = ctx.Scaled(560);
  sub_ndi.num_noise = ctx.Scaled(3400);
  LabeledData ndi_data = MakeNdiLike(sub_ndi);
  SweepDataset("Sub-NDI-like: AVG-F / runtime vs segment length r", "subndi",
               ndi_data, {0.25, 0.5, 1.0, 2.0, 4.0}, rows);

  std::printf("\nExpected shape: AVG-F plateaus as r grows (sparse degree "
              "drops); ALID plateaus earliest and stays fastest; AP slows "
              "most at large r.\n");

  std::string json = "{\"bench\":\"fig6_sparsity\",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SparsityRow& r = rows[i];
    AppendF(json,
            "%s{\"dataset\":\"%s\",\"method\":\"%s\",\"r_scale\":%.2f,"
            "\"sparse_degree\":%.6f,\"avg_f\":%.4f,\"wall_seconds\":%.6f,"
            "\"entries\":%lld,\"clusters\":%d}",
            i == 0 ? "" : ",", r.dataset, r.stats.method.c_str(), r.r_scale,
            r.sparse_degree, r.stats.avg_f, r.stats.seconds,
            static_cast<long long>(r.stats.entries),
            r.stats.num_dense_clusters);
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("fig6_sparsity", "paper,sparsity", "fig6_sparsity", Run);

}  // namespace
}  // namespace alid::bench
