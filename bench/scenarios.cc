#include "scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace alid::bench {
namespace {

// Stream-key salts: every logical draw family gets its own mixed key so no
// two draws ever share an Rng state across (config, batch_index) calls.
constexpr uint64_t kDriftCenterSalt = 0xD01F'0000'0001ull;
constexpr uint64_t kDriftVelocitySalt = 0xD01F'0000'0002ull;
constexpr uint64_t kDriftBatchSalt = 0xD01F'0000'0003ull;
constexpr uint64_t kBurstStormSalt = 0xB5A7'0000'0001ull;
constexpr uint64_t kBurstCenterSalt = 0xB5A7'0000'0002ull;
constexpr uint64_t kBurstBatchSalt = 0xB5A7'0000'0003ull;
constexpr uint64_t kTailCenterSalt = 0x7A11'0000'0001ull;
constexpr uint64_t kTailBatchSalt = 0x7A11'0000'0002ull;

Rng KeyedRng(uint64_t seed, uint64_t salt, uint64_t id) {
  return Rng(SplitMix64(seed ^ SplitMix64(salt ^ id)));
}

std::vector<Scalar> BoxCenter(uint64_t seed, uint64_t salt, uint64_t id,
                              int dim, double box) {
  Rng rng = KeyedRng(seed, salt, id);
  std::vector<Scalar> center(dim);
  for (auto& v : center) v = rng.Uniform(0.0, box);
  return center;
}

void AppendGaussianPoint(std::vector<Scalar>& out,
                         const std::vector<Scalar>& center, double spread,
                         Rng& rng) {
  for (const Scalar c : center) out.push_back(c + rng.Gaussian() * spread);
}

void AppendNoise(ScenarioBatch& batch, int dim, double box, Index count,
                 Rng& rng) {
  for (Index q = 0; q < count; ++q) {
    for (int d = 0; d < dim; ++d) {
      batch.points.push_back(rng.Uniform(-0.5 * box, 1.5 * box));
    }
  }
  batch.rows += count;
  batch.noise_rows += count;
}

}  // namespace

std::vector<Scalar> DriftCenterAt(const DriftScenarioConfig& config,
                                  int cluster, int batch_index) {
  std::vector<Scalar> center =
      BoxCenter(config.seed, kDriftCenterSalt, static_cast<uint64_t>(cluster),
                config.dim, config.mean_box);
  Rng vel_rng = KeyedRng(config.seed, kDriftVelocitySalt,
                         static_cast<uint64_t>(cluster));
  std::vector<Scalar> velocity(config.dim);
  double norm = 0.0;
  for (auto& v : velocity) {
    v = vel_rng.Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  const double step = config.drift_per_batch * batch_index;
  for (int d = 0; d < config.dim; ++d) {
    center[d] += velocity[d] / norm * step;
  }
  return center;
}

ScenarioBatch DriftBatch(const DriftScenarioConfig& config, int batch_index) {
  ScenarioBatch batch;
  std::vector<std::vector<Scalar>> centers(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    centers[c] = DriftCenterAt(config, c, batch_index);
  }
  Rng rng = KeyedRng(config.seed, kDriftBatchSalt,
                     static_cast<uint64_t>(batch_index));
  batch.points.reserve(static_cast<size_t>(config.points_per_batch) *
                       config.dim);
  // Round-robin cluster assignment keeps every walking cluster fed each
  // batch, so a cluster going stale is the runtime's failure, not the
  // workload starving it.
  for (Index i = 0; i < config.points_per_batch; ++i) {
    const int c = static_cast<int>(i % config.num_clusters);
    AppendGaussianPoint(batch.points, centers[c], config.spread, rng);
  }
  batch.rows = config.points_per_batch;
  batch.active_sources = static_cast<int>(std::min<Index>(
      config.num_clusters, config.points_per_batch));
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(config.points_per_batch));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

bool BurstSlotLiveAt(const BurstScenarioConfig& config, int slot,
                     int batch_index, int* generation) {
  // Slots cluster on a few storm phases, so generations are born (and die)
  // together instead of uniformly across the period.
  const uint64_t storm = SplitMix64(config.seed ^ SplitMix64(
                             kBurstStormSalt ^ static_cast<uint64_t>(slot))) %
                         static_cast<uint64_t>(std::max(config.num_storms, 1));
  const int phase = static_cast<int>(storm) * config.period /
                    std::max(config.num_storms, 1);
  const int since = batch_index - phase;
  if (since < 0) return false;
  if (since % config.period >= config.lifetime) return false;
  if (generation != nullptr) *generation = since / config.period;
  return true;
}

ScenarioBatch BurstBatch(const BurstScenarioConfig& config, int batch_index) {
  ScenarioBatch batch;
  Rng rng = KeyedRng(config.seed, kBurstBatchSalt,
                     static_cast<uint64_t>(batch_index));
  for (int s = 0; s < config.num_slots; ++s) {
    int generation = 0;
    if (!BurstSlotLiveAt(config, s, batch_index, &generation)) continue;
    // A fresh center per (slot, generation): rebirth is a new cluster, not
    // the old one waking up — the previous generation must dissolve.
    const uint64_t id = (static_cast<uint64_t>(s) << 32) ^
                        static_cast<uint64_t>(generation);
    const std::vector<Scalar> center = BoxCenter(
        config.seed, kBurstCenterSalt, id, config.dim, config.mean_box);
    for (Index i = 0; i < config.points_per_slot; ++i) {
      AppendGaussianPoint(batch.points, center, config.spread, rng);
    }
    batch.rows += config.points_per_slot;
    ++batch.active_sources;
  }
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(batch.rows));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

double HeavyTailClusterProbability(const HeavyTailScenarioConfig& config,
                                   int cluster) {
  double total = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    total += std::pow(static_cast<double>(c + 1), -config.zipf_exponent);
  }
  return std::pow(static_cast<double>(cluster + 1), -config.zipf_exponent) /
         total;
}

ScenarioBatch HeavyTailBatch(const HeavyTailScenarioConfig& config,
                             int batch_index) {
  ScenarioBatch batch;
  std::vector<double> cumulative(config.num_clusters);
  double total = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    total += std::pow(static_cast<double>(c + 1), -config.zipf_exponent);
    cumulative[c] = total;
  }
  Rng rng = KeyedRng(config.seed, kTailBatchSalt,
                     static_cast<uint64_t>(batch_index));
  std::vector<bool> seen(config.num_clusters, false);
  batch.points.reserve(static_cast<size_t>(config.points_per_batch) *
                       config.dim);
  for (Index i = 0; i < config.points_per_batch; ++i) {
    const double u = rng.Uniform(0.0, total);
    const int c = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::vector<Scalar> center =
        BoxCenter(config.seed, kTailCenterSalt, static_cast<uint64_t>(c),
                  config.dim, config.mean_box);
    AppendGaussianPoint(batch.points, center, config.spread, rng);
    if (!seen[c]) {
      seen[c] = true;
      ++batch.active_sources;
    }
  }
  batch.rows = config.points_per_batch;
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(config.points_per_batch));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

}  // namespace alid::bench
