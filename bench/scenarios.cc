#include "scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace alid::bench {
namespace {

// Stream-key salts: every logical draw family gets its own mixed key so no
// two draws ever share an Rng state across (config, batch_index) calls.
constexpr uint64_t kDriftCenterSalt = 0xD01F'0000'0001ull;
constexpr uint64_t kDriftVelocitySalt = 0xD01F'0000'0002ull;
constexpr uint64_t kDriftBatchSalt = 0xD01F'0000'0003ull;
constexpr uint64_t kBurstStormSalt = 0xB5A7'0000'0001ull;
constexpr uint64_t kBurstCenterSalt = 0xB5A7'0000'0002ull;
constexpr uint64_t kBurstBatchSalt = 0xB5A7'0000'0003ull;
constexpr uint64_t kTailCenterSalt = 0x7A11'0000'0001ull;
constexpr uint64_t kTailBatchSalt = 0x7A11'0000'0002ull;
constexpr uint64_t kEmbedBasisSalt = 0xE4BE'0000'0001ull;
constexpr uint64_t kEmbedCenterSalt = 0xE4BE'0000'0002ull;
constexpr uint64_t kEmbedBatchSalt = 0xE4BE'0000'0003ull;

Rng KeyedRng(uint64_t seed, uint64_t salt, uint64_t id) {
  return Rng(SplitMix64(seed ^ SplitMix64(salt ^ id)));
}

std::vector<Scalar> BoxCenter(uint64_t seed, uint64_t salt, uint64_t id,
                              int dim, double box) {
  Rng rng = KeyedRng(seed, salt, id);
  std::vector<Scalar> center(dim);
  for (auto& v : center) v = rng.Uniform(0.0, box);
  return center;
}

void AppendGaussianPoint(std::vector<Scalar>& out,
                         const std::vector<Scalar>& center, double spread,
                         Rng& rng) {
  for (const Scalar c : center) out.push_back(c + rng.Gaussian() * spread);
}

void AppendNoise(ScenarioBatch& batch, int dim, double box, Index count,
                 Rng& rng) {
  for (Index q = 0; q < count; ++q) {
    for (int d = 0; d < dim; ++d) {
      batch.points.push_back(rng.Uniform(-0.5 * box, 1.5 * box));
    }
  }
  batch.rows += count;
  batch.noise_rows += count;
}

}  // namespace

std::vector<Scalar> DriftCenterAt(const DriftScenarioConfig& config,
                                  int cluster, int batch_index) {
  std::vector<Scalar> center =
      BoxCenter(config.seed, kDriftCenterSalt, static_cast<uint64_t>(cluster),
                config.dim, config.mean_box);
  Rng vel_rng = KeyedRng(config.seed, kDriftVelocitySalt,
                         static_cast<uint64_t>(cluster));
  std::vector<Scalar> velocity(config.dim);
  double norm = 0.0;
  for (auto& v : velocity) {
    v = vel_rng.Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  const double step = config.drift_per_batch * batch_index;
  for (int d = 0; d < config.dim; ++d) {
    center[d] += velocity[d] / norm * step;
  }
  return center;
}

ScenarioBatch DriftBatch(const DriftScenarioConfig& config, int batch_index) {
  ScenarioBatch batch;
  std::vector<std::vector<Scalar>> centers(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    centers[c] = DriftCenterAt(config, c, batch_index);
  }
  Rng rng = KeyedRng(config.seed, kDriftBatchSalt,
                     static_cast<uint64_t>(batch_index));
  batch.points.reserve(static_cast<size_t>(config.points_per_batch) *
                       config.dim);
  // Round-robin cluster assignment keeps every walking cluster fed each
  // batch, so a cluster going stale is the runtime's failure, not the
  // workload starving it.
  for (Index i = 0; i < config.points_per_batch; ++i) {
    const int c = static_cast<int>(i % config.num_clusters);
    AppendGaussianPoint(batch.points, centers[c], config.spread, rng);
  }
  batch.rows = config.points_per_batch;
  batch.active_sources = static_cast<int>(std::min<Index>(
      config.num_clusters, config.points_per_batch));
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(config.points_per_batch));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

bool BurstSlotLiveAt(const BurstScenarioConfig& config, int slot,
                     int batch_index, int* generation) {
  // Slots cluster on a few storm phases, so generations are born (and die)
  // together instead of uniformly across the period.
  const uint64_t storm = SplitMix64(config.seed ^ SplitMix64(
                             kBurstStormSalt ^ static_cast<uint64_t>(slot))) %
                         static_cast<uint64_t>(std::max(config.num_storms, 1));
  const int phase = static_cast<int>(storm) * config.period /
                    std::max(config.num_storms, 1);
  const int since = batch_index - phase;
  if (since < 0) return false;
  if (since % config.period >= config.lifetime) return false;
  if (generation != nullptr) *generation = since / config.period;
  return true;
}

ScenarioBatch BurstBatch(const BurstScenarioConfig& config, int batch_index) {
  ScenarioBatch batch;
  Rng rng = KeyedRng(config.seed, kBurstBatchSalt,
                     static_cast<uint64_t>(batch_index));
  for (int s = 0; s < config.num_slots; ++s) {
    int generation = 0;
    if (!BurstSlotLiveAt(config, s, batch_index, &generation)) continue;
    // A fresh center per (slot, generation): rebirth is a new cluster, not
    // the old one waking up — the previous generation must dissolve.
    const uint64_t id = (static_cast<uint64_t>(s) << 32) ^
                        static_cast<uint64_t>(generation);
    const std::vector<Scalar> center = BoxCenter(
        config.seed, kBurstCenterSalt, id, config.dim, config.mean_box);
    for (Index i = 0; i < config.points_per_slot; ++i) {
      AppendGaussianPoint(batch.points, center, config.spread, rng);
    }
    batch.rows += config.points_per_slot;
    ++batch.active_sources;
  }
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(batch.rows));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

double HeavyTailClusterProbability(const HeavyTailScenarioConfig& config,
                                   int cluster) {
  double total = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    total += std::pow(static_cast<double>(c + 1), -config.zipf_exponent);
  }
  return std::pow(static_cast<double>(cluster + 1), -config.zipf_exponent) /
         total;
}

ScenarioBatch HeavyTailBatch(const HeavyTailScenarioConfig& config,
                             int batch_index) {
  ScenarioBatch batch;
  std::vector<double> cumulative(config.num_clusters);
  double total = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    total += std::pow(static_cast<double>(c + 1), -config.zipf_exponent);
    cumulative[c] = total;
  }
  Rng rng = KeyedRng(config.seed, kTailBatchSalt,
                     static_cast<uint64_t>(batch_index));
  std::vector<bool> seen(config.num_clusters, false);
  batch.points.reserve(static_cast<size_t>(config.points_per_batch) *
                       config.dim);
  for (Index i = 0; i < config.points_per_batch; ++i) {
    const double u = rng.Uniform(0.0, total);
    const int c = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::vector<Scalar> center =
        BoxCenter(config.seed, kTailCenterSalt, static_cast<uint64_t>(c),
                  config.dim, config.mean_box);
    AppendGaussianPoint(batch.points, center, config.spread, rng);
    if (!seen[c]) {
      seen[c] = true;
      ++batch.active_sources;
    }
  }
  batch.rows = config.points_per_batch;
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(config.points_per_batch));
  AppendNoise(batch, config.dim, config.mean_box, noise, rng);
  return batch;
}

std::vector<Scalar> EmbeddingBasis(const EmbeddingScenarioConfig& config) {
  const int dim = config.dim;
  const int m = config.manifold_dim;
  // Gram-Schmidt over seed-keyed Gaussian columns: one fixed draw and
  // orthogonalization order, so the basis is a pure function of the config.
  Rng rng = KeyedRng(config.seed, kEmbedBasisSalt, 0);
  std::vector<Scalar> basis(static_cast<size_t>(m) * dim);
  for (int j = 0; j < m; ++j) {
    Scalar* col = basis.data() + static_cast<size_t>(j) * dim;
    for (int d = 0; d < dim; ++d) col[d] = rng.Gaussian();
    for (int k = 0; k < j; ++k) {
      const Scalar* prev = basis.data() + static_cast<size_t>(k) * dim;
      Scalar dot = 0.0;
      for (int d = 0; d < dim; ++d) dot += col[d] * prev[d];
      for (int d = 0; d < dim; ++d) col[d] -= dot * prev[d];
    }
    Scalar norm = 0.0;
    for (int d = 0; d < dim; ++d) norm += col[d] * col[d];
    norm = std::sqrt(std::max(norm, 1e-24));
    for (int d = 0; d < dim; ++d) col[d] /= norm;
  }
  return basis;
}

double EmbeddingAxisScale(const EmbeddingScenarioConfig& config, int axis) {
  if (config.manifold_dim <= 1) return config.spread;
  const double t =
      static_cast<double>(axis) / static_cast<double>(config.manifold_dim - 1);
  return config.spread * std::pow(config.anisotropy, -t);
}

std::vector<Scalar> EmbeddingCenterAt(const EmbeddingScenarioConfig& config,
                                      int cluster) {
  const std::vector<Scalar> basis = EmbeddingBasis(config);
  Rng rng = KeyedRng(config.seed, kEmbedCenterSalt,
                     static_cast<uint64_t>(cluster));
  std::vector<Scalar> center(config.dim, 0.0);
  for (int j = 0; j < config.manifold_dim; ++j) {
    const Scalar u = rng.Uniform(0.0, config.mean_box);
    const Scalar* col = basis.data() + static_cast<size_t>(j) * config.dim;
    for (int d = 0; d < config.dim; ++d) center[d] += col[d] * u;
  }
  return center;
}

ScenarioBatch EmbeddingBatch(const EmbeddingScenarioConfig& config,
                             int batch_index) {
  ScenarioBatch batch;
  const int dim = config.dim;
  const int m = config.manifold_dim;
  const std::vector<Scalar> basis = EmbeddingBasis(config);
  std::vector<std::vector<Scalar>> centers(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    centers[c] = EmbeddingCenterAt(config, c);
  }
  std::vector<double> scales(m);
  for (int j = 0; j < m; ++j) scales[j] = EmbeddingAxisScale(config, j);

  Rng rng = KeyedRng(config.seed, kEmbedBatchSalt,
                     static_cast<uint64_t>(batch_index));
  batch.points.reserve(static_cast<size_t>(config.points_per_batch) * dim);
  std::vector<Scalar> point(dim);
  // Round-robin cluster assignment (the drift idiom): every manifold
  // cluster is fed each batch, so bucket skew comes from the geometry, not
  // from the workload starving clusters.
  for (Index i = 0; i < config.points_per_batch; ++i) {
    const int c = static_cast<int>(i % config.num_clusters);
    point = centers[c];
    for (int j = 0; j < m; ++j) {
      const Scalar z = rng.Gaussian() * scales[j];
      const Scalar* col = basis.data() + static_cast<size_t>(j) * dim;
      for (int d = 0; d < dim; ++d) point[d] += col[d] * z;
    }
    // Small isotropic off-manifold jitter: embeddings are near, not on,
    // the manifold.
    for (int d = 0; d < dim; ++d) {
      point[d] += rng.Gaussian() * config.ambient_noise * config.spread;
    }
    batch.points.insert(batch.points.end(), point.begin(), point.end());
  }
  batch.rows = config.points_per_batch;
  batch.active_sources = static_cast<int>(
      std::min<Index>(config.num_clusters, config.points_per_batch));
  const Index noise = static_cast<Index>(
      config.noise_fraction * static_cast<double>(config.points_per_batch));
  AppendNoise(batch, dim, config.mean_box, noise, rng);
  return batch;
}

}  // namespace alid::bench
