// Cluster-serving QPS/latency — the read side of the runtime: assignment
// queries against an immutable, LSH-accelerated ClusterSnapshot published
// through the server's RCU swap.
//
// The workload streams a bursty synthetic source through OnlineAlid, exports
// snapshots along the way, and then hammers the final snapshot with a mixed
// query stream (jittered cluster points + far noise). The sweep crosses
// query batch size {1, 64} with executors {1, 8} on one shared
// work-stealing pool and reports QPS and p50/p95/p99 per-query latency; a
// "swap" row re-runs the batched-parallel configuration while a publisher
// thread hot-swaps the intermediate snapshots underneath the readers — the
// snapshot-isolation cost under churn — and an "asof" row addresses a
// retained historical generation through the server's history ring (the
// generation-addressed time-travel path). Batched results are bit-identical
// across the executor axis (tests/serve_test.cc), so only the wall-clock
// columns move — on a 1-core host only scheduling columns do.
//
// The last line is a single-line JSON record of the sweep for the bench
// trajectory (machine-readable, stable key names).
#include "bench_util.h"
#include "registry.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/random.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "obs/trace.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"

namespace alid::bench {
namespace {

struct ServeRow {
  const char* mode;  // "steady", "swap" or "asof"
  Index batch;
  int executors;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_query_seconds = 0.0;
  double p95_query_seconds = 0.0;
  double p99_query_seconds = 0.0;
  double speedup = 0.0;  // vs the 1-executor row of the same (mode, batch)
  int64_t assigned = 0;
  int64_t unassigned = 0;
  int64_t swaps = 0;
  // The server's per-instance metrics registry as comma-joined JSON fields
  // (queries/assigned/sketch_*/publish and history gauges) — captured while
  // the server is alive; rows use a fresh server each, so the registry
  // totals ARE the row's deltas.
  std::string registry_fields;
};

// Runs the query workload against `server` (generation != 0 addresses a
// retained historical generation — the as-of path); per-call wall times
// divided by the call's batch size give the per-query latency profile.
ServeRow RunQueries(const ClusterServer& server,
                    const std::vector<Scalar>& queries, int dim, Index batch,
                    int executors, const char* mode,
                    uint64_t generation = 0) {
  ServeRow row;
  row.mode = mode;
  row.batch = batch;
  row.executors = executors;
  const Index count = static_cast<Index>(queries.size()) / dim;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(count / batch) + 1);
  const std::span<const Scalar> all(queries);

  WallTimer wall;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    WallTimer call;
    const QueryResponse response = server.Query(
        {.points = all.subspan(static_cast<size_t>(begin) * dim,
                               static_cast<size_t>(size) * dim),
         .generation = generation});
    for (const QueryOutcome& r : response.assignments) {
      row.assigned += r.cluster >= 0 ? 1 : 0;
    }
    latencies.push_back(call.Seconds() / static_cast<double>(size));
  }
  row.wall_seconds = wall.Seconds();
  row.unassigned = count - row.assigned;
  row.qps = row.wall_seconds > 0.0
                ? static_cast<double>(count) / row.wall_seconds
                : 0.0;
  row.p50_query_seconds = Percentile(latencies, 0.50);
  row.p95_query_seconds = Percentile(latencies, 0.95);
  row.p99_query_seconds = Percentile(latencies, 0.99);
  row.registry_fields = server.metrics().ToJsonFields();
  return row;
}

void PrintRow(const ServeRow& r) {
  std::printf("%-7s %-6d %-6d %-9.3f %-9.2f %-11.1f %-12.3e %-12.3e "
              "%-12.3e %-9lld %-7lld\n",
              r.mode, r.batch, r.executors, r.wall_seconds, r.speedup, r.qps,
              r.p50_query_seconds, r.p95_query_seconds, r.p99_query_seconds,
              static_cast<long long>(r.assigned),
              static_cast<long long>(r.swaps));
}

void EmitServeJson(BenchContext& ctx, const std::vector<ServeRow>& rows,
                   Index n, Index queries, int clusters, Index members,
                   double publish_p95_seconds, int64_t rows_reused,
                   int64_t clusters_reused, int64_t bytes_shared,
                   int64_t bytes_copied, int64_t history_ring_bytes,
                   double trace_base_seconds, double trace_wall_seconds,
                   double trace_overhead_ratio) {
  std::string json;
  AppendF(json,
          "{\"bench\":\"serve\",\"n\":%d,\"queries\":%d,"
          "\"clusters\":%d,\"members\":%d,"
          "\"publish_p95_seconds\":%.6f,\"rows_reused\":%lld,"
          "\"clusters_reused\":%lld,\"bytes_shared\":%lld,"
          "\"bytes_copied\":%lld,\"history_ring_bytes\":%lld,"
          "\"trace_base_seconds\":%.6f,\"trace_wall_seconds\":%.6f,"
          "\"trace_overhead_ratio\":%.4f,\"rows\":[",
          n, queries, clusters, members, publish_p95_seconds,
          static_cast<long long>(rows_reused),
          static_cast<long long>(clusters_reused),
          static_cast<long long>(bytes_shared),
          static_cast<long long>(bytes_copied),
          static_cast<long long>(history_ring_bytes), trace_base_seconds,
          trace_wall_seconds, trace_overhead_ratio);
  // The wall/latency/derived keys are emitted by hand; the counter keys
  // (queries, assigned, sketch_*, publish ledger, history and pool gauges)
  // come from each row's embedded registry export — the manual list must
  // never overlap the registry's names (--schema-check rejects duplicates).
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    AppendF(
        json,
        "%s{\"mode\":\"%s\",\"batch\":%d,\"executors\":%d,"
        "\"wall_seconds\":%.6f,\"speedup\":%.4f,\"qps\":%.2f,"
        "\"p50_query_seconds\":%.9f,\"p95_query_seconds\":%.9f,"
        "\"p99_query_seconds\":%.9f,\"unassigned\":%lld,"
        "\"swaps\":%lld,%s}",
        i == 0 ? "" : ",", r.mode, r.batch, r.executors, r.wall_seconds,
        r.speedup, r.qps, r.p50_query_seconds, r.p95_query_seconds,
        r.p99_query_seconds, static_cast<long long>(r.unassigned),
        static_cast<long long>(r.swaps), r.registry_fields.c_str());
  }
  json += "]}";
  ctx.EmitJson(json);
}

void Run(BenchContext& ctx) {
  std::printf("Cluster serving: QPS / latency x batch x executors "
              "(scale %.2f)\n", ctx.scale());
  SyntheticConfig cfg;
  cfg.n = ctx.Scaled(1600);
  cfg.dim = 16;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = 907;
  LabeledData data = MakeSynthetic(cfg);
  Rng rng(23);
  const std::vector<Index> order = rng.Permutation(data.size());

  // Stream the source and export snapshots along the way: intermediate
  // states feed the swap-under-load row, the final state the steady rows.
  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 256;
  OnlineAlid online(data.data.dim(), opts);
  const int dim = data.data.dim();
  std::vector<std::shared_ptr<const ClusterSnapshot>> snapshots;
  std::vector<double> publish_seconds;
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  int64_t bytes_shared = 0;
  int64_t bytes_copied = 0;
  const auto publish = [&] {
    WallTimer publish_timer;
    // Chained incremental export — the production ingest->publish loop:
    // each generation *shares* the arena blocks of every cluster the batch
    // left untouched (a refcount bump, no copy).
    snapshots.push_back(ClusterSnapshot::FromStream(
        online, nullptr, snapshots.empty() ? nullptr : snapshots.back()));
    publish_seconds.push_back(publish_timer.Seconds());
    rows_reused += snapshots.back()->build_info().rows_reused;
    clusters_reused += snapshots.back()->build_info().clusters_reused;
    bytes_shared += snapshots.back()->build_info().bytes_shared;
    bytes_copied += snapshots.back()->build_info().bytes_copied;
  };
  std::vector<Scalar> flat;
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto point = data.data[order[pos]];
    flat.insert(flat.end(), point.begin(), point.end());
    if (static_cast<Index>(flat.size()) == 256 * dim) {
      online.InsertBatch(flat);
      flat.clear();
      online.Refresh();
      publish();
    }
  }
  if (!flat.empty()) online.InsertBatch(flat);
  online.Refresh();
  publish();
  // Steady-state tail: localized batches (jittered members of one planted
  // burst) leave most clusters untouched between publishes — the regime
  // where the incremental export pays O(changed clusters), not O(window).
  {
    Rng jitter(99);
    const IndexList& burst = data.true_clusters.front();
    for (int round = 0; round < 6; ++round) {
      flat.clear();
      for (int q = 0; q < 64; ++q) {
        const auto row = data.data[burst[static_cast<size_t>(
            jitter.UniformInt(0, static_cast<int>(burst.size()) - 1))]];
        for (int d = 0; d < dim; ++d) {
          flat.push_back(row[d] + jitter.Gaussian() * 0.05);
        }
      }
      online.InsertBatch(flat);
      publish();
    }
  }
  const auto& final_snapshot = snapshots.back();
  std::printf("streamed n=%d -> %d clusters over %d support members, %zu "
              "snapshots exported (publish p95 %.6fs, %lld rows / %lld "
              "clusters re-used, %lld bytes shared vs %lld copied)\n",
              data.size(), final_snapshot->num_clusters(),
              final_snapshot->num_members(), snapshots.size(),
              Percentile(publish_seconds, 0.95),
              static_cast<long long>(rows_reused),
              static_cast<long long>(clusters_reused),
              static_cast<long long>(bytes_shared),
              static_cast<long long>(bytes_copied));

  // Query mix: jittered copies of random rows (assignable) + far uniform
  // noise (unassignable), in one fixed shuffled stream. Sized so each
  // row's wall time clears bench_compare's noise floor and the QPS
  // trajectory is actually gated.
  const Index num_queries = ctx.Scaled(100000);
  std::vector<Scalar> queries;
  queries.reserve(static_cast<size_t>(num_queries) * dim);
  for (Index q = 0; q < num_queries; ++q) {
    const double mix = rng.Uniform();
    if (mix < 0.6) {
      // Assignable: tight jitter around a data row.
      const auto row =
          data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * 0.05);
      }
    } else if (mix < 0.8) {
      // Near-miss band: collides with a cluster's buckets but scores far
      // below its absorb threshold — the queries the support sketch
      // rejects after a handful of kernel evaluations.
      const auto row =
          data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
      const double magnitude = 2.0 + rng.Uniform() * 6.0;
      for (int d = 0; d < dim; ++d) {
        queries.push_back(row[d] + rng.Gaussian() * magnitude);
      }
    } else {
      for (int d = 0; d < dim; ++d) {
        queries.push_back(rng.Uniform(-900.0, 900.0));
      }
    }
  }

  // Tracing-overhead row: the batched single-executor query workload timed
  // with the span recorder off and then on (best of 3 each — min is the
  // noise-robust estimator on shared runners). Measured before the sweep so
  // Enable()'s ring re-arm cannot wipe the sweep's own --trace-out spans;
  // CI pins the ratio below 1.05 via bench_compare's --require-max gate.
  double trace_base_seconds = 0.0;
  double trace_wall_seconds = 0.0;
  {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    const bool was_enabled = recorder.enabled();
    ClusterServer server(dim, {});
    server.Publish(final_snapshot);
    const auto query_wall = [&] {
      return RunQueries(server, queries, dim, 64, 1, "overhead")
          .wall_seconds;
    };
    recorder.Disable();
    trace_base_seconds = query_wall();
    for (int i = 0; i < 2; ++i) {
      trace_base_seconds = std::min(trace_base_seconds, query_wall());
    }
    recorder.Enable();
    trace_wall_seconds = query_wall();
    for (int i = 0; i < 2; ++i) {
      trace_wall_seconds = std::min(trace_wall_seconds, query_wall());
    }
    if (!was_enabled) recorder.Disable();
  }
  const double trace_overhead_ratio =
      trace_base_seconds > 0.0 ? trace_wall_seconds / trace_base_seconds
                               : 1.0;
  std::printf("tracing overhead: %.3fs off vs %.3fs on (x%.4f)\n",
              trace_base_seconds, trace_wall_seconds, trace_overhead_ratio);

  PrintHeader("steady-state serving (single published snapshot)");
  std::printf("%-7s %-6s %-6s %-9s %-9s %-11s %-12s %-12s %-12s %-9s %-7s\n",
              "mode", "batch", "execs", "wall(s)", "speedup", "qps",
              "p50(s)", "p95(s)", "p99(s)", "assigned", "swaps");
  std::vector<ServeRow> rows;
  for (Index batch : {Index{1}, Index{64}}) {
    double base_wall = 0.0;
    for (int executors : {1, 8}) {
      std::unique_ptr<ThreadPool> pool;
      if (executors > 1) pool = std::make_unique<ThreadPool>(executors);
      ClusterServer server(dim, {.pool = pool.get()});
      server.Publish(final_snapshot);
      ServeRow row =
          RunQueries(server, queries, dim, batch, executors, "steady");
      if (executors == 1) {
        base_wall = row.wall_seconds;
        row.speedup = 1.0;
      } else {
        row.speedup = row.wall_seconds > 0.0 && base_wall > 0.0
                          ? base_wall / row.wall_seconds
                          : 0.0;
      }
      PrintRow(row);
      rows.push_back(row);
    }
  }

  PrintHeader("snapshot swaps under query load (RCU publication)");
  {
    ThreadPool pool(8);
    ClusterServer server(dim, {.pool = &pool});
    server.Publish(snapshots.front());
    std::atomic<bool> done{false};
    std::atomic<int64_t> swaps{0};
    // The publisher cycles through the exported stream states as fast as it
    // can — every swap retires a whole snapshot under live readers.
    std::thread publisher([&] {
      size_t next = 0;
      while (!done.load(std::memory_order_acquire)) {
        server.Publish(snapshots[next % snapshots.size()]);
        swaps.fetch_add(1, std::memory_order_relaxed);
        next++;
        std::this_thread::yield();
      }
    });
    ServeRow row = RunQueries(server, queries, dim, 64, 8, "swap");
    done.store(true, std::memory_order_release);
    publisher.join();
    row.swaps = swaps.load();
    const ServeRow* steady = nullptr;
    for (const ServeRow& r : rows) {
      if (r.batch == 64 && r.executors == 8) steady = &r;
    }
    row.speedup = steady != nullptr && row.wall_seconds > 0.0
                      ? steady->wall_seconds / row.wall_seconds
                      : 0.0;  // vs the swap-free twin: the isolation cost
    PrintRow(row);
    rows.push_back(row);
  }

  PrintHeader("as-of queries against a retained generation (history ring)");
  int64_t history_ring_bytes = 0;
  {
    ThreadPool pool(8);
    ClusterServer server(dim, {.pool = &pool, .history_capacity = 8});
    for (const auto& snap : snapshots) server.Publish(snap);
    // The last tail publishes retired into the ring; address the
    // second-to-last generation — a real time-travel lookup on every call.
    const uint64_t retired = snapshots[snapshots.size() - 2]->generation();
    ServeRow row = RunQueries(server, queries, dim, 64, 8, "asof", retired);
    history_ring_bytes = server.stats().history_ring_bytes;
    const ServeRow* steady = nullptr;
    for (const ServeRow& r : rows) {
      if (r.batch == 64 && r.executors == 8 &&
          std::string_view(r.mode) == "steady") {
        steady = &r;
      }
    }
    row.speedup = steady != nullptr && row.wall_seconds > 0.0
                      ? steady->wall_seconds / row.wall_seconds
                      : 0.0;  // vs current-generation twin: the ring-scan cost
    PrintRow(row);
    rows.push_back(row);
    std::printf("history ring: %d generations retained, %lld extra bytes "
                "(blocks shared with the current snapshot are free)\n",
                server.stats().generations_retained,
                static_cast<long long>(history_ring_bytes));
  }

  std::printf("\nExpected shape: batched queries amortize the snapshot "
              "acquire and fan out across executors (the batch answers from "
              "ONE snapshot either way); the swap row tracks its steady "
              "twin closely because readers never block on publication — "
              "retired snapshots die with their last in-flight reader; the "
              "as-of row pays only the ring scan on top, because a retained "
              "snapshot answers exactly like it did when current.\n");
  EmitServeJson(ctx, rows, data.size(), num_queries,
                final_snapshot->num_clusters(), final_snapshot->num_members(),
                Percentile(publish_seconds, 0.95), rows_reused,
                clusters_reused, bytes_shared, bytes_copied,
                history_ring_bytes, trace_base_seconds, trace_wall_seconds,
                trace_overhead_ratio);
}

ALID_BENCHMARK("serve", "runtime,serve,speedup", "serve", Run);

}  // namespace
}  // namespace alid::bench
