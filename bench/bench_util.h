#ifndef ALID_BENCH_BENCH_UTIL_H_
#define ALID_BENCH_BENCH_UTIL_H_

// Shared harness for the per-figure/per-table bench binaries. Each binary
// prints the rows/series of one paper artifact (see DESIGN.md §4). Sizes are
// laptop-friendly by default; set ALID_BENCH_SCALE >= 1 to enlarge them
// toward the paper's grids.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "affinity/affinity_matrix.h"
#include "affinity/sparsifier.h"
#include "baselines/ap.h"
#include "baselines/iid.h"
#include "baselines/sea.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/alid.h"
#include "data/labeled_data.h"
#include "eval/metrics.h"
#include "lsh/lsh_index.h"
#include "registry.h"

namespace alid::bench {

/// Global size multiplier from ALID_BENCH_SCALE (default 1.0 when unset or
/// empty). Delegates to the registry's shared parser, so the env variable,
/// --scale and this helper agree on validity — a malformed value exits
/// loudly instead of silently running default sizes.
inline double Scale() {
  const char* s = std::getenv("ALID_BENCH_SCALE");
  if (s == nullptr || *s == '\0') return 1.0;
  return ParseBenchScaleOrDie(s, "ALID_BENCH_SCALE");
}

inline Index Scaled(double base) {
  return static_cast<Index>(base * Scale());
}

/// One measured run of one method on one configuration.
struct RunStats {
  std::string method;
  double avg_f = 0.0;
  double seconds = 0.0;
  int64_t peak_bytes = 0;       // algorithmic memory (see RunAlid for ALID)
  int64_t entries = 0;          // affinity entries computed (when known)
  int num_dense_clusters = 0;   // clusters above the density threshold
  int64_t cache_hits = 0;       // kernel evals the column cache avoided
  int64_t cache_evictions = 0;  // LRU drops while over budget
};

/// The standard LSH parameters of this harness; `r_scale` multiplies the
/// generator-suggested segment length (the Fig. 6 sweep axis).
inline LshParams MakeLshParams(const LabeledData& data, double r_scale = 1.0,
                               int tables = 8, int projections = 6) {
  LshParams lp;
  lp.num_tables = tables;
  lp.num_projections = projections;
  lp.segment_length = data.suggested_lsh_r * r_scale;
  return lp;
}

/// Runs ALID end to end (LSH build included, as the paper's timings include
/// all indexing cost).
inline RunStats RunAlid(const LabeledData& data, double r_scale = 1.0,
                        AlidOptions options = {}) {
  MemoryTracker::Global().Reset();
  WallTimer timer;
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  LazyAffinityOracle oracle(data.data, affinity);
  LshIndex lsh(data.data, MakeLshParams(data, r_scale));
  AlidDetector detector(oracle, lsh, options);
  DetectionResult result = detector.DetectAll();
  RunStats stats;
  stats.method = "ALID";
  stats.seconds = timer.Seconds();
  // Algorithmic memory: the live local matrices (Charge/Discharge), i.e. the
  // paper's O(a*(a*+delta)) cost the figures verify. The default-on column
  // cache is a separately budgeted accelerator — MemoryTracker still
  // accounts it, but folding its bounded footprint into this curve would
  // drown the slope being measured.
  stats.peak_bytes = oracle.peak_bytes();
  stats.entries = oracle.entries_computed();
  stats.cache_hits = oracle.cache_hits();
  stats.cache_evictions = oracle.cache_evictions();
  DetectionResult kept = result.Filtered(options.density_threshold);
  stats.num_dense_clusters = static_cast<int>(kept.clusters.size());
  stats.avg_f = AverageF1(data.true_clusters, kept);
  return stats;
}

/// Runs IID on the LSH-sparsified matrix (r_scale < 0 means the fully dense
/// materialized matrix, the paper's default outside Fig. 6).
inline RunStats RunIid(const LabeledData& data, double r_scale = -1.0) {
  MemoryTracker::Global().Reset();
  WallTimer timer;
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  RunStats stats;
  stats.method = "IID";
  DetectionResult result;
  if (r_scale < 0.0) {
    AffinityMatrix matrix(data.data, affinity);
    stats.entries = matrix.entries_computed();
    IidDetector iid{AffinityView(&matrix.matrix())};
    result = iid.DetectAll();
    stats.seconds = timer.Seconds();
    stats.peak_bytes = MemoryTracker::Global().peak_bytes();
  } else {
    LshIndex lsh(data.data, MakeLshParams(data, r_scale));
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(data.data, affinity, lsh);
    ScopedMemoryCharge charge(static_cast<int64_t>(sparse.MemoryBytes()));
    stats.entries = sparse.nnz() / 2;
    IidDetector iid{AffinityView(&sparse)};
    result = iid.DetectAll();
    stats.seconds = timer.Seconds();
    stats.peak_bytes = MemoryTracker::Global().peak_bytes();
  }
  DetectionResult kept = result.Filtered(0.75);
  stats.num_dense_clusters = static_cast<int>(kept.clusters.size());
  stats.avg_f = AverageF1(data.true_clusters, kept);
  return stats;
}

/// Runs SEA on the LSH-sparsified matrix (its native input; r_scale < 0 uses
/// the dense matrix expressed as CSR). `pool` runs the replicator sweeps on
/// a shared executor pool (output bit-identical to the serial run).
inline RunStats RunSea(const LabeledData& data, double r_scale = 1.0,
                       ThreadPool* pool = nullptr) {
  MemoryTracker::Global().Reset();
  WallTimer timer;
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  RunStats stats;
  stats.method = "SEA";
  SparseMatrix sparse;
  if (r_scale < 0.0) {
    sparse = Sparsifier::Dense(data.data, affinity);
  } else {
    LshIndex lsh(data.data, MakeLshParams(data, r_scale));
    sparse = Sparsifier::FromLshCollisions(data.data, affinity, lsh);
  }
  ScopedMemoryCharge charge(static_cast<int64_t>(sparse.MemoryBytes()));
  stats.entries = sparse.nnz() / 2;
  SeaDetector sea{AffinityView(&sparse), {.pool = pool}};
  DetectionResult result = sea.DetectAll();
  stats.seconds = timer.Seconds();
  stats.peak_bytes = MemoryTracker::Global().peak_bytes();
  DetectionResult kept = result.Filtered(0.6);
  stats.num_dense_clusters = static_cast<int>(kept.clusters.size());
  stats.avg_f = AverageF1(data.true_clusters, kept);
  return stats;
}

/// Runs AP; r_scale < 0 uses the dense matrix, otherwise the LSH-sparsified
/// one (with a preference below the surviving intra-cluster similarities).
/// `pool` runs the message sweeps on a shared executor pool (output
/// bit-identical to the serial run).
inline RunStats RunAp(const LabeledData& data, double r_scale = -1.0,
                      int max_iterations = 200, ThreadPool* pool = nullptr) {
  MemoryTracker::Global().Reset();
  WallTimer timer;
  AffinityFunction affinity({.k = data.suggested_k, .p = 2.0});
  RunStats stats;
  stats.method = "AP";
  ApOptions opts;
  opts.max_iterations = max_iterations;
  opts.pool = pool;
  DetectionResult result;
  if (r_scale < 0.0) {
    AffinityMatrix matrix(data.data, affinity);
    stats.entries = matrix.entries_computed();
    ApDetector ap{AffinityView(&matrix.matrix()), opts};
    result = ap.Detect();
  } else {
    LshIndex lsh(data.data, MakeLshParams(data, r_scale));
    SparseMatrix sparse =
        Sparsifier::FromLshCollisions(data.data, affinity, lsh);
    ScopedMemoryCharge charge(static_cast<int64_t>(sparse.MemoryBytes()));
    stats.entries = sparse.nnz() / 2;
    opts.preference = 0.01;
    ApDetector ap{AffinityView(&sparse), opts};
    result = ap.Detect();
  }
  stats.seconds = timer.Seconds();
  stats.peak_bytes = MemoryTracker::Global().peak_bytes();
  // AP partitions everything; score only its coherent clusters.
  DetectionResult kept = result.Filtered(0.5);
  stats.num_dense_clusters = static_cast<int>(kept.clusters.size());
  stats.avg_f = AverageF1(data.true_clusters, result);
  return stats;
}

/// Linear-interpolated q-quantile of `values` (sorts a copy). Shared by the
/// stream and serve latency columns so the percentile convention behind the
/// trajectory record's p50/p95/p99 keys can never diverge between benches.
inline double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintStatsRow(const char* config, const RunStats& s) {
  std::printf("%-26s %-6s  AVG-F %.3f  time %8.3fs  mem %9.2f MB"
              "  entries %10lld  clusters %d\n",
              config, s.method.c_str(), s.avg_f, s.seconds,
              static_cast<double>(s.peak_bytes) / (1024.0 * 1024.0),
              static_cast<long long>(s.entries), s.num_dense_clusters);
}

/// Least-squares slope of log(y) against log(x) — the empirical order of
/// growth read off the paper's log-log plots.
inline double LogLogSlope(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(std::max(y[i], 1e-12));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

}  // namespace alid::bench

#endif  // ALID_BENCH_BENCH_UTIL_H_
