// Adversarial stream scenarios (bench/scenarios.h) on the windowed
// OnlineAlid runtime — the workloads the steady synthetic streams never
// produce:
//
//   scenario_drift       walking centers; the interesting columns are
//                        redetections and clusters_born/dissolved (the
//                        stream must keep dissolving the stale cluster and
//                        re-detecting the moved one).
//   scenario_burst       birth/death storms; the interesting columns are
//                        clusters_born/dissolved and the publish columns —
//                        rows_reused collapses in a storm because almost
//                        every cluster changed between publishes.
//   scenario_heavy_tail  Zipf cluster sizes; the interesting columns are
//                        sketch_prunes vs sketch_exact (the head cluster's
//                        support saturates absorb scoring) and the cache
//                        columns (budgeting across many tiny columns).
//
// Each scenario sweeps executors {1, 8} (1 = the serial no-pool path, the
// same baseline convention as the fig7/stream sweeps), streams the identical
// batch sequence through OnlineAlid with a sliding window and a chained
// incremental publish every few batches, and emits one JSON record with a
// row per executor width. Rows carry the wall/p95 keys bench_compare.py
// gates and a "speedup" column; they are not marked gate_speedup — on a
// 1-core CI host the executor axis only moves scheduling counters.
#include "bench_util.h"
#include "registry.h"
#include "scenarios.h"

#include <cmath>
#include <memory>

#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "serve/cluster_snapshot.h"

namespace alid::bench {
namespace {

struct ScenarioRun {
  int executors = 0;
  double wall_seconds = 0.0;
  double speedup = 0.0;
  double items_per_second = 0.0;
  double p50_batch_seconds = 0.0;
  double p95_batch_seconds = 0.0;
  double publish_p95_seconds = 0.0;
  int64_t arrivals = 0;
  int64_t absorbed = 0;
  int64_t pooled = 0;
  int64_t evicted = 0;
  int64_t refreshes = 0;
  int64_t redetections = 0;
  int64_t clusters_born = 0;
  int64_t clusters_dissolved = 0;
  int64_t sketch_prunes = 0;
  int64_t sketch_exact = 0;
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  int64_t cache_hits = 0;
  double cache_hit_rate = 0.0;
  int64_t cache_evictions = 0;
  int64_t cache_budget_bytes = 0;
  int64_t cache_invalidated = 0;
  int64_t steals = 0;
  int clusters = 0;
};

struct ScenarioSpec {
  int dim = 16;
  double spread = 1.0;
  int num_batches = 0;
  Index window = 0;        ///< Sliding window (0 = unbounded).
  int publish_every = 4;   ///< Batches between incremental publishes.
  std::function<ScenarioBatch(int)> batch;
};

// Streams the scenario's batch sequence through one OnlineAlid instance on
// `executors` workers. The batch sequence is identical across the executor
// axis (the generators are pure in batch_index), so only wall time and
// scheduling counters may move.
ScenarioRun StreamScenario(const ScenarioSpec& spec, int executors) {
  ScenarioRun run;
  run.executors = executors;
  std::unique_ptr<ThreadPool> pool;
  if (executors > 1) pool = std::make_unique<ThreadPool>(executors);

  // Same suggestion convention as the data generators: intra-cluster
  // distance ~ sqrt(2 d) * spread -> affinity ~0.9, LSH segment 3x that.
  const double intra =
      std::sqrt(2.0 * static_cast<double>(spec.dim)) * spec.spread;
  OnlineAlidOptions opts;
  opts.affinity = {.k = -std::log(0.9) / intra, .p = 2.0};
  opts.lsh.segment_length = 3.0 * intra;
  opts.refresh_interval = 256;
  opts.window = spec.window;
  opts.pool = pool.get();
  OnlineAlid online(spec.dim, opts);

  std::vector<double> publish_seconds;
  std::shared_ptr<const ClusterSnapshot> snapshot;
  WallTimer timer;
  for (int t = 0; t < spec.num_batches; ++t) {
    const ScenarioBatch batch = spec.batch(t);
    if (batch.rows > 0) online.InsertBatch(batch.points);
    if ((t + 1) % spec.publish_every == 0 || t + 1 == spec.num_batches) {
      WallTimer publish_timer;
      snapshot = ClusterSnapshot::FromStream(online, pool.get(), snapshot);
      publish_seconds.push_back(publish_timer.Seconds());
      run.rows_reused += snapshot->build_info().rows_reused;
      run.clusters_reused += snapshot->build_info().clusters_reused;
    }
  }
  online.Refresh();
  run.wall_seconds = timer.Seconds();

  const StreamStats& stats = online.stats();
  run.arrivals = stats.arrivals;
  run.items_per_second =
      run.wall_seconds > 0.0
          ? static_cast<double>(stats.arrivals) / run.wall_seconds
          : 0.0;
  run.p50_batch_seconds = Percentile(stats.batch_seconds, 0.50);
  run.p95_batch_seconds = Percentile(stats.batch_seconds, 0.95);
  run.publish_p95_seconds = Percentile(publish_seconds, 0.95);
  run.absorbed = stats.absorbed;
  run.pooled = stats.pooled;
  run.evicted = stats.evicted;
  run.refreshes = stats.refreshes;
  run.redetections = stats.redetections;
  run.clusters_born = stats.clusters_born;
  run.clusters_dissolved = stats.clusters_dissolved;
  run.sketch_prunes = stats.sketch_prunes;
  run.sketch_exact = stats.sketch_exact;
  run.cache_hits = online.oracle().cache_hits();
  const int64_t touched = run.cache_hits + online.oracle().entries_computed();
  run.cache_hit_rate =
      touched > 0 ? static_cast<double>(run.cache_hits) / touched : 0.0;
  run.cache_evictions = online.oracle().cache_evictions();
  run.cache_budget_bytes = stats.cache_budget_bytes;
  run.cache_invalidated = stats.cache_entries_invalidated;
  run.steals = pool != nullptr ? pool->steal_count() : 0;
  run.clusters = static_cast<int>(online.clusters().size());
  return run;
}

void AppendRunRow(std::string& json, const ScenarioRun& r, bool first) {
  AppendF(json,
          "%s{\"executors\":%d,\"wall_seconds\":%.6f,\"speedup\":%.4f,"
          "\"items_per_second\":%.2f,\"p50_batch_seconds\":%.6f,"
          "\"p95_batch_seconds\":%.6f,\"ingest_p95_seconds\":%.6f,"
          "\"publish_p95_seconds\":%.6f,\"arrivals\":%lld,"
          "\"absorbed\":%lld,\"pooled\":%lld,\"evicted\":%lld,"
          "\"refreshes\":%lld,\"redetections\":%lld,"
          "\"clusters_born\":%lld,\"clusters_dissolved\":%lld,"
          "\"sketch_prunes\":%lld,\"sketch_exact\":%lld,"
          "\"rows_reused\":%lld,\"clusters_reused\":%lld,"
          "\"cache_hits\":%lld,\"cache_hit_rate\":%.4f,"
          "\"cache_evictions\":%lld,\"cache_budget_bytes\":%lld,"
          "\"cache_invalidated\":%lld,\"steals\":%lld,\"clusters\":%d}",
          first ? "" : ",", r.executors, r.wall_seconds, r.speedup,
          r.items_per_second, r.p50_batch_seconds, r.p95_batch_seconds,
          r.p95_batch_seconds, r.publish_p95_seconds,
          static_cast<long long>(r.arrivals),
          static_cast<long long>(r.absorbed),
          static_cast<long long>(r.pooled),
          static_cast<long long>(r.evicted),
          static_cast<long long>(r.refreshes),
          static_cast<long long>(r.redetections),
          static_cast<long long>(r.clusters_born),
          static_cast<long long>(r.clusters_dissolved),
          static_cast<long long>(r.sketch_prunes),
          static_cast<long long>(r.sketch_exact),
          static_cast<long long>(r.rows_reused),
          static_cast<long long>(r.clusters_reused),
          static_cast<long long>(r.cache_hits), r.cache_hit_rate,
          static_cast<long long>(r.cache_evictions),
          static_cast<long long>(r.cache_budget_bytes),
          static_cast<long long>(r.cache_invalidated),
          static_cast<long long>(r.steals), r.clusters);
}

void PrintRun(const ScenarioRun& r) {
  std::printf("  execs %-2d  wall %.3fs (x%.2f)  items/s %8.1f  "
              "born %-4lld dissolved %-4lld redetect %-4lld  prunes %-6lld "
              "rows_reused %-6lld  clusters %d\n",
              r.executors, r.wall_seconds, r.speedup, r.items_per_second,
              static_cast<long long>(r.clusters_born),
              static_cast<long long>(r.clusters_dissolved),
              static_cast<long long>(r.redetections),
              static_cast<long long>(r.sketch_prunes),
              static_cast<long long>(r.rows_reused), r.clusters);
}

std::vector<ScenarioRun> SweepExecutors(const ScenarioSpec& spec) {
  std::vector<ScenarioRun> runs;
  for (int executors : {1, 8}) {
    ScenarioRun run = StreamScenario(spec, executors);
    if (runs.empty()) {
      run.speedup = 1.0;
    } else {
      run.speedup = run.wall_seconds > 0.0 && runs.front().wall_seconds > 0.0
                        ? runs.front().wall_seconds / run.wall_seconds
                        : 0.0;
    }
    PrintRun(run);
    runs.push_back(run);
  }
  return runs;
}

void RunDrift(BenchContext& ctx) {
  DriftScenarioConfig cfg;
  cfg.points_per_batch = ctx.Scaled(96);
  ScenarioSpec spec;
  spec.dim = cfg.dim;
  spec.spread = cfg.spread;
  spec.num_batches = 40;
  // Window ~6 batches: the stale end of a walking cluster keeps expiring,
  // which is what forces dissolve + re-detect instead of one cluster
  // smearing along the whole walk.
  spec.window = static_cast<Index>(6 * cfg.points_per_batch * 1.15);
  spec.batch = [&cfg](int t) { return DriftBatch(cfg, t); };
  std::printf("Concept drift: %d clusters walking %.1f/batch over %d "
              "batches (scale %.2f)\n",
              cfg.num_clusters, cfg.drift_per_batch, spec.num_batches,
              ctx.scale());
  const std::vector<ScenarioRun> runs = SweepExecutors(spec);
  std::printf("Expected shape: clusters_born and clusters_dissolved both "
              "well above the planted cluster count — each walking cluster "
              "is repeatedly re-detected at its new position as the window "
              "expires its trail.\n");
  std::string json;
  AppendF(json,
          "{\"bench\":\"scenario_drift\",\"num_clusters\":%d,"
          "\"drift_per_batch\":%.2f,\"num_batches\":%d,\"window\":%d,"
          "\"rows\":[",
          cfg.num_clusters, cfg.drift_per_batch, spec.num_batches,
          spec.window);
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunRow(json, runs[i], i == 0);
  }
  json += "]}";
  ctx.EmitJson(json);
}

void RunBurst(BenchContext& ctx) {
  BurstScenarioConfig cfg;
  cfg.points_per_slot = ctx.Scaled(24);
  ScenarioSpec spec;
  spec.dim = cfg.dim;
  spec.spread = cfg.spread;
  spec.num_batches = 48;
  // Window ~1.5 periods: a dead generation's points expire before its slot
  // is reborn, so every storm is real births, not absorption into leftovers.
  spec.window = static_cast<Index>(cfg.num_slots * cfg.points_per_slot *
                                   cfg.lifetime * 3 / 2);
  spec.publish_every = 2;  // publish inside and outside storms
  spec.batch = [&cfg](int t) { return BurstBatch(cfg, t); };
  std::printf("Burst arrivals: %d slots x %d storms, lifetime %d of "
              "period %d, %d batches (scale %.2f)\n",
              cfg.num_slots, cfg.num_storms, cfg.lifetime, cfg.period,
              spec.num_batches, ctx.scale());
  const std::vector<ScenarioRun> runs = SweepExecutors(spec);
  std::printf("Expected shape: births and dissolutions arrive in storms; "
              "rows_reused collapses at storm publishes (nearly every "
              "cluster changed) and recovers between them.\n");
  std::string json;
  AppendF(json,
          "{\"bench\":\"scenario_burst\",\"num_slots\":%d,\"period\":%d,"
          "\"lifetime\":%d,\"num_storms\":%d,\"num_batches\":%d,"
          "\"window\":%d,\"rows\":[",
          cfg.num_slots, cfg.period, cfg.lifetime, cfg.num_storms,
          spec.num_batches, spec.window);
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunRow(json, runs[i], i == 0);
  }
  json += "]}";
  ctx.EmitJson(json);
}

void RunHeavyTail(BenchContext& ctx) {
  HeavyTailScenarioConfig cfg;
  cfg.points_per_batch = ctx.Scaled(128);
  ScenarioSpec spec;
  spec.dim = cfg.dim;
  spec.spread = cfg.spread;
  spec.num_batches = 40;
  spec.window = static_cast<Index>(16 * cfg.points_per_batch);
  spec.batch = [&cfg](int t) { return HeavyTailBatch(cfg, t); };
  std::printf("Heavy-tailed cluster sizes: Zipf(%.2f) over %d clusters "
              "(head probability %.3f), %d batches (scale %.2f)\n",
              cfg.zipf_exponent, cfg.num_clusters,
              HeavyTailClusterProbability(cfg, 0), spec.num_batches,
              ctx.scale());
  const std::vector<ScenarioRun> runs = SweepExecutors(spec);
  std::printf("Expected shape: the head cluster's support dominates absorb "
              "scoring, so sketch_prunes dwarfs sketch_exact; the cache "
              "columns show the budget spread across many cold tail "
              "columns.\n");
  std::string json;
  AppendF(json,
          "{\"bench\":\"scenario_heavy_tail\",\"num_clusters\":%d,"
          "\"zipf_exponent\":%.2f,\"head_probability\":%.4f,"
          "\"num_batches\":%d,\"window\":%d,\"rows\":[",
          cfg.num_clusters, cfg.zipf_exponent,
          HeavyTailClusterProbability(cfg, 0), spec.num_batches, spec.window);
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunRow(json, runs[i], i == 0);
  }
  json += "]}";
  ctx.EmitJson(json);
}

void RunEmbedding(BenchContext& ctx) {
  EmbeddingScenarioConfig cfg;
  cfg.points_per_batch = ctx.Scaled(96);
  ScenarioSpec spec;
  spec.dim = cfg.dim;
  // Effective scatter is anisotropic; tune the affinity/LSH suggestion to
  // the widest manifold axis so clusters neither merge nor shatter.
  spec.spread = cfg.spread;
  spec.num_batches = 32;
  spec.window = static_cast<Index>(12 * cfg.points_per_batch);
  spec.batch = [&cfg](int t) { return EmbeddingBatch(cfg, t); };
  std::printf("Embedding streams: %d clusters on a %d-dim manifold in "
              "%d ambient dims, anisotropy %.1fx, %d batches (scale %.2f)\n",
              cfg.num_clusters, cfg.manifold_dim, cfg.dim, cfg.anisotropy,
              spec.num_batches, ctx.scale());
  const std::vector<ScenarioRun> runs = SweepExecutors(spec);
  std::printf("Expected shape: LSH bucket occupancy skews along the wide "
              "manifold axes, so sketch and cache columns behave unlike the "
              "isotropic synthetic regimes at the same arrival rate.\n");
  std::string json;
  AppendF(json,
          "{\"bench\":\"scenario_embedding\",\"dim\":%d,"
          "\"manifold_dim\":%d,\"num_clusters\":%d,\"anisotropy\":%.2f,"
          "\"ambient_noise\":%.3f,\"num_batches\":%d,\"window\":%d,"
          "\"rows\":[",
          cfg.dim, cfg.manifold_dim, cfg.num_clusters, cfg.anisotropy,
          cfg.ambient_noise, spec.num_batches, spec.window);
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendRunRow(json, runs[i], i == 0);
  }
  json += "]}";
  ctx.EmitJson(json);
}

ALID_BENCHMARK("scenario_drift", "scenario,stream,speedup", "scenario_drift",
               RunDrift);
ALID_BENCHMARK("scenario_burst", "scenario,stream,speedup", "scenario_burst",
               RunBurst);
ALID_BENCHMARK("scenario_heavy_tail", "scenario,stream,speedup",
               "scenario_heavy_tail", RunHeavyTail);
ALID_BENCHMARK("scenario_embedding", "scenario,stream,speedup",
               "scenario_embedding", RunEmbedding);

}  // namespace
}  // namespace alid::bench
