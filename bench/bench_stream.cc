// Streaming ingest — the windowed, batch-parallel OnlineAlid on the shared
// runtime (the paper's Section-6 future-work direction grown into a served
// workload).
//
// Sweeps arrival rate (batch size) × sliding-window size × executors
// {1, 2, 4, 8}: each configuration streams the same shuffled workload
// through OnlineAlid on a work-stealing pool of that width (the 1-executor
// row runs the serial no-pool path — the same baseline convention as the
// fig7 parallel sweep) and reports ingest throughput, p50/p95 per-batch
// latency, and the stream counters (absorbed / pooled / evicted /
// refreshes / redetections). The streamed state is bit-identical across
// the executor axis (tests/stream_test.cc), so only the wall-clock columns
// move — on a 1-core host only the pool's scheduling columns do.
//
// The last line is a single-line JSON record of the sweep for the bench
// trajectory (machine-readable, stable key names).
#include "bench_util.h"

#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"

namespace alid::bench {
namespace {

struct StreamRow {
  Index batch;
  Index window;
  int executors;
  double wall_seconds = 0.0;
  double items_per_second = 0.0;
  double p50_batch_seconds = 0.0;
  double p95_batch_seconds = 0.0;
  double speedup = 0.0;  // vs the 1-executor row of the same (batch, window)
  int64_t absorbed = 0;
  int64_t pooled = 0;
  int64_t evicted = 0;
  int64_t refreshes = 0;
  int64_t redetections = 0;
  int64_t cache_hits = 0;
  int64_t cache_invalidated = 0;
  int64_t steals = 0;
  int clusters = 0;
};

StreamRow RunStream(const LabeledData& data,
                    const std::vector<Index>& order, Index batch,
                    Index window, int executors) {
  StreamRow row;
  row.batch = batch;
  row.window = window;
  row.executors = executors;

  std::unique_ptr<ThreadPool> pool;
  if (executors > 1) pool = std::make_unique<ThreadPool>(executors);

  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 256;
  opts.window = window;
  opts.pool = pool.get();
  OnlineAlid online(data.data.dim(), opts);

  const int dim = data.data.dim();
  std::vector<Scalar> flat;
  flat.reserve(static_cast<size_t>(batch) * dim);
  WallTimer timer;
  for (Index pos = 0; pos < data.size(); ++pos) {
    const auto point = data.data[order[pos]];
    flat.insert(flat.end(), point.begin(), point.end());
    if (static_cast<Index>(flat.size()) == batch * dim) {
      online.InsertBatch(flat);
      flat.clear();
    }
  }
  if (!flat.empty()) online.InsertBatch(flat);
  online.Refresh();
  row.wall_seconds = timer.Seconds();

  const StreamStats& stats = online.stats();
  row.items_per_second = row.wall_seconds > 0.0
                             ? static_cast<double>(stats.arrivals) /
                                   row.wall_seconds
                             : 0.0;
  row.p50_batch_seconds = Percentile(stats.batch_seconds, 0.50);
  row.p95_batch_seconds = Percentile(stats.batch_seconds, 0.95);
  row.absorbed = stats.absorbed;
  row.pooled = stats.pooled;
  row.evicted = stats.evicted;
  row.refreshes = stats.refreshes;
  row.redetections = stats.redetections;
  row.cache_hits = online.oracle().cache_hits();
  row.cache_invalidated = stats.cache_entries_invalidated;
  row.steals = pool != nullptr ? pool->steal_count() : 0;
  row.clusters = static_cast<int>(online.clusters().size());
  return row;
}

void PrintRow(const StreamRow& r) {
  std::printf("%-6d %-7d %-6d %-9.3f %-9.2f %-8.1f %-10.4f %-10.4f "
              "%-8lld %-8lld %-9lld %-9lld\n",
              r.batch, r.window, r.executors, r.wall_seconds, r.speedup,
              r.items_per_second, r.p50_batch_seconds, r.p95_batch_seconds,
              static_cast<long long>(r.absorbed),
              static_cast<long long>(r.evicted),
              static_cast<long long>(r.redetections),
              static_cast<long long>(r.steals));
}

void PrintJson(const std::vector<StreamRow>& rows, Index n) {
  std::printf("\nJSON {\"bench\":\"stream\",\"n\":%d,\"rows\":[", n);
  for (size_t i = 0; i < rows.size(); ++i) {
    const StreamRow& r = rows[i];
    std::printf(
        "%s{\"batch\":%d,\"window\":%d,\"executors\":%d,"
        "\"wall_seconds\":%.6f,\"speedup\":%.4f,\"items_per_second\":%.2f,"
        "\"p50_batch_seconds\":%.6f,\"p95_batch_seconds\":%.6f,"
        "\"absorbed\":%lld,\"pooled\":%lld,\"evicted\":%lld,"
        "\"refreshes\":%lld,\"redetections\":%lld,\"cache_hits\":%lld,"
        "\"cache_invalidated\":%lld,\"steals\":%lld,\"clusters\":%d}",
        i == 0 ? "" : ",", r.batch, r.window, r.executors, r.wall_seconds,
        r.speedup, r.items_per_second, r.p50_batch_seconds,
        r.p95_batch_seconds, static_cast<long long>(r.absorbed),
        static_cast<long long>(r.pooled), static_cast<long long>(r.evicted),
        static_cast<long long>(r.refreshes),
        static_cast<long long>(r.redetections),
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_invalidated),
        static_cast<long long>(r.steals), r.clusters);
  }
  std::printf("]}\n");
}

void Main() {
  std::printf("Streaming ingest: batch x window x executors sweep "
              "(scale %.2f)\n", Scale());
  SyntheticConfig cfg;
  cfg.n = Scaled(1600);
  cfg.dim = 16;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = 905;
  LabeledData data = MakeSynthetic(cfg);
  Rng rng(17);
  const std::vector<Index> order = rng.Permutation(data.size());
  std::printf("n=%d arrivals, %zu planted bursts\n", data.size(),
              data.true_clusters.size());

  const std::vector<Index> batches{32, 256};
  const std::vector<Index> windows{0, Scaled(800)};
  std::vector<StreamRow> rows;
  for (Index window : windows) {
    PrintHeader(window == 0 ? "unbounded stream (window = 0)"
                            : "sliding window");
    std::printf("%-6s %-7s %-6s %-9s %-9s %-8s %-10s %-10s %-8s %-8s "
                "%-9s %-9s\n",
                "batch", "window", "execs", "wall(s)", "speedup", "items/s",
                "p50(s)", "p95(s)", "absorb", "evict", "redetect", "steals");
    for (Index batch : batches) {
      double base_wall = 0.0;
      for (int executors : {1, 2, 4, 8}) {
        StreamRow row = RunStream(data, order, batch, window, executors);
        if (executors == 1) {
          base_wall = row.wall_seconds;
          row.speedup = 1.0;
        } else {
          row.speedup = row.wall_seconds > 0.0 && base_wall > 0.0
                            ? base_wall / row.wall_seconds
                            : 0.0;
        }
        PrintRow(row);
        rows.push_back(row);
      }
    }
  }

  std::printf("\nExpected shape: the streamed state is bit-identical down "
              "the executor column (only wall time moves); larger batches "
              "amortize the parallel hash/score phases, and the window "
              "bounds evictions — and with them the index and cache "
              "footprint — independent of stream length.\n");
  PrintJson(rows, data.size());
}

}  // namespace
}  // namespace alid::bench

int main() {
  alid::bench::Main();
  return 0;
}
