// Streaming ingest — the windowed, batch-parallel OnlineAlid on the shared
// runtime (the paper's Section-6 future-work direction grown into a served
// workload).
//
// Sweeps arrival rate (batch size) × sliding-window size × executors
// {1, 2, 4, 8}: each configuration streams the same shuffled workload
// through OnlineAlid on a work-stealing pool of that width (the 1-executor
// row runs the serial no-pool path — the same baseline convention as the
// fig7 parallel sweep) and reports ingest throughput, p50/p95 per-batch
// latency, and the stream counters (absorbed / pooled / evicted /
// refreshes / redetections). The streamed state is bit-identical across
// the executor axis (tests/stream_test.cc), so only the wall-clock columns
// move — on a 1-core host only the pool's scheduling columns do.
//
// The last line is a single-line JSON record of the sweep for the bench
// trajectory (machine-readable, stable key names).
#include "bench_util.h"
#include "registry.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/online_alid.h"
#include "data/synthetic.h"
#include "obs/trace.h"
#include "serve/cluster_snapshot.h"

namespace alid::bench {
namespace {

struct StreamRow {
  Index batch;
  Index window;
  int executors;
  double wall_seconds = 0.0;
  double items_per_second = 0.0;
  double p50_batch_seconds = 0.0;
  double p95_batch_seconds = 0.0;  // == ingest_p95_seconds (both emitted)
  double speedup = 0.0;  // vs the 1-executor row of the same (batch, window)
  // Stdout-table and derived columns only — the full counter set reaches
  // the JSON through registry_fields below.
  int64_t absorbed = 0;
  int64_t evicted = 0;
  int64_t redetections = 0;
  double cache_hit_rate = 0.0;
  int64_t steals = 0;
  int clusters = 0;
  // Publish phase (measured outside the ingest wall): steady-state
  // localized batches followed by one incremental snapshot export each.
  double publish_p95_seconds = 0.0;
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  // The stream's per-instance metrics registry as comma-joined JSON fields
  // (absorbed/pooled/evicted/..., cache and pool gauges) — captured while
  // the stream is alive, embedded verbatim in the row record so every
  // counter key the trajectory carries comes from the registry exporter.
  std::string registry_fields;
};

// Shuffled dataset rows followed by a band of near-miss probes (jittered
// copies at magnitudes spanning the collide-but-fail region): the arrivals
// the support sketch rejects after a handful of kernel evaluations instead
// of a full-support scan.
std::vector<Scalar> ArrivalStream(const LabeledData& data,
                                  const std::vector<Index>& order) {
  const int dim = data.data.dim();
  std::vector<Scalar> flat;
  flat.reserve(static_cast<size_t>(data.size()) * dim * 6 / 5);
  for (Index i : order) {
    const auto row = data.data[i];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  Rng rng(31);
  const Index probes = data.size() / 5;
  for (Index q = 0; q < probes; ++q) {
    const auto row =
        data.data[static_cast<Index>(rng.UniformInt(0, data.size() - 1))];
    const double magnitude = 2.0 + 6.0 * static_cast<double>(q % 16) / 15.0;
    for (int d = 0; d < dim; ++d) {
      flat.push_back(row[d] + rng.Gaussian() * magnitude);
    }
  }
  return flat;
}

StreamRow RunStream(const LabeledData& data,
                    const std::vector<Scalar>& arrivals, Index batch,
                    Index window, int executors) {
  StreamRow row;
  row.batch = batch;
  row.window = window;
  row.executors = executors;

  std::unique_ptr<ThreadPool> pool;
  if (executors > 1) pool = std::make_unique<ThreadPool>(executors);

  OnlineAlidOptions opts;
  opts.affinity = {.k = data.suggested_k, .p = 2.0};
  opts.lsh.segment_length = data.suggested_lsh_r;
  opts.refresh_interval = 256;
  opts.window = window;
  opts.pool = pool.get();
  OnlineAlid online(data.data.dim(), opts);

  const int dim = data.data.dim();
  const Index count = static_cast<Index>(arrivals.size()) / dim;
  std::vector<Scalar> flat;
  WallTimer timer;
  for (Index begin = 0; begin < count; begin += batch) {
    const Index size = std::min<Index>(batch, count - begin);
    online.InsertBatch(std::span<const Scalar>(
        arrivals.data() + static_cast<size_t>(begin) * dim,
        static_cast<size_t>(size) * dim));
  }
  online.Refresh();
  row.wall_seconds = timer.Seconds();

  const StreamStats stats = online.stats();
  row.items_per_second = row.wall_seconds > 0.0
                             ? static_cast<double>(stats.arrivals) /
                                   row.wall_seconds
                             : 0.0;
  row.p50_batch_seconds = Percentile(stats.batch_seconds, 0.50);
  row.p95_batch_seconds = Percentile(stats.batch_seconds, 0.95);
  row.absorbed = stats.absorbed;
  row.evicted = stats.evicted;
  row.redetections = stats.redetections;
  const int64_t cache_hits = online.oracle().cache_hits();
  const int64_t touched = cache_hits + online.oracle().entries_computed();
  row.cache_hit_rate =
      touched > 0 ? static_cast<double>(cache_hits) / touched : 0.0;
  row.steals = pool != nullptr ? pool->steal_count() : 0;
  row.clusters = static_cast<int>(online.clusters().size());

  // Publish phase, measured outside the ingest wall: a steady-state tail of
  // localized batches (jittered members of ONE planted burst plus the
  // publish itself) so most clusters stand still between generations — the
  // regime where the incremental export turns publish cost into O(changed
  // clusters). Each batch is followed by one chained FromStream export.
  const IndexList& burst = data.true_clusters.front();
  Rng jitter(99);
  std::vector<double> publish_seconds;
  std::shared_ptr<const ClusterSnapshot> snapshot;
  const int dim_publish = data.data.dim();
  for (int round = 0; round < 8; ++round) {
    flat.clear();
    for (int q = 0; q < 64; ++q) {
      const auto row_data = data.data[burst[static_cast<size_t>(
          jitter.UniformInt(0, static_cast<int>(burst.size()) - 1))]];
      for (int d = 0; d < dim_publish; ++d) {
        flat.push_back(row_data[d] + jitter.Gaussian() * 0.2);
      }
    }
    online.InsertBatch(flat);
    WallTimer publish_timer;
    snapshot = ClusterSnapshot::FromStream(online, pool.get(), snapshot);
    publish_seconds.push_back(publish_timer.Seconds());
    row.rows_reused += snapshot->build_info().rows_reused;
    row.clusters_reused += snapshot->build_info().clusters_reused;
  }
  row.publish_p95_seconds = Percentile(publish_seconds, 0.95);
  // Counter totals at end of run (ingest + publish tail), straight from the
  // stream's registry: the trajectory's counter keys are the exporter's
  // output, so a re-homed counter cannot silently drop out of the JSON.
  row.registry_fields = online.metrics().ToJsonFields();
  return row;
}

void PrintRow(const StreamRow& r) {
  std::printf("%-6d %-7d %-6d %-9.3f %-9.2f %-8.1f %-10.4f %-10.4f "
              "%-8lld %-8lld %-9lld %-9lld\n",
              r.batch, r.window, r.executors, r.wall_seconds, r.speedup,
              r.items_per_second, r.p50_batch_seconds, r.p95_batch_seconds,
              static_cast<long long>(r.absorbed),
              static_cast<long long>(r.evicted),
              static_cast<long long>(r.redetections),
              static_cast<long long>(r.steals));
}

void EmitStreamJson(BenchContext& ctx, const std::vector<StreamRow>& rows,
                    Index n, double trace_base_seconds,
                    double trace_wall_seconds, double trace_overhead_ratio) {
  std::string json;
  AppendF(json,
          "{\"bench\":\"stream\",\"n\":%d,"
          "\"trace_base_seconds\":%.6f,\"trace_wall_seconds\":%.6f,"
          "\"trace_overhead_ratio\":%.4f,\"rows\":[",
          n, trace_base_seconds, trace_wall_seconds, trace_overhead_ratio);
  // The wall/latency/derived keys are emitted by hand; every counter and
  // gauge key (absorbed, evicted, sketch_prunes, cache_*, pool_*, ...)
  // comes from the embedded registry export — the manual list must never
  // overlap the registry's names (--schema-check rejects duplicate keys).
  for (size_t i = 0; i < rows.size(); ++i) {
    const StreamRow& r = rows[i];
    AppendF(
        json,
        "%s{\"batch\":%d,\"window\":%d,\"executors\":%d,"
        "\"wall_seconds\":%.6f,\"speedup\":%.4f,\"items_per_second\":%.2f,"
        "\"p50_batch_seconds\":%.6f,\"p95_batch_seconds\":%.6f,"
        "\"ingest_p95_seconds\":%.6f,\"publish_p95_seconds\":%.6f,"
        "\"rows_reused\":%lld,\"clusters_reused\":%lld,"
        "\"cache_hit_rate\":%.4f,\"steals\":%lld,\"clusters\":%d,%s}",
        i == 0 ? "" : ",", r.batch, r.window, r.executors, r.wall_seconds,
        r.speedup, r.items_per_second, r.p50_batch_seconds,
        r.p95_batch_seconds, r.p95_batch_seconds, r.publish_p95_seconds,
        static_cast<long long>(r.rows_reused),
        static_cast<long long>(r.clusters_reused), r.cache_hit_rate,
        static_cast<long long>(r.steals), r.clusters,
        r.registry_fields.c_str());
  }
  json += "]}";
  ctx.EmitJson(json);
}

void Run(BenchContext& ctx) {
  std::printf("Streaming ingest: batch x window x executors sweep "
              "(scale %.2f)\n", ctx.scale());
  SyntheticConfig cfg;
  cfg.n = ctx.Scaled(1600);
  cfg.dim = 16;
  cfg.num_clusters = 4;
  cfg.omega = 0.6;
  cfg.mean_box = 300.0;
  cfg.overlap_clusters = false;
  cfg.seed = 905;
  LabeledData data = MakeSynthetic(cfg);
  Rng rng(17);
  const std::vector<Index> order = rng.Permutation(data.size());
  const std::vector<Scalar> arrivals = ArrivalStream(data, order);
  std::printf("n=%d arrivals (+%d near-miss probes), %zu planted bursts\n",
              data.size(),
              static_cast<int>(arrivals.size()) / data.data.dim() -
                  data.size(),
              data.true_clusters.size());

  // Tracing-overhead row: the same modest ingest configuration timed with
  // the span recorder off and then on (best of 3 each — min is the
  // noise-robust estimator on shared runners). The hooks are a single
  // relaxed load per span when disabled and one ring write when enabled,
  // so the ratio stays ~1.0; CI pins it below 1.05 via bench_compare's
  // --require-max trace_overhead_ratio gate. Measured before the sweep so
  // Enable()'s ring re-arm cannot wipe the sweep's own --trace-out spans.
  double trace_base_seconds = 0.0;
  double trace_wall_seconds = 0.0;
  {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    const bool was_enabled = recorder.enabled();
    const auto ingest_wall = [&] {
      return RunStream(data, arrivals, 256, 0, 1).wall_seconds;
    };
    recorder.Disable();
    trace_base_seconds = ingest_wall();
    for (int i = 0; i < 2; ++i) {
      trace_base_seconds = std::min(trace_base_seconds, ingest_wall());
    }
    recorder.Enable();
    trace_wall_seconds = ingest_wall();
    for (int i = 0; i < 2; ++i) {
      trace_wall_seconds = std::min(trace_wall_seconds, ingest_wall());
    }
    if (!was_enabled) recorder.Disable();
  }
  const double trace_overhead_ratio =
      trace_base_seconds > 0.0 ? trace_wall_seconds / trace_base_seconds
                               : 1.0;
  std::printf("tracing overhead: %.3fs off vs %.3fs on (x%.4f)\n",
              trace_base_seconds, trace_wall_seconds, trace_overhead_ratio);

  const std::vector<Index> batches{32, 256};
  const std::vector<Index> windows{0, ctx.Scaled(800)};
  std::vector<StreamRow> rows;
  for (Index window : windows) {
    PrintHeader(window == 0 ? "unbounded stream (window = 0)"
                            : "sliding window");
    std::printf("%-6s %-7s %-6s %-9s %-9s %-8s %-10s %-10s %-8s %-8s "
                "%-9s %-9s\n",
                "batch", "window", "execs", "wall(s)", "speedup", "items/s",
                "p50(s)", "p95(s)", "absorb", "evict", "redetect", "steals");
    for (Index batch : batches) {
      double base_wall = 0.0;
      for (int executors : {1, 2, 4, 8}) {
        StreamRow row = RunStream(data, arrivals, batch, window, executors);
        if (executors == 1) {
          base_wall = row.wall_seconds;
          row.speedup = 1.0;
        } else {
          row.speedup = row.wall_seconds > 0.0 && base_wall > 0.0
                            ? base_wall / row.wall_seconds
                            : 0.0;
        }
        PrintRow(row);
        rows.push_back(row);
      }
    }
  }

  std::printf("\nExpected shape: the streamed state is bit-identical down "
              "the executor column (only wall time moves); larger batches "
              "amortize the parallel hash/score phases, and the window "
              "bounds evictions — and with them the index and cache "
              "footprint — independent of stream length. sketch_prunes "
              "counts absorb scorings the support-sketch bound skipped "
              "(exactly, never approximately), and the publish columns "
              "time the incremental snapshot export over a steady-state "
              "tail: rows_reused > 0 is the proof the publish path pays "
              "O(changed clusters), not O(window).\n");
  EmitStreamJson(ctx, rows, data.size(), trace_base_seconds,
                 trace_wall_seconds, trace_overhead_ratio);
}

ALID_BENCHMARK("stream", "runtime,stream,speedup", "stream", Run);

}  // namespace
}  // namespace alid::bench
