# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/affinity_test[1]_include.cmake")
include("/root/repo/build/alid_test[1]_include.cmake")
include("/root/repo/build/baselines_test[1]_include.cmake")
include("/root/repo/build/column_cache_test[1]_include.cmake")
include("/root/repo/build/common_test[1]_include.cmake")
include("/root/repo/build/concurrency_test[1]_include.cmake")
include("/root/repo/build/data_test[1]_include.cmake")
include("/root/repo/build/determinism_test[1]_include.cmake")
include("/root/repo/build/edge_cases_test[1]_include.cmake")
include("/root/repo/build/equivalence_test[1]_include.cmake")
include("/root/repo/build/integration_test[1]_include.cmake")
include("/root/repo/build/lid_test[1]_include.cmake")
include("/root/repo/build/linalg_test[1]_include.cmake")
include("/root/repo/build/lsh_test[1]_include.cmake")
include("/root/repo/build/metrics_test[1]_include.cmake")
include("/root/repo/build/online_alid_test[1]_include.cmake")
include("/root/repo/build/palid_test[1]_include.cmake")
include("/root/repo/build/partitioning_test[1]_include.cmake")
include("/root/repo/build/roi_civs_test[1]_include.cmake")
include("/root/repo/build/thread_pool_test[1]_include.cmake")
