# Empty dependencies file for roi_civs_test.
# This may be replaced when dependencies are built.
