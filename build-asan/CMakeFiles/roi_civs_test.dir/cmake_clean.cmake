file(REMOVE_RECURSE
  "CMakeFiles/roi_civs_test.dir/tests/roi_civs_test.cc.o"
  "CMakeFiles/roi_civs_test.dir/tests/roi_civs_test.cc.o.d"
  "roi_civs_test"
  "roi_civs_test.pdb"
  "roi_civs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_civs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
