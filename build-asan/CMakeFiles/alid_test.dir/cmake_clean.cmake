file(REMOVE_RECURSE
  "CMakeFiles/alid_test.dir/tests/alid_test.cc.o"
  "CMakeFiles/alid_test.dir/tests/alid_test.cc.o.d"
  "alid_test"
  "alid_test.pdb"
  "alid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
