# Empty dependencies file for alid_test.
# This may be replaced when dependencies are built.
