# Empty dependencies file for example_visual_words.
# This may be replaced when dependencies are built.
