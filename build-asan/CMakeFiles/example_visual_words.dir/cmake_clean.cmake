file(REMOVE_RECURSE
  "CMakeFiles/example_visual_words.dir/examples/visual_words.cpp.o"
  "CMakeFiles/example_visual_words.dir/examples/visual_words.cpp.o.d"
  "example_visual_words"
  "example_visual_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_visual_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
