file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sparsity.dir/bench/bench_fig6_sparsity.cc.o"
  "CMakeFiles/bench_fig6_sparsity.dir/bench/bench_fig6_sparsity.cc.o.d"
  "bench_fig6_sparsity"
  "bench_fig6_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
