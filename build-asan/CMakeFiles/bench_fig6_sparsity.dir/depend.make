# Empty dependencies file for bench_fig6_sparsity.
# This may be replaced when dependencies are built.
