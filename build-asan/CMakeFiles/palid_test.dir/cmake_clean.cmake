file(REMOVE_RECURSE
  "CMakeFiles/palid_test.dir/tests/palid_test.cc.o"
  "CMakeFiles/palid_test.dir/tests/palid_test.cc.o.d"
  "palid_test"
  "palid_test.pdb"
  "palid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
