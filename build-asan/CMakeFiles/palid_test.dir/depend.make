# Empty dependencies file for palid_test.
# This may be replaced when dependencies are built.
