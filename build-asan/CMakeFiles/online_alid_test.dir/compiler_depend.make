# Empty compiler generated dependencies file for online_alid_test.
# This may be replaced when dependencies are built.
