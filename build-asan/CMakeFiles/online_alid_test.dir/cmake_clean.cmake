file(REMOVE_RECURSE
  "CMakeFiles/online_alid_test.dir/tests/online_alid_test.cc.o"
  "CMakeFiles/online_alid_test.dir/tests/online_alid_test.cc.o.d"
  "online_alid_test"
  "online_alid_test.pdb"
  "online_alid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_alid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
