# Empty dependencies file for example_news_events.
# This may be replaced when dependencies are built.
