file(REMOVE_RECURSE
  "CMakeFiles/example_news_events.dir/examples/news_events.cpp.o"
  "CMakeFiles/example_news_events.dir/examples/news_events.cpp.o.d"
  "example_news_events"
  "example_news_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_news_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
