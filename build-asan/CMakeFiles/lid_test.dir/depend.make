# Empty dependencies file for lid_test.
# This may be replaced when dependencies are built.
