file(REMOVE_RECURSE
  "CMakeFiles/lid_test.dir/tests/lid_test.cc.o"
  "CMakeFiles/lid_test.dir/tests/lid_test.cc.o.d"
  "lid_test"
  "lid_test.pdb"
  "lid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
