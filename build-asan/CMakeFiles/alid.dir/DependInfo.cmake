
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affinity/affinity_function.cc" "CMakeFiles/alid.dir/src/affinity/affinity_function.cc.o" "gcc" "CMakeFiles/alid.dir/src/affinity/affinity_function.cc.o.d"
  "/root/repo/src/affinity/affinity_matrix.cc" "CMakeFiles/alid.dir/src/affinity/affinity_matrix.cc.o" "gcc" "CMakeFiles/alid.dir/src/affinity/affinity_matrix.cc.o.d"
  "/root/repo/src/affinity/column_cache.cc" "CMakeFiles/alid.dir/src/affinity/column_cache.cc.o" "gcc" "CMakeFiles/alid.dir/src/affinity/column_cache.cc.o.d"
  "/root/repo/src/affinity/lazy_affinity_oracle.cc" "CMakeFiles/alid.dir/src/affinity/lazy_affinity_oracle.cc.o" "gcc" "CMakeFiles/alid.dir/src/affinity/lazy_affinity_oracle.cc.o.d"
  "/root/repo/src/affinity/sparsifier.cc" "CMakeFiles/alid.dir/src/affinity/sparsifier.cc.o" "gcc" "CMakeFiles/alid.dir/src/affinity/sparsifier.cc.o.d"
  "/root/repo/src/baselines/affinity_view.cc" "CMakeFiles/alid.dir/src/baselines/affinity_view.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/affinity_view.cc.o.d"
  "/root/repo/src/baselines/ap.cc" "CMakeFiles/alid.dir/src/baselines/ap.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/ap.cc.o.d"
  "/root/repo/src/baselines/iid.cc" "CMakeFiles/alid.dir/src/baselines/iid.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/iid.cc.o.d"
  "/root/repo/src/baselines/kmeans.cc" "CMakeFiles/alid.dir/src/baselines/kmeans.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/kmeans.cc.o.d"
  "/root/repo/src/baselines/mean_shift.cc" "CMakeFiles/alid.dir/src/baselines/mean_shift.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/mean_shift.cc.o.d"
  "/root/repo/src/baselines/replicator.cc" "CMakeFiles/alid.dir/src/baselines/replicator.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/replicator.cc.o.d"
  "/root/repo/src/baselines/sea.cc" "CMakeFiles/alid.dir/src/baselines/sea.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/sea.cc.o.d"
  "/root/repo/src/baselines/spectral.cc" "CMakeFiles/alid.dir/src/baselines/spectral.cc.o" "gcc" "CMakeFiles/alid.dir/src/baselines/spectral.cc.o.d"
  "/root/repo/src/common/dataset.cc" "CMakeFiles/alid.dir/src/common/dataset.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/dataset.cc.o.d"
  "/root/repo/src/common/matrix.cc" "CMakeFiles/alid.dir/src/common/matrix.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/matrix.cc.o.d"
  "/root/repo/src/common/memory_tracker.cc" "CMakeFiles/alid.dir/src/common/memory_tracker.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/memory_tracker.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/alid.dir/src/common/random.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/sparse_matrix.cc" "CMakeFiles/alid.dir/src/common/sparse_matrix.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/sparse_matrix.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/alid.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/alid.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/alid.cc" "CMakeFiles/alid.dir/src/core/alid.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/alid.cc.o.d"
  "/root/repo/src/core/civs.cc" "CMakeFiles/alid.dir/src/core/civs.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/civs.cc.o.d"
  "/root/repo/src/core/lid.cc" "CMakeFiles/alid.dir/src/core/lid.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/lid.cc.o.d"
  "/root/repo/src/core/online_alid.cc" "CMakeFiles/alid.dir/src/core/online_alid.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/online_alid.cc.o.d"
  "/root/repo/src/core/palid.cc" "CMakeFiles/alid.dir/src/core/palid.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/palid.cc.o.d"
  "/root/repo/src/core/roi.cc" "CMakeFiles/alid.dir/src/core/roi.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/roi.cc.o.d"
  "/root/repo/src/core/simplex.cc" "CMakeFiles/alid.dir/src/core/simplex.cc.o" "gcc" "CMakeFiles/alid.dir/src/core/simplex.cc.o.d"
  "/root/repo/src/data/nart_like.cc" "CMakeFiles/alid.dir/src/data/nart_like.cc.o" "gcc" "CMakeFiles/alid.dir/src/data/nart_like.cc.o.d"
  "/root/repo/src/data/ndi_like.cc" "CMakeFiles/alid.dir/src/data/ndi_like.cc.o" "gcc" "CMakeFiles/alid.dir/src/data/ndi_like.cc.o.d"
  "/root/repo/src/data/sift_like.cc" "CMakeFiles/alid.dir/src/data/sift_like.cc.o" "gcc" "CMakeFiles/alid.dir/src/data/sift_like.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/alid.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/alid.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/alid.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/alid.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/linalg/jacobi.cc" "CMakeFiles/alid.dir/src/linalg/jacobi.cc.o" "gcc" "CMakeFiles/alid.dir/src/linalg/jacobi.cc.o.d"
  "/root/repo/src/linalg/lanczos.cc" "CMakeFiles/alid.dir/src/linalg/lanczos.cc.o" "gcc" "CMakeFiles/alid.dir/src/linalg/lanczos.cc.o.d"
  "/root/repo/src/lsh/lsh_index.cc" "CMakeFiles/alid.dir/src/lsh/lsh_index.cc.o" "gcc" "CMakeFiles/alid.dir/src/lsh/lsh_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
