file(REMOVE_RECURSE
  "libalid.a"
)
