# Empty dependencies file for alid.
# This may be replaced when dependencies are built.
