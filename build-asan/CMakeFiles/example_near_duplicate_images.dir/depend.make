# Empty dependencies file for example_near_duplicate_images.
# This may be replaced when dependencies are built.
