file(REMOVE_RECURSE
  "CMakeFiles/example_near_duplicate_images.dir/examples/near_duplicate_images.cpp.o"
  "CMakeFiles/example_near_duplicate_images.dir/examples/near_duplicate_images.cpp.o.d"
  "example_near_duplicate_images"
  "example_near_duplicate_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_near_duplicate_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
