file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_qualitative.dir/bench/bench_fig10_qualitative.cc.o"
  "CMakeFiles/bench_fig10_qualitative.dir/bench/bench_fig10_qualitative.cc.o.d"
  "bench_fig10_qualitative"
  "bench_fig10_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
