# Empty compiler generated dependencies file for bench_fig10_qualitative.
# This may be replaced when dependencies are built.
