# Empty compiler generated dependencies file for bench_fig9_sift.
# This may be replaced when dependencies are built.
