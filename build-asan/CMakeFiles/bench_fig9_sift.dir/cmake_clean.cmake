file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sift.dir/bench/bench_fig9_sift.cc.o"
  "CMakeFiles/bench_fig9_sift.dir/bench/bench_fig9_sift.cc.o.d"
  "bench_fig9_sift"
  "bench_fig9_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
