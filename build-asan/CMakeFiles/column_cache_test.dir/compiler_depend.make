# Empty compiler generated dependencies file for column_cache_test.
# This may be replaced when dependencies are built.
