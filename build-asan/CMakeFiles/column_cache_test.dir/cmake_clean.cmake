file(REMOVE_RECURSE
  "CMakeFiles/column_cache_test.dir/tests/column_cache_test.cc.o"
  "CMakeFiles/column_cache_test.dir/tests/column_cache_test.cc.o.d"
  "column_cache_test"
  "column_cache_test.pdb"
  "column_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
