file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_events.dir/examples/streaming_events.cpp.o"
  "CMakeFiles/example_streaming_events.dir/examples/streaming_events.cpp.o.d"
  "example_streaming_events"
  "example_streaming_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
