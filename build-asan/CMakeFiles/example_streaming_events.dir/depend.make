# Empty dependencies file for example_streaming_events.
# This may be replaced when dependencies are built.
