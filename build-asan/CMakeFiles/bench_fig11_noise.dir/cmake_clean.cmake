file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_noise.dir/bench/bench_fig11_noise.cc.o"
  "CMakeFiles/bench_fig11_noise.dir/bench/bench_fig11_noise.cc.o.d"
  "bench_fig11_noise"
  "bench_fig11_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
