# Empty dependencies file for bench_table2_palid.
# This may be replaced when dependencies are built.
