file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_palid.dir/bench/bench_table2_palid.cc.o"
  "CMakeFiles/bench_table2_palid.dir/bench/bench_table2_palid.cc.o.d"
  "bench_table2_palid"
  "bench_table2_palid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_palid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
