# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/affinity_test[1]_include.cmake")
include("/root/repo/build-asan/alid_test[1]_include.cmake")
include("/root/repo/build-asan/baselines_test[1]_include.cmake")
include("/root/repo/build-asan/column_cache_test[1]_include.cmake")
include("/root/repo/build-asan/common_test[1]_include.cmake")
include("/root/repo/build-asan/concurrency_test[1]_include.cmake")
include("/root/repo/build-asan/data_test[1]_include.cmake")
include("/root/repo/build-asan/determinism_test[1]_include.cmake")
include("/root/repo/build-asan/edge_cases_test[1]_include.cmake")
include("/root/repo/build-asan/equivalence_test[1]_include.cmake")
include("/root/repo/build-asan/integration_test[1]_include.cmake")
include("/root/repo/build-asan/lid_test[1]_include.cmake")
include("/root/repo/build-asan/linalg_test[1]_include.cmake")
include("/root/repo/build-asan/lsh_test[1]_include.cmake")
include("/root/repo/build-asan/metrics_test[1]_include.cmake")
include("/root/repo/build-asan/online_alid_test[1]_include.cmake")
include("/root/repo/build-asan/palid_test[1]_include.cmake")
include("/root/repo/build-asan/partitioning_test[1]_include.cmake")
include("/root/repo/build-asan/roi_civs_test[1]_include.cmake")
include("/root/repo/build-asan/thread_pool_test[1]_include.cmake")
