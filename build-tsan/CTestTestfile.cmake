# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/affinity_test[1]_include.cmake")
include("/root/repo/build-tsan/alid_test[1]_include.cmake")
include("/root/repo/build-tsan/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/column_cache_test[1]_include.cmake")
include("/root/repo/build-tsan/common_test[1]_include.cmake")
include("/root/repo/build-tsan/concurrency_test[1]_include.cmake")
include("/root/repo/build-tsan/data_test[1]_include.cmake")
include("/root/repo/build-tsan/determinism_test[1]_include.cmake")
include("/root/repo/build-tsan/edge_cases_test[1]_include.cmake")
include("/root/repo/build-tsan/equivalence_test[1]_include.cmake")
include("/root/repo/build-tsan/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/lid_test[1]_include.cmake")
include("/root/repo/build-tsan/linalg_test[1]_include.cmake")
include("/root/repo/build-tsan/lsh_test[1]_include.cmake")
include("/root/repo/build-tsan/metrics_test[1]_include.cmake")
include("/root/repo/build-tsan/online_alid_test[1]_include.cmake")
include("/root/repo/build-tsan/palid_test[1]_include.cmake")
include("/root/repo/build-tsan/partitioning_test[1]_include.cmake")
include("/root/repo/build-tsan/roi_civs_test[1]_include.cmake")
include("/root/repo/build-tsan/thread_pool_test[1]_include.cmake")
