#!/usr/bin/env python3
"""CI gate for the ROADMAP's parallel-speedup claim — label-driven.

Selects executor sweeps out of the bench trajectory by the ``labels`` key the
benchmark registry injects into every JSON record (a benchmark opts in by
registering the ``speedup`` label) instead of hard-coding record names, so a
new benchmark joins this gate by registering — never by editing this script.

Two layers:

* **Structure** (always checked, any core count): every ``speedup``-labeled
  record whose rows carry an ``executors`` key must contain a real sweep —
  at least two distinct executor widths, each with a wall_seconds — and at
  least one record in the whole trajectory must carry rows marked
  ``gate_speedup``. A scenario or stream bench that silently stopped
  sweeping executors fails here even on a 1-core runner.

* **Ratio** (skipped below --min-cores): rows marked ``"gate_speedup":true``
  (the work-stealing PALID rows) are grouped into sweeps and the widest
  width's wall time must be at most --max-ratio times the narrowest's.
  The ROADMAP claims >=3x on real 8-core hardware; the default 2x bound
  leaves headroom for shared CI runners. Unmarked sweep rows (baselines,
  stream/serve/scenario rows) are reported, never ratio-gated — on a shared
  1-core host their executor axis only moves scheduling counters.
"""

import argparse
import json
import os
import sys


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("bench"):
                records.append(record)
    return records


def labels_of(record):
    return [l for l in str(record.get("labels", "")).split(",") if l]


def sweep_key(row):
    """Groups one record's rows into sweeps: identity minus the executor
    axis (method/mode/dataset/batch/window distinguish parallel sweeps)."""
    return tuple((k, row[k]) for k in ("method", "mode", "regime", "dataset",
                                       "batch", "window") if k in row)


def collect_sweeps(record):
    """{sweep-key: {executors: (wall_seconds, gated)}} for one record."""
    sweeps = {}
    for row in record.get("rows", []):
        if not isinstance(row, dict) or "executors" not in row:
            continue
        if not isinstance(row.get("wall_seconds"), (int, float)):
            continue
        sweeps.setdefault(sweep_key(row), {})[int(row["executors"])] = (
            float(row["wall_seconds"]), bool(row.get("gate_speedup")))
    return sweeps


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="bench_trajectory.jsonl")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip the ratio gate (not the structural check) "
                             "below this many CPUs")
    parser.add_argument("--max-ratio", type=float, default=0.5,
                        help="fail when wall(widest) / wall(narrowest) "
                             "exceeds this on a gate_speedup sweep")
    args = parser.parse_args()

    records = [r for r in load_records(args.trajectory)
               if "speedup" in labels_of(r)]
    if not records:
        print("error: no 'speedup'-labeled records in the trajectory — "
              "either the registry stopped injecting labels or every "
              "speedup benchmark vanished")
        return 1

    structural_errors = []
    gated_sweeps = []   # (bench, sweep-key, {executors: wall})
    report_sweeps = []  # ungated, for the log only
    for record in records:
        bench = record["bench"]
        sweeps = collect_sweeps(record)
        if not sweeps:
            # Records without an executor axis (e.g. a size sweep that rides
            # along in a speedup-labeled benchmark) have nothing to check.
            print(f"note {bench}: no executor-sweep rows (skipped)")
            continue
        multi_width = 0
        for key, widths in sweeps.items():
            name = ",".join(f"{k}={v}" for k, v in key) or "rows"
            if len(widths) < 2:
                # A deliberate single configuration (an ablation row like
                # PALID-FIFO, the serve swap-under-load run) — nothing to
                # ratio; the record-level check below still demands a real
                # sweep somewhere in the record.
                print(f"note {bench}/{name}: single width "
                      f"{sorted(widths)} (not a sweep)")
                continue
            multi_width += 1
            walls = {e: w for e, (w, _) in widths.items()}
            if any(g for _, g in widths.values()):
                gated_sweeps.append((bench, name, walls))
            else:
                report_sweeps.append((bench, name, walls))
        if multi_width == 0:
            structural_errors.append(
                f"{bench}: rows carry an executors key but no sweep spans "
                f"two widths — the executor sweep degenerated")

    for error in structural_errors:
        print(f"FAIL {error}")
    if not gated_sweeps and not structural_errors:
        structural_errors.append(
            "no gate_speedup sweep found in the trajectory — the PALID "
            "executor sweeps stopped marking their rows")
        print(f"FAIL {structural_errors[-1]}")

    def ratio_line(bench, name, walls):
        lo, hi = min(walls), max(walls)
        ratio = walls[hi] / walls[lo] if walls[lo] > 0 else float("inf")
        speedup = 1.0 / ratio if ratio > 0 else float("inf")
        return lo, hi, ratio, (f"{bench}/{name}: wall({lo})="
                               f"{walls[lo]:.3f}s wall({hi})="
                               f"{walls[hi]:.3f}s -> {speedup:.2f}x")

    cores = os.cpu_count() or 1
    ratio_failures = []
    if cores < args.min_cores:
        print(f"::notice::speedup ratio gate skipped: host has {cores} "
              f"cores (< {args.min_cores}); wall-clock speedup is "
              f"core-bound here and the >=3x-at-8-executors claim must be "
              f"validated on multi-core hardware")
    else:
        for bench, name, walls in gated_sweeps:
            _, hi, ratio, line = ratio_line(bench, name, walls)
            verdict = "ok" if ratio <= args.max_ratio else "FAIL"
            print(f"{verdict} {line} "
                  f"(gate: >= {1.0 / args.max_ratio:.1f}x on {cores} cores)")
            if ratio > args.max_ratio:
                ratio_failures.append(f"{bench}/{name}")
    for bench, name, walls in report_sweeps:
        _, _, _, line = ratio_line(bench, name, walls)
        print(f"info {line} (reported, not gated)")

    print(f"\nchecked {len(gated_sweeps)} gated and {len(report_sweeps)} "
          f"reported sweeps across {len(records)} speedup-labeled records")
    if structural_errors:
        print(f"speedup gate FAILED structurally on {len(structural_errors)} "
              f"sweeps")
        return 1
    if ratio_failures:
        print(f"speedup gate FAILED: {ratio_failures} below "
              f"{1.0 / args.max_ratio:.1f}x at the widest executor count")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
