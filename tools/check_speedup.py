#!/usr/bin/env python3
"""CI gate for the ROADMAP's parallel-speedup claim.

Parses the uploaded bench trajectory (bench_trajectory.jsonl) for PALID's
executor sweeps — the ``fig7_parallel_baselines`` record and, as a fallback,
``table2_palid`` — and fails when the 8-executor wall time exceeds half the
1-executor wall time (i.e. when the measured speedup at 8 executors is below
2x). The ROADMAP claims >=3x on real 8-core hardware; the gate's 2x bound
leaves headroom for shared CI runners.

On hosts with fewer than --min-cores (default 4) the check is skipped with a
notice: wall-clock speedup is physically capped by the core count there and
the claim must be read off a wider machine.
"""

import argparse
import json
import os
import sys


def load_records(path):
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            name = record.get("bench")
            if name:
                records[name] = record
    return records


def palid_walls(record):
    """{executors: wall_seconds} for the work-stealing PALID rows."""
    walls = {}
    for row in record.get("rows", []):
        if row.get("method") == "PALID" and "executors" in row:
            walls[int(row["executors"])] = float(row["wall_seconds"])
    return walls


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="bench_trajectory.jsonl")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip (exit 0) below this many CPUs")
    parser.add_argument("--max-ratio", type=float, default=0.5,
                        help="fail when wall(8) / wall(1) exceeds this")
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    if cores < args.min_cores:
        print(f"::notice::speedup gate skipped: host has {cores} cores "
              f"(< {args.min_cores}); wall-clock speedup is core-bound here "
              f"and the >=3x-at-8-executors claim must be validated on "
              f"multi-core hardware")
        return 0

    records = load_records(args.trajectory)
    checked = 0
    failed = False
    for name in ("fig7_parallel_baselines", "table2_palid"):
        record = records.get(name)
        if record is None:
            continue
        walls = palid_walls(record)
        if 1 not in walls or 8 not in walls:
            print(f"warning: {name} has no PALID 1/8-executor pair")
            continue
        checked += 1
        ratio = walls[8] / walls[1] if walls[1] > 0 else float("inf")
        speedup = 1.0 / ratio if ratio > 0 else float("inf")
        verdict = "ok" if ratio <= args.max_ratio else "FAIL"
        print(f"{verdict} {name}: PALID wall(1)={walls[1]:.3f}s "
              f"wall(8)={walls[8]:.3f}s -> {speedup:.2f}x speedup "
              f"(gate: >= {1.0 / args.max_ratio:.1f}x on {cores} cores)")
        if ratio > args.max_ratio:
            failed = True
    if checked == 0:
        print("error: no PALID executor sweep found in the trajectory")
        return 1
    if failed:
        print("speedup gate FAILED: 8-executor PALID is not at least "
              f"{1.0 / args.max_ratio:.1f}x faster than 1 executor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
