#!/usr/bin/env python3
"""Dead-bench lint: every bench source must register with the registry.

Since PR 6 there is no per-bench main() — a bench/bench_*.cc that contains
no ALID_BENCHMARK registration compiles, links into alid_bench, and then
never runs: a silently dead benchmark. This lint fails CI when

  * a bench/bench_*.cc (except the driver bench_main.cc) contains no
    ALID_BENCHMARK/ALID_BENCHMARK_FULL registration, or
  * a name registered in the sources does not appear in the live registry
    (``alid_bench --list`` output passed via --list-output) — e.g. the file
    was dropped from the build.

Usage:
    tools/lint_benches.py [--bench-dir bench] [--list-output FILE]
"""

import argparse
import os
import re
import sys

REGISTRATION = re.compile(
    r'ALID_BENCHMARK(?:_FULL)?\s*\(\s*"([^"]+)"', re.MULTILINE)

# Sources that are infrastructure, not benchmarks.
EXEMPT = {"bench_main.cc"}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", default="bench")
    parser.add_argument("--list-output", default="",
                        help="file holding `alid_bench --list` output; when "
                             "given, every source-registered name must "
                             "appear in it")
    args = parser.parse_args()

    errors = []
    registered = {}
    for entry in sorted(os.listdir(args.bench_dir)):
        if not entry.startswith("bench_") or not entry.endswith(".cc"):
            continue
        if entry in EXEMPT:
            continue
        path = os.path.join(args.bench_dir, entry)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        names = REGISTRATION.findall(source)
        if not names:
            errors.append(f"{path}: no ALID_BENCHMARK registration — this "
                          f"benchmark links into alid_bench but never runs")
        for name in names:
            if name in registered:
                errors.append(f"{path}: benchmark name '{name}' already "
                              f"registered in {registered[name]}")
            registered[name] = path

    if not registered and not errors:
        errors.append(f"{args.bench_dir}: no benchmark sources found at all")

    if args.list_output:
        with open(args.list_output, "r", encoding="utf-8") as handle:
            listed = {line.split("\t")[0].strip()
                      for line in handle if line.strip()}
        for name, path in sorted(registered.items()):
            if name not in listed:
                errors.append(f"{path}: '{name}' is registered in the source "
                              f"but absent from `alid_bench --list` — the "
                              f"file dropped out of the build")

    for error in errors:
        print(f"LINT {error}")
    if errors:
        print(f"bench lint FAILED: {len(errors)} problems")
        return 1
    print(f"bench lint ok: {len(registered)} registrations across "
          f"{len(set(registered.values()))} sources")
    return 0


if __name__ == "__main__":
    sys.exit(main())
