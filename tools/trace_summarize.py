#!/usr/bin/env python3
"""Fold a Chrome trace-event JSON file into a per-phase latency table.

Input is what `alid_bench --trace-out=FILE` (or any other host of
src/obs/trace.h's TraceRecorder) writes: a JSON object with a
``traceEvents`` list of complete ("X") spans, each carrying
cat/name/ph/pid/tid/ts/dur with microsecond timestamps — the format
Perfetto and chrome://tracing load directly. This script is the CI-side
consumer: it validates the schema strictly enough that a malformed
trace fails the pipeline instead of silently shipping an artifact no
viewer can open, then prints one row per (cat, name) phase with count,
total, p50 and p95 duration.

Validation (any violation exits nonzero):
  * the file parses and has a non-empty ``traceEvents`` list of objects
  * every event has name/ph/pid/tid/ts; ts is numeric
  * every "X" event has a numeric dur >= 0
  * "B"/"E" begin/end events balance per (pid, tid) — mismatched pairs
    render as garbage lanes in viewers

Gating options for CI:
  * ``--expect cat/name`` (repeatable): the named phase must appear at
    least once — proves an instrumented stage actually executed
  * ``--min-events N``: the trace must carry at least N events total —
    a near-empty trace means tracing silently disabled itself
"""

import argparse
import json
import sys
from collections import defaultdict


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (which must be
    non-empty)."""
    index = max(0, min(len(sorted_values) - 1,
                       int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


def validate(events):
    """Schema errors in a traceEvents list (empty list = valid)."""
    errors = []
    begin_depth = defaultdict(int)
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                errors.append(f"{where}: missing '{key}'")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: 'ts' is not numeric")
        phase = event.get("ph")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: 'X' event without numeric 'dur'")
            elif dur < 0:
                errors.append(f"{where}: negative dur {dur}")
        elif phase == "B":
            begin_depth[(event.get("pid"), event.get("tid"))] += 1
        elif phase == "E":
            lane = (event.get("pid"), event.get("tid"))
            begin_depth[lane] -= 1
            if begin_depth[lane] < 0:
                errors.append(f"{where}: 'E' without matching 'B' on "
                              f"pid={lane[0]} tid={lane[1]}")
                begin_depth[lane] = 0
        if len(errors) >= 20:
            errors.append("... (stopping after 20 errors)")
            break
    for (pid, tid), depth in sorted(begin_depth.items()):
        if depth > 0:
            errors.append(f"{depth} unclosed 'B' events on "
                          f"pid={pid} tid={tid}")
    return errors


def summarize(events):
    """(cat/name) -> ascending list of 'X' durations in microseconds."""
    durations = defaultdict(list)
    for event in events:
        if event.get("ph") != "X":
            continue
        phase = f"{event.get('cat', '-')}/{event['name']}"
        durations[phase].append(float(event["dur"]))
    for values in durations.values():
        values.sort()
    return durations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="CAT/NAME",
                        help="phase that must appear at least once "
                             "(repeatable)")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum total event count (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {args.trace}: {error}")
        return 1

    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list) or not events:
        print(f"error: {args.trace} has no non-empty 'traceEvents' list")
        return 1

    errors = validate(events)
    for error in errors:
        print(f"INVALID {error}")
    if errors:
        print(f"trace schema FAILED: {len(errors)} violations")
        return 1

    if len(events) < args.min_events:
        print(f"error: only {len(events)} events "
              f"(--min-events {args.min_events})")
        return 1

    durations = summarize(events)
    width = max([len(p) for p in durations] + [len("phase")])
    print(f"{'phase':<{width}}  {'count':>8}  {'total_ms':>10}  "
          f"{'p50_us':>9}  {'p95_us':>9}")
    for phase in sorted(durations, key=lambda p: -sum(durations[p])):
        values = durations[phase]
        print(f"{phase:<{width}}  {len(values):>8}  "
              f"{sum(values) / 1000.0:>10.2f}  "
              f"{percentile(values, 0.50):>9.1f}  "
              f"{percentile(values, 0.95):>9.1f}")
    print(f"\n{len(events)} events, {len(durations)} phases ok")

    missing = [p for p in args.expect if p not in durations]
    if missing:
        print(f"expectation FAILED: phases never appeared: {missing}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
