#!/usr/bin/env python3
"""Perf-trajectory gate: compare two bench JSONL records.

Each input is a bench_trajectory.jsonl as produced by the release-bench CI
job: one single-line JSON record per bench binary (fig7 / table1 / table2 /
stream), each carrying wall-time keys somewhere inside. The script pairs up
every wall-time metric that exists in both records — identified by a stable
path such as ``table2_palid/PALID/executors=8/wall_seconds`` — and compares
current against previous:

  * ratio > --fail-ratio (default 1.25): regression, exit 1
  * ratio > --warn-ratio (default 1.10): warning, exit 0
  * otherwise: ok

Timings below --min-seconds in *both* records are skipped: micro-timings on
shared CI runners are noise, and a 3 ms -> 5 ms move is not a regression.
Metrics present on only one side (new or retired benches) are reported but
never fail the gate.

Beyond wall times, the script reports (never gates) the support-sketch and
incremental-publish counters — sketch_prunes / sketch_exact / rows_reused /
clusters_reused / bytes_shared / bytes_copied / history_ring_bytes —
including the per-record sketch hit-rate delta, and
``--require-positive key1,key2`` asserts that the named counters sum to a
positive value across the *current* record: CI uses it to prove the sketch
fast path and the incremental export cannot silently disable themselves.
``--require-max key:limit`` is the ceiling-shaped sibling: every occurrence
of the key across the current records (top level and rows) must be <= limit,
and the key must be present at all — CI gates the span-tracing overhead with
``--require-max trace_overhead_ratio:1.05``. Passing ``-`` as the previous
record skips the ratio gate (counter/max assertions only).

When the previous trajectory is missing or empty (first run on a branch, an
expired CI artifact), ``--baseline-fallback`` names a committed baseline
(bench/baselines/BENCH_seed.json) to gate against instead, at the wider
``--fallback-fail-ratio`` — the seed was recorded on different hardware, so
only order-of-magnitude regressions are actionable. The substitution is
announced with a ``::notice`` line.

``--schema-check`` validates the *current* trajectory against the registry
contract before anything is compared: every line must parse, no JSON object
may carry a duplicate key (a hand-built record that stuttered a field), no
two records may share a "bench" name, a record with a "rows" key must have a
non-empty list of objects, and — with ``--expect-records FILE`` (one name
per line; the output of ``alid_bench --list-records``) — every registered
record must actually be present: a registered benchmark that emitted no JSON
row fails here.
"""

import argparse
import json
import os
import sys


WALL_KEYS = ("wall_seconds", "p95_batch_seconds", "p95_query_seconds",
             "ingest_p95_seconds", "publish_p95_seconds")

# Exactness/telemetry counters: reported (and assertable via
# --require-positive), never ratio-gated — counts move with workloads.
# bytes_shared / bytes_copied are the arena ledger of the snapshot publish
# path: shared > 0 proves the incremental export really aliased its
# predecessor's blocks instead of copying them.
COUNTER_KEYS = ("sketch_prunes", "sketch_exact", "rows_reused",
                "clusters_reused", "bytes_shared", "bytes_copied",
                "history_ring_bytes", "shard_fanout_queries")


def reject_duplicate_keys(pairs):
    """object_pairs_hook that fails on a duplicated key in one JSON object."""
    seen = {}
    for key, value in pairs:
        if key in seen:
            raise ValueError(f"duplicate key {key!r} in one object")
        seen[key] = value
    return seen


def schema_check(path, expect_path):
    """Registry-contract errors in one trajectory file (empty list = ok)."""
    errors = []
    names = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line,
                                    object_pairs_hook=reject_duplicate_keys)
            except ValueError as error:
                errors.append(f"{path}:{lineno}: {error}")
                continue
            name = record.get("bench")
            if not name:
                errors.append(f"{path}:{lineno}: record has no 'bench' key")
                continue
            if name in names:
                errors.append(f"{path}:{lineno}: duplicate record "
                              f"'{name}' — one benchmark emitted twice or "
                              f"two shards overlapped")
            names.append(name)
            if "rows" in record:
                rows = record["rows"]
                if not isinstance(rows, list) or not rows:
                    errors.append(f"{path}:{lineno}: record '{name}' has an "
                                  f"empty or non-list 'rows' — the sweep "
                                  f"silently produced nothing")
                elif not all(isinstance(r, dict) for r in rows):
                    errors.append(f"{path}:{lineno}: record '{name}' has "
                                  f"non-object rows")
    if expect_path:
        with open(expect_path, "r", encoding="utf-8") as handle:
            expected = [l.strip() for l in handle if l.strip()]
        for name in expected:
            if name not in names:
                errors.append(f"registered record '{name}' is missing from "
                              f"{path} — its benchmark emitted no JSON row")
    if not names:
        errors.append(f"{path}: no records at all")
    return errors


def load_records(path):
    """bench-name -> parsed record, from a JSONL file."""
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                print(f"warning: skipping unparsable line in {path}: {error}")
                continue
            name = record.get("bench")
            if name:
                records[name] = record
    return records


def row_label(row):
    """A stable, human-readable identity for one sweep row."""
    parts = []
    for key in ("method", "regime", "dataset", "mode", "window", "batch",
                "executors"):
        if key in row:
            parts.append(f"{key}={row[key]}")
    return "/".join(parts) if parts else "row"


def sum_counters(records):
    """{counter-key: summed value} across every record, rows included."""
    totals = {key: 0 for key in COUNTER_KEYS}
    for record in records.values():
        for key in COUNTER_KEYS:
            if isinstance(record.get(key), (int, float)):
                totals[key] += record[key]
        for row in record.get("rows", []):
            if not isinstance(row, dict):
                continue
            for key in COUNTER_KEYS:
                if isinstance(row.get(key), (int, float)):
                    totals[key] += row[key]
    return totals


def sketch_hit_rate(totals):
    """Fraction of sketch-engaged scorings the bound pruned."""
    touched = totals["sketch_prunes"] + totals["sketch_exact"]
    return totals["sketch_prunes"] / touched if touched > 0 else None


def report_counters(prev_records, curr_records):
    prev = sum_counters(prev_records) if prev_records else None
    curr = sum_counters(curr_records)
    for key in COUNTER_KEYS:
        if prev is not None and prev[key] != curr[key]:
            print(f"info {key}: {prev[key]} -> {curr[key]}")
        else:
            print(f"info {key}: {curr[key]}")
    rate = sketch_hit_rate(curr)
    if rate is not None:
        line = f"info sketch hit rate: {rate:.1%}"
        prev_rate = sketch_hit_rate(prev) if prev is not None else None
        if prev_rate is not None:
            line += f" (was {prev_rate:.1%}, delta {rate - prev_rate:+.1%})"
        print(line)
    return curr


def collect_key_values(records, key):
    """Every numeric occurrence of `key`, labelled, across records and rows."""
    found = []
    for record in records.values():
        bench = record.get("bench", "bench")
        if isinstance(record.get(key), (int, float)):
            found.append((f"{bench}/{key}", float(record[key])))
        for row in record.get("rows", []):
            if isinstance(row, dict) and isinstance(row.get(key),
                                                    (int, float)):
                found.append((f"{bench}/{row_label(row)}/{key}",
                              float(row[key])))
    return found


def parse_require_max(spec):
    """'key:limit,key:limit' -> [(key, float limit)]; ValueError on garbage."""
    pairs = []
    for item in (p for p in spec.split(",") if p):
        key, sep, limit = item.partition(":")
        if not sep or not key:
            raise ValueError(f"--require-max entry {item!r} is not key:limit")
        pairs.append((key, float(limit)))
    return pairs


def flatten(record):
    """{metric-path: seconds} for every wall-time leaf of one record."""
    out = {}
    bench = record.get("bench", "bench")
    for key in WALL_KEYS:
        if isinstance(record.get(key), (int, float)):
            out[f"{bench}/{key}"] = float(record[key])
    for row in record.get("rows", []):
        if not isinstance(row, dict):
            continue
        label = row_label(row)
        for key in WALL_KEYS:
            if isinstance(row.get(key), (int, float)):
                out[f"{bench}/{label}/{key}"] = float(row[key])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", help="previous bench_trajectory.jsonl")
    parser.add_argument("current", help="current bench_trajectory.jsonl")
    parser.add_argument("--fail-ratio", type=float, default=1.25,
                        help="fail when current/previous exceeds this")
    parser.add_argument("--warn-ratio", type=float, default=1.10,
                        help="warn when current/previous exceeds this")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore metrics below this in both records")
    parser.add_argument("--require-positive", default="",
                        help="comma-separated counter keys whose sum across "
                             "the current record must be > 0")
    parser.add_argument("--require-max", default="",
                        help="comma-separated key:limit pairs; every "
                             "occurrence of key across the current records "
                             "(top level and rows) must be <= limit, and the "
                             "key must appear at least once — CI gates "
                             "trace_overhead_ratio:1.05 with this")
    parser.add_argument("--baseline-fallback", default="",
                        help="committed baseline JSONL to gate against when "
                             "the previous trajectory is missing or empty")
    parser.add_argument("--fallback-fail-ratio", type=float, default=3.0,
                        help="fail ratio while gating against the committed "
                             "baseline (different hardware)")
    parser.add_argument("--schema-check", action="store_true",
                        help="validate the current trajectory against the "
                             "registry contract (parse, duplicate keys, "
                             "duplicate/empty records) before comparing")
    parser.add_argument("--expect-records", default="",
                        help="with --schema-check: file of record names "
                             "(alid_bench --list-records) that must all be "
                             "present")
    args = parser.parse_args()

    if args.schema_check:
        errors = schema_check(args.current, args.expect_records)
        for error in errors:
            print(f"SCHEMA {error}")
        if errors:
            print(f"schema check FAILED: {len(errors)} contract violations")
            return 1
        print("schema check ok")

    prev_records = {}
    if args.previous != "-":
        if os.path.exists(args.previous):
            prev_records = load_records(args.previous)
        if not prev_records and args.baseline_fallback:
            if os.path.exists(args.baseline_fallback):
                prev_records = load_records(args.baseline_fallback)
                args.fail_ratio = args.fallback_fail_ratio
                print(f"::notice::no previous bench trajectory at "
                      f"'{args.previous}' — gating against the committed "
                      f"baseline {args.baseline_fallback} at the wider "
                      f"x{args.fail_ratio:.1f} ratio (it was recorded on "
                      f"different hardware)")
            else:
                print(f"warning: baseline fallback "
                      f"{args.baseline_fallback} does not exist either")
    curr_records = load_records(args.current)
    previous = {}
    for record in prev_records.values():
        previous.update(flatten(record))
    current = {}
    for record in curr_records.values():
        current.update(flatten(record))

    totals = report_counters(prev_records, curr_records)
    required = [k for k in args.require_positive.split(",") if k]
    missing = [k for k in required if totals.get(k, 0) <= 0]
    if missing:
        print(f"counter assertion FAILED: expected > 0 for {missing} "
              f"(an optimization silently disabled itself?)")
        return 1
    if required:
        print(f"counter assertion ok: {required} all positive")

    try:
        max_pairs = parse_require_max(args.require_max)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    for key, limit in max_pairs:
        found = collect_key_values(curr_records, key)
        if not found:
            print(f"max assertion FAILED: key '{key}' absent from the "
                  f"current records — the metric stopped being emitted")
            return 1
        over = [(label, value) for label, value in found if value > limit]
        for label, value in over:
            print(f"FAIL {label}: {value:.4f} > {limit:.4f}")
        if over:
            print(f"max assertion FAILED: {len(over)} occurrences of "
                  f"'{key}' exceed {limit:.4f}")
            return 1
        worst = max(value for _, value in found)
        print(f"max assertion ok: {key} <= {limit:.4f} "
              f"({len(found)} occurrences, worst {worst:.4f})")

    if args.previous == "-":
        print("no previous record requested — ratio gate skipped")
        return 0
    if not previous:
        print("no previous wall-time metrics found — nothing to gate")
        return 0
    if not current:
        print("error: current record carries no wall-time metrics")
        return 1

    failures, warnings, compared = [], [], 0
    for path in sorted(set(previous) & set(current)):
        prev, curr = previous[path], current[path]
        if prev < args.min_seconds and curr < args.min_seconds:
            continue
        compared += 1
        ratio = curr / prev if prev > 0 else float("inf")
        line = f"{path}: {prev:.3f}s -> {curr:.3f}s (x{ratio:.2f})"
        if ratio > args.fail_ratio:
            failures.append(line)
            print(f"FAIL {line}")
        elif ratio > args.warn_ratio:
            warnings.append(line)
            print(f"WARN {line}")
        else:
            print(f"  ok {line}")
    for path in sorted(set(current) - set(previous)):
        print(f" new {path}: {current[path]:.3f}s (no baseline)")
    for path in sorted(set(previous) - set(current)):
        print(f"gone {path} (was {previous[path]:.3f}s)")

    print(f"\ncompared {compared} metrics: "
          f"{len(failures)} regressions, {len(warnings)} warnings")
    if failures:
        print(f"perf-trajectory gate FAILED "
              f"(>{args.fail_ratio:.2f}x on {len(failures)} metrics)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
