#!/usr/bin/env python3
"""Perf-trajectory gate: compare two bench JSONL records.

Each input is a bench_trajectory.jsonl as produced by the release-bench CI
job: one single-line JSON record per bench binary (fig7 / table1 / table2 /
stream), each carrying wall-time keys somewhere inside. The script pairs up
every wall-time metric that exists in both records — identified by a stable
path such as ``table2_palid/PALID/executors=8/wall_seconds`` — and compares
current against previous:

  * ratio > --fail-ratio (default 1.25): regression, exit 1
  * ratio > --warn-ratio (default 1.10): warning, exit 0
  * otherwise: ok

Timings below --min-seconds in *both* records are skipped: micro-timings on
shared CI runners are noise, and a 3 ms -> 5 ms move is not a regression.
Metrics present on only one side (new or retired benches) are reported but
never fail the gate.
"""

import argparse
import json
import sys


WALL_KEYS = ("wall_seconds", "p95_batch_seconds", "p95_query_seconds")


def load_records(path):
    """bench-name -> parsed record, from a JSONL file."""
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                print(f"warning: skipping unparsable line in {path}: {error}")
                continue
            name = record.get("bench")
            if name:
                records[name] = record
    return records


def row_label(row):
    """A stable, human-readable identity for one sweep row."""
    parts = []
    for key in ("method", "regime", "dataset", "mode", "window", "batch",
                "executors"):
        if key in row:
            parts.append(f"{key}={row[key]}")
    return "/".join(parts) if parts else "row"


def flatten(record):
    """{metric-path: seconds} for every wall-time leaf of one record."""
    out = {}
    bench = record.get("bench", "bench")
    for key in WALL_KEYS:
        if isinstance(record.get(key), (int, float)):
            out[f"{bench}/{key}"] = float(record[key])
    for row in record.get("rows", []):
        if not isinstance(row, dict):
            continue
        label = row_label(row)
        for key in WALL_KEYS:
            if isinstance(row.get(key), (int, float)):
                out[f"{bench}/{label}/{key}"] = float(row[key])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", help="previous bench_trajectory.jsonl")
    parser.add_argument("current", help="current bench_trajectory.jsonl")
    parser.add_argument("--fail-ratio", type=float, default=1.25,
                        help="fail when current/previous exceeds this")
    parser.add_argument("--warn-ratio", type=float, default=1.10,
                        help="warn when current/previous exceeds this")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore metrics below this in both records")
    args = parser.parse_args()

    previous = {}
    for record in load_records(args.previous).values():
        previous.update(flatten(record))
    current = {}
    for record in load_records(args.current).values():
        current.update(flatten(record))

    if not previous:
        print("no previous wall-time metrics found — nothing to gate")
        return 0
    if not current:
        print("error: current record carries no wall-time metrics")
        return 1

    failures, warnings, compared = [], [], 0
    for path in sorted(set(previous) & set(current)):
        prev, curr = previous[path], current[path]
        if prev < args.min_seconds and curr < args.min_seconds:
            continue
        compared += 1
        ratio = curr / prev if prev > 0 else float("inf")
        line = f"{path}: {prev:.3f}s -> {curr:.3f}s (x{ratio:.2f})"
        if ratio > args.fail_ratio:
            failures.append(line)
            print(f"FAIL {line}")
        elif ratio > args.warn_ratio:
            warnings.append(line)
            print(f"WARN {line}")
        else:
            print(f"  ok {line}")
    for path in sorted(set(current) - set(previous)):
        print(f" new {path}: {current[path]:.3f}s (no baseline)")
    for path in sorted(set(previous) - set(current)):
        print(f"gone {path} (was {previous[path]:.3f}s)")

    print(f"\ncompared {compared} metrics: "
          f"{len(failures)} regressions, {len(warnings)} warnings")
    if failures:
        print(f"perf-trajectory gate FAILED "
              f"(>{args.fail_ratio:.2f}x on {len(failures)} metrics)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
