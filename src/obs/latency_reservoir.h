#ifndef ALID_OBS_LATENCY_RESERVOIR_H_
#define ALID_OBS_LATENCY_RESERVOIR_H_

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace alid::obs {

/// The exponential bucket edges every latency histogram in the runtime
/// shares (1 microsecond to 1 second, a decade per bucket, +inf implicit):
/// ingest batches, queries and publishes all land inside this span on any
/// plausible host, and a shared layout keeps the Prometheus `le` labels
/// comparable across subsystems.
inline std::vector<double> LatencyHistogramEdges() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
}

/// The bounded latency-sample store previously duplicated by
/// StreamStats::batch_seconds and ServeStats::{query,publish}_seconds: at
/// most `max_samples` recent samples, halved (oldest half dropped) when
/// full, so a long-lived stream/server stays bounded while percentile reads
/// keep a recent window. Thread-safe: one short lock per recorded *call*
/// (batched paths record once per call, not per item), and Reset() may race
/// concurrent Record()s — the reservoir simply restarts empty.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t max_samples) : max_samples_(max_samples) {
    ALID_CHECK(max_samples >= 2);
  }

  /// Mirrors every Record() into a registry histogram, so the reservoir's
  /// bounded percentile window ships as a cumulative fixed-bucket profile
  /// through ToJsonFields()/ToPrometheusText(). Unlike the samples the
  /// histogram is never halved or Reset() — exporters treat it as monotone.
  /// Call once, before any concurrent Record(); the histogram must outlive
  /// the reservoir (both normally live on the same owner).
  void AttachHistogram(Histogram* histogram) {
    ALID_CHECK(histogram_ == nullptr && histogram != nullptr);
    histogram_ = histogram;
  }

  void Record(double seconds) {
    // Outside the lock: Observe() is relaxed-atomic all the way down.
    if (histogram_ != nullptr) histogram_->Observe(seconds);
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() >= max_samples_) {
      // Halve amortizes the shift: the profile keeps the recent window.
      samples_.erase(samples_.begin(),
                     samples_.begin() +
                         static_cast<ptrdiff_t>(samples_.size() / 2));
    }
    samples_.push_back(seconds);
  }

  std::vector<double> Samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

  size_t max_samples() const { return max_samples_; }

 private:
  const size_t max_samples_;
  Histogram* histogram_ = nullptr;  // optional mirror, set-once
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace alid::obs

#endif  // ALID_OBS_LATENCY_RESERVOIR_H_
