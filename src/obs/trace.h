#ifndef ALID_OBS_TRACE_H_
#define ALID_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace alid::obs {

/// Runtime observability knobs (tracing side). The recorder also turns on
/// at process start when the ALID_TRACE environment variable is set to
/// anything but "" or "0".
struct ObsOptions {
  bool trace_enabled = true;
  /// Per-thread ring capacity in events; when a thread's ring is full the
  /// oldest events are overwritten (drop-oldest) and the drop is counted
  /// (trace_dropped_events in MetricsRegistry::Global()). 16384 events ≈
  /// 0.75 MiB per recording thread.
  size_t trace_ring_capacity = 16384;
};

/// One completed span. `cat`/`name` must be string literals (the macro's
/// contract): the recorder stores the pointers, never copies of the text,
/// so the enabled hot path allocates nothing per event either.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  int tid = 0;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
};

namespace trace_internal {
/// The single branch a disabled span pays (one relaxed load, no call, no
/// allocation). Written only by TraceRecorder::Enable/Disable.
extern std::atomic<bool> g_trace_enabled;

int64_t NowNanos();
void Record(const char* cat, const char* name, int64_t start_ns,
            int64_t dur_ns);
}  // namespace trace_internal

/// The process-wide span recorder behind ALID_TRACE_SCOPE: per-thread
/// bounded drop-oldest ring buffers (each guarded by its own uncontended
/// mutex, so the tracer is TSan-clean and recording threads never touch
/// each other's cache lines), exported as Chrome trace-event JSON that
/// chrome://tracing and Perfetto load directly.
///
/// Tracing only timestamps — it reads no algorithm state and feeds nothing
/// back — so streamed/served results are bit-identical with tracing on or
/// off (asserted in tests/obs_test.cc).
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Turns recording on; re-arms every thread ring at the given capacity
  /// (buffered events from a previous enablement are dropped).
  void Enable(const ObsOptions& options = {});
  void Disable();
  bool enabled() const {
    return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Drops buffered events and zeroes drop accounting; keeps enabled state.
  void Clear();

  /// Events currently buffered / overwritten-by-wraparound, across threads.
  int64_t buffered_events() const;
  int64_t dropped_events() const;

  /// `{"traceEvents":[...]}` — complete ("ph":"X") events, microsecond
  /// timestamps, one tid per recording thread.
  std::string ExportChromeTrace() const;
  /// Convenience: ExportChromeTrace() to a file. False on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  TraceRecorder() = default;
  friend void trace_internal::Record(const char* cat, const char* name,
                                     int64_t start_ns, int64_t dur_ns);
  struct ThreadBuffer;
  ThreadBuffer* RegisterThisThread();
  void RecordImpl(const char* cat, const char* name, int64_t start_ns,
                  int64_t dur_ns);
  class Impl;
  Impl* impl() const;
};

/// RAII span: times its scope and hands the completed interval to the
/// recorder. When tracing is disabled the constructor is one relaxed load
/// plus one branch and the destructor one branch — no allocation, no call.
class TraceSpan {
 public:
  /// Both arguments must be string literals (or otherwise outlive the
  /// recorder's buffers) — see TraceEvent.
  TraceSpan(const char* cat, const char* name) {
    if (trace_internal::g_trace_enabled.load(std::memory_order_relaxed)) {
      cat_ = cat;
      name_ = name;
      start_ns_ = trace_internal::NowNanos();
    }
  }
  ~TraceSpan() {
    if (cat_ != nullptr) {
      trace_internal::Record(cat_, name_, start_ns_,
                             trace_internal::NowNanos() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* cat_ = nullptr;  // nullptr = span not armed (tracing off)
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace alid::obs

#define ALID_TRACE_CONCAT_INNER(a, b) a##b
#define ALID_TRACE_CONCAT(a, b) ALID_TRACE_CONCAT_INNER(a, b)

/// Times the rest of the enclosing scope as one span, e.g.
///   ALID_TRACE_SCOPE("stream", "absorb_score");
/// `cat` groups related phases (stream / publish / serve / arena); `name`
/// is the phase. Both must be string literals.
#define ALID_TRACE_SCOPE(cat, name)                                   \
  ::alid::obs::TraceSpan ALID_TRACE_CONCAT(alid_trace_span_, __LINE__)( \
      cat, name)

#endif  // ALID_OBS_TRACE_H_
