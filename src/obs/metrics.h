#ifndef ALID_OBS_METRICS_H_
#define ALID_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alid::obs {

/// A monotone event count. Hot paths call Add() with relaxed atomics — no
/// lock, no fence — so a counter bump costs one uncontended RMW. Instruments
/// are created through a MetricsRegistry and live exactly as long as it:
/// callers keep the returned pointer and never own it.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Reset support for the thin-view Reset() paths (StreamStats/ServeStats);
  /// exporters treat the value as monotone between resets.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// A point-in-time level (bytes held, items alive, queue depth).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram: `edges` are inclusive upper bounds of the first
/// N buckets, with an implicit +inf bucket after the last edge. Observe() is
/// a branchless-enough binary search plus one relaxed RMW per observation.
class Histogram {
 public:
  void Observe(double value);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& edges() const { return edges_; }
  /// Per-bucket counts, size edges().size() + 1 (the +inf bucket last).
  std::vector<int64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> edges);
  std::vector<double> edges_;                  // sorted, immutable
  std::vector<std::atomic<int64_t>> buckets_;  // edges_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported sample of one instrument (see MetricsRegistry::Snapshot).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;  ///< Counters, gauges, callback gauges.
  // Histogram payload (empty for scalar kinds).
  std::vector<double> edges;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0.0;
};

/// Named instruments registered once, updated lock-free, exported
/// consistently. Two scopes exist by convention: MetricsRegistry::Global()
/// carries process-wide telemetry (memory trackers, the snapshot arena, the
/// trace recorder, PALID run totals), while subsystems that can have many
/// live instances (OnlineAlid, ClusterServer) each own a per-instance
/// registry so concurrent streams/servers never collide on a name.
///
/// Registration takes a short lock and must use a unique name (ALID_CHECKed);
/// instrument addresses are stable until the registry dies, so hot paths
/// cache the returned pointer and pay only the relaxed atomic per update.
/// Snapshot()/exporters copy the instrument list under the lock, then read
/// values outside it — callback gauges may therefore take their own locks
/// without ordering against the registry's.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Pre-populated with both MemoryTracker
  /// spaces (memory_current_bytes / memory_peak_bytes; the snapshot-arena
  /// space registers itself from serve/snapshot_arena.cc) and the trace
  /// recorder's buffered/dropped event gauges.
  static MetricsRegistry& Global();

  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  /// A gauge whose value is read on export — for telemetry that already
  /// lives in some other object's atomics (ColumnCache, ThreadPool, the
  /// memory trackers). The callback must stay valid for the registry's
  /// lifetime and be safe to call from any thread.
  void AddCallbackGauge(const std::string& name,
                        std::function<int64_t()> read);
  Histogram* AddHistogram(const std::string& name, std::vector<double> edges);

  /// One consistent pass over every instrument, registration order.
  std::vector<MetricSample> Snapshot() const;

  /// Comma-joined `"name":value` pairs without surrounding braces — the
  /// form bench records embed so existing JSON-trajectory keys keep coming
  /// from the registry. Histograms export `name_count` and `name_sum`.
  std::string ToJsonFields() const;
  /// `{"name":value,...}` — one single-line JSON object.
  std::string ToJson() const;
  /// Prometheus text exposition (counter/gauge/histogram types, `alid_`
  /// namespace prefix, cumulative `le` buckets).
  std::string ToPrometheusText() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<int64_t()> callback;  // callback gauges only
  };
  void CheckNameFree(const std::string& name) const;  // caller holds mu_

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace alid::obs

#endif  // ALID_OBS_METRICS_H_
