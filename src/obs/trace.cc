#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace alid::obs {

namespace trace_internal {

std::atomic<bool> g_trace_enabled{false};

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Record(const char* cat, const char* name, int64_t start_ns,
            int64_t dur_ns) {
  TraceRecorder::Global().RecordImpl(cat, name, start_ns, dur_ns);
}

}  // namespace trace_internal

/// One recording thread's ring. Owned by the recorder, never destroyed
/// (threads cache the pointer in a thread_local), so a thread that outlives
/// an Enable/Clear cycle keeps a valid buffer. Each ring has its own mutex:
/// recording threads never contend with each other, only with an export or
/// clear touching their ring.
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;  // grows to capacity, then wraps
  size_t capacity = 0;
  uint64_t head = 0;  // events ever recorded; head - ring.size() dropped
  int tid = 0;
};

class TraceRecorder::Impl {
 public:
  std::mutex mu;  // guards buffers + ring_capacity; ordered before ring mus
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  size_t ring_capacity = ObsOptions{}.trace_ring_capacity;
};

TraceRecorder::Impl* TraceRecorder::impl() const {
  static Impl* instance = new Impl();
  return instance;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    // Drop/buffer accounting rides the global registry so a full ring is
    // visible in every metrics export, not just the trace file.
    MetricsRegistry::Global().AddCallbackGauge("trace_buffered_events", [] {
      return TraceRecorder::Global().buffered_events();
    });
    MetricsRegistry::Global().AddCallbackGauge("trace_dropped_events", [] {
      return TraceRecorder::Global().dropped_events();
    });
    return r;
  }();
  return *recorder;
}

void TraceRecorder::Enable(const ObsOptions& options) {
  ALID_CHECK(options.trace_ring_capacity >= 2);
  Impl* state = impl();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->ring_capacity = options.trace_ring_capacity;
    for (auto& buffer : state->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->ring.clear();
      buffer->ring.shrink_to_fit();
      buffer->capacity = state->ring_capacity;
      buffer->head = 0;
    }
  }
  trace_internal::g_trace_enabled.store(options.trace_enabled,
                                        std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  trace_internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  for (auto& buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->head = 0;
  }
}

TraceRecorder::ThreadBuffer* TraceRecorder::RegisterThisThread() {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->capacity = state->ring_capacity;
  buffer->tid = static_cast<int>(state->buffers.size()) + 1;
  ThreadBuffer* raw = buffer.get();
  state->buffers.push_back(std::move(buffer));
  return raw;
}

void TraceRecorder::RecordImpl(const char* cat, const char* name,
                               int64_t start_ns, int64_t dur_ns) {
  // A span armed before a Disable() still reaches here; drop it so export
  // sees only intervals from enabled windows.
  if (!enabled()) return;
  static thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) buffer = RegisterThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  TraceEvent event;
  event.cat = cat;
  event.name = name;
  event.tid = buffer->tid;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  if (buffer->ring.size() < buffer->capacity) {
    buffer->ring.push_back(event);
  } else {
    buffer->ring[static_cast<size_t>(buffer->head % buffer->capacity)] =
        event;
  }
  ++buffer->head;
}

int64_t TraceRecorder::buffered_events() const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  int64_t total = 0;
  for (const auto& buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<int64_t>(buffer->ring.size());
  }
  return total;
}

int64_t TraceRecorder::dropped_events() const {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  int64_t total = 0;
  for (const auto& buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->head > buffer->ring.size()) {
      total += static_cast<int64_t>(buffer->head - buffer->ring.size());
    }
  }
  return total;
}

std::string TraceRecorder::ExportChromeTrace() const {
  Impl* state = impl();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (const auto& buffer : state->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const size_t size = buffer->ring.size();
      if (size == 0) continue;
      // Oldest-first: once wrapped, the slot at head % capacity is oldest.
      const size_t oldest =
          buffer->head > size
              ? static_cast<size_t>(buffer->head % buffer->capacity)
              : 0;
      for (size_t i = 0; i < size; ++i) {
        events.push_back(buffer->ring[(oldest + i) % size]);
      }
    }
  }
  int64_t epoch_ns = 0;
  for (const TraceEvent& event : events) {
    if (epoch_ns == 0 || event.start_ns < epoch_ns) epoch_ns = event.start_ns;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  std::string out = "{\"traceEvents\":[";
  char line[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    const double ts_us =
        static_cast<double>(event.start_ns - epoch_ns) / 1000.0;
    const double dur_us = static_cast<double>(event.dur_ns) / 1000.0;
    const int n = std::snprintf(
        line, sizeof(line),
        "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
        "\"cat\":\"%s\",\"name\":\"%s\"}",
        i == 0 ? "" : ",", event.tid, ts_us, dur_us, event.cat, event.name);
    if (n > 0) out.append(line, static_cast<size_t>(n));
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::string json = ExportChromeTrace();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

namespace {

/// ALID_TRACE=1 (anything but "" / "0") arms tracing at process start.
/// This initializer lives in the same TU as trace_internal::Record, so any
/// binary with at least one ALID_TRACE_SCOPE links it in.
[[maybe_unused]] const bool g_trace_env_applied = [] {
  const char* env = std::getenv("ALID_TRACE");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    TraceRecorder::Global().Enable();
  }
  return true;
}();

}  // namespace

}  // namespace alid::obs
