#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"
#include "common/memory_tracker.h"

namespace alid::obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buffer,
                std::min<size_t>(static_cast<size_t>(n), sizeof(buffer) - 1));
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
std::string PromName(const std::string& name) {
  std::string out = "alid_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

const char* PromType(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1) {
  ALID_CHECK(std::is_sorted(edges_.begin(), edges_.end()));
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  buckets_[static_cast<size_t>(it - edges_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add: identical semantics,
  // no dependence on the C++20 floating-point RMW being lock-free.
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = [] {
    auto* registry = new MetricsRegistry();
    registry->AddCallbackGauge("memory_current_bytes", [] {
      return MemoryTracker::Global().current_bytes();
    });
    registry->AddCallbackGauge("memory_peak_bytes", [] {
      return MemoryTracker::Global().peak_bytes();
    });
    return registry;
  }();
  return *global;
}

void MetricsRegistry::CheckNameFree(const std::string& name) const {
  ALID_CHECK(!name.empty());
  for (const Entry& entry : entries_) {
    ALID_CHECK_MSG(entry.name != name, name.c_str());
  }
}

Counter* MetricsRegistry::AddCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = MetricKind::kCounter;
  entry.counter.reset(new Counter());
  return entry.counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = MetricKind::kGauge;
  entry.gauge.reset(new Gauge());
  return entry.gauge.get();
}

void MetricsRegistry::AddCallbackGauge(const std::string& name,
                                       std::function<int64_t()> read) {
  ALID_CHECK(read != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = MetricKind::kGauge;
  entry.callback = std::move(read);
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.kind = MetricKind::kHistogram;
  entry.histogram.reset(new Histogram(std::move(edges)));
  return entry.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  // Copy the instrument list under the lock, read values outside it:
  // instrument addresses are stable (registration only appends), and
  // callback gauges may take their owners' locks without ordering against
  // mu_. entries_.size() is re-read under the lock only — a concurrent
  // registration either makes this snapshot or the next.
  struct Ref {
    const Entry* entry;
  };
  std::vector<Ref> refs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    refs.reserve(entries_.size());
    for (const Entry& entry : entries_) refs.push_back(Ref{&entry});
  }
  std::vector<MetricSample> samples;
  samples.reserve(refs.size());
  for (const Ref& ref : refs) {
    const Entry& entry = *ref.entry;
    MetricSample sample;
    sample.name = entry.name;
    sample.kind = entry.kind;
    if (entry.counter != nullptr) {
      sample.value = entry.counter->value();
    } else if (entry.gauge != nullptr) {
      sample.value = entry.gauge->value();
    } else if (entry.callback != nullptr) {
      sample.value = entry.callback();
    } else if (entry.histogram != nullptr) {
      sample.edges = entry.histogram->edges();
      sample.buckets = entry.histogram->BucketCounts();
      sample.count = entry.histogram->count();
      sample.sum = entry.histogram->sum();
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string MetricsRegistry::ToJsonFields() const {
  std::string out;
  bool first = true;
  for (const MetricSample& sample : Snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    if (sample.kind == MetricKind::kHistogram) {
      AppendF(&out, "\"%s_count\":%" PRId64 ",\"%s_sum\":%.6g",
              sample.name.c_str(), sample.count, sample.name.c_str(),
              sample.sum);
    } else {
      AppendF(&out, "\"%s\":%" PRId64, sample.name.c_str(), sample.value);
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  out += ToJsonFields();
  out += "}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::string out;
  for (const MetricSample& sample : Snapshot()) {
    const std::string name = PromName(sample.name);
    AppendF(&out, "# TYPE %s %s\n", name.c_str(), PromType(sample.kind));
    if (sample.kind == MetricKind::kHistogram) {
      int64_t cumulative = 0;
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        cumulative += sample.buckets[i];
        if (i < sample.edges.size()) {
          AppendF(&out, "%s_bucket{le=\"%.9g\"} %" PRId64 "\n", name.c_str(),
                  sample.edges[i], cumulative);
        } else {
          AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRId64 "\n", name.c_str(),
                  cumulative);
        }
      }
      AppendF(&out, "%s_sum %.9g\n", name.c_str(), sample.sum);
      AppendF(&out, "%s_count %" PRId64 "\n", name.c_str(), sample.count);
    } else {
      AppendF(&out, "%s %" PRId64 "\n", name.c_str(), sample.value);
    }
  }
  return out;
}

}  // namespace alid::obs
