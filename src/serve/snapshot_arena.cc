#include "serve/snapshot_arena.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace alid {

MemoryTracker& SnapshotArenaTracker() {
  // The arena tracker is also the process's "arena_*" gauge source: the
  // global registry exports the serving tier's attributed footprint without
  // any snapshot code having to push updates.
  static MemoryTracker* tracker = [] {
    auto* t = new MemoryTracker();
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "arena_current_bytes", [t] { return t->current_bytes(); });
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "arena_peak_bytes", [t] { return t->peak_bytes(); });
    return t;
  }();
  return *tracker;
}

ClusterBlock::~ClusterBlock() {
  // An event marker, not a measurement: the payload vectors and both
  // charges destroy after this body, so the span records *when* a block
  // left the arena rather than how long the frees took.
  ALID_TRACE_SCOPE("arena", "release");
}

size_t ClusterBlock::MemoryBytes() const {
  return rows.size() * sizeof(Scalar) + weights.size() * sizeof(Scalar) +
         source_ids.size() * sizeof(Index) +
         member_keys.size() * sizeof(uint64_t) +
         sketch_members.size() * sizeof(Index) +
         sketch_weights.size() * sizeof(Scalar) +
         sketch_rest.size() * sizeof(Scalar) + cluster_soa.MemoryBytes() +
         sketch_soa.MemoryBytes();
}

void ClusterBlock::Seal() {
  ALID_TRACE_SCOPE("arena", "seal");
  const int64_t bytes = static_cast<int64_t>(MemoryBytes());
  global_charge_.Adjust(bytes);
  arena_charge_.Adjust(bytes);
}

}  // namespace alid
