#include "serve/snapshot_arena.h"

namespace alid {

MemoryTracker& SnapshotArenaTracker() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

size_t ClusterBlock::MemoryBytes() const {
  return rows.size() * sizeof(Scalar) + weights.size() * sizeof(Scalar) +
         source_ids.size() * sizeof(Index) +
         member_keys.size() * sizeof(uint64_t) +
         sketch_members.size() * sizeof(Index) +
         sketch_weights.size() * sizeof(Scalar) +
         sketch_rest.size() * sizeof(Scalar) + cluster_soa.MemoryBytes() +
         sketch_soa.MemoryBytes();
}

void ClusterBlock::Seal() {
  const int64_t bytes = static_cast<int64_t>(MemoryBytes());
  global_charge_.Adjust(bytes);
  arena_charge_.Adjust(bytes);
}

}  // namespace alid
