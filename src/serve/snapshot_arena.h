#ifndef ALID_SERVE_SNAPSHOT_ARENA_H_
#define ALID_SERVE_SNAPSHOT_ARENA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/memory_tracker.h"
#include "common/types.h"
#include "simd/soa_block.h"

namespace alid {

/// The snapshot arena's own MemoryTracker resource space: every sealed
/// ClusterBlock charges its bytes here (in addition to the process-global
/// tracker), so the serving tier's arena footprint — across every retained
/// generation, counting each shared block once — stays separately
/// attributable, in the style of sel4-gpi's per-resource-space accounting.
/// current_bytes() returns to its pre-serving baseline once every snapshot
/// (server ring included) is torn down; the teardown tests pin this.
MemoryTracker& SnapshotArenaTracker();

/// One cluster's immutable serving payload, allocated in the shared snapshot
/// arena: the member rows, simplex weights, source ids, per-member LSH
/// bucket keys, support-sketch slices and SIMD SoA tiles that every query
/// path reads. A block is built and mutated only inside one snapshot build
/// (which holds the sole reference), then sealed and published behind
/// shared_ptr<const ClusterBlock>; from then on it is immutable, so a
/// successor snapshot whose stream (uid, version) pair proves the cluster
/// unchanged *shares* the block with a refcount bump instead of copying it —
/// publish cost in bytes is the changed clusters only, and bounded time
/// travel over a ring of generations costs only each generation's unshared
/// blocks. Bytes are charged exactly once (at Seal) to both the global
/// MemoryTracker and SnapshotArenaTracker(), and released when the last
/// referencing snapshot dies.
struct ClusterBlock {
  ClusterBlock() = default;
  /// Traced ("arena"/"release"): the last referencing snapshot's teardown
  /// returns the block's bytes to both trackers (member charges).
  ~ClusterBlock();
  ClusterBlock(const ClusterBlock&) = delete;
  ClusterBlock& operator=(const ClusterBlock&) = delete;

  Index count = 0;          ///< Members of the cluster.
  int dim = 0;              ///< Row dimensionality.
  int keys_per_member = 0;  ///< LSH tables (member_keys stride).

  /// count x dim row-major member rows, in member (support) order.
  std::vector<Scalar> rows;
  /// Simplex weights, member order (parallel to rows).
  std::vector<Scalar> weights;
  /// Member -> source id (dataset row / stream slot).
  std::vector<Index> source_ids;
  /// Per-member LSH bucket keys, count x keys_per_member row-major — kept so
  /// a shared block's members re-enter the successor snapshot's index
  /// without re-hashing.
  std::vector<uint64_t> member_keys;
  /// Support sketch over the weights, cluster-LOCAL member ordinals in
  /// descending-weight order (empty when disengaged), with the per-position
  /// weights and rest-weights that drive the branch-and-bound walk.
  std::vector<Index> sketch_members;
  std::vector<Scalar> sketch_weights;
  std::vector<Scalar> sketch_rest;
  /// Dimension-major SIMD tiles of all member rows (member order) and of
  /// the sketch prefix (descending-weight order); empty when the configured
  /// norm has no tile kernel.
  SoaBlock cluster_soa;
  SoaBlock sketch_soa;
  /// x^T A x recomputed from the build's own kernel entries (see
  /// ClusterSnapshotInfo::verified_density).
  Scalar verified_density = 0.0;

  /// Row-major view of member row i.
  std::span<const Scalar> row(Index i) const {
    return {rows.data() + static_cast<size_t>(i) * dim,
            static_cast<size_t>(dim)};
  }
  std::span<const Scalar> weights_span() const {
    return {weights.data(), weights.size()};
  }

  /// Bytes of the block's payload vectors and tiles — what sharing saves and
  /// what Seal() charges.
  size_t MemoryBytes() const;

  /// Charges MemoryBytes() to the global tracker and the arena space. Call
  /// exactly once, after the build filled every field; destruction releases
  /// both charges.
  void Seal();

 private:
  ScopedMemoryCharge global_charge_{0};
  ScopedMemoryCharge arena_charge_{0, &SnapshotArenaTracker()};
};

}  // namespace alid

#endif  // ALID_SERVE_SNAPSHOT_ARENA_H_
