#ifndef ALID_SERVE_CLUSTER_SNAPSHOT_H_
#define ALID_SERVE_CLUSTER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "core/cluster.h"
#include "core/support_sketch.h"
#include "lsh/lsh_index.h"
#include "serve/snapshot_arena.h"
#include "simd/soa_block.h"

namespace alid {

class OnlineAlid;
class ThreadPool;

/// Parameters of a snapshot build. For scoring parity with a detector, pass
/// the detector's own affinity/LSH parameters: the LSH seed fixes the
/// Gaussian projections, so a query point hashes to the same buckets in the
/// snapshot's per-snapshot index as in the source index — which makes the
/// snapshot's candidate clusters (and hence Assign) *exactly* the Theorem-1
/// absorb decision the source detector would take.
struct ClusterSnapshotOptions {
  /// Affinity kernel the supports were detected under.
  AffinityParams affinity;
  /// LSH parameters of the rebuilt per-snapshot index (seed included).
  LshParams lsh;
  /// Absorb slack of the assignment rule (see OnlineAlidOptions).
  double absorb_slack = 0.05;
  /// Per-cluster support-sketch sizing for the serving hot path (the same
  /// branch-and-bound filter the stream's absorb scoring uses; prefix = 0
  /// disables it and every candidate scores exactly). Answers are
  /// bit-identical either way — the sketch only skips provably hopeless
  /// exact scorings.
  SupportSketchParams sketch;
  /// Optional pool for the build's parallel passes (LSH key computation and
  /// the density verification; build-time only — queries never touch it).
  ThreadPool* pool = nullptr;
  /// Chunk grain of the build's parallel passes; 0 auto.
  int64_t grain = 0;
};

/// Cost accounting of one snapshot build — what the incremental export
/// (FromStream with a previous snapshot) actually saved.
struct SnapshotBuildInfo {
  int clusters_total = 0;
  /// Clusters inherited wholesale from the previous snapshot: their arena
  /// blocks (member rows, weights, LSH keys, verified density, sketch, SoA
  /// tiles) moved as shared refcount bumps because the stream's
  /// (uid, version) pair proved them unchanged.
  int clusters_reused = 0;
  Index rows_reused = 0;    ///< Member rows shared from the predecessor.
  Index rows_rebuilt = 0;   ///< Member rows gathered + re-hashed from source.
  /// Arena-block bytes this build *shared* with its predecessor (refcount
  /// bumps — no copy, no new charge) vs. bytes it newly materialized and
  /// charged. bytes_shared > 0 on a steady-state incremental publish is the
  /// O(changed-bytes) property CI gates on.
  int64_t bytes_shared = 0;
  int64_t bytes_copied = 0;
  double build_seconds = 0.0;
};

/// The shared shape of every answered query — the single result vocabulary
/// of the serve API (ClusterServer::Query). AssignResult and ScoredCluster
/// extend it without changing its meaning.
struct QueryOutcome {
  /// Snapshot cluster id, or -1 when no candidate cluster absorbs the point.
  int cluster = -1;
  /// pi(s_c, x) of the cluster (0 when unassigned).
  Scalar affinity = 0.0;
  /// Signed margin over the absorb threshold density * (1 - absorb_slack)
  /// (0 when unassigned; may be negative for ranked non-absorbable
  /// candidates).
  Scalar margin = 0.0;
  /// Generation of the snapshot that answered (0 when offline).
  uint64_t generation = 0;

  bool operator==(const QueryOutcome&) const = default;
};

/// The outcome of one assignment query against a snapshot: the QueryOutcome
/// shape plus the query's sketch-filter activity.
struct AssignOutcome : QueryOutcome {
  /// Candidate clusters the support-sketch bound rejected for this query —
  /// full-support scorings skipped without changing the answer.
  int32_t sketch_prunes = 0;
  /// Sketch-engaged candidates whose bound was inconclusive and scored
  /// exactly.
  int32_t sketch_exact = 0;
};

/// One scored candidate of a TopKClusters query.
struct ScoredCluster : QueryOutcome {
  /// True iff the affinity clears the absorb threshold
  /// density * (1 - absorb_slack), i.e. margin > 0; the top absorbable
  /// candidate is exactly Assign's answer.
  bool absorbable = false;

  bool operator==(const ScoredCluster&) const = default;
};

/// Copy-out of one cluster's metadata (safe to hold across snapshot swaps).
struct ClusterSnapshotInfo {
  int cluster = -1;  ///< -1 when the queried id was out of range.
  Index size = 0;
  Scalar density = 0.0;
  /// x^T A x recomputed from the snapshot build's own kernel entries
  /// (through a build-scratch column cache) — an integrity check that the
  /// exported supports and the reported density describe the same simplex.
  Scalar verified_density = 0.0;
  Index seed = -1;     ///< Source id of the detection seed.
  IndexList members;   ///< Source ids (dataset rows / stream slots).
  std::vector<Scalar> weights;
};

/// An immutable, self-contained view of one detection state, built for
/// serving: every dominant cluster's payload (compacted member rows, simplex
/// weights, source ids, per-member LSH keys, support sketch, SoA tiles)
/// lives in a refcounted arena block (see snapshot_arena.h), plus a
/// per-snapshot LSH index over the members for candidate retrieval. The
/// incremental export *shares* an unchanged cluster's block with the
/// predecessor snapshot instead of copying it, so consecutive generations
/// cost only their changed bytes — and a server's history ring of old
/// generations is nearly free. Every query method is const, touches only
/// snapshot-owned state plus thread-local scratch, and is therefore safe for
/// any number of concurrent readers — the read side of the serving
/// subsystem's RCU design.
class ClusterSnapshot {
 public:
  /// Builds from any detector output shaped as clusters over `data` — the
  /// common export path of AlidDetector::DetectAll and Palid::Detect
  /// (apply Filtered() first for the paper's density cut). `generation`
  /// tags the snapshot for publication ordering.
  static std::shared_ptr<const ClusterSnapshot> FromClusters(
      const Dataset& data, std::span<const Cluster> clusters,
      const ClusterSnapshotOptions& options, uint64_t generation = 0);

  /// Convenience overload for a DetectionResult.
  static std::shared_ptr<const ClusterSnapshot> FromDetection(
      const Dataset& data, const DetectionResult& result,
      const ClusterSnapshotOptions& options, uint64_t generation = 0);

  /// Exports the live state of a stream. Affinity/LSH parameters, absorb
  /// slack and the sketch sizing are taken from the stream's own options, so
  /// Assign reproduces the stream's absorb decision bit for bit (and the
  /// stream's freshly maintained support sketches are lifted into the
  /// snapshot instead of being rebuilt); the generation is the stream's
  /// arrival count. The stream must not be mutated during the export (the
  /// ingest loop exports between batches); afterwards the snapshot is fully
  /// decoupled.
  ///
  /// `previous` enables the incremental export: any cluster whose stream
  /// (uid, version) pair matches a cluster of the previous snapshot — which
  /// proves its members, weights, density and member rows did not change —
  /// *shares* that snapshot's arena block (rows, weights, per-member LSH
  /// keys, verified density, sketch, SoA tiles) by refcount instead of
  /// gathering, re-hashing and re-verifying, turning publish cost from
  /// O(window) into O(changed bytes). The result is deep-equal to a
  /// from-scratch build (the property tests pin this every generation); pass
  /// nullptr for the from-scratch behavior.
  static std::shared_ptr<const ClusterSnapshot> FromStream(
      const OnlineAlid& stream, ThreadPool* pool = nullptr,
      std::shared_ptr<const ClusterSnapshot> previous = nullptr);

  int num_clusters() const {
    return static_cast<int>(cluster_begin_.size()) - 1;
  }
  Index num_members() const { return cluster_begin_.back(); }
  int dim() const { return dim_; }
  uint64_t generation() const { return generation_; }
  double absorb_slack() const { return absorb_slack_; }

  /// The Theorem-1 absorb decision for an arbitrary point: candidates are
  /// the clusters of the point's LSH collisions, the winner the candidate
  /// with the largest positive margin pi(s_c, x) - density_c * (1 - slack)
  /// (lowest id on ties — the same rule as OnlineAlid::ScoreArrival).
  /// outcome.generation carries this snapshot's generation.
  AssignOutcome Assign(std::span<const Scalar> point) const;

  /// Assign for a batch of queries: `points` holds count * dim scalars,
  /// row-major; `outcomes` must hold count entries. Each outcome — winner,
  /// affinity, margin, sketch counters — is bit-identical to a standalone
  /// Assign of the same point: the batch only reorders the *work* query-
  /// major (outer loop over clusters in ascending id, inner loop over a
  /// block of queries, each with its own incumbent), so one cluster's SoA
  /// tiles are streamed through the cache once per query block instead of
  /// once per query. Every candidate visit still happens in ascending
  /// cluster id with the same per-query incumbent sequence, so prune
  /// decisions — and the counters — cannot diverge from the scalar order.
  void AssignBatch(std::span<const Scalar> points,
                   std::span<AssignOutcome> outcomes) const;

  /// The candidate clusters of `point` scored by pi(s_c, x), descending
  /// (lowest id on ties), truncated to k.
  std::vector<ScoredCluster> TopKClusters(std::span<const Scalar> point,
                                          int k) const;

  /// Copy-out of cluster `c`'s metadata; info.cluster == -1 when out of
  /// range.
  ClusterSnapshotInfo ClusterInfo(int c) const;

  Scalar density(int c) const { return density_[c]; }
  Index cluster_size(int c) const {
    return cluster_begin_[c + 1] - cluster_begin_[c];
  }
  /// Stream identity of cluster `c` ((0, 0) when the source carries none) —
  /// what the incremental export and ClusterServer::GenerationDiff match on.
  uint64_t cluster_uid(int c) const { return src_uid_[c]; }
  uint64_t cluster_version(int c) const { return src_version_[c]; }

  /// What this build cost and what the incremental path saved/shared.
  const SnapshotBuildInfo& build_info() const { return build_info_; }

  /// Read-only view of cluster `c`'s support sketch (empty spans when the
  /// sketch is disengaged for that cluster) — the deep-equality tests
  /// compare these across incremental and from-scratch builds.
  struct SketchView {
    /// Cluster-local member ordinals, descending weight.
    std::span<const Index> members;
    std::span<const Scalar> weights;
    /// Weight mass left after each prefix position (see SupportSketch).
    std::span<const Scalar> rest_weights;
    bool engaged() const { return !members.empty(); }
  };
  SketchView sketch(int c) const;

  /// The refcounted arena blocks backing this snapshot, one per cluster —
  /// shared with other generations that inherited the same clusters. The
  /// server's history accounting walks these to charge each block once.
  std::span<const std::shared_ptr<const ClusterBlock>> blocks() const {
    return {blocks_.data(), blocks_.size()};
  }

  /// Per-snapshot substrate observability: column-cache hits of the build's
  /// density-verification pass (the build-scratch oracle is discarded after
  /// the pass — only its counters survive) and the LSH footprint.
  int64_t verification_cache_hits() const { return verification_cache_hits_; }
  const LshIndex& lsh() const { return *lsh_; }

 private:
  ClusterSnapshot() = default;

  // Stream-side identity of the exported clusters (what FromStream knows
  // beyond the bare cluster list); drives the incremental re-use decision.
  struct StreamIdentity {
    const OnlineAlid* stream = nullptr;
    const ClusterSnapshot* previous = nullptr;
  };

  static std::shared_ptr<const ClusterSnapshot> Build(
      const Dataset& data, std::span<const Cluster> clusters,
      const ClusterSnapshotOptions& options, uint64_t generation,
      const StreamIdentity* identity);

  // True iff `previous` was built under the same scoring/indexing
  // parameters, so its per-cluster arena blocks are shareable verbatim.
  bool CompatibleWith(const ClusterSnapshotOptions& options, int dim) const;

  // pi(s_c, x): the weighted kernel sum over cluster c's support, in member
  // order — the same summation order as OnlineAlid::ClusterAffinity, so the
  // value is bit-identical to the stream's own scoring.
  Scalar ClusterAffinity(int c, std::span<const Scalar> point) const;
  // Branch-and-bound walk over cluster c's sketch prefix: true when some
  // checkpoint margin bound — (partial + rest_weight + guard) - threshold,
  // a certified upper bound on the exact margin — drops to 0 or to
  // `incumbent` or below, i.e. the cluster provably cannot win and exact
  // scoring may be skipped. TopK calls it with threshold = 0 so the bound
  // compares directly against the k-th best affinity. Only call for
  // clusters with an engaged sketch.
  bool SketchRejects(int c, std::span<const Scalar> point, Scalar threshold,
                     Scalar incumbent) const;
  // Marks the clusters of the point's LSH collisions in thread-local
  // scratch and returns the collision list.
  const std::vector<Index>& CandidateMembers(
      std::span<const Scalar> point) const;

  int dim_ = 0;
  // One refcounted arena block per cluster (see snapshot_arena.h): all
  // member-indexed payload lives there, shared with the predecessor for
  // unchanged clusters.
  std::vector<std::shared_ptr<const ClusterBlock>> blocks_;
  std::vector<Index> cluster_begin_; // cluster -> first global member (C + 1)
  std::vector<int> cluster_of_;      // global member position -> cluster id
  std::vector<Scalar> density_;      // per cluster
  std::vector<Index> seed_;          // per cluster, source ids
  // Stream identity of each cluster ((0, 0) when the source carries none):
  // the key the *next* incremental export matches against.
  std::vector<uint64_t> src_uid_;
  std::vector<uint64_t> src_version_;
  bool simd_norm_ = false;
  SupportSketchParams sketch_params_;
  double absorb_slack_ = 0.05;
  std::unique_ptr<AffinityFunction> affinity_fn_;
  // Per-snapshot dataset-free LSH index over the global member positions
  // (rebuilt clusters hash their block rows, shared clusters re-insert their
  // inherited keys — identical buckets either way).
  std::unique_ptr<LshIndex> lsh_;
  int64_t verification_cache_hits_ = 0;
  uint64_t generation_ = 0;
  SnapshotBuildInfo build_info_;
};

}  // namespace alid

#endif  // ALID_SERVE_CLUSTER_SNAPSHOT_H_
