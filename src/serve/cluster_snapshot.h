#ifndef ALID_SERVE_CLUSTER_SNAPSHOT_H_
#define ALID_SERVE_CLUSTER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "common/dataset.h"
#include "core/cluster.h"
#include "lsh/lsh_index.h"

namespace alid {

class OnlineAlid;
class ThreadPool;

/// Parameters of a snapshot build. For scoring parity with a detector, pass
/// the detector's own affinity/LSH parameters: the LSH seed fixes the
/// Gaussian projections, so a query point hashes to the same buckets in the
/// snapshot's per-snapshot index as in the source index — which makes the
/// snapshot's candidate clusters (and hence Assign) *exactly* the Theorem-1
/// absorb decision the source detector would take.
struct ClusterSnapshotOptions {
  /// Affinity kernel the supports were detected under.
  AffinityParams affinity;
  /// LSH parameters of the rebuilt per-snapshot index (seed included).
  LshParams lsh;
  /// Absorb slack of the assignment rule (see OnlineAlidOptions).
  double absorb_slack = 0.05;
  /// Optional pool for the build's density-verification pass (build-time
  /// only; queries never touch it).
  ThreadPool* pool = nullptr;
  /// Chunk grain of the build's parallel pass; 0 auto.
  int64_t grain = 0;
};

/// The outcome of one assignment query against a snapshot.
struct AssignOutcome {
  /// Snapshot cluster id, or -1 when no candidate cluster absorbs the point.
  int cluster = -1;
  /// pi(s_c, x) of the winning cluster (0 when unassigned).
  Scalar affinity = 0.0;
  /// Winning margin over the absorb threshold (0 when unassigned).
  Scalar margin = 0.0;
};

/// One scored candidate of a TopKClusters query.
struct ScoredCluster {
  int cluster = -1;
  /// pi(s_c, x) — Theorem 1's infectivity of the point against the support.
  Scalar affinity = 0.0;
  /// True iff the affinity clears the absorb threshold
  /// density * (1 - absorb_slack); the top absorbable candidate is exactly
  /// Assign's answer.
  bool absorbable = false;
};

/// Copy-out of one cluster's metadata (safe to hold across snapshot swaps).
struct ClusterSnapshotInfo {
  int cluster = -1;  ///< -1 when the queried id was out of range.
  Index size = 0;
  Scalar density = 0.0;
  /// x^T A x recomputed from the snapshot's own kernel entries at build time
  /// (through the per-snapshot column cache) — an integrity check that the
  /// exported supports and the reported density describe the same simplex.
  Scalar verified_density = 0.0;
  Index seed = -1;     ///< Source id of the detection seed.
  IndexList members;   ///< Source ids (dataset rows / stream slots).
  std::vector<Scalar> weights;
};

/// An immutable, self-contained view of one detection state, built for
/// serving: the compacted member rows of every dominant cluster (copied, so
/// the source dataset/stream may mutate or die), their simplex weights and
/// densities, a per-snapshot LSH index over the members for candidate
/// retrieval, and a per-snapshot lazy oracle (column cache included) for the
/// build's density verification. Every query method is const, touches only
/// snapshot-owned state plus thread-local scratch, and is therefore safe for
/// any number of concurrent readers — the read side of the serving
/// subsystem's RCU design.
class ClusterSnapshot {
 public:
  /// Builds from any detector output shaped as clusters over `data` — the
  /// common export path of AlidDetector::DetectAll and Palid::Detect
  /// (apply Filtered() first for the paper's density cut). `generation`
  /// tags the snapshot for publication ordering.
  static std::shared_ptr<const ClusterSnapshot> FromClusters(
      const Dataset& data, std::span<const Cluster> clusters,
      const ClusterSnapshotOptions& options, uint64_t generation = 0);

  /// Convenience overload for a DetectionResult.
  static std::shared_ptr<const ClusterSnapshot> FromDetection(
      const Dataset& data, const DetectionResult& result,
      const ClusterSnapshotOptions& options, uint64_t generation = 0);

  /// Exports the live state of a stream. Affinity/LSH parameters and absorb
  /// slack are taken from the stream's own options, so Assign reproduces the
  /// stream's absorb decision bit for bit; the generation is the stream's
  /// arrival count. The stream must not be mutated during the export (the
  /// ingest loop exports between batches); afterwards the snapshot is fully
  /// decoupled.
  static std::shared_ptr<const ClusterSnapshot> FromStream(
      const OnlineAlid& stream, ThreadPool* pool = nullptr);

  int num_clusters() const {
    return static_cast<int>(cluster_begin_.size()) - 1;
  }
  Index num_members() const { return members_.size(); }
  int dim() const { return members_.dim(); }
  uint64_t generation() const { return generation_; }
  double absorb_slack() const { return absorb_slack_; }

  /// The Theorem-1 absorb decision for an arbitrary point: candidates are
  /// the clusters of the point's LSH collisions, the winner the candidate
  /// with the largest positive margin pi(s_c, x) - density_c * (1 - slack)
  /// (lowest id on ties — the same rule as OnlineAlid::ScoreArrival).
  AssignOutcome Assign(std::span<const Scalar> point) const;

  /// The candidate clusters of `point` scored by pi(s_c, x), descending
  /// (lowest id on ties), truncated to k.
  std::vector<ScoredCluster> TopKClusters(std::span<const Scalar> point,
                                          int k) const;

  /// Copy-out of cluster `c`'s metadata; info.cluster == -1 when out of
  /// range.
  ClusterSnapshotInfo ClusterInfo(int c) const;

  Scalar density(int c) const { return density_[c]; }

  /// Per-snapshot substrate observability (cache hits of the build's
  /// verification pass; LSH footprint).
  const LazyAffinityOracle& oracle() const { return *oracle_; }
  const LshIndex& lsh() const { return *lsh_; }

 private:
  ClusterSnapshot() = default;

  // pi(s_c, x): the weighted kernel sum over cluster c's support, in member
  // order — the same summation order as OnlineAlid::ClusterAffinity, so the
  // value is bit-identical to the stream's own scoring.
  Scalar ClusterAffinity(int c, std::span<const Scalar> point) const;
  // Marks the clusters of the point's LSH collisions in thread-local
  // scratch and returns the collision list.
  const std::vector<Index>& CandidateMembers(
      std::span<const Scalar> point) const;

  Dataset members_;                  // compacted member rows, cluster-major
  std::vector<Index> source_id_;     // snapshot-local -> source id
  std::vector<int> cluster_of_;      // snapshot-local -> cluster id
  std::vector<Index> cluster_begin_; // cluster -> first member (C + 1 edges)
  std::vector<Scalar> weights_;      // parallel to members_
  std::vector<Scalar> density_;      // per cluster
  std::vector<Scalar> verified_density_;
  std::vector<Index> seed_;          // per cluster, source ids
  double absorb_slack_ = 0.05;
  std::unique_ptr<AffinityFunction> affinity_fn_;
  std::unique_ptr<LazyAffinityOracle> oracle_;
  std::unique_ptr<LshIndex> lsh_;
  uint64_t generation_ = 0;
};

}  // namespace alid

#endif  // ALID_SERVE_CLUSTER_SNAPSHOT_H_
