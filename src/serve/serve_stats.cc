#include "serve/serve_stats.h"

#include <algorithm>

#include "common/histogram.h"

namespace alid {

std::vector<int> ServeStatsView::LatencyHistogram(int bins) const {
  return EqualWidthHistogram(query_seconds, bins);
}

void ServeStats::RecordAssign(int64_t items, int64_t assigned, double seconds,
                              bool batch) {
  if (batch) {
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
  } else {
    single_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  queries_.fetch_add(items, std::memory_order_relaxed);
  assigned_.fetch_add(assigned, std::memory_order_relaxed);
  if (items <= 0) return;
  const double per_query = seconds / static_cast<double>(items);
  std::lock_guard<std::mutex> lock(mu_);
  if (query_seconds_.size() >= kMaxLatencySamples) {
    // Halve amortizes the shift: the profile keeps the recent window (the
    // same bounding policy as StreamStats::batch_seconds).
    query_seconds_.erase(query_seconds_.begin(),
                         query_seconds_.begin() + kMaxLatencySamples / 2);
  }
  query_seconds_.push_back(per_query);
}

void ServeStats::RecordPublish(bool has_build, double build_seconds,
                               int64_t rows_reused, int64_t clusters_reused,
                               int64_t bytes_shared, int64_t bytes_copied) {
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  if (rows_reused > 0) {
    rows_reused_.fetch_add(rows_reused, std::memory_order_relaxed);
  }
  if (clusters_reused > 0) {
    clusters_reused_.fetch_add(clusters_reused, std::memory_order_relaxed);
  }
  if (bytes_shared > 0) {
    bytes_shared_.fetch_add(bytes_shared, std::memory_order_relaxed);
  }
  if (bytes_copied > 0) {
    bytes_copied_.fetch_add(bytes_copied, std::memory_order_relaxed);
  }
  if (!has_build) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (publish_seconds_.size() >= kMaxLatencySamples) {
    publish_seconds_.erase(publish_seconds_.begin(),
                           publish_seconds_.begin() + kMaxLatencySamples / 2);
  }
  publish_seconds_.push_back(build_seconds);
}

ServeStatsView ServeStats::View() const {
  ServeStatsView view;
  view.single_queries = single_queries_.load(std::memory_order_relaxed);
  view.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  // assigned_ loads before queries_: RecordAssign bumps queries_ first, so
  // this order (plus the clamp) keeps unassigned >= 0 even mid-call.
  view.assigned = assigned_.load(std::memory_order_relaxed);
  view.queries = queries_.load(std::memory_order_relaxed);
  view.unassigned = std::max<int64_t>(0, view.queries - view.assigned);
  view.topk_queries = topk_queries_.load(std::memory_order_relaxed);
  view.info_queries = info_queries_.load(std::memory_order_relaxed);
  view.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  view.sketch_prunes = sketch_prunes_.load(std::memory_order_relaxed);
  view.sketch_exact = sketch_exact_.load(std::memory_order_relaxed);
  view.rows_reused = rows_reused_.load(std::memory_order_relaxed);
  view.clusters_reused = clusters_reused_.load(std::memory_order_relaxed);
  view.bytes_shared = bytes_shared_.load(std::memory_order_relaxed);
  view.bytes_copied = bytes_copied_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The clock is read under mu_ too: Reset() rewrites the (non-atomic)
    // start point under the same lock.
    view.elapsed_seconds = since_.Seconds();
    view.query_seconds = query_seconds_;
    view.publish_seconds = publish_seconds_;
  }
  view.qps = view.elapsed_seconds > 0.0
                 ? static_cast<double>(view.queries) / view.elapsed_seconds
                 : 0.0;
  return view;
}

void ServeStats::Reset() {
  single_queries_.store(0, std::memory_order_relaxed);
  batch_calls_.store(0, std::memory_order_relaxed);
  queries_.store(0, std::memory_order_relaxed);
  assigned_.store(0, std::memory_order_relaxed);
  topk_queries_.store(0, std::memory_order_relaxed);
  info_queries_.store(0, std::memory_order_relaxed);
  snapshots_published_.store(0, std::memory_order_relaxed);
  sketch_prunes_.store(0, std::memory_order_relaxed);
  sketch_exact_.store(0, std::memory_order_relaxed);
  rows_reused_.store(0, std::memory_order_relaxed);
  clusters_reused_.store(0, std::memory_order_relaxed);
  bytes_shared_.store(0, std::memory_order_relaxed);
  bytes_copied_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  query_seconds_.clear();
  publish_seconds_.clear();
  since_.Reset();
}

}  // namespace alid
