#include "serve/serve_stats.h"

#include <algorithm>

#include "common/histogram.h"

namespace alid {

std::vector<int> ServeStatsView::LatencyHistogram(int bins) const {
  return EqualWidthHistogram(query_seconds, bins);
}

ServeStats::ServeStats()
    : single_queries_(registry_.AddCounter("single_queries")),
      batch_calls_(registry_.AddCounter("batch_calls")),
      queries_(registry_.AddCounter("queries")),
      assigned_(registry_.AddCounter("assigned")),
      topk_queries_(registry_.AddCounter("topk_queries")),
      info_queries_(registry_.AddCounter("info_queries")),
      snapshots_published_(registry_.AddCounter("snapshots_published")),
      sketch_prunes_(registry_.AddCounter("sketch_prunes")),
      sketch_exact_(registry_.AddCounter("sketch_exact")),
      rows_reused_(registry_.AddCounter("rows_reused")),
      clusters_reused_(registry_.AddCounter("clusters_reused")),
      bytes_shared_(registry_.AddCounter("bytes_shared")),
      bytes_copied_(registry_.AddCounter("bytes_copied")) {
  // The bounded reservoirs mirror into registry histograms so the query and
  // publish latency profiles ship through ToJsonFields()/ToPrometheusText()
  // (query_seconds_count / _sum and the le buckets), not just the
  // in-process percentile windows.
  query_seconds_.AttachHistogram(
      registry_.AddHistogram("query_seconds", obs::LatencyHistogramEdges()));
  publish_seconds_.AttachHistogram(
      registry_.AddHistogram("publish_seconds", obs::LatencyHistogramEdges()));
}

void ServeStats::RecordAssign(int64_t items, int64_t assigned, double seconds,
                              bool batch) {
  if (batch) {
    batch_calls_->Add(1);
  } else {
    single_queries_->Add(1);
  }
  // queries_ bumps before assigned_ (and View() reads them in the opposite
  // order) so unassigned = queries - assigned stays >= 0 even mid-call.
  queries_->Add(items);
  assigned_->Add(assigned);
  if (items <= 0) return;
  query_seconds_.Record(seconds / static_cast<double>(items));
}

void ServeStats::RecordPublish(bool has_build, double build_seconds,
                               int64_t rows_reused, int64_t clusters_reused,
                               int64_t bytes_shared, int64_t bytes_copied) {
  snapshots_published_->Add(1);
  if (rows_reused > 0) rows_reused_->Add(rows_reused);
  if (clusters_reused > 0) clusters_reused_->Add(clusters_reused);
  if (bytes_shared > 0) bytes_shared_->Add(bytes_shared);
  if (bytes_copied > 0) bytes_copied_->Add(bytes_copied);
  if (!has_build) return;
  publish_seconds_.Record(build_seconds);
}

ServeStatsView ServeStats::View() const {
  ServeStatsView view;
  view.single_queries = single_queries_->value();
  view.batch_calls = batch_calls_->value();
  // assigned_ loads before queries_: RecordAssign bumps queries_ first, so
  // this order (plus the clamp) keeps unassigned >= 0 even mid-call.
  view.assigned = assigned_->value();
  view.queries = queries_->value();
  view.unassigned = std::max<int64_t>(0, view.queries - view.assigned);
  view.topk_queries = topk_queries_->value();
  view.info_queries = info_queries_->value();
  view.snapshots_published = snapshots_published_->value();
  view.sketch_prunes = sketch_prunes_->value();
  view.sketch_exact = sketch_exact_->value();
  view.rows_reused = rows_reused_->value();
  view.clusters_reused = clusters_reused_->value();
  view.bytes_shared = bytes_shared_->value();
  view.bytes_copied = bytes_copied_->value();
  {
    // The clock is read under mu_: Reset() rewrites the (non-atomic) start
    // point under the same lock.
    std::lock_guard<std::mutex> lock(mu_);
    view.elapsed_seconds = since_.Seconds();
  }
  view.query_seconds = query_seconds_.Samples();
  view.publish_seconds = publish_seconds_.Samples();
  view.qps = view.elapsed_seconds > 0.0
                 ? static_cast<double>(view.queries) / view.elapsed_seconds
                 : 0.0;
  return view;
}

void ServeStats::Reset() {
  single_queries_->Set(0);
  batch_calls_->Set(0);
  queries_->Set(0);
  assigned_->Set(0);
  topk_queries_->Set(0);
  info_queries_->Set(0);
  snapshots_published_->Set(0);
  sketch_prunes_->Set(0);
  sketch_exact_->Set(0);
  rows_reused_->Set(0);
  clusters_reused_->Set(0);
  bytes_shared_->Set(0);
  bytes_copied_->Set(0);
  query_seconds_.Reset();
  publish_seconds_.Reset();
  std::lock_guard<std::mutex> lock(mu_);
  since_.Reset();
}

}  // namespace alid
