#ifndef ALID_SERVE_CLUSTER_SERVER_H_
#define ALID_SERVE_CLUSTER_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "serve/cluster_snapshot.h"
#include "serve/serve_stats.h"

namespace alid {

class ThreadPool;

/// Options of the query side.
struct ClusterServerOptions {
  /// Optional shared executor pool for batched queries (the same pool the
  /// rest of the runtime runs on). Each query is pure against the batch's
  /// snapshot, so results are bit-identical for any pool width, scheduling
  /// discipline, grain, or pool == nullptr — the runtime's standard
  /// determinism contract.
  ThreadPool* pool = nullptr;
  /// Chunk grain of batched queries (see DeterministicGrain); 0 auto.
  int64_t grain = 0;
  /// Retired generations the server keeps addressable for as-of queries
  /// (the history ring, oldest evicted first); 0 disables time travel.
  /// Retention is cheap because consecutive generations share their
  /// unchanged clusters' arena blocks — the ring pays only for blocks no
  /// longer referenced by the current snapshot.
  int history_capacity = 4;
  /// Byte budget of that *extra* history footprint (unique arena-block
  /// bytes retained only for history — see ServeStatsView::
  /// history_ring_bytes); oldest generations are evicted until the ring
  /// fits. 0 means no byte bound (the capacity bound alone applies).
  int64_t history_budget_bytes = 0;
};

/// One answered assignment query (the QueryOutcome shape; `generation`
/// names the snapshot that answered — every result of one batched call
/// carries the same value, because the call acquires its snapshot exactly
/// once).
struct AssignResult : QueryOutcome {
  bool operator==(const AssignResult&) const = default;
};

/// A unified serve request: `points` holds count * dim scalars, row-major.
/// top_k == 0 asks for assignments (one QueryOutcome per point — the
/// Theorem-1 absorb decision); top_k > 0 asks for ranked candidates (one
/// ScoredCluster list per point, descending affinity, truncated to top_k).
/// generation == 0 addresses the current snapshot; any other value
/// addresses that retained generation from the history ring (bounded time
/// travel) and fails with kGenerationUnavailable once it was evicted.
struct QueryRequest {
  std::span<const Scalar> points;
  int top_k = 0;
  uint64_t generation = 0;
};

enum class QueryStatus {
  kOk = 0,
  /// No snapshot published (or an explicit nullptr publish took the server
  /// offline): every point answers unassigned, generation 0.
  kOffline = 1,
  /// The addressed generation is neither current nor retained in the
  /// history ring.
  kGenerationUnavailable = 2,
};

/// The answer to one QueryRequest. Exactly one of `assignments` (top_k ==
/// 0) or `ranked` (top_k > 0) is populated per point; on a non-kOk status
/// the populated side holds default (unassigned / empty) entries so callers
/// can index it without branching.
struct QueryResponse {
  QueryStatus status = QueryStatus::kOffline;
  /// Generation of the snapshot that answered (0 on non-kOk statuses).
  uint64_t generation = 0;
  std::vector<QueryOutcome> assignments;
  std::vector<std::vector<ScoredCluster>> ranked;

  bool ok() const { return status == QueryStatus::kOk; }
};

/// One cluster's change between two generations (ClusterServer::
/// GenerationDiff). Clusters match across snapshots by stream uid; a
/// matched cluster whose version differs drifted (membership/weights/
/// density changed), an unmatched one was born or died.
struct ClusterDrift {
  uint64_t uid = 0;
  int cluster_from = -1;  ///< Id in the `from` snapshot (-1 for births).
  int cluster_to = -1;    ///< Id in the `to` snapshot (-1 for deaths).
  Index size_from = 0;
  Index size_to = 0;
  Scalar density_from = 0.0;
  Scalar density_to = 0.0;
};

/// What changed between two retained generations.
struct GenerationDiffResult {
  /// False when either generation is not addressable (evicted or never
  /// published) — the vectors are empty then.
  bool ok = false;
  uint64_t from = 0;
  uint64_t to = 0;
  std::vector<ClusterDrift> births;   ///< In `to` only.
  std::vector<ClusterDrift> deaths;   ///< In `from` only.
  std::vector<ClusterDrift> drifted;  ///< Matched, version changed.
  /// Matched clusters whose (uid, version) survived verbatim — exactly the
  /// clusters whose arena blocks the two snapshots share.
  int unchanged = 0;
};

/// The read side of the serving subsystem: answers generation-addressed
/// queries against immutable ClusterSnapshots published through an
/// RCU-style atomic shared_ptr swap. Readers never wait on each other and
/// never see torn state — a query (or a whole batch) acquires one snapshot
/// reference up front and scores against it even while Publish() installs a
/// successor; a retired snapshot enters the bounded history ring (staying
/// addressable for as-of queries) and dies when evicted and released by its
/// last in-flight reader. The write side (an ingest/refresh loop) mutates
/// nothing the readers touch: it builds a fresh snapshot off-line and
/// publishes it in one pointer swap. Because consecutive snapshots share
/// their unchanged clusters' arena blocks, both the publish and the ring
/// cost O(changed bytes), not O(window).
///
/// The publication cell implements std::atomic<std::shared_ptr> semantics
/// (P0718: linearizable store, acquire loads) over a reader-writer lock
/// rather than libstdc++'s _Sp_atomic: the latter's hand-rolled spinlock is
/// opaque to ThreadSanitizer, and this subsystem's swap-linearizability
/// contract is enforced under TSan in CI. Readers take the lock shared and
/// hold it only to bump the snapshot's refcount, so a reader is delayed
/// only by the O(1) swap of a concurrent Publish, never by other readers.
///
/// Thread-safety: Publish and every query method may be called from any
/// number of threads concurrently. Detect-side structures (OnlineAlid, the
/// detectors) stay externally synchronized as before — only their exported
/// snapshots enter the server.
class ClusterServer {
 public:
  /// `dim` is the dimensionality served (ALID_CHECKed positive here, and
  /// checked against every published snapshot and query).
  explicit ClusterServer(int dim, ClusterServerOptions options = {});

  /// Atomically installs a new snapshot (a release in the publication
  /// order: a reader that sees it also sees everything its build wrote).
  /// The retired snapshot enters the history ring (unless history_capacity
  /// is 0); generations evicted by the capacity/budget bounds are released
  /// outside the swap critical section, so an expensive teardown never
  /// stalls readers. Passing nullptr takes the server offline (queries
  /// answer unassigned, generation 0).
  void Publish(std::shared_ptr<const ClusterSnapshot> snapshot);

  /// The current snapshot, or nullptr before the first Publish. Holding the
  /// returned pointer pins the snapshot across later swaps.
  std::shared_ptr<const ClusterSnapshot> snapshot() const;

  /// Generation of the current snapshot (0 when offline).
  uint64_t generation() const;

  /// The unified serve entry point (see QueryRequest): assignment or
  /// ranked mode, against the current snapshot or a retained generation.
  /// The whole request is answered by ONE snapshot (acquired once) and
  /// chunked across the shared pool; assignment results are bit-identical
  /// to querying that snapshot point by point serially, and an as-of
  /// request reproduces exactly the answers the addressed generation gave
  /// when it was current (the snapshot is immutable — nothing to recompute).
  QueryResponse Query(const QueryRequest& request) const;

  /// Cluster births, deaths and drift between two addressable generations
  /// (0 = current). Purely metadata — O(clusters), no member rows touched.
  GenerationDiffResult GenerationDiff(uint64_t from, uint64_t to) const;

  /// Snapshot of generation `generation` (0 = current): the current
  /// snapshot or a ring entry, nullptr when not addressable. Holding the
  /// pointer pins it past eviction.
  std::shared_ptr<const ClusterSnapshot> SnapshotAt(uint64_t generation) const;

  /// Copy-out of one cluster's metadata from the current snapshot
  /// (info.cluster == -1 when offline or out of range).
  ClusterSnapshotInfo ClusterInfo(int cluster) const;

  int dim() const { return dim_; }
  const ClusterServerOptions& options() const { return options_; }

  /// A consistent read of the serving counters (QPS, latency profile,
  /// publish byte ledger, history-ring gauges, …).
  ServeStatsView stats() const;
  void ResetStats() { stats_.Reset(); }

  /// The per-instance instrument registry behind stats(): every serve
  /// counter plus the history-ring and pool gauges, exportable as
  /// single-line JSON (bench trajectory) or Prometheus text.
  const obs::MetricsRegistry& metrics() const { return stats_.registry(); }

  // --- Deprecated pre-generation query surface ----------------------------
  // Thin inline adapters over Query(), retained for one deprecation cycle.
  // Migration:
  //   server.Assign(x)          -> server.Query({.points = x}).assignments[0]
  //   server.AssignBatch(xs)    -> server.Query({.points = xs}).assignments
  //   server.TopKClusters(x, k) -> server.Query({.points = x, .top_k = k})
  //                                      .ranked[0]

  /// Single assignment query against the current snapshot.
  [[deprecated(
      "use Query(QueryRequest{.points = point}) — the generation-addressed "
      "serve API")]]
  AssignResult Assign(std::span<const Scalar> point) const;

  /// Batched assignment against the current snapshot.
  [[deprecated(
      "use Query(QueryRequest{.points = points}) — the generation-addressed "
      "serve API")]]
  std::vector<AssignResult> AssignBatch(std::span<const Scalar> points) const;

  /// Top-k candidate clusters of a point by pi(s_c, x), descending.
  [[deprecated(
      "use Query(QueryRequest{.points = point, .top_k = k}) — the "
      "generation-addressed serve API")]]
  std::vector<ScoredCluster> TopKClusters(std::span<const Scalar> point,
                                          int k) const;

 private:
  struct Retained {
    uint64_t generation = 0;
    std::shared_ptr<const ClusterSnapshot> snapshot;
  };

  // Unique arena-block bytes referenced by ring entries but NOT by the
  // current snapshot — the true extra cost of time travel (shared blocks
  // are charged to the live snapshot). Caller holds snapshot_mu_.
  int64_t HistoryBytesLocked() const;

  int dim_;
  ClusterServerOptions options_;
  // The publication cell (see class comment). shared lock: copy the
  // pointer / scan the ring; unique lock: swap + retire + evict.
  mutable std::shared_mutex snapshot_mu_;
  std::shared_ptr<const ClusterSnapshot> snapshot_ptr_;
  std::deque<Retained> history_;  // oldest first
  int64_t history_ring_bytes_ = 0;
  int64_t history_evictions_ = 0;
  mutable ServeStats stats_;
};

inline AssignResult ClusterServer::Assign(std::span<const Scalar> point) const {
  const QueryResponse response = Query(QueryRequest{point, 0, 0});
  AssignResult result;
  if (!response.assignments.empty()) {
    static_cast<QueryOutcome&>(result) = response.assignments.front();
  }
  return result;
}

inline std::vector<AssignResult> ClusterServer::AssignBatch(
    std::span<const Scalar> points) const {
  const QueryResponse response = Query(QueryRequest{points, 0, 0});
  std::vector<AssignResult> results(response.assignments.size());
  for (size_t i = 0; i < response.assignments.size(); ++i) {
    static_cast<QueryOutcome&>(results[i]) = response.assignments[i];
  }
  return results;
}

inline std::vector<ScoredCluster> ClusterServer::TopKClusters(
    std::span<const Scalar> point, int k) const {
  if (k <= 0) return {};
  QueryResponse response = Query(QueryRequest{point, k, 0});
  if (response.ranked.empty()) return {};
  return std::move(response.ranked.front());
}

}  // namespace alid

#endif  // ALID_SERVE_CLUSTER_SERVER_H_
