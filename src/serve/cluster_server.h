#ifndef ALID_SERVE_CLUSTER_SERVER_H_
#define ALID_SERVE_CLUSTER_SERVER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "serve/cluster_snapshot.h"
#include "serve/serve_stats.h"

namespace alid {

class ThreadPool;

/// Options of the query side.
struct ClusterServerOptions {
  /// Optional shared executor pool for batched queries (the same pool the
  /// rest of the runtime runs on). Each query is pure against the batch's
  /// snapshot, so results are bit-identical for any pool width, scheduling
  /// discipline, grain, or pool == nullptr — the runtime's standard
  /// determinism contract.
  ThreadPool* pool = nullptr;
  /// Chunk grain of batched queries (see DeterministicGrain); 0 auto.
  int64_t grain = 0;
};

/// One answered assignment query. `generation` names the snapshot that
/// answered — every result of one AssignBatch call carries the same value,
/// because the batch acquires its snapshot exactly once.
struct AssignResult {
  int cluster = -1;
  Scalar affinity = 0.0;
  Scalar margin = 0.0;
  uint64_t generation = 0;

  bool operator==(const AssignResult&) const = default;
};

/// The read side of the serving subsystem: answers assignment queries
/// against an immutable ClusterSnapshot published through an RCU-style
/// atomic shared_ptr swap. Readers never wait on each other and never see
/// torn state — a query (or a whole batch) acquires one snapshot reference
/// up front and scores against it even while Publish() installs a
/// successor; the old snapshot dies when its last in-flight reader
/// releases it. The write side (an ingest/refresh loop) mutates nothing
/// the readers touch: it builds a fresh snapshot off-line and publishes it
/// in one pointer swap.
///
/// The publication cell implements std::atomic<std::shared_ptr> semantics
/// (P0718: linearizable store, acquire loads) over a reader-writer lock
/// rather than libstdc++'s _Sp_atomic: the latter's hand-rolled spinlock is
/// opaque to ThreadSanitizer, and this subsystem's swap-linearizability
/// contract is enforced under TSan in CI. Readers take the lock shared and
/// hold it only to bump the snapshot's refcount, so a reader is delayed
/// only by the O(1) swap of a concurrent Publish, never by other readers.
///
/// Thread-safety: Publish and every query method may be called from any
/// number of threads concurrently. Detect-side structures (OnlineAlid, the
/// detectors) stay externally synchronized as before — only their exported
/// snapshots enter the server.
class ClusterServer {
 public:
  /// `dim` is the dimensionality served (checked against every published
  /// snapshot and query).
  explicit ClusterServer(int dim, ClusterServerOptions options = {});

  /// Atomically installs a new snapshot (a release in the publication
  /// order: a reader that sees it also sees everything its build wrote).
  /// Passing nullptr takes the server offline (queries answer unassigned,
  /// generation 0). The retired snapshot is released outside the swap
  /// critical section, so an expensive teardown never stalls readers.
  void Publish(std::shared_ptr<const ClusterSnapshot> snapshot);

  /// The current snapshot, or nullptr before the first Publish. Holding the
  /// returned pointer pins the snapshot across later swaps.
  std::shared_ptr<const ClusterSnapshot> snapshot() const;

  /// Generation of the current snapshot (0 when offline).
  uint64_t generation() const;

  /// Single assignment query against the current snapshot.
  AssignResult Assign(std::span<const Scalar> point) const;

  /// Batched assignment: `points` holds count * dim scalars, row-major. The
  /// whole batch is answered by ONE snapshot (acquired once), chunked across
  /// the shared pool; the results are bit-identical to calling Assign
  /// count times serially against that snapshot.
  std::vector<AssignResult> AssignBatch(std::span<const Scalar> points) const;

  /// Top-k candidate clusters of a point by pi(s_c, x), descending.
  std::vector<ScoredCluster> TopKClusters(std::span<const Scalar> point,
                                          int k) const;

  /// Copy-out of one cluster's metadata from the current snapshot
  /// (info.cluster == -1 when offline or out of range).
  ClusterSnapshotInfo ClusterInfo(int cluster) const;

  int dim() const { return dim_; }
  const ClusterServerOptions& options() const { return options_; }

  /// A consistent read of the serving counters (QPS, latency profile, …).
  ServeStatsView stats() const { return stats_.View(); }
  void ResetStats() { stats_.Reset(); }

 private:
  AssignResult AssignWith(const ClusterSnapshot& snapshot,
                          std::span<const Scalar> point) const;

  int dim_;
  ClusterServerOptions options_;
  // The publication cell (see class comment). shared lock: copy the
  // pointer; unique lock: swap it.
  mutable std::shared_mutex snapshot_mu_;
  std::shared_ptr<const ClusterSnapshot> snapshot_ptr_;
  mutable ServeStats stats_;
};

}  // namespace alid

#endif  // ALID_SERVE_CLUSTER_SERVER_H_
