#include "serve/cluster_server.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace alid {

ClusterServer::ClusterServer(int dim, ClusterServerOptions options)
    : dim_(dim), options_(options) {
  ALID_CHECK(dim_ > 0);
}

void ClusterServer::Publish(std::shared_ptr<const ClusterSnapshot> snapshot) {
  if (snapshot != nullptr) ALID_CHECK(snapshot->dim() == dim_);
  const ClusterSnapshot* incoming = snapshot.get();
  double build_seconds = 0.0;
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  if (incoming != nullptr) {
    const SnapshotBuildInfo& info = incoming->build_info();
    build_seconds = info.build_seconds;
    rows_reused = info.rows_reused;
    clusters_reused = info.clusters_reused;
  }
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    snapshot_ptr_.swap(snapshot);
  }
  // `snapshot` now holds the retired state; it dies here (or with its last
  // in-flight reader), outside the swap critical section. Re-publishing the
  // snapshot that was already current (e.g. a rollback) still counts as a
  // publication, but its build cost and re-use totals were recorded when it
  // was first published — folding them again would claim work that never
  // happened.
  const bool republish = snapshot.get() == incoming;
  stats_.RecordPublish(incoming != nullptr && !republish, build_seconds,
                       republish ? 0 : rows_reused,
                       republish ? 0 : clusters_reused);
}

std::shared_ptr<const ClusterSnapshot> ClusterServer::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_ptr_;
}

uint64_t ClusterServer::generation() const {
  const auto snap = snapshot();
  return snap != nullptr ? snap->generation() : 0;
}

AssignResult ClusterServer::AssignWith(const ClusterSnapshot& snapshot,
                                       std::span<const Scalar> point) const {
  const AssignOutcome outcome = snapshot.Assign(point);
  // Relaxed atomics, so batched chunks record straight from pool workers.
  stats_.RecordSketch(outcome.sketch_prunes, outcome.sketch_exact);
  return {outcome.cluster, outcome.affinity, outcome.margin,
          snapshot.generation()};
}

AssignResult ClusterServer::Assign(std::span<const Scalar> point) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim_);
  WallTimer timer;
  AssignResult result;
  if (const auto snap = snapshot(); snap != nullptr) {
    result = AssignWith(*snap, point);
  }
  stats_.RecordAssign(1, result.cluster >= 0 ? 1 : 0, timer.Seconds(),
                      /*batch=*/false);
  return result;
}

std::vector<AssignResult> ClusterServer::AssignBatch(
    std::span<const Scalar> points) const {
  ALID_CHECK(points.size() % static_cast<size_t>(dim_) == 0);
  const Index count = static_cast<Index>(points.size() / dim_);
  std::vector<AssignResult> results(count);
  if (count == 0) return results;
  WallTimer timer;
  // One acquire for the whole batch: every query of the call is answered by
  // the same snapshot even if Publish swaps mid-batch — the linearization
  // point of the batch is this load.
  if (const auto snap = snapshot(); snap != nullptr) {
    const uint64_t generation = snap->generation();
    ParallelChunks(
        options_.pool, 0, count, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          // Query-major block assignment inside the chunk: the snapshot
          // streams each cluster's SoA tiles across the whole block of
          // queries, and every outcome stays bit-identical to a per-query
          // Assign (see ClusterSnapshot::AssignBatch).
          std::vector<AssignOutcome> outcomes(static_cast<size_t>(hi - lo));
          snap->AssignBatch(
              points.subspan(static_cast<size_t>(lo) * dim_,
                             static_cast<size_t>(hi - lo) * dim_),
              outcomes);
          for (int64_t k = lo; k < hi; ++k) {
            const AssignOutcome& outcome = outcomes[k - lo];
            stats_.RecordSketch(outcome.sketch_prunes, outcome.sketch_exact);
            results[k] = {outcome.cluster, outcome.affinity, outcome.margin,
                          generation};
          }
        });
  }
  int64_t assigned = 0;
  for (const AssignResult& r : results) assigned += r.cluster >= 0 ? 1 : 0;
  stats_.RecordAssign(count, assigned, timer.Seconds(), /*batch=*/true);
  return results;
}

std::vector<ScoredCluster> ClusterServer::TopKClusters(
    std::span<const Scalar> point, int k) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim_);
  stats_.RecordTopK();
  const auto snap = snapshot();
  if (snap == nullptr) return {};
  return snap->TopKClusters(point, k);
}

ClusterSnapshotInfo ClusterServer::ClusterInfo(int cluster) const {
  stats_.RecordInfo();
  const auto snap = snapshot();
  if (snap == nullptr) return {};
  return snap->ClusterInfo(cluster);
}

}  // namespace alid
