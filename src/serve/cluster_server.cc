#include "serve/cluster_server.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace alid {

ClusterServer::ClusterServer(int dim, ClusterServerOptions options)
    : dim_(dim), options_(options) {
  ALID_CHECK(dim_ > 0);
  ALID_CHECK(options_.history_capacity >= 0);
  ALID_CHECK(options_.history_budget_bytes >= 0);
  // History-ring gauges ride the same per-instance registry as the serve
  // counters; each read takes the publication lock shared, exactly like
  // stats(). The callbacks capture `this` — they die with the registry,
  // which dies with the server.
  obs::MetricsRegistry* registry = stats_.mutable_registry();
  registry->AddCallbackGauge("history_ring_bytes", [this] {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return history_ring_bytes_;
  });
  registry->AddCallbackGauge("generations_retained", [this] {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return static_cast<int64_t>(history_.size());
  });
  registry->AddCallbackGauge("history_evictions", [this] {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return history_evictions_;
  });
  if (options_.pool != nullptr) {
    options_.pool->RegisterMetrics(registry, "pool");
  }
}

int64_t ClusterServer::HistoryBytesLocked() const {
  std::unordered_set<const ClusterBlock*> counted;
  if (snapshot_ptr_ != nullptr) {
    for (const auto& block : snapshot_ptr_->blocks()) {
      counted.insert(block.get());
    }
  }
  int64_t bytes = 0;
  for (const Retained& entry : history_) {
    for (const auto& block : entry.snapshot->blocks()) {
      if (counted.insert(block.get()).second) {
        bytes += static_cast<int64_t>(block->MemoryBytes());
      }
    }
  }
  return bytes;
}

void ClusterServer::Publish(std::shared_ptr<const ClusterSnapshot> snapshot) {
  if (snapshot != nullptr) ALID_CHECK(snapshot->dim() == dim_);
  const ClusterSnapshot* incoming = snapshot.get();
  double build_seconds = 0.0;
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  int64_t bytes_shared = 0;
  int64_t bytes_copied = 0;
  if (incoming != nullptr) {
    const SnapshotBuildInfo& info = incoming->build_info();
    build_seconds = info.build_seconds;
    rows_reused = info.rows_reused;
    clusters_reused = info.clusters_reused;
    bytes_shared = info.bytes_shared;
    bytes_copied = info.bytes_copied;
  }
  // Snapshots released by this publication (ring evictions, plus the swap
  // operand itself when it goes out of scope) die outside the critical
  // section, so an expensive teardown never stalls readers.
  std::vector<std::shared_ptr<const ClusterSnapshot>> evicted;
  bool republish = false;
  {
    ALID_TRACE_SCOPE("serve", "publish_swap");
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    republish = snapshot_ptr_.get() == incoming;
    if (!republish && snapshot_ptr_ != nullptr &&
        options_.history_capacity > 0) {
      // Retire the outgoing snapshot into the ring. A generation republished
      // later (rollback) would otherwise accumulate duplicate entries, so an
      // existing entry of the same generation is dropped first.
      const uint64_t retiring = snapshot_ptr_->generation();
      for (auto it = history_.begin(); it != history_.end();) {
        if (it->generation == retiring) {
          evicted.push_back(std::move(it->snapshot));
          it = history_.erase(it);
        } else {
          ++it;
        }
      }
      history_.push_back(Retained{retiring, snapshot_ptr_});
    }
    snapshot_ptr_.swap(snapshot);
    while (static_cast<int>(history_.size()) > options_.history_capacity) {
      evicted.push_back(std::move(history_.front().snapshot));
      history_.pop_front();
      ++history_evictions_;
    }
    history_ring_bytes_ = HistoryBytesLocked();
    while (options_.history_budget_bytes > 0 &&
           history_ring_bytes_ > options_.history_budget_bytes &&
           !history_.empty()) {
      evicted.push_back(std::move(history_.front().snapshot));
      history_.pop_front();
      ++history_evictions_;
      history_ring_bytes_ = HistoryBytesLocked();
    }
  }
  evicted.clear();
  // Re-publishing the snapshot that was already current (e.g. a rollback)
  // still counts as a publication, but its build cost and re-use totals were
  // recorded when it was first published — folding them again would claim
  // work that never happened.
  stats_.RecordPublish(incoming != nullptr && !republish, build_seconds,
                       republish ? 0 : rows_reused,
                       republish ? 0 : clusters_reused,
                       republish ? 0 : bytes_shared,
                       republish ? 0 : bytes_copied);
}

std::shared_ptr<const ClusterSnapshot> ClusterServer::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_ptr_;
}

std::shared_ptr<const ClusterSnapshot> ClusterServer::SnapshotAt(
    uint64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  if (generation == 0) return snapshot_ptr_;
  if (snapshot_ptr_ != nullptr && snapshot_ptr_->generation() == generation) {
    return snapshot_ptr_;
  }
  // Newest-first scan: as-of queries overwhelmingly address recent
  // generations, and the ring is small by construction.
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->generation == generation) return it->snapshot;
  }
  return nullptr;
}

uint64_t ClusterServer::generation() const {
  const auto snap = snapshot();
  return snap != nullptr ? snap->generation() : 0;
}

QueryResponse ClusterServer::Query(const QueryRequest& request) const {
  ALID_CHECK(request.points.size() % static_cast<size_t>(dim_) == 0);
  ALID_CHECK(request.top_k >= 0);
  const Index count = static_cast<Index>(request.points.size() / dim_);
  QueryResponse response;
  WallTimer timer;
  ALID_TRACE_SCOPE("serve", "query");
  // One acquire for the whole request: every point of the call is answered
  // by the same snapshot even if Publish swaps mid-call — the linearization
  // point of the request is this load. An as-of request pins the retained
  // generation the same way, so its answers are exactly the answers that
  // generation gave when it was current.
  std::shared_ptr<const ClusterSnapshot> snap;
  {
    ALID_TRACE_SCOPE("serve", "snapshot_pin");
    snap = SnapshotAt(request.generation);
  }
  if (snap == nullptr) {
    response.status = request.generation == 0
                          ? QueryStatus::kOffline
                          : QueryStatus::kGenerationUnavailable;
  } else {
    response.status = QueryStatus::kOk;
    response.generation = snap->generation();
  }
  if (request.top_k > 0) {
    response.ranked.resize(static_cast<size_t>(count));
    if (count == 0) return response;
    if (snap != nullptr) {
      // Ranked queries are pure per point; chunking only distributes them.
      ParallelChunks(options_.pool, 0, count, options_.grain,
                     [&](int64_t, int64_t lo, int64_t hi) {
                       ALID_TRACE_SCOPE("serve", "rank_chunk");
                       for (int64_t q = lo; q < hi; ++q) {
                         response.ranked[q] = snap->TopKClusters(
                             request.points.subspan(
                                 static_cast<size_t>(q) * dim_,
                                 static_cast<size_t>(dim_)),
                             request.top_k);
                       }
                     });
    }
    stats_.RecordTopK(count);
    return response;
  }
  response.assignments.resize(static_cast<size_t>(count));
  if (count == 0) return response;
  if (snap != nullptr) {
    ParallelChunks(
        options_.pool, 0, count, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          // Candidate walk + scoring of one chunk (the per-worker view of
          // the batch in a trace).
          ALID_TRACE_SCOPE("serve", "assign_chunk");
          // Query-major block assignment inside the chunk: the snapshot
          // streams each cluster's SoA tiles across the whole block of
          // queries, and every outcome stays bit-identical to a per-query
          // Assign (see ClusterSnapshot::AssignBatch).
          std::vector<AssignOutcome> outcomes(static_cast<size_t>(hi - lo));
          snap->AssignBatch(
              request.points.subspan(static_cast<size_t>(lo) * dim_,
                                     static_cast<size_t>(hi - lo) * dim_),
              outcomes);
          for (int64_t k = lo; k < hi; ++k) {
            const AssignOutcome& outcome = outcomes[k - lo];
            // Relaxed atomics, so chunks record straight from pool workers.
            stats_.RecordSketch(outcome.sketch_prunes, outcome.sketch_exact);
            response.assignments[k] = outcome;
          }
        });
  }
  int64_t assigned = 0;
  for (const QueryOutcome& r : response.assignments) {
    assigned += r.cluster >= 0 ? 1 : 0;
  }
  stats_.RecordAssign(count, assigned, timer.Seconds(),
                      /*batch=*/count != 1);
  return response;
}

GenerationDiffResult ClusterServer::GenerationDiff(uint64_t from,
                                                   uint64_t to) const {
  GenerationDiffResult diff;
  const auto snap_from = SnapshotAt(from);
  const auto snap_to = SnapshotAt(to);
  if (snap_from == nullptr || snap_to == nullptr) return diff;
  diff.ok = true;
  diff.from = snap_from->generation();
  diff.to = snap_to->generation();
  std::unordered_map<uint64_t, int> from_by_uid;
  from_by_uid.reserve(static_cast<size_t>(snap_from->num_clusters()));
  for (int c = 0; c < snap_from->num_clusters(); ++c) {
    if (snap_from->cluster_uid(c) != 0) {
      from_by_uid.emplace(snap_from->cluster_uid(c), c);
    }
  }
  for (int c = 0; c < snap_to->num_clusters(); ++c) {
    const uint64_t uid = snap_to->cluster_uid(c);
    const auto it = uid != 0 ? from_by_uid.find(uid) : from_by_uid.end();
    if (it == from_by_uid.end()) {
      ClusterDrift born;
      born.uid = uid;
      born.cluster_to = c;
      born.size_to = snap_to->cluster_size(c);
      born.density_to = snap_to->density(c);
      diff.births.push_back(born);
      continue;
    }
    const int f = it->second;
    from_by_uid.erase(it);
    if (snap_from->cluster_version(f) == snap_to->cluster_version(c)) {
      ++diff.unchanged;
      continue;
    }
    ClusterDrift moved;
    moved.uid = uid;
    moved.cluster_from = f;
    moved.cluster_to = c;
    moved.size_from = snap_from->cluster_size(f);
    moved.size_to = snap_to->cluster_size(c);
    moved.density_from = snap_from->density(f);
    moved.density_to = snap_to->density(c);
    diff.drifted.push_back(moved);
  }
  // Clusters of `from` never matched: deaths, in ascending id so the report
  // is deterministic.
  std::vector<std::pair<int, uint64_t>> gone;
  gone.reserve(from_by_uid.size());
  for (const auto& [uid, c] : from_by_uid) gone.emplace_back(c, uid);
  // uid == 0 clusters (non-stream sources) cannot match; report them too.
  for (int c = 0; c < snap_from->num_clusters(); ++c) {
    if (snap_from->cluster_uid(c) == 0) gone.emplace_back(c, 0);
  }
  std::sort(gone.begin(), gone.end());
  for (const auto& [c, uid] : gone) {
    ClusterDrift dead;
    dead.uid = uid;
    dead.cluster_from = c;
    dead.size_from = snap_from->cluster_size(c);
    dead.density_from = snap_from->density(c);
    diff.deaths.push_back(dead);
  }
  return diff;
}

ClusterSnapshotInfo ClusterServer::ClusterInfo(int cluster) const {
  stats_.RecordInfo();
  const auto snap = snapshot();
  if (snap == nullptr) return {};
  return snap->ClusterInfo(cluster);
}

ServeStatsView ClusterServer::stats() const {
  ServeStatsView view = stats_.View();
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  view.history_ring_bytes = history_ring_bytes_;
  view.generations_retained = static_cast<int>(history_.size());
  view.history_evictions = history_evictions_;
  return view;
}

}  // namespace alid
