#ifndef ALID_SERVE_SERVE_STATS_H_
#define ALID_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timer.h"

namespace alid {

/// One consistent read of a ClusterServer's counters (ServeStats::View()) —
/// the serving counterpart of PalidStats / StreamStats.
struct ServeStatsView {
  int64_t single_queries = 0;  ///< Single-point assignment queries.
  int64_t batch_calls = 0;     ///< Batched assignment calls (Query, >1 point).
  int64_t queries = 0;         ///< Items answered (singles + batch items).
  int64_t assigned = 0;        ///< Queries routed to a cluster.
  int64_t unassigned = 0;      ///< Queries matching no cluster (noise).
  int64_t topk_queries = 0;
  int64_t info_queries = 0;
  int64_t snapshots_published = 0;
  /// Candidate clusters the snapshot's support-sketch bound rejected during
  /// Assign/AssignBatch — full-support scorings the branch-and-bound filter
  /// skipped without changing a bit of any answer.
  int64_t sketch_prunes = 0;
  /// Sketch-engaged candidates whose bound was inconclusive and scored
  /// exactly (the fallback that keeps the filter exact).
  int64_t sketch_exact = 0;
  /// Member rows / clusters the published snapshots inherited from their
  /// predecessors via the incremental export (0 under from-scratch builds).
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  /// Arena-block bytes the published snapshots shared with their
  /// predecessors (refcount bumps) vs. newly materialized — the byte-level
  /// ledger of the O(changed-bytes) publish property (see
  /// SnapshotBuildInfo).
  int64_t bytes_shared = 0;
  int64_t bytes_copied = 0;
  /// Gauges of the server's history ring at View() time: unique arena bytes
  /// held *only* for retained historical generations (blocks shared with
  /// the current snapshot are free), how many retired generations are
  /// addressable, and how many were evicted by the capacity/budget bounds.
  int64_t history_ring_bytes = 0;
  int generations_retained = 0;
  int64_t history_evictions = 0;
  double elapsed_seconds = 0.0;  ///< Since server construction / Reset().
  double qps = 0.0;              ///< queries / elapsed_seconds.
  /// Mean per-query wall seconds of each recent Assign/AssignBatch call
  /// (a batch contributes one sample: call seconds / batch size), bounded
  /// like StreamStats::batch_seconds so a long-lived server stays bounded.
  std::vector<double> query_seconds;
  /// Build seconds of each recently published snapshot (the publish-latency
  /// profile of the ingest->publish->serve loop), bounded like
  /// query_seconds.
  std::vector<double> publish_seconds;

  /// Histogram of query_seconds over `bins` equal-width buckets spanning
  /// [0, max] — the per-query latency profile of the server.
  std::vector<int> LatencyHistogram(int bins = 8) const;
};

/// Thread-safe counters + bounded latency reservoir behind a ClusterServer.
/// Counters are relaxed atomics (queries hammer them concurrently); the
/// latency reservoir takes one short lock per *call*, not per query, so a
/// 64-wide batch pays it once.
class ServeStats {
 public:
  static constexpr size_t kMaxLatencySamples = 8192;

  void RecordAssign(int64_t items, int64_t assigned, double seconds,
                    bool batch);
  void RecordTopK(int64_t count = 1) {
    topk_queries_.fetch_add(count, std::memory_order_relaxed);
  }
  void RecordInfo() { info_queries_.fetch_add(1, std::memory_order_relaxed); }
  /// One publication: the snapshot's build latency joins the bounded
  /// publish-latency reservoir (skipped when has_build is false — the
  /// offline nullptr publish) and its incremental-export reuse/byte
  /// counters accumulate.
  void RecordPublish(bool has_build, double build_seconds, int64_t rows_reused,
                     int64_t clusters_reused, int64_t bytes_shared,
                     int64_t bytes_copied);
  /// Sketch-filter activity of one answered query (relaxed atomics: batched
  /// queries record from pool workers).
  void RecordSketch(int64_t prunes, int64_t exact) {
    if (prunes > 0) sketch_prunes_.fetch_add(prunes, std::memory_order_relaxed);
    if (exact > 0) sketch_exact_.fetch_add(exact, std::memory_order_relaxed);
  }

  /// A consistent copy of every counter plus derived QPS.
  ServeStatsView View() const;

  /// Zeroes the counters, drops the latency samples, restarts the QPS clock.
  void Reset();

 private:
  std::atomic<int64_t> single_queries_{0};
  std::atomic<int64_t> batch_calls_{0};
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> assigned_{0};
  std::atomic<int64_t> topk_queries_{0};
  std::atomic<int64_t> info_queries_{0};
  std::atomic<int64_t> snapshots_published_{0};
  std::atomic<int64_t> sketch_prunes_{0};
  std::atomic<int64_t> sketch_exact_{0};
  std::atomic<int64_t> rows_reused_{0};
  std::atomic<int64_t> clusters_reused_{0};
  std::atomic<int64_t> bytes_shared_{0};
  std::atomic<int64_t> bytes_copied_{0};
  mutable std::mutex mu_;
  std::vector<double> query_seconds_;
  std::vector<double> publish_seconds_;
  WallTimer since_;
};

}  // namespace alid

#endif  // ALID_SERVE_SERVE_STATS_H_
