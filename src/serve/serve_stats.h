#ifndef ALID_SERVE_SERVE_STATS_H_
#define ALID_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timer.h"

namespace alid {

/// One consistent read of a ClusterServer's counters (ServeStats::View()) —
/// the serving counterpart of PalidStats / StreamStats.
struct ServeStatsView {
  int64_t single_queries = 0;  ///< Assign calls.
  int64_t batch_calls = 0;     ///< AssignBatch calls.
  int64_t queries = 0;         ///< Items answered (singles + batch items).
  int64_t assigned = 0;        ///< Queries routed to a cluster.
  int64_t unassigned = 0;      ///< Queries matching no cluster (noise).
  int64_t topk_queries = 0;
  int64_t info_queries = 0;
  int64_t snapshots_published = 0;
  double elapsed_seconds = 0.0;  ///< Since server construction / Reset().
  double qps = 0.0;              ///< queries / elapsed_seconds.
  /// Mean per-query wall seconds of each recent Assign/AssignBatch call
  /// (a batch contributes one sample: call seconds / batch size), bounded
  /// like StreamStats::batch_seconds so a long-lived server stays bounded.
  std::vector<double> query_seconds;

  /// Histogram of query_seconds over `bins` equal-width buckets spanning
  /// [0, max] — the per-query latency profile of the server.
  std::vector<int> LatencyHistogram(int bins = 8) const;
};

/// Thread-safe counters + bounded latency reservoir behind a ClusterServer.
/// Counters are relaxed atomics (queries hammer them concurrently); the
/// latency reservoir takes one short lock per *call*, not per query, so a
/// 64-wide batch pays it once.
class ServeStats {
 public:
  static constexpr size_t kMaxLatencySamples = 8192;

  void RecordAssign(int64_t items, int64_t assigned, double seconds,
                    bool batch);
  void RecordTopK() { topk_queries_.fetch_add(1, std::memory_order_relaxed); }
  void RecordInfo() { info_queries_.fetch_add(1, std::memory_order_relaxed); }
  void RecordPublish() {
    snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A consistent copy of every counter plus derived QPS.
  ServeStatsView View() const;

  /// Zeroes the counters, drops the latency samples, restarts the QPS clock.
  void Reset();

 private:
  std::atomic<int64_t> single_queries_{0};
  std::atomic<int64_t> batch_calls_{0};
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> assigned_{0};
  std::atomic<int64_t> topk_queries_{0};
  std::atomic<int64_t> info_queries_{0};
  std::atomic<int64_t> snapshots_published_{0};
  mutable std::mutex mu_;
  std::vector<double> query_seconds_;
  WallTimer since_;
};

}  // namespace alid

#endif  // ALID_SERVE_SERVE_STATS_H_
