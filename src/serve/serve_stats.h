#ifndef ALID_SERVE_SERVE_STATS_H_
#define ALID_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "obs/latency_reservoir.h"
#include "obs/metrics.h"

namespace alid {

/// One consistent read of a ClusterServer's counters (ServeStats::View()) —
/// the serving counterpart of PalidStats / StreamStats. Since the
/// observability layer landed this is a thin view materialized from the
/// server's obs::MetricsRegistry (ServeStats::registry()), kept so no
/// caller breaks; new consumers can read the registry directly (JSON /
/// Prometheus exporters included).
struct ServeStatsView {
  int64_t single_queries = 0;  ///< Single-point assignment queries.
  int64_t batch_calls = 0;     ///< Batched assignment calls (Query, >1 point).
  int64_t queries = 0;         ///< Items answered (singles + batch items).
  int64_t assigned = 0;        ///< Queries routed to a cluster.
  int64_t unassigned = 0;      ///< Queries matching no cluster (noise).
  int64_t topk_queries = 0;
  int64_t info_queries = 0;
  int64_t snapshots_published = 0;
  /// Candidate clusters the snapshot's support-sketch bound rejected during
  /// Assign/AssignBatch — full-support scorings the branch-and-bound filter
  /// skipped without changing a bit of any answer.
  int64_t sketch_prunes = 0;
  /// Sketch-engaged candidates whose bound was inconclusive and scored
  /// exactly (the fallback that keeps the filter exact).
  int64_t sketch_exact = 0;
  /// Member rows / clusters the published snapshots inherited from their
  /// predecessors via the incremental export (0 under from-scratch builds).
  int64_t rows_reused = 0;
  int64_t clusters_reused = 0;
  /// Arena-block bytes the published snapshots shared with their
  /// predecessors (refcount bumps) vs. newly materialized — the byte-level
  /// ledger of the O(changed-bytes) publish property (see
  /// SnapshotBuildInfo).
  int64_t bytes_shared = 0;
  int64_t bytes_copied = 0;
  /// Gauges of the server's history ring at View() time: unique arena bytes
  /// held *only* for retained historical generations (blocks shared with
  /// the current snapshot are free), how many retired generations are
  /// addressable, and how many were evicted by the capacity/budget bounds.
  int64_t history_ring_bytes = 0;
  int generations_retained = 0;
  int64_t history_evictions = 0;
  double elapsed_seconds = 0.0;  ///< Since server construction / Reset().
  double qps = 0.0;              ///< queries / elapsed_seconds.
  /// Mean per-query wall seconds of each recent Assign/AssignBatch call
  /// (a batch contributes one sample: call seconds / batch size), bounded
  /// like StreamStats::batch_seconds so a long-lived server stays bounded.
  std::vector<double> query_seconds;
  /// Build seconds of each recently published snapshot (the publish-latency
  /// profile of the ingest->publish->serve loop), bounded like
  /// query_seconds.
  std::vector<double> publish_seconds;

  /// Histogram of query_seconds over `bins` equal-width buckets spanning
  /// [0, max] — the per-query latency profile of the server.
  std::vector<int> LatencyHistogram(int bins = 8) const;
};

/// Thread-safe counters + bounded latency reservoirs behind a ClusterServer.
/// The counters live as named instruments in a per-instance
/// obs::MetricsRegistry (relaxed-atomic hot path, same cost as the old raw
/// atomics); the latency reservoirs take one short lock per *call*, not per
/// query, so a 64-wide batch pays it once.
class ServeStats {
 public:
  static constexpr size_t kMaxLatencySamples = 8192;

  ServeStats();

  void RecordAssign(int64_t items, int64_t assigned, double seconds,
                    bool batch);
  void RecordTopK(int64_t count = 1) { topk_queries_->Add(count); }
  void RecordInfo() { info_queries_->Add(1); }
  /// One publication: the snapshot's build latency joins the bounded
  /// publish-latency reservoir (skipped when has_build is false — the
  /// offline nullptr publish) and its incremental-export reuse/byte
  /// counters accumulate.
  void RecordPublish(bool has_build, double build_seconds, int64_t rows_reused,
                     int64_t clusters_reused, int64_t bytes_shared,
                     int64_t bytes_copied);
  /// Sketch-filter activity of one answered query (relaxed atomics: batched
  /// queries record from pool workers).
  void RecordSketch(int64_t prunes, int64_t exact) {
    if (prunes > 0) sketch_prunes_->Add(prunes);
    if (exact > 0) sketch_exact_->Add(exact);
  }

  /// A consistent copy of every counter plus derived QPS.
  ServeStatsView View() const;

  /// Zeroes the counters, drops the latency samples, restarts the QPS clock.
  void Reset();

  /// The instrument registry behind the view — ClusterServer adds its
  /// history-ring gauges here, and exporters read it as JSON/Prometheus.
  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::MetricsRegistry* mutable_registry() { return &registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* single_queries_;
  obs::Counter* batch_calls_;
  obs::Counter* queries_;
  obs::Counter* assigned_;
  obs::Counter* topk_queries_;
  obs::Counter* info_queries_;
  obs::Counter* snapshots_published_;
  obs::Counter* sketch_prunes_;
  obs::Counter* sketch_exact_;
  obs::Counter* rows_reused_;
  obs::Counter* clusters_reused_;
  obs::Counter* bytes_shared_;
  obs::Counter* bytes_copied_;
  obs::LatencyReservoir query_seconds_{kMaxLatencySamples};
  obs::LatencyReservoir publish_seconds_{kMaxLatencySamples};
  mutable std::mutex mu_;  // guards since_ (Reset rewrites it)
  WallTimer since_;
};

}  // namespace alid

#endif  // ALID_SERVE_SERVE_STATS_H_
