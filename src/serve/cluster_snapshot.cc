#include "serve/cluster_snapshot.h"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/epoch_stamp.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/online_alid.h"

namespace alid {

// The tiled sketch walk below hands the kernel callback one checkpoint
// group per SoA tile; see the twin assert in online_alid.cc.
static_assert(kSimdTileLanes == kSketchBoundStride,
              "one SoA tile must cover exactly one bound-checkpoint group");

namespace {

// Per-thread query scratch: the LSH collision list and an epoch-stamped
// cluster-candidate mark. Thread-local, so any number of readers query one
// snapshot (or different snapshots) concurrently without allocating.
struct QueryScratch {
  std::vector<Index> hits;
  EpochStamp candidates;  // marked cluster ids of the current query
};

QueryScratch& Scratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

bool ClusterSnapshot::CompatibleWith(const ClusterSnapshotOptions& options,
                                     int dim) const {
  const AffinityParams& a = affinity_fn_->params();
  const LshParams& l = lsh_->params();
  return this->dim() == dim && absorb_slack_ == options.absorb_slack &&
         a.k == options.affinity.k && a.p == options.affinity.p &&
         l.num_tables == options.lsh.num_tables &&
         l.num_projections == options.lsh.num_projections &&
         l.segment_length == options.lsh.segment_length &&
         l.seed == options.lsh.seed && sketch_params_ == options.sketch;
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromClusters(
    const Dataset& data, std::span<const Cluster> clusters,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  return Build(data, clusters, options, generation, nullptr);
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::Build(
    const Dataset& data, std::span<const Cluster> clusters,
    const ClusterSnapshotOptions& options, uint64_t generation,
    const StreamIdentity* identity) {
  ALID_CHECK(data.dim() > 0);
  ALID_CHECK(options.absorb_slack >= 0.0 && options.absorb_slack < 1.0);
  WallTimer build_timer;
  std::shared_ptr<ClusterSnapshot> snap(new ClusterSnapshot());
  snap->generation_ = generation;
  snap->absorb_slack_ = options.absorb_slack;
  snap->sketch_params_ = options.sketch;
  snap->affinity_fn_ = std::make_unique<AffinityFunction>(options.affinity);
  snap->members_ = Dataset(data.dim());

  const int num_clusters = static_cast<int>(clusters.size());
  const int tables = options.lsh.num_tables;
  const OnlineAlid* stream =
      identity != nullptr ? identity->stream : nullptr;
  const ClusterSnapshot* prev =
      identity != nullptr ? identity->previous : nullptr;

  // Incremental re-use plan: a cluster whose stream (uid, version) pair
  // matches a cluster of the previous snapshot is provably unchanged (every
  // membership/weight/density mutation — and every member-row overwrite,
  // which expiry precedes — bumps the stream's version counter), so its
  // exported blocks move over verbatim. Everything the re-use skips is a
  // pure function of the cluster's members and weights, hence the copied
  // blocks are bit-identical to what a from-scratch build would recompute.
  std::vector<int> reuse_from(static_cast<size_t>(num_clusters), -1);
  if (stream != nullptr) {
    snap->src_uid_.resize(static_cast<size_t>(num_clusters));
    snap->src_version_.resize(static_cast<size_t>(num_clusters));
    for (int c = 0; c < num_clusters; ++c) {
      snap->src_uid_[c] = stream->cluster_uid(c);
      snap->src_version_[c] = stream->cluster_version(c);
    }
    if (prev != nullptr && prev->CompatibleWith(options, data.dim())) {
      std::unordered_map<uint64_t, int> prev_by_uid;
      prev_by_uid.reserve(prev->src_uid_.size());
      for (size_t p = 0; p < prev->src_uid_.size(); ++p) {
        if (prev->src_uid_[p] != 0) {
          prev_by_uid.emplace(prev->src_uid_[p], static_cast<int>(p));
        }
      }
      for (int c = 0; c < num_clusters; ++c) {
        if (snap->src_uid_[c] == 0) continue;
        const auto it = prev_by_uid.find(snap->src_uid_[c]);
        if (it != prev_by_uid.end() &&
            prev->src_version_[it->second] == snap->src_version_[c]) {
          reuse_from[c] = it->second;
        }
      }
    }
  } else {
    snap->src_uid_.assign(static_cast<size_t>(num_clusters), 0);
    snap->src_version_.assign(static_cast<size_t>(num_clusters), 0);
  }

  // Serial fill, cluster-major: rows/weights/ids move as block copies from
  // the previous snapshot when re-used, otherwise gather from the source.
  snap->cluster_begin_.push_back(0);
  for (int c = 0; c < num_clusters; ++c) {
    const Cluster& cluster = clusters[c];
    ALID_CHECK(cluster.members.size() == cluster.weights.size());
    const int p = reuse_from[c];
    if (p >= 0) {
      const Index pb = prev->cluster_begin_[p];
      const Index pe = prev->cluster_begin_[p + 1];
      ALID_CHECK(static_cast<size_t>(pe - pb) == cluster.members.size());
      snap->members_.AppendRaw(prev->members_.RawRows(pb, pe));
      snap->source_id_.insert(snap->source_id_.end(),
                              prev->source_id_.begin() + pb,
                              prev->source_id_.begin() + pe);
      snap->weights_.insert(snap->weights_.end(), prev->weights_.begin() + pb,
                            prev->weights_.begin() + pe);
      snap->member_keys_.insert(
          snap->member_keys_.end(),
          prev->member_keys_.begin() + static_cast<size_t>(pb) * tables,
          prev->member_keys_.begin() + static_cast<size_t>(pe) * tables);
      snap->verified_density_.push_back(prev->verified_density_[p]);
      snap->build_info_.rows_reused += pe - pb;
      ++snap->build_info_.clusters_reused;
    } else {
      for (size_t t = 0; t < cluster.members.size(); ++t) {
        const Index source = cluster.members[t];
        ALID_CHECK(source >= 0 && source < data.size());
        snap->members_.Append(data[source]);
        snap->source_id_.push_back(source);
        snap->weights_.push_back(cluster.weights[t]);
      }
      snap->member_keys_.resize(snap->member_keys_.size() +
                                cluster.members.size() *
                                    static_cast<size_t>(tables));
      snap->verified_density_.push_back(0.0);  // computed below
      snap->build_info_.rows_rebuilt +=
          static_cast<Index>(cluster.members.size());
    }
    for (size_t t = 0; t < cluster.members.size(); ++t) {
      snap->cluster_of_.push_back(c);
    }
    snap->cluster_begin_.push_back(snap->members_.size());
    snap->density_.push_back(cluster.density);
    snap->seed_.push_back(cluster.seed);
  }
  snap->build_info_.clusters_total = num_clusters;

  // Snapshot-owned substrates over the compacted members. The oracle's
  // default-on column cache is budgeted for the member set; the LSH index
  // is built deferred: re-used clusters insert their inherited keys,
  // rebuilt clusters hash their members in a deterministic parallel pass,
  // and the serial 0..M-1 insertion then reproduces exactly the buckets the
  // hashing constructor would have built (same params => same projections
  // as the source index, so point queries land in equivalent buckets).
  snap->oracle_ =
      std::make_unique<LazyAffinityOracle>(snap->members_, *snap->affinity_fn_);
  snap->lsh_ = std::make_unique<LshIndex>(snap->members_, options.lsh,
                                          LshIndex::DeferIndexing::kDeferred);
  ParallelChunks(options.pool, 0, num_clusters, options.grain,
                 [&snap, &reuse_from](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t c = lo; c < hi; ++c) {
                     if (reuse_from[c] >= 0) continue;  // keys inherited
                     const Index begin = snap->cluster_begin_[c];
                     const Index end = snap->cluster_begin_[c + 1];
                     const size_t tables =
                         static_cast<size_t>(snap->lsh_->num_tables());
                     for (Index m = begin; m < end; ++m) {
                       snap->lsh_->ComputeItemKeys(
                           m,
                           &snap->member_keys_[static_cast<size_t>(m) *
                                               tables]);
                     }
                   }
                 });
  for (Index m = 0; m < snap->members_.size(); ++m) {
    snap->lsh_->InsertItemWithKeys(
        m, std::span<const uint64_t>(
               snap->member_keys_.data() + static_cast<size_t>(m) * tables,
               static_cast<size_t>(tables)));
  }

  // Verify each rebuilt cluster's density from the snapshot's own kernel
  // entries: x^T A x over the exported support, through the per-snapshot
  // column cache (the symmetric pair (t, u)/(u, t) is one cached slot, so
  // the pass also warms and exercises the cache). Per-cluster sums run
  // serially in a fixed order inside deterministic chunks, so the values
  // are bit-identical for any pool width or grain — and for a re-used
  // cluster, bit-identical to the predecessor's value it inherited, which
  // is why this pass may skip it.
  ParallelChunks(options.pool, 0, num_clusters, options.grain,
                 [&snap, &reuse_from](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t c = lo; c < hi; ++c) {
                     if (reuse_from[c] >= 0) continue;
                     const Index begin = snap->cluster_begin_[c];
                     const Index end = snap->cluster_begin_[c + 1];
                     Scalar density = 0.0;
                     for (Index t = begin; t < end; ++t) {
                       for (Index u = begin; u < end; ++u) {
                         density += snap->weights_[t] * snap->weights_[u] *
                                    snap->oracle_->Entry(t, u);
                       }
                     }
                     snap->verified_density_[c] = density;
                   }
                 });

  // Support sketches, flattened snapshot-local: re-used clusters shift the
  // predecessor's positions by their block offset; rebuilt clusters lift
  // the stream's fresh sketch when one exists (the "export, don't rebuild"
  // path) and otherwise build from the weights — all three produce the same
  // bits because the sketch is a pure function of the weights.
  snap->sketch_begin_.push_back(0);
  for (int c = 0; c < num_clusters; ++c) {
    const Index begin = snap->cluster_begin_[c];
    const int p = reuse_from[c];
    if (p >= 0) {
      const Index delta = begin - prev->cluster_begin_[p];
      for (Index s = prev->sketch_begin_[p]; s < prev->sketch_begin_[p + 1];
           ++s) {
        snap->sketch_member_.push_back(prev->sketch_member_[s] + delta);
        snap->sketch_weight_.push_back(prev->sketch_weight_[s]);
        snap->sketch_rest_.push_back(prev->sketch_rest_[s]);
      }
    } else {
      const SupportSketch* fresh = nullptr;
      SupportSketch built;
      if (stream != nullptr &&
          stream->cluster_sketch(c).built_version ==
              stream->cluster_version(c)) {
        fresh = &stream->cluster_sketch(c);
      } else {
        built = BuildSupportSketch(
            std::span<const Scalar>(snap->weights_.data() + begin,
                                    static_cast<size_t>(
                                        snap->cluster_begin_[c + 1] - begin)),
            options.sketch);
        fresh = &built;
      }
      for (size_t t = 0; t < fresh->ordinals.size(); ++t) {
        snap->sketch_member_.push_back(begin + fresh->ordinals[t]);
        snap->sketch_weight_.push_back(fresh->weights[t]);
        snap->sketch_rest_.push_back(fresh->rest_weights[t]);
      }
    }
    snap->sketch_begin_.push_back(
        static_cast<Index>(snap->sketch_member_.size()));
  }

  // Vector-kernel tiles (see header): dimension-major copies of every
  // cluster's member block and sketch prefix, skipped entirely when the
  // norm has no tile kernel. Pure per cluster, so the pass chunks on the
  // build pool like the others; a re-used cluster copies the predecessor's
  // blocks (a compatible predecessor was built under the same norm, so its
  // blocks exist and are bit-identical to a rebuild from the same rows).
  snap->simd_norm_ = SimdSupportsNorm(options.affinity.p);
  if (snap->simd_norm_) {
    const int dim = data.dim();
    snap->cluster_soa_.resize(static_cast<size_t>(num_clusters));
    snap->sketch_soa_.resize(static_cast<size_t>(num_clusters));
    ParallelChunks(
        options.pool, 0, num_clusters, options.grain,
        [&snap, &reuse_from, prev, dim](int64_t, int64_t lo, int64_t hi) {
          for (int64_t c = lo; c < hi; ++c) {
            const int p = reuse_from[c];
            if (p >= 0 && !prev->cluster_soa_.empty()) {
              snap->cluster_soa_[c] = prev->cluster_soa_[p];
              snap->sketch_soa_[c] = prev->sketch_soa_[p];
              continue;
            }
            const Index begin = snap->cluster_begin_[c];
            const Index end = snap->cluster_begin_[c + 1];
            snap->cluster_soa_[c].FromRowMajor(
                snap->members_.raw().data() +
                    static_cast<size_t>(begin) * dim,
                end - begin, dim);
            snap->sketch_soa_[c].GatherRows(
                snap->members_,
                std::span<const Index>(
                    snap->sketch_member_.data() + snap->sketch_begin_[c],
                    static_cast<size_t>(snap->sketch_begin_[c + 1] -
                                        snap->sketch_begin_[c])));
          }
        });
  }

  snap->build_info_.build_seconds = build_timer.Seconds();
  return snap;
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromDetection(
    const Dataset& data, const DetectionResult& result,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  return FromClusters(data, result.clusters, options, generation);
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromStream(
    const OnlineAlid& stream, ThreadPool* pool,
    std::shared_ptr<const ClusterSnapshot> previous) {
  ClusterSnapshotOptions options;
  options.affinity = stream.options().affinity;
  options.lsh = stream.options().lsh;
  options.absorb_slack = stream.options().absorb_slack;
  options.sketch = stream.options().sketch;
  options.pool = pool;
  options.grain = stream.options().grain;
  StreamIdentity identity;
  identity.stream = &stream;
  identity.previous = previous.get();
  return Build(stream.oracle().data(), stream.clusters(), options,
               static_cast<uint64_t>(stream.size()), &identity);
}

Scalar ClusterSnapshot::ClusterAffinity(int c,
                                        std::span<const Scalar> point) const {
  const Index begin = cluster_begin_[c];
  const Index end = cluster_begin_[c + 1];
  if (simd_norm_) {
    // Same member-order accumulation through the dimension-major tiles —
    // bit-identical to the row-major loop below (see simd/soa_block.h).
    return SoaWeightedKernelSum(
        *ActiveSimdOps(), cluster_soa_[c],
        std::span<const Scalar>(weights_.data() + begin,
                                static_cast<size_t>(end - begin)),
        *affinity_fn_, point.data());
  }
  const double p = affinity_fn_->params().p;
  Scalar affinity = 0.0;  // pi(s_c, x), in member order (see header)
  for (Index t = begin; t < end; ++t) {
    affinity += weights_[t] *
                affinity_fn_->FromDistance(members_.DistanceTo(t, point, p));
  }
  return affinity;
}

ClusterSnapshot::SketchView ClusterSnapshot::sketch(int c) const {
  SketchView view;
  if (c < 0 || c >= num_clusters()) return view;
  const Index begin = sketch_begin_[c];
  const Index end = sketch_begin_[c + 1];
  view.members = std::span<const Index>(sketch_member_.data() + begin,
                                        static_cast<size_t>(end - begin));
  view.weights = std::span<const Scalar>(sketch_weight_.data() + begin,
                                         static_cast<size_t>(end - begin));
  view.rest_weights = std::span<const Scalar>(
      sketch_rest_.data() + begin, static_cast<size_t>(end - begin));
  return view;
}

const std::vector<Index>& ClusterSnapshot::CandidateMembers(
    std::span<const Scalar> point) const {
  QueryScratch& scratch = Scratch();
  lsh_->QueryByPoint(point, &scratch.hits);
  scratch.candidates.Begin(static_cast<size_t>(num_clusters()));
  for (Index j : scratch.hits) {
    scratch.candidates.Mark(static_cast<size_t>(cluster_of_[j]));
  }
  return scratch.hits;
}

bool ClusterSnapshot::SketchRejects(int c, std::span<const Scalar> point,
                                    Scalar threshold,
                                    Scalar incumbent) const {
  const double p = affinity_fn_->params().p;
  const Index begin = sketch_begin_[c];
  const size_t prefix = static_cast<size_t>(sketch_begin_[c + 1] - begin);
  const std::span<const Scalar> prefix_weights(
      sketch_weight_.data() + begin, prefix);
  const std::span<const Scalar> prefix_rest(sketch_rest_.data() + begin,
                                            prefix);
  // One walk, shared with the stream's absorb phase (SketchBoundRejects
  // [Tiled] in support_sketch.h): checkpoint cadence, guard, reject test
  // and give-up rule live there exactly once, so a tweak cannot
  // desynchronize the two layers' prune decisions.
  if (simd_norm_) {
    const SimdKernelOps& ops = *ActiveSimdOps();
    const SoaBlock& soa = sketch_soa_[c];
    return SketchBoundRejectsTiled(
        prefix_weights, prefix_rest, threshold, incumbent,
        [&](size_t t0, size_t n, Scalar* out) {
          // One SoA tile per checkpoint group (kSimdTileLanes ==
          // kSketchBoundStride), so t0 always lands on a tile boundary.
          Scalar dists[kSimdTileLanes];
          TileDistances(ops, soa, static_cast<Index>(t0 / kSimdTileLanes),
                        point.data(), p, dists);
          for (size_t i = 0; i < n; ++i) {
            out[i] = affinity_fn_->FromDistance(dists[i]);
          }
        });
  }
  return SketchBoundRejects(
      prefix_weights, prefix_rest, threshold, incumbent, [&](size_t t) {
        return affinity_fn_->FromDistance(members_.DistanceTo(
            sketch_member_[begin + static_cast<Index>(t)], point, p));
      });
}

AssignOutcome ClusterSnapshot::Assign(std::span<const Scalar> point) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  AssignOutcome best;
  if (num_clusters() == 0) return best;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  Scalar best_margin = -std::numeric_limits<Scalar>::infinity();
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    // Absorb when (near-)infective — the same slack rule, threshold and
    // lowest-id tie-break as the stream's ScoreArrival.
    const Scalar threshold = density_[c] * (1.0 - absorb_slack_);
    if (sketch_begin_[c + 1] > sketch_begin_[c]) {
      // Branch-and-bound: any scored prefix of the sketch plus its rest
      // weight (plus the FP guard) certifies an upper bound on pi(s_c, x);
      // a checkpoint bound that cannot clear the threshold or beat the
      // incumbent margin rejects the cluster without touching its full
      // support. The fallback below is the unchanged exact summation, so
      // answers are bit-identical with the sketch on or off.
      if (SketchRejects(c, point, threshold, best_margin)) {
        ++best.sketch_prunes;
        continue;
      }
      ++best.sketch_exact;
    }
    const Scalar affinity = ClusterAffinity(c, point);
    const Scalar margin = affinity - threshold;
    if (margin > 0.0 && margin > best_margin) {
      best_margin = margin;
      best.cluster = c;
      best.affinity = affinity;
      best.margin = margin;
    }
  }
  return best;
}

void ClusterSnapshot::AssignBatch(std::span<const Scalar> points,
                                  std::span<AssignOutcome> outcomes) const {
  const int d = dim();
  ALID_CHECK(d > 0 && points.size() % static_cast<size_t>(d) == 0);
  const Index count = static_cast<Index>(points.size() / d);
  ALID_CHECK(outcomes.size() == static_cast<size_t>(count));
  for (Index q = 0; q < count; ++q) outcomes[q] = AssignOutcome{};
  const int num = num_clusters();
  if (num == 0) return;
  // Query-major tiling: mark every query's candidate clusters up front for
  // a block of queries, then stream the clusters in ascending id across
  // the whole block, so each cluster's SoA tiles are pulled through the
  // cache once per block instead of once per query. The inner body is the
  // loop body of Assign verbatim, each query carrying its own incumbent,
  // and every query still visits its candidates in ascending cluster id —
  // so winners, margins and sketch counters are bit-identical to per-query
  // Assign calls (the property the batch-vs-serial tests pin).
  constexpr Index kQueryBlock = 32;
  std::vector<uint8_t> candidate(static_cast<size_t>(kQueryBlock) * num, 0);
  std::array<Scalar, kQueryBlock> best_margin;
  for (Index q0 = 0; q0 < count; q0 += kQueryBlock) {
    const Index block = std::min<Index>(kQueryBlock, count - q0);
    for (Index i = 0; i < block; ++i) {
      const std::span<const Scalar> point =
          points.subspan(static_cast<size_t>(q0 + i) * d,
                         static_cast<size_t>(d));
      ALID_CHECK(static_cast<int>(point.size()) == d);
      CandidateMembers(point);
      const QueryScratch& scratch = Scratch();
      for (int c = 0; c < num; ++c) {
        candidate[static_cast<size_t>(i) * num + c] =
            scratch.candidates.IsMarked(static_cast<size_t>(c)) ? 1 : 0;
      }
      best_margin[i] = -std::numeric_limits<Scalar>::infinity();
    }
    for (int c = 0; c < num; ++c) {
      const Scalar threshold = density_[c] * (1.0 - absorb_slack_);
      const bool sketched = sketch_begin_[c + 1] > sketch_begin_[c];
      for (Index i = 0; i < block; ++i) {
        if (candidate[static_cast<size_t>(i) * num + c] == 0) continue;
        const std::span<const Scalar> point =
            points.subspan(static_cast<size_t>(q0 + i) * d,
                           static_cast<size_t>(d));
        AssignOutcome& best = outcomes[q0 + i];
        if (sketched) {
          if (SketchRejects(c, point, threshold, best_margin[i])) {
            ++best.sketch_prunes;
            continue;
          }
          ++best.sketch_exact;
        }
        const Scalar affinity = ClusterAffinity(c, point);
        const Scalar margin = affinity - threshold;
        if (margin > 0.0 && margin > best_margin[i]) {
          best_margin[i] = margin;
          best.cluster = c;
          best.affinity = affinity;
          best.margin = margin;
        }
      }
    }
  }
}

std::vector<ScoredCluster> ClusterSnapshot::TopKClusters(
    std::span<const Scalar> point, int k) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  std::vector<ScoredCluster> scored;
  if (k <= 0 || num_clusters() == 0) return scored;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  // Running k-th best affinity (min of the current top-k). Candidates
  // iterate in ascending id and exact ties break toward the lower id, so
  // once k candidates are scored, a later candidate whose sketch bound is
  // <= the k-th affinity can never enter the top k — skipping its exact
  // scoring leaves the truncated result identical.
  std::vector<Scalar> topk;  // min-heap of the k best affinities so far
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    if (static_cast<int>(topk.size()) == k &&
        sketch_begin_[c + 1] > sketch_begin_[c] &&
        SketchRejects(c, point, /*threshold=*/0.0,
                      /*incumbent=*/topk.front())) {
      continue;
    }
    const Scalar affinity = ClusterAffinity(c, point);
    scored.push_back(
        {c, affinity,
         affinity - density_[c] * (1.0 - absorb_slack_) > 0.0});
    if (static_cast<int>(topk.size()) < k) {
      topk.push_back(affinity);
      std::push_heap(topk.begin(), topk.end(), std::greater<Scalar>());
    } else if (affinity > topk.front()) {
      std::pop_heap(topk.begin(), topk.end(), std::greater<Scalar>());
      topk.back() = affinity;
      std::push_heap(topk.begin(), topk.end(), std::greater<Scalar>());
    }
  }
  // Descending affinity, ascending id on exact ties: a stable total order,
  // so batched and serial TopK answers are identical.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCluster& a, const ScoredCluster& b) {
              if (a.affinity != b.affinity) return a.affinity > b.affinity;
              return a.cluster < b.cluster;
            });
  if (static_cast<int>(scored.size()) > k) scored.resize(k);
  return scored;
}

ClusterSnapshotInfo ClusterSnapshot::ClusterInfo(int c) const {
  ClusterSnapshotInfo info;
  if (c < 0 || c >= num_clusters()) return info;
  info.cluster = c;
  const Index begin = cluster_begin_[c];
  const Index end = cluster_begin_[c + 1];
  info.size = end - begin;
  info.density = density_[c];
  info.verified_density = verified_density_[c];
  info.seed = seed_[c];
  info.members.assign(source_id_.begin() + begin, source_id_.begin() + end);
  info.weights.assign(weights_.begin() + begin, weights_.begin() + end);
  return info;
}

}  // namespace alid
