#include "serve/cluster_snapshot.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/epoch_stamp.h"
#include "common/parallel.h"
#include "core/online_alid.h"

namespace alid {

namespace {

// Per-thread query scratch: the LSH collision list and an epoch-stamped
// cluster-candidate mark. Thread-local, so any number of readers query one
// snapshot (or different snapshots) concurrently without allocating.
struct QueryScratch {
  std::vector<Index> hits;
  EpochStamp candidates;  // marked cluster ids of the current query
};

QueryScratch& Scratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromClusters(
    const Dataset& data, std::span<const Cluster> clusters,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  ALID_CHECK(data.dim() > 0);
  ALID_CHECK(options.absorb_slack >= 0.0 && options.absorb_slack < 1.0);
  std::shared_ptr<ClusterSnapshot> snap(new ClusterSnapshot());
  snap->generation_ = generation;
  snap->absorb_slack_ = options.absorb_slack;
  snap->affinity_fn_ = std::make_unique<AffinityFunction>(options.affinity);
  snap->members_ = Dataset(data.dim());
  snap->cluster_begin_.push_back(0);
  for (size_t c = 0; c < clusters.size(); ++c) {
    const Cluster& cluster = clusters[c];
    ALID_CHECK(cluster.members.size() == cluster.weights.size());
    for (size_t t = 0; t < cluster.members.size(); ++t) {
      const Index source = cluster.members[t];
      ALID_CHECK(source >= 0 && source < data.size());
      snap->members_.Append(data[source]);
      snap->source_id_.push_back(source);
      snap->cluster_of_.push_back(static_cast<int>(c));
      snap->weights_.push_back(cluster.weights[t]);
    }
    snap->cluster_begin_.push_back(snap->members_.size());
    snap->density_.push_back(cluster.density);
    snap->seed_.push_back(cluster.seed);
  }
  // Snapshot-owned substrates over the compacted members. The oracle's
  // default-on column cache is budgeted for the member set; the LSH index is
  // rebuilt per snapshot (same params => same projections as the source
  // index, so point queries land in equivalent buckets).
  snap->oracle_ =
      std::make_unique<LazyAffinityOracle>(snap->members_, *snap->affinity_fn_);
  snap->lsh_ = std::make_unique<LshIndex>(snap->members_, options.lsh);
  // Verify each cluster's density from the snapshot's own kernel entries:
  // x^T A x over the exported support, through the per-snapshot column cache
  // (the symmetric pair (t, u)/(u, t) is one cached slot, so the pass also
  // warms and exercises the cache). Per-cluster sums run serially in a fixed
  // order inside deterministic chunks, so the values are bit-identical for
  // any pool width or grain.
  const int num_clusters = static_cast<int>(clusters.size());
  snap->verified_density_.assign(num_clusters, 0.0);
  ParallelChunks(options.pool, 0, num_clusters, options.grain,
                 [&snap](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t c = lo; c < hi; ++c) {
                     const Index begin = snap->cluster_begin_[c];
                     const Index end = snap->cluster_begin_[c + 1];
                     Scalar density = 0.0;
                     for (Index t = begin; t < end; ++t) {
                       for (Index u = begin; u < end; ++u) {
                         density += snap->weights_[t] * snap->weights_[u] *
                                    snap->oracle_->Entry(t, u);
                       }
                     }
                     snap->verified_density_[c] = density;
                   }
                 });
  return snap;
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromDetection(
    const Dataset& data, const DetectionResult& result,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  return FromClusters(data, result.clusters, options, generation);
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromStream(
    const OnlineAlid& stream, ThreadPool* pool) {
  ClusterSnapshotOptions options;
  options.affinity = stream.options().affinity;
  options.lsh = stream.options().lsh;
  options.absorb_slack = stream.options().absorb_slack;
  options.pool = pool;
  options.grain = stream.options().grain;
  return FromClusters(stream.oracle().data(), stream.clusters(), options,
                      static_cast<uint64_t>(stream.size()));
}

Scalar ClusterSnapshot::ClusterAffinity(int c,
                                        std::span<const Scalar> point) const {
  const double p = affinity_fn_->params().p;
  Scalar affinity = 0.0;  // pi(s_c, x), in member order (see header)
  for (Index t = cluster_begin_[c]; t < cluster_begin_[c + 1]; ++t) {
    affinity += weights_[t] *
                affinity_fn_->FromDistance(members_.DistanceTo(t, point, p));
  }
  return affinity;
}

const std::vector<Index>& ClusterSnapshot::CandidateMembers(
    std::span<const Scalar> point) const {
  QueryScratch& scratch = Scratch();
  lsh_->QueryByPoint(point, &scratch.hits);
  scratch.candidates.Begin(static_cast<size_t>(num_clusters()));
  for (Index j : scratch.hits) {
    scratch.candidates.Mark(static_cast<size_t>(cluster_of_[j]));
  }
  return scratch.hits;
}

AssignOutcome ClusterSnapshot::Assign(std::span<const Scalar> point) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  AssignOutcome best;
  if (num_clusters() == 0) return best;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  Scalar best_margin = -std::numeric_limits<Scalar>::infinity();
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    // Absorb when (near-)infective — the same slack rule, threshold and
    // lowest-id tie-break as the stream's ScoreArrival.
    const Scalar affinity = ClusterAffinity(c, point);
    const Scalar margin =
        affinity - density_[c] * (1.0 - absorb_slack_);
    if (margin > 0.0 && margin > best_margin) {
      best_margin = margin;
      best.cluster = c;
      best.affinity = affinity;
      best.margin = margin;
    }
  }
  return best;
}

std::vector<ScoredCluster> ClusterSnapshot::TopKClusters(
    std::span<const Scalar> point, int k) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  std::vector<ScoredCluster> scored;
  if (k <= 0 || num_clusters() == 0) return scored;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    const Scalar affinity = ClusterAffinity(c, point);
    scored.push_back(
        {c, affinity,
         affinity - density_[c] * (1.0 - absorb_slack_) > 0.0});
  }
  // Descending affinity, ascending id on exact ties: a stable total order,
  // so batched and serial TopK answers are identical.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCluster& a, const ScoredCluster& b) {
              if (a.affinity != b.affinity) return a.affinity > b.affinity;
              return a.cluster < b.cluster;
            });
  if (static_cast<int>(scored.size()) > k) scored.resize(k);
  return scored;
}

ClusterSnapshotInfo ClusterSnapshot::ClusterInfo(int c) const {
  ClusterSnapshotInfo info;
  if (c < 0 || c >= num_clusters()) return info;
  info.cluster = c;
  const Index begin = cluster_begin_[c];
  const Index end = cluster_begin_[c + 1];
  info.size = end - begin;
  info.density = density_[c];
  info.verified_density = verified_density_[c];
  info.seed = seed_[c];
  info.members.assign(source_id_.begin() + begin, source_id_.begin() + end);
  info.weights.assign(weights_.begin() + begin, weights_.begin() + end);
  return info;
}

}  // namespace alid
