#include "serve/cluster_snapshot.h"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "affinity/lazy_affinity_oracle.h"
#include "common/check.h"
#include "common/epoch_stamp.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/online_alid.h"
#include "obs/trace.h"

namespace alid {

// The tiled sketch walk below hands the kernel callback one checkpoint
// group per SoA tile; see the twin assert in online_alid.cc.
static_assert(kSimdTileLanes == kSketchBoundStride,
              "one SoA tile must cover exactly one bound-checkpoint group");

namespace {

// Per-thread query scratch: the LSH collision list and an epoch-stamped
// cluster-candidate mark. Thread-local, so any number of readers query one
// snapshot (or different snapshots) concurrently without allocating.
struct QueryScratch {
  std::vector<Index> hits;
  EpochStamp candidates;  // marked cluster ids of the current query
};

QueryScratch& Scratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

bool ClusterSnapshot::CompatibleWith(const ClusterSnapshotOptions& options,
                                     int dim) const {
  const AffinityParams& a = affinity_fn_->params();
  const LshParams& l = lsh_->params();
  return this->dim() == dim && absorb_slack_ == options.absorb_slack &&
         a.k == options.affinity.k && a.p == options.affinity.p &&
         l.num_tables == options.lsh.num_tables &&
         l.num_projections == options.lsh.num_projections &&
         l.segment_length == options.lsh.segment_length &&
         l.seed == options.lsh.seed && sketch_params_ == options.sketch;
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromClusters(
    const Dataset& data, std::span<const Cluster> clusters,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  return Build(data, clusters, options, generation, nullptr);
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::Build(
    const Dataset& data, std::span<const Cluster> clusters,
    const ClusterSnapshotOptions& options, uint64_t generation,
    const StreamIdentity* identity) {
  ALID_CHECK(data.dim() > 0);
  ALID_CHECK(options.absorb_slack >= 0.0 && options.absorb_slack < 1.0);
  ALID_TRACE_SCOPE("publish", "build");
  WallTimer build_timer;
  std::shared_ptr<ClusterSnapshot> snap(new ClusterSnapshot());
  const int dim = data.dim();
  snap->dim_ = dim;
  snap->generation_ = generation;
  snap->absorb_slack_ = options.absorb_slack;
  snap->sketch_params_ = options.sketch;
  snap->affinity_fn_ = std::make_unique<AffinityFunction>(options.affinity);

  const int num_clusters = static_cast<int>(clusters.size());
  const int tables = options.lsh.num_tables;
  const OnlineAlid* stream =
      identity != nullptr ? identity->stream : nullptr;
  const ClusterSnapshot* prev =
      identity != nullptr ? identity->previous : nullptr;

  // Incremental re-use plan: a cluster whose stream (uid, version) pair
  // matches a cluster of the previous snapshot is provably unchanged (every
  // membership/weight/density mutation — and every member-row overwrite,
  // which expiry precedes — bumps the stream's version counter), so its
  // arena block is shared by refcount. Everything in the block is a pure
  // function of the cluster's members and weights, hence the shared block is
  // bit-identical to what a from-scratch build would recompute.
  std::vector<int> reuse_from(static_cast<size_t>(num_clusters), -1);
  if (stream != nullptr) {
    snap->src_uid_.resize(static_cast<size_t>(num_clusters));
    snap->src_version_.resize(static_cast<size_t>(num_clusters));
    for (int c = 0; c < num_clusters; ++c) {
      snap->src_uid_[c] = stream->cluster_uid(c);
      snap->src_version_[c] = stream->cluster_version(c);
    }
    if (prev != nullptr && prev->CompatibleWith(options, dim)) {
      std::unordered_map<uint64_t, int> prev_by_uid;
      prev_by_uid.reserve(prev->src_uid_.size());
      for (size_t p = 0; p < prev->src_uid_.size(); ++p) {
        if (prev->src_uid_[p] != 0) {
          prev_by_uid.emplace(prev->src_uid_[p], static_cast<int>(p));
        }
      }
      for (int c = 0; c < num_clusters; ++c) {
        if (snap->src_uid_[c] == 0) continue;
        const auto it = prev_by_uid.find(snap->src_uid_[c]);
        if (it != prev_by_uid.end() &&
            prev->src_version_[it->second] == snap->src_version_[c]) {
          reuse_from[c] = it->second;
        }
      }
    }
  } else {
    snap->src_uid_.assign(static_cast<size_t>(num_clusters), 0);
    snap->src_version_.assign(static_cast<size_t>(num_clusters), 0);
  }

  // Block fill, cluster-major: an unchanged cluster *shares* the previous
  // snapshot's sealed arena block (a refcount bump — zero bytes moved);
  // a changed one materializes a fresh block and gathers its rows from the
  // source. `fresh` keeps the mutable handle of every new block for the
  // build passes below; once Build returns, only const references remain.
  snap->blocks_.resize(static_cast<size_t>(num_clusters));
  std::vector<std::shared_ptr<ClusterBlock>> fresh(
      static_cast<size_t>(num_clusters));
  {
    ALID_TRACE_SCOPE("publish", "block_fill");
    snap->cluster_begin_.push_back(0);
    for (int c = 0; c < num_clusters; ++c) {
      const Cluster& cluster = clusters[c];
      ALID_CHECK(cluster.members.size() == cluster.weights.size());
      const Index count = static_cast<Index>(cluster.members.size());
      const int p = reuse_from[c];
      if (p >= 0) {
        // The reuse branch is a refcount bump; the span distinguishing it
        // from a gather is the accounting in build_info_, not a trace event.
        const std::shared_ptr<const ClusterBlock>& block = prev->blocks_[p];
        ALID_CHECK(block->count == count);
        snap->blocks_[c] = block;
        snap->build_info_.bytes_shared +=
            static_cast<int64_t>(block->MemoryBytes());
        snap->build_info_.rows_reused += count;
        ++snap->build_info_.clusters_reused;
      } else {
        ALID_TRACE_SCOPE("publish", "block_gather");
        auto block = std::make_shared<ClusterBlock>();
        block->count = count;
        block->dim = dim;
        block->keys_per_member = tables;
        block->rows.resize(static_cast<size_t>(count) * dim);
        block->weights.resize(static_cast<size_t>(count));
        block->source_ids.resize(static_cast<size_t>(count));
        block->member_keys.resize(static_cast<size_t>(count) * tables);
        for (Index t = 0; t < count; ++t) {
          const Index source = cluster.members[t];
          ALID_CHECK(source >= 0 && source < data.size());
          const std::span<const Scalar> row = data[source];
          std::copy(row.begin(), row.end(),
                    block->rows.begin() + static_cast<size_t>(t) * dim);
          block->weights[t] = cluster.weights[t];
          block->source_ids[t] = source;
        }
        snap->blocks_[c] = block;
        fresh[c] = std::move(block);
        snap->build_info_.rows_rebuilt += count;
      }
      for (Index t = 0; t < count; ++t) {
        snap->cluster_of_.push_back(c);
      }
      snap->cluster_begin_.push_back(snap->cluster_begin_.back() + count);
      snap->density_.push_back(cluster.density);
      snap->seed_.push_back(cluster.seed);
    }
  }
  snap->build_info_.clusters_total = num_clusters;

  // Per-snapshot LSH index over the global member positions, dataset-free
  // (the rows live in the blocks): shared clusters re-insert their
  // inherited keys, fresh clusters hash their block rows in a deterministic
  // parallel pass, and the serial 0..M-1 insertion then reproduces exactly
  // the buckets an eager index over the same rows would have built (same
  // params => same projections as the source index, so point queries land
  // in equivalent buckets).
  {
    ALID_TRACE_SCOPE("publish", "lsh");
    snap->lsh_ = std::make_unique<LshIndex>(dim, options.lsh);
    ParallelChunks(options.pool, 0, num_clusters, options.grain,
                   [&snap, &fresh](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t c = lo; c < hi; ++c) {
                       ClusterBlock* block = fresh[c].get();
                       if (block == nullptr) continue;  // keys inherited
                       const size_t tables = static_cast<size_t>(
                           snap->lsh_->num_tables());
                       for (Index m = 0; m < block->count; ++m) {
                         snap->lsh_->ComputePointKeys(
                             block->row(m),
                             &block->member_keys[static_cast<size_t>(m) *
                                                 tables]);
                       }
                     }
                   });
    for (int c = 0; c < num_clusters; ++c) {
      const ClusterBlock& block = *snap->blocks_[c];
      const Index begin = snap->cluster_begin_[c];
      for (Index m = 0; m < block.count; ++m) {
        snap->lsh_->InsertItemWithKeys(
            begin + m,
            std::span<const uint64_t>(
                block.member_keys.data() + static_cast<size_t>(m) * tables,
                static_cast<size_t>(tables)));
      }
    }
  }

  // Verify each fresh cluster's density from the build's own kernel
  // entries: x^T A x over the exported support, through a build-scratch
  // delta dataset (the fresh clusters' rows only) and lazy oracle whose
  // column cache dedups the symmetric (t, u)/(u, t) pairs. Per-cluster sums
  // run serially in a fixed order inside deterministic chunks, so the
  // values are bit-identical for any pool width or grain — and for a shared
  // cluster, bit-identical to the predecessor's value its block carries,
  // which is why this pass may skip it. The scratch dataset and oracle die
  // with this scope: only the verified densities (in the blocks) and the
  // cache-hit counter survive, so the snapshot holds no second copy of any
  // member row.
  {
    ALID_TRACE_SCOPE("publish", "verify_density");
    Dataset delta(dim);
    std::vector<Index> delta_begin(static_cast<size_t>(num_clusters), -1);
    for (int c = 0; c < num_clusters; ++c) {
      if (fresh[c] == nullptr) continue;
      delta_begin[c] = delta.size();
      delta.AppendRaw(std::span<const Scalar>(fresh[c]->rows.data(),
                                              fresh[c]->rows.size()));
    }
    if (!delta.empty()) {
      LazyAffinityOracle oracle(delta, *snap->affinity_fn_);
      ParallelChunks(
          options.pool, 0, num_clusters, options.grain,
          [&fresh, &delta_begin, &oracle](int64_t, int64_t lo, int64_t hi) {
            for (int64_t c = lo; c < hi; ++c) {
              ClusterBlock* block = fresh[c].get();
              if (block == nullptr) continue;
              const Index base = delta_begin[c];
              Scalar density = 0.0;
              for (Index t = 0; t < block->count; ++t) {
                for (Index u = 0; u < block->count; ++u) {
                  density += block->weights[t] * block->weights[u] *
                             oracle.Entry(base + t, base + u);
                }
              }
              block->verified_density = density;
            }
          });
      snap->verification_cache_hits_ = oracle.cache_hits();
    }
  }

  // Support sketches, cluster-local ordinals: shared blocks carry theirs;
  // fresh clusters lift the stream's fresh sketch when one exists (the
  // "export, don't rebuild" path) and otherwise build from the weights —
  // both produce the same bits because the sketch is a pure function of the
  // weights.
  {
    ALID_TRACE_SCOPE("publish", "sketches");
    for (int c = 0; c < num_clusters; ++c) {
      ClusterBlock* block = fresh[c].get();
      if (block == nullptr) continue;
      const SupportSketch* sketch = nullptr;
      SupportSketch built;
      if (stream != nullptr &&
          stream->cluster_sketch(c).built_version ==
              stream->cluster_version(c)) {
        sketch = &stream->cluster_sketch(c);
      } else {
        built = BuildSupportSketch(block->weights_span(), options.sketch);
        sketch = &built;
      }
      block->sketch_members.reserve(sketch->ordinals.size());
      for (size_t t = 0; t < sketch->ordinals.size(); ++t) {
        block->sketch_members.push_back(sketch->ordinals[t]);
        block->sketch_weights.push_back(sketch->weights[t]);
        block->sketch_rest.push_back(sketch->rest_weights[t]);
      }
    }
  }

  // Vector-kernel tiles (see snapshot_arena.h): dimension-major copies of
  // every fresh cluster's member block and sketch prefix, skipped entirely
  // when the norm has no tile kernel. Pure per cluster, so the pass chunks
  // on the build pool like the others; a shared block's tiles ride along
  // with the block (a compatible predecessor was built under the same norm,
  // so they exist and are bit-identical to a rebuild from the same rows).
  snap->simd_norm_ = SimdSupportsNorm(options.affinity.p);
  if (snap->simd_norm_) {
    ALID_TRACE_SCOPE("publish", "soa_tiles");
    ParallelChunks(options.pool, 0, num_clusters, options.grain,
                   [&fresh, dim](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t c = lo; c < hi; ++c) {
                       ClusterBlock* block = fresh[c].get();
                       if (block == nullptr) continue;
                       block->cluster_soa.FromRowMajor(block->rows.data(),
                                                       block->count, dim);
                       block->sketch_soa.GatherRowMajor(
                           block->rows.data(), dim,
                           std::span<const Index>(
                               block->sketch_members.data(),
                               block->sketch_members.size()));
                     }
                   });
  }

  // Every fresh block is complete: seal it — charging its bytes to the
  // global tracker and the arena's resource space exactly once — and count
  // what this build materialized vs. shared.
  {
    ALID_TRACE_SCOPE("publish", "seal");
    for (int c = 0; c < num_clusters; ++c) {
      if (fresh[c] == nullptr) continue;
      fresh[c]->Seal();
      snap->build_info_.bytes_copied +=
          static_cast<int64_t>(fresh[c]->MemoryBytes());
    }
  }

  snap->build_info_.build_seconds = build_timer.Seconds();
  return snap;
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromDetection(
    const Dataset& data, const DetectionResult& result,
    const ClusterSnapshotOptions& options, uint64_t generation) {
  return FromClusters(data, result.clusters, options, generation);
}

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::FromStream(
    const OnlineAlid& stream, ThreadPool* pool,
    std::shared_ptr<const ClusterSnapshot> previous) {
  ALID_TRACE_SCOPE("publish", "from_stream");
  ClusterSnapshotOptions options;
  options.affinity = stream.options().affinity;
  options.lsh = stream.options().lsh;
  options.absorb_slack = stream.options().absorb_slack;
  options.sketch = stream.options().sketch;
  options.pool = pool;
  options.grain = stream.options().grain;
  StreamIdentity identity;
  identity.stream = &stream;
  identity.previous = previous.get();
  return Build(stream.oracle().data(), stream.clusters(), options,
               static_cast<uint64_t>(stream.size()), &identity);
}

Scalar ClusterSnapshot::ClusterAffinity(int c,
                                        std::span<const Scalar> point) const {
  const ClusterBlock& block = *blocks_[c];
  if (simd_norm_) {
    // Same member-order accumulation through the dimension-major tiles —
    // bit-identical to the row-major loop below (see simd/soa_block.h).
    return SoaWeightedKernelSum(*ActiveSimdOps(), block.cluster_soa,
                                block.weights_span(), *affinity_fn_,
                                point.data());
  }
  const double p = affinity_fn_->params().p;
  Scalar affinity = 0.0;  // pi(s_c, x), in member order (see header)
  for (Index t = 0; t < block.count; ++t) {
    affinity += block.weights[t] *
                affinity_fn_->FromDistance(LpDistance(block.row(t), point, p));
  }
  return affinity;
}

ClusterSnapshot::SketchView ClusterSnapshot::sketch(int c) const {
  SketchView view;
  if (c < 0 || c >= num_clusters()) return view;
  const ClusterBlock& block = *blocks_[c];
  view.members = std::span<const Index>(block.sketch_members.data(),
                                        block.sketch_members.size());
  view.weights = std::span<const Scalar>(block.sketch_weights.data(),
                                         block.sketch_weights.size());
  view.rest_weights = std::span<const Scalar>(block.sketch_rest.data(),
                                              block.sketch_rest.size());
  return view;
}

const std::vector<Index>& ClusterSnapshot::CandidateMembers(
    std::span<const Scalar> point) const {
  QueryScratch& scratch = Scratch();
  lsh_->QueryByPoint(point, &scratch.hits);
  scratch.candidates.Begin(static_cast<size_t>(num_clusters()));
  for (Index j : scratch.hits) {
    scratch.candidates.Mark(static_cast<size_t>(cluster_of_[j]));
  }
  return scratch.hits;
}

bool ClusterSnapshot::SketchRejects(int c, std::span<const Scalar> point,
                                    Scalar threshold,
                                    Scalar incumbent) const {
  const double p = affinity_fn_->params().p;
  const ClusterBlock& block = *blocks_[c];
  const std::span<const Scalar> prefix_weights(block.sketch_weights.data(),
                                               block.sketch_weights.size());
  const std::span<const Scalar> prefix_rest(block.sketch_rest.data(),
                                            block.sketch_rest.size());
  // One walk, shared with the stream's absorb phase (SketchBoundRejects
  // [Tiled] in support_sketch.h): checkpoint cadence, guard, reject test
  // and give-up rule live there exactly once, so a tweak cannot
  // desynchronize the two layers' prune decisions.
  if (simd_norm_) {
    const SimdKernelOps& ops = *ActiveSimdOps();
    const SoaBlock& soa = block.sketch_soa;
    return SketchBoundRejectsTiled(
        prefix_weights, prefix_rest, threshold, incumbent,
        [&](size_t t0, size_t n, Scalar* out) {
          // One SoA tile per checkpoint group (kSimdTileLanes ==
          // kSketchBoundStride), so t0 always lands on a tile boundary.
          Scalar dists[kSimdTileLanes];
          TileDistances(ops, soa, static_cast<Index>(t0 / kSimdTileLanes),
                        point.data(), p, dists);
          for (size_t i = 0; i < n; ++i) {
            out[i] = affinity_fn_->FromDistance(dists[i]);
          }
        });
  }
  return SketchBoundRejects(
      prefix_weights, prefix_rest, threshold, incumbent, [&](size_t t) {
        return affinity_fn_->FromDistance(
            LpDistance(block.row(block.sketch_members[t]), point, p));
      });
}

AssignOutcome ClusterSnapshot::Assign(std::span<const Scalar> point) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  AssignOutcome best;
  best.generation = generation_;
  if (num_clusters() == 0) return best;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  Scalar best_margin = -std::numeric_limits<Scalar>::infinity();
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    // Absorb when (near-)infective — the same slack rule, threshold and
    // lowest-id tie-break as the stream's ScoreArrival.
    const Scalar threshold = density_[c] * (1.0 - absorb_slack_);
    if (!blocks_[c]->sketch_members.empty()) {
      // Branch-and-bound: any scored prefix of the sketch plus its rest
      // weight (plus the FP guard) certifies an upper bound on pi(s_c, x);
      // a checkpoint bound that cannot clear the threshold or beat the
      // incumbent margin rejects the cluster without touching its full
      // support. The fallback below is the unchanged exact summation, so
      // answers are bit-identical with the sketch on or off.
      if (SketchRejects(c, point, threshold, best_margin)) {
        ++best.sketch_prunes;
        continue;
      }
      ++best.sketch_exact;
    }
    const Scalar affinity = ClusterAffinity(c, point);
    const Scalar margin = affinity - threshold;
    if (margin > 0.0 && margin > best_margin) {
      best_margin = margin;
      best.cluster = c;
      best.affinity = affinity;
      best.margin = margin;
    }
  }
  return best;
}

void ClusterSnapshot::AssignBatch(std::span<const Scalar> points,
                                  std::span<AssignOutcome> outcomes) const {
  const int d = dim();
  ALID_CHECK(d > 0 && points.size() % static_cast<size_t>(d) == 0);
  const Index count = static_cast<Index>(points.size() / d);
  ALID_CHECK(outcomes.size() == static_cast<size_t>(count));
  for (Index q = 0; q < count; ++q) {
    outcomes[q] = AssignOutcome{};
    outcomes[q].generation = generation_;
  }
  const int num = num_clusters();
  if (num == 0) return;
  // Query-major tiling: mark every query's candidate clusters up front for
  // a block of queries, then stream the clusters in ascending id across
  // the whole block, so each cluster's SoA tiles are pulled through the
  // cache once per block instead of once per query. The inner body is the
  // loop body of Assign verbatim, each query carrying its own incumbent,
  // and every query still visits its candidates in ascending cluster id —
  // so winners, margins and sketch counters are bit-identical to per-query
  // Assign calls (the property the batch-vs-serial tests pin).
  constexpr Index kQueryBlock = 32;
  std::vector<uint8_t> candidate(static_cast<size_t>(kQueryBlock) * num, 0);
  std::array<Scalar, kQueryBlock> best_margin;
  for (Index q0 = 0; q0 < count; q0 += kQueryBlock) {
    const Index block = std::min<Index>(kQueryBlock, count - q0);
    for (Index i = 0; i < block; ++i) {
      const std::span<const Scalar> point =
          points.subspan(static_cast<size_t>(q0 + i) * d,
                         static_cast<size_t>(d));
      ALID_CHECK(static_cast<int>(point.size()) == d);
      CandidateMembers(point);
      const QueryScratch& scratch = Scratch();
      for (int c = 0; c < num; ++c) {
        candidate[static_cast<size_t>(i) * num + c] =
            scratch.candidates.IsMarked(static_cast<size_t>(c)) ? 1 : 0;
      }
      best_margin[i] = -std::numeric_limits<Scalar>::infinity();
    }
    for (int c = 0; c < num; ++c) {
      const Scalar threshold = density_[c] * (1.0 - absorb_slack_);
      const bool sketched = !blocks_[c]->sketch_members.empty();
      for (Index i = 0; i < block; ++i) {
        if (candidate[static_cast<size_t>(i) * num + c] == 0) continue;
        const std::span<const Scalar> point =
            points.subspan(static_cast<size_t>(q0 + i) * d,
                           static_cast<size_t>(d));
        AssignOutcome& best = outcomes[q0 + i];
        if (sketched) {
          if (SketchRejects(c, point, threshold, best_margin[i])) {
            ++best.sketch_prunes;
            continue;
          }
          ++best.sketch_exact;
        }
        const Scalar affinity = ClusterAffinity(c, point);
        const Scalar margin = affinity - threshold;
        if (margin > 0.0 && margin > best_margin[i]) {
          best_margin[i] = margin;
          best.cluster = c;
          best.affinity = affinity;
          best.margin = margin;
        }
      }
    }
  }
}

std::vector<ScoredCluster> ClusterSnapshot::TopKClusters(
    std::span<const Scalar> point, int k) const {
  ALID_CHECK(static_cast<int>(point.size()) == dim());
  std::vector<ScoredCluster> scored;
  if (k <= 0 || num_clusters() == 0) return scored;
  CandidateMembers(point);
  const QueryScratch& scratch = Scratch();
  // Running k-th best affinity (min of the current top-k). Candidates
  // iterate in ascending id and exact ties break toward the lower id, so
  // once k candidates are scored, a later candidate whose sketch bound is
  // <= the k-th affinity can never enter the top k — skipping its exact
  // scoring leaves the truncated result identical.
  std::vector<Scalar> topk;  // min-heap of the k best affinities so far
  for (int c = 0; c < num_clusters(); ++c) {
    if (!scratch.candidates.IsMarked(static_cast<size_t>(c))) continue;
    if (static_cast<int>(topk.size()) == k &&
        !blocks_[c]->sketch_members.empty() &&
        SketchRejects(c, point, /*threshold=*/0.0,
                      /*incumbent=*/topk.front())) {
      continue;
    }
    const Scalar affinity = ClusterAffinity(c, point);
    ScoredCluster entry;
    entry.cluster = c;
    entry.affinity = affinity;
    entry.margin = affinity - density_[c] * (1.0 - absorb_slack_);
    entry.generation = generation_;
    entry.absorbable = entry.margin > 0.0;
    scored.push_back(entry);
    if (static_cast<int>(topk.size()) < k) {
      topk.push_back(affinity);
      std::push_heap(topk.begin(), topk.end(), std::greater<Scalar>());
    } else if (affinity > topk.front()) {
      std::pop_heap(topk.begin(), topk.end(), std::greater<Scalar>());
      topk.back() = affinity;
      std::push_heap(topk.begin(), topk.end(), std::greater<Scalar>());
    }
  }
  // Descending affinity, ascending id on exact ties: a stable total order,
  // so batched and serial TopK answers are identical.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCluster& a, const ScoredCluster& b) {
              if (a.affinity != b.affinity) return a.affinity > b.affinity;
              return a.cluster < b.cluster;
            });
  if (static_cast<int>(scored.size()) > k) scored.resize(k);
  return scored;
}

ClusterSnapshotInfo ClusterSnapshot::ClusterInfo(int c) const {
  ClusterSnapshotInfo info;
  if (c < 0 || c >= num_clusters()) return info;
  const ClusterBlock& block = *blocks_[c];
  info.cluster = c;
  info.size = block.count;
  info.density = density_[c];
  info.verified_density = block.verified_density;
  info.seed = seed_[c];
  info.members.assign(block.source_ids.begin(), block.source_ids.end());
  info.weights.assign(block.weights.begin(), block.weights.end());
  return info;
}

}  // namespace alid
