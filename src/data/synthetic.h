#ifndef ALID_DATA_SYNTHETIC_H_
#define ALID_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/labeled_data.h"

namespace alid {

/// The three Table 1 regimes of the largest-cluster size a* that Section 5.2
/// simulates (each of the 20 equally sized clusters holds a*/20 items... the
/// paper divides by the cluster count, which we keep literal).
enum class SyntheticRegime {
  /// a* = omega * n / 20 — clean source, clusters grow with the data.
  kProportional,
  /// a* = n^eta / 20 — noisy source, clusters grow sublinearly.
  kSublinear,
  /// a* = P / 20 — size-limited clusters (Dunbar-style bound).
  kBounded,
};

/// Configuration of the Section 5.2 synthetic generator: `num_clusters`
/// multivariate Gaussians (partially overlapping means, per-dimension
/// variances drawn from [0, variance_max]) plus a surrounding uniform noise
/// distribution.
struct SyntheticConfig {
  Index n = 10000;
  int dim = 100;
  int num_clusters = 20;
  SyntheticRegime regime = SyntheticRegime::kProportional;
  double omega = 1.0;   // kProportional
  double eta = 0.9;     // kSublinear
  Index P = 1000;       // kBounded
  /// Cluster means are drawn uniformly from [0, mean_box]^dim; a fraction of
  /// them is then pulled close together to create partial overlaps, as the
  /// paper describes.
  double mean_box = 400.0;
  /// If true (the paper's setting), every 4th cluster is pulled next to its
  /// predecessor so the pair partially overlaps. Disable for cleanly
  /// separated blobs (partitioning-baseline tests).
  bool overlap_clusters = true;
  /// Per-dimension stddev of the overlap offset (distance between an
  /// overlapped pair ~ sqrt(dim) * this).
  double overlap_offset_stddev = 8.0;
  /// Per-dimension variances are uniform in [0, variance_max] (paper: 10).
  double variance_max = 10.0;
  /// Noise is uniform over [-margin, mean_box + margin]^dim.
  double noise_margin = 20.0;
  uint64_t seed = 42;
};

/// Generates the Fig. 7 synthetic workload. The ground-truth size per
/// cluster is a*(n)/num_clusters by the chosen regime; the remaining
/// n - 20 a*/20 items are uniform background noise.
LabeledData MakeSynthetic(const SyntheticConfig& config);

/// The per-cluster ground-truth size the regime prescribes at data size n.
Index RegimeClusterSize(const SyntheticConfig& config);

}  // namespace alid

#endif  // ALID_DATA_SYNTHETIC_H_
