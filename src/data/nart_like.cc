#include "data/nart_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace alid {

namespace {

// L1-normalizes a non-negative vector in place (LDA vectors are probability
// distributions over topics).
void NormalizeL1(std::vector<Scalar>& v) {
  Scalar sum = 0.0;
  for (Scalar x : v) sum += x;
  if (sum > 0.0) {
    for (Scalar& x : v) x /= sum;
  }
}

}  // namespace

LabeledData MakeNartLike(const NartLikeConfig& config) {
  ALID_CHECK(config.num_events > 0);
  ALID_CHECK(config.topics_per_event < config.num_topics);
  Rng rng(config.seed);
  const int d = config.num_topics;

  LabeledData out;
  out.data = Dataset(d);
  out.true_clusters.assign(config.num_events, {});

  // Event profiles: a few dominant topics with random emphasis. Events get
  // distinct topic subsets so they are separable like distinct real events.
  std::vector<std::vector<Scalar>> profiles(config.num_events,
                                            std::vector<Scalar>(d, 0.0));
  for (int e = 0; e < config.num_events; ++e) {
    auto topics = rng.SampleWithoutReplacement(d, config.topics_per_event);
    for (Index t : topics) profiles[e][t] = rng.Uniform(0.5, 1.0);
    NormalizeL1(profiles[e]);
  }

  // Event sizes vary around the mean (real events attract unequal coverage).
  std::vector<Index> sizes(config.num_events);
  Index assigned = 0;
  for (int e = 0; e < config.num_events; ++e) {
    const Index mean = config.num_event_articles / config.num_events;
    Index s = std::max<Index>(
        3, mean + static_cast<Index>(rng.UniformInt(-mean / 3, mean / 3)));
    if (e == config.num_events - 1) {
      s = std::max<Index>(3, config.num_event_articles - assigned);
    }
    sizes[e] = s;
    assigned += s;
  }

  std::vector<Scalar> doc(d);
  for (int e = 0; e < config.num_events; ++e) {
    for (Index i = 0; i < sizes[e]; ++i) {
      for (int t = 0; t < d; ++t) {
        const Scalar jitter =
            std::abs(rng.Gaussian(0.0, config.event_spread / d * 4));
        doc[t] = profiles[e][t] + jitter;
      }
      // Occasional extra off-topic mention.
      doc[static_cast<int>(rng.UniformInt(0, d - 1))] +=
          config.event_spread * rng.Uniform(0.0, 1.0);
      NormalizeL1(doc);
      out.true_clusters[e].push_back(out.data.size());
      out.data.Append(doc);
      out.labels.push_back(e);
    }
  }

  // Daily news: diffuse mixtures around many weak recurring themes. Articles
  // sharing a theme are mildly similar (multi-modal background) but their own
  // random mixtures keep every theme far below dominant-cluster coherence.
  std::vector<std::vector<Scalar>> themes(
      std::max(config.noise_theme_pool, 1), std::vector<Scalar>(d, 0.0));
  for (size_t th = 0; th < themes.size(); ++th) {
    auto& theme = themes[th];
    auto topics = rng.SampleWithoutReplacement(d, config.topics_per_noise);
    for (Index t : topics) theme[t] = rng.Uniform(0.0, 1.0);
    // Half the themes comment on a hot event (daily news reuses event
    // topics), putting background articles on the path between events and
    // generic noise — the bridging that real crawled news exhibits.
    if (th % 2 == 0) {
      const auto& profile = profiles[th % profiles.size()];
      for (int t = 0; t < d; ++t) theme[t] += 1.5 * profile[t];
    }
    NormalizeL1(theme);
  }
  for (Index i = 0; i < config.num_noise_articles; ++i) {
    if (rng.Bernoulli(config.echo_fraction)) {
      // Event echo: partial-purity reuse of one event's profile.
      const auto& profile = profiles[static_cast<size_t>(
          rng.UniformInt(0, profiles.size() - 1))];
      const double purity = rng.Uniform(0.5, 0.85);
      std::fill(doc.begin(), doc.end(), 0.0);
      auto topics = rng.SampleWithoutReplacement(d, config.topics_per_noise);
      for (Index t : topics) doc[t] = rng.Uniform(0.0, 1.0);
      NormalizeL1(doc);
      for (int t = 0; t < d; ++t) {
        doc[t] = purity * profile[t] + (1.0 - purity) * doc[t];
      }
    } else {
      const auto& theme =
          themes[static_cast<size_t>(rng.UniformInt(0, themes.size() - 1))];
      std::fill(doc.begin(), doc.end(), 0.0);
      auto topics = rng.SampleWithoutReplacement(d, config.topics_per_noise);
      for (Index t : topics) doc[t] = rng.Uniform(0.0, 1.0);
      NormalizeL1(doc);
      for (int t = 0; t < d; ++t) {
        doc[t] = config.noise_theme_weight * theme[t] +
                 (1.0 - config.noise_theme_weight) * doc[t];
      }
    }
    out.data.Append(doc);
    out.labels.push_back(-1);
  }

  // Scale: intra-event L2 distances are jitter-dominated but heavy-tailed
  // (off-topic mentions), so estimate a high quantile over many probe pairs
  // — the LSH segment length must catch the tail members too.
  std::vector<Scalar> probes;
  for (const IndexList& event : out.true_clusters) {
    for (size_t a = 0; a + 1 < event.size() && probes.size() < 400; a += 2) {
      probes.push_back(out.data.Distance(event[a], event[a + 1], 2.0));
    }
  }
  double intra = 0.05;
  if (!probes.empty()) {
    const size_t q90 = probes.size() * 9 / 10;
    std::nth_element(probes.begin(), probes.begin() + q90, probes.end());
    intra = std::max<double>(1e-6, probes[q90]);
  }
  out.suggested_k = -std::log(0.9) / intra;
  out.suggested_lsh_r = 3.0 * intra;
  return out;
}

}  // namespace alid
