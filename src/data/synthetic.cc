#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace alid {

Index RegimeClusterSize(const SyntheticConfig& config) {
  double a_star = 0.0;
  switch (config.regime) {
    case SyntheticRegime::kProportional:
      a_star = config.omega * static_cast<double>(config.n);
      break;
    case SyntheticRegime::kSublinear:
      a_star = std::pow(static_cast<double>(config.n), config.eta);
      break;
    case SyntheticRegime::kBounded:
      a_star = static_cast<double>(config.P);
      break;
  }
  Index per_cluster =
      static_cast<Index>(a_star / static_cast<double>(config.num_clusters));
  per_cluster = std::max<Index>(per_cluster, 2);
  // Never exceed the data size.
  per_cluster = std::min<Index>(
      per_cluster, config.n / static_cast<Index>(config.num_clusters));
  return per_cluster;
}

LabeledData MakeSynthetic(const SyntheticConfig& config) {
  ALID_CHECK(config.n > 0 && config.dim > 0 && config.num_clusters > 0);
  Rng rng(config.seed);
  const int d = config.dim;
  const Index per_cluster = RegimeClusterSize(config);
  const Index truth_total = per_cluster * config.num_clusters;
  ALID_CHECK(truth_total <= config.n);
  const Index noise_total = config.n - truth_total;

  // Cluster means: uniform in the box, then pull each odd cluster towards its
  // predecessor to create partial overlaps (paper: "some gaussian
  // distributions partially overlapped by setting their mean vectors close to
  // each other").
  std::vector<std::vector<Scalar>> means(config.num_clusters,
                                         std::vector<Scalar>(d));
  for (auto& mean : means) {
    for (auto& v : mean) v = rng.Uniform(0.0, config.mean_box);
  }
  if (config.overlap_clusters) {
    for (int c = 1; c < config.num_clusters; c += 4) {
      // Every 4th pair overlaps: mean_c = mean_{c-1} + small offset.
      for (int t = 0; t < d; ++t) {
        means[c][t] =
            means[c - 1][t] + rng.Gaussian(0.0, config.overlap_offset_stddev);
      }
    }
  }
  // Per-cluster, per-dimension standard deviations from variances in
  // [0, variance_max].
  std::vector<std::vector<Scalar>> stddev(config.num_clusters,
                                          std::vector<Scalar>(d));
  for (auto& sd : stddev) {
    for (auto& v : sd) v = std::sqrt(rng.Uniform(0.0, config.variance_max));
  }

  LabeledData out;
  out.data = Dataset(d);
  out.labels.reserve(config.n);
  out.true_clusters.assign(config.num_clusters, {});

  std::vector<Scalar> point(d);
  for (int c = 0; c < config.num_clusters; ++c) {
    for (Index i = 0; i < per_cluster; ++i) {
      for (int t = 0; t < d; ++t) {
        point[t] = means[c][t] + rng.Gaussian(0.0, stddev[c][t]);
      }
      out.true_clusters[c].push_back(out.data.size());
      out.data.Append(point);
      out.labels.push_back(c);
    }
  }
  const double lo = -config.noise_margin;
  const double hi = config.mean_box + config.noise_margin;
  for (Index i = 0; i < noise_total; ++i) {
    for (int t = 0; t < d; ++t) point[t] = rng.Uniform(lo, hi);
    out.data.Append(point);
    out.labels.push_back(-1);
  }

  // Affinity scale: expected intra-cluster distance is about
  // sqrt(2 * d * E[var]) = sqrt(d * variance_max); map it to affinity ~0.9.
  const double intra = std::sqrt(static_cast<double>(d) * config.variance_max);
  out.suggested_k = -std::log(0.9) / std::max(intra, 1e-9);
  out.suggested_lsh_r = 3.0 * intra;
  return out;
}

}  // namespace alid
