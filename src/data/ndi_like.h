#ifndef ALID_DATA_NDI_LIKE_H_
#define ALID_DATA_NDI_LIKE_H_

#include <cstdint>

#include "data/labeled_data.h"

namespace alid {

/// Configuration of the NDI-like near-duplicate-image workload. The paper's
/// NDI data set holds 109,815 images as 256-dimensional GIST descriptors —
/// 57 near-duplicate groups of 11,951 images plus 97,864 diverse-content
/// noise images; Sub-NDI is the 6-cluster / 1,420 + 8,520 subset used where
/// AP cannot scale. Near-duplicate GIST descriptors are tight blobs in
/// [0,1]^256, which is what we synthesize (DESIGN.md substitution table).
struct NdiLikeConfig {
  int num_groups = 57;
  /// Total near-duplicate images across groups (paper: 11,951).
  Index num_duplicates = 11951;
  /// Diverse background images (paper: 97,864).
  Index num_noise = 97864;
  int dim = 256;
  /// Within-group GIST jitter (standard deviation per dimension).
  double group_spread = 0.015;
  /// Diverse-content noise images are not uniform in GIST space: scenes of
  /// the same kind (beaches, streets, ...) correlate weakly. Noise images
  /// scatter broadly around this many weak scene-type centers.
  int noise_scene_types = 80;
  /// Per-dimension spread of noise around its scene type (large: the noise
  /// never becomes a dense subgraph).
  double noise_spread = 0.35;
  uint64_t seed = 42;

  /// The paper's Sub-NDI subset (Section 5.1): 6 clusters, 1,420 ground
  /// truth, 8,520 noise.
  static NdiLikeConfig SubNdi() {
    NdiLikeConfig c;
    c.num_groups = 6;
    c.num_duplicates = 1420;
    c.num_noise = 8520;
    return c;
  }
};

/// Generates the NDI-like workload: GIST-style vectors in [0, 1]^dim.
LabeledData MakeNdiLike(const NdiLikeConfig& config = {});

}  // namespace alid

#endif  // ALID_DATA_NDI_LIKE_H_
