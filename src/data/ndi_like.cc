#include "data/ndi_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace alid {

LabeledData MakeNdiLike(const NdiLikeConfig& config) {
  ALID_CHECK(config.num_groups > 0 && config.dim > 0);
  Rng rng(config.seed);
  const int d = config.dim;

  LabeledData out;
  out.data = Dataset(d);
  out.true_clusters.assign(config.num_groups, {});

  // Group centers: GIST descriptors of the shared image content.
  std::vector<std::vector<Scalar>> centers(config.num_groups,
                                           std::vector<Scalar>(d));
  for (auto& c : centers) {
    for (auto& v : c) v = rng.Uniform(0.0, 1.0);
  }

  std::vector<Index> sizes(config.num_groups);
  Index assigned = 0;
  for (int g = 0; g < config.num_groups; ++g) {
    const Index mean = config.num_duplicates / config.num_groups;
    Index s = std::max<Index>(
        3, mean + static_cast<Index>(rng.UniformInt(-mean / 3, mean / 3)));
    if (g == config.num_groups - 1) {
      s = std::max<Index>(3, config.num_duplicates - assigned);
    }
    sizes[g] = s;
    assigned += s;
  }

  std::vector<Scalar> img(d);
  for (int g = 0; g < config.num_groups; ++g) {
    for (Index i = 0; i < sizes[g]; ++i) {
      for (int t = 0; t < d; ++t) {
        img[t] = std::clamp(centers[g][t] +
                                rng.Gaussian(0.0, config.group_spread),
                            0.0, 1.0);
      }
      out.true_clusters[g].push_back(out.data.size());
      out.data.Append(img);
      out.labels.push_back(g);
    }
  }
  // Diverse-content images: broad scatter around weak scene-type centers —
  // multi-modal background noise that never reaches duplicate-group
  // tightness.
  std::vector<std::vector<Scalar>> scenes(
      std::max(config.noise_scene_types, 1), std::vector<Scalar>(d));
  for (size_t sc = 0; sc < scenes.size(); ++sc) {
    auto& s = scenes[sc];
    if (sc % 3 == 0) {
      // A third of the scene types resemble some duplicate group (similar
      // but not duplicate content) — the bridging real image noise has.
      const auto& center = centers[sc % centers.size()];
      for (int t = 0; t < d; ++t) {
        s[t] = std::clamp(center[t] + rng.Gaussian(0.0, 0.2), 0.0, 1.0);
      }
    } else {
      for (auto& v : s) v = rng.Uniform(0.0, 1.0);
    }
  }
  for (Index i = 0; i < config.num_noise; ++i) {
    const auto& scene =
        scenes[static_cast<size_t>(rng.UniformInt(0, scenes.size() - 1))];
    for (int t = 0; t < d; ++t) {
      img[t] = std::clamp(scene[t] + rng.Gaussian(0.0, config.noise_spread),
                          0.0, 1.0);
    }
    out.data.Append(img);
    out.labels.push_back(-1);
  }

  // Intra-group distance ~ sqrt(2 d) * spread; aim affinity 0.9 there.
  const double intra =
      std::sqrt(2.0 * static_cast<double>(d)) * config.group_spread;
  out.suggested_k = -std::log(0.9) / std::max(intra, 1e-9);
  out.suggested_lsh_r = 3.0 * intra;
  return out;
}

}  // namespace alid
