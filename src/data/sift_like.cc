#include "data/sift_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace alid {

namespace {

// Projects a vector onto the non-negative L2 unit sphere (SIFT geometry).
void NormalizeSift(std::vector<Scalar>& v) {
  Scalar norm = 0.0;
  for (Scalar& x : v) {
    if (x < 0.0) x = 0.0;
    norm += x * x;
  }
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (Scalar& x : v) x /= norm;
  }
}

}  // namespace

LabeledData MakeSiftLike(const SiftLikeConfig& config) {
  ALID_CHECK(config.n > 0 && config.dim > 0 && config.num_visual_words > 0);
  ALID_CHECK(config.word_fraction > 0.0 && config.word_fraction <= 1.0);
  Rng rng(config.seed);
  const int d = config.dim;

  Index per_word;
  if (config.fixed_word_size > 0) {
    per_word = std::min<Index>(config.fixed_word_size,
                               config.n / config.num_visual_words);
  } else {
    const Index word_total =
        static_cast<Index>(config.word_fraction * config.n);
    per_word = word_total / config.num_visual_words;
  }
  per_word = std::max<Index>(2, per_word);
  const Index clutter = config.n - per_word * config.num_visual_words;

  LabeledData out;
  out.data = Dataset(d);
  out.true_clusters.assign(config.num_visual_words, {});

  // Word centers: sparse-ish non-negative directions (gradient histograms
  // concentrate on a few orientation bins).
  std::vector<std::vector<Scalar>> centers(config.num_visual_words,
                                           std::vector<Scalar>(d, 0.0));
  for (auto& c : centers) {
    auto active = rng.SampleWithoutReplacement(d, d / 4);
    for (Index t : active) c[t] = rng.Uniform(0.2, 1.0);
    NormalizeSift(c);
  }

  std::vector<Scalar> s(d);
  for (int w = 0; w < config.num_visual_words; ++w) {
    for (Index i = 0; i < per_word; ++i) {
      for (int t = 0; t < d; ++t) {
        s[t] = centers[w][t] + rng.Gaussian(0.0, config.word_spread);
      }
      NormalizeSift(s);
      out.true_clusters[w].push_back(out.data.size());
      out.data.Append(s);
      out.labels.push_back(w);
    }
  }
  // Clutter: descriptors of random non-duplicate regions. Real clutter SIFTs
  // activate few orientation bins, so two clutter descriptors rarely share
  // support — they are far apart on the sphere, unlike dense random vectors
  // (which would all concentrate at pairwise dot ~0.64).
  for (Index i = 0; i < clutter; ++i) {
    std::fill(s.begin(), s.end(), 0.0);
    auto active = rng.SampleWithoutReplacement(d, d / 6);
    for (Index t : active) s[t] = rng.Uniform(0.1, 1.0);
    NormalizeSift(s);
    out.data.Append(s);
    out.labels.push_back(-1);
  }

  // Intra-word distance ~ sqrt(d) * spread (before normalization shrink).
  const double intra =
      std::sqrt(static_cast<double>(d)) * config.word_spread * 1.2;
  out.suggested_k = -std::log(0.9) / std::max(intra, 1e-9);
  out.suggested_lsh_r = 3.0 * intra;
  return out;
}

}  // namespace alid
