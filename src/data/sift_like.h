#ifndef ALID_DATA_SIFT_LIKE_H_
#define ALID_DATA_SIFT_LIKE_H_

#include <cstdint>

#include "data/labeled_data.h"

namespace alid {

/// Configuration of the SIFT-like visual-word workload (Section 5.3). Real
/// SIFTs are non-negative, L2-normalized 128-dimensional gradient histograms;
/// descriptors of the same repeated image patch ("visual word", Fig. 8) form
/// a highly cohesive dominant cluster, while descriptors from random
/// non-duplicate regions are clutter. We synthesize exactly that geometry.
struct SiftLikeConfig {
  Index n = 50000;
  int dim = 128;
  int num_visual_words = 50;
  /// Fraction of descriptors belonging to visual words; the rest is clutter.
  double word_fraction = 0.3;
  /// If positive, every visual word has exactly this many descriptors and
  /// word_fraction is ignored — the realistic regime for large collections,
  /// where a patch repeats in a bounded number of images (the paper's
  /// a* <= P case); clutter absorbs all remaining items.
  Index fixed_word_size = 0;
  /// Angular spread (radians-ish, pre-normalization jitter) within a word.
  double word_spread = 0.015;
  uint64_t seed = 42;
};

/// Generates the SIFT-like workload: non-negative, L2-normalized vectors.
LabeledData MakeSiftLike(const SiftLikeConfig& config = {});

}  // namespace alid

#endif  // ALID_DATA_SIFT_LIKE_H_
