#ifndef ALID_DATA_LABELED_DATA_H_
#define ALID_DATA_LABELED_DATA_H_

#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace alid {

/// A generated workload: points, ground-truth dominant clusters, and the
/// affinity scale that makes those clusters dense subgraphs.
struct LabeledData {
  Dataset data;
  /// Ground-truth cluster id per item; -1 marks background noise.
  std::vector<int> labels;
  /// Ground-truth clusters as member lists (ascending indices), indexed by
  /// label.
  std::vector<IndexList> true_clusters;
  /// A scaling factor k for Eq. 1 under which intra-cluster affinities are
  /// high (pi well above the 0.75 keep-threshold) and noise affinities low.
  double suggested_k = 1.0;
  /// An LSH segment length r at which same-cluster items collide reliably
  /// while noise stays spread out (about 3x the intra-cluster distance).
  double suggested_lsh_r = 1.0;

  Index size() const { return data.size(); }

  /// Number of noise items / number of clustered items — the x axis of the
  /// Fig. 11 noise-resistance analysis.
  double NoiseDegree() const {
    int64_t noise = 0, truth = 0;
    for (int l : labels) (l < 0 ? noise : truth)++;
    return truth == 0 ? 0.0 : static_cast<double>(noise) / truth;
  }
};

}  // namespace alid

#endif  // ALID_DATA_LABELED_DATA_H_
