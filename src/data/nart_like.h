#ifndef ALID_DATA_NART_LIKE_H_
#define ALID_DATA_NART_LIKE_H_

#include <cstdint>

#include "data/labeled_data.h"

namespace alid {

/// Configuration of the NART-like news-article workload. The paper's NART
/// data set holds 5,301 crawled Sina news articles as 350-dimensional LDA
/// topic vectors: 13 hot events of 734 labeled articles total, plus 4,567
/// daily-news items that form no dominant cluster. We reproduce the same
/// shape synthetically (see DESIGN.md substitution table): each event is a
/// tight mixture over a few topics, daily news are diffuse mixtures.
struct NartLikeConfig {
  int num_events = 13;
  /// Total articles across all events (paper: 734; sizes vary per event).
  Index num_event_articles = 734;
  /// Background daily-news articles (paper: 4,567).
  Index num_noise_articles = 4567;
  int num_topics = 350;
  /// Topics active per event.
  int topics_per_event = 4;
  /// Topic-weight jitter within an event (smaller = tighter event cluster).
  double event_spread = 0.02;
  /// Active topics per noise article (diffuse).
  int topics_per_noise = 25;
  /// Daily-news articles are not i.i.d. uniform: they follow many weak
  /// recurring themes (sports results, weather, ...). Noise articles blend a
  /// theme from this pool with their own random mixture, giving the noise a
  /// multi-modal structure that never reaches dominant-cluster coherence.
  int noise_theme_pool = 60;
  /// Blend weight of the theme within a noise article (the rest is the
  /// article's own random mixture). Keep well below 1 so no theme becomes a
  /// dense subgraph.
  double noise_theme_weight = 0.45;
  /// Fraction of noise articles that are "event echoes": follow-up coverage
  /// reusing an event's topics at partial purity. Echoes sit near the event
  /// clusters' boundaries — the contamination that makes real crawled news
  /// hard for fixed-K partitioning at high noise degrees.
  double echo_fraction = 0.15;
  uint64_t seed = 42;
};

/// Generates the NART-like workload: L1-normalized topic vectors (LDA-style
/// probability vectors).
LabeledData MakeNartLike(const NartLikeConfig& config = {});

}  // namespace alid

#endif  // ALID_DATA_NART_LIKE_H_
