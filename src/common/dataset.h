#ifndef ALID_COMMON_DATASET_H_
#define ALID_COMMON_DATASET_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace alid {

/// A row-major collection of n d-dimensional data points — the vertex set V
/// of the affinity graph. Rows are contiguous so distance kernels vectorize.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset of the given dimensionality.
  explicit Dataset(int dim) : dim_(dim) {}

  /// Takes ownership of a flat row-major buffer; data.size() % dim == 0.
  Dataset(int dim, std::vector<Scalar> data);

  /// Appends one point (must have size dim()).
  void Append(std::span<const Scalar> point);

  /// Appends all rows of another dataset of the same dimensionality.
  void AppendAll(const Dataset& other);

  /// Appends a flat row-major block of whole rows (rows.size() % dim == 0).
  /// One bulk copy — the incremental snapshot export moves an unchanged
  /// cluster's member block with this instead of gathering row by row.
  void AppendRaw(std::span<const Scalar> rows);

  /// Flat row-major view of rows [begin, end) — the bulk-copy counterpart
  /// of AppendRaw.
  std::span<const Scalar> RawRows(Index begin, Index end) const {
    return {data_.data() + static_cast<size_t>(begin) * dim_,
            static_cast<size_t>(end - begin) * dim_};
  }

  /// Returns the subset of rows given by `indices` (in order).
  Dataset Subset(const IndexList& indices) const;

  Index size() const { return static_cast<Index>(num_points_); }
  int dim() const { return dim_; }
  bool empty() const { return num_points_ == 0; }

  /// Immutable view of row i.
  std::span<const Scalar> operator[](Index i) const {
    return {data_.data() + static_cast<size_t>(i) * dim_,
            static_cast<size_t>(dim_)};
  }

  /// Mutable view of row i.
  std::span<Scalar> MutableRow(Index i) {
    return {data_.data() + static_cast<size_t>(i) * dim_,
            static_cast<size_t>(dim_)};
  }

  const std::vector<Scalar>& raw() const { return data_; }

  /// Lp distance between rows i and j (p >= 1; p == 2 fast-pathed).
  Scalar Distance(Index i, Index j, double p = 2.0) const;

  /// Lp distance between row i and an arbitrary query point.
  Scalar DistanceTo(Index i, std::span<const Scalar> q, double p = 2.0) const;

  /// Squared Euclidean distance between rows i and j.
  Scalar SquaredL2(Index i, Index j) const;

  /// An estimate of the data diameter: max distance from the centroid to any
  /// point, times 2. Used to scale absolute radii (e.g., the first-iteration
  /// ROI radius) to the data.
  Scalar DiameterEstimate(double p = 2.0) const;

  /// Bytes held by the point buffer (for memory accounting).
  size_t MemoryBytes() const { return data_.size() * sizeof(Scalar); }

 private:
  int dim_ = 0;
  size_t num_points_ = 0;
  std::vector<Scalar> data_;
};

/// Lp distance between two equal-length vectors.
Scalar LpDistance(std::span<const Scalar> a, std::span<const Scalar> b,
                  double p = 2.0);

/// Squared Euclidean distance between two equal-length vectors.
Scalar SquaredL2(std::span<const Scalar> a, std::span<const Scalar> b);

/// Dot product of two equal-length vectors.
Scalar Dot(std::span<const Scalar> a, std::span<const Scalar> b);

}  // namespace alid

#endif  // ALID_COMMON_DATASET_H_
