#include "common/sparse_matrix.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace alid {

SparseMatrix SparseMatrix::FromTriplets(
    Index rows, Index cols,
    std::vector<std::tuple<Index, Index, Scalar>> triplets) {
  ALID_CHECK(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_start_.assign(rows + 1, 0);
  m.col_index_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    auto [r, c, v] = triplets[i];
    ALID_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    Scalar sum = v;
    size_t j = i + 1;
    while (j < triplets.size() && std::get<0>(triplets[j]) == r &&
           std::get<1>(triplets[j]) == c) {
      sum += std::get<2>(triplets[j]);
      ++j;
    }
    m.col_index_.push_back(c);
    m.values_.push_back(sum);
    ++m.row_start_[r + 1];
    i = j;
  }
  for (Index r = 0; r < rows; ++r) m.row_start_[r + 1] += m.row_start_[r];
  return m;
}

double SparseMatrix::SparseDegree() const {
  const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
  if (total == 0.0) return 1.0;
  return 1.0 - static_cast<double>(nnz()) / total;
}

Scalar SparseMatrix::At(Index r, Index c) const {
  ALID_DCHECK(r >= 0 && r < rows_);
  auto idx = RowIndices(r);
  auto it = std::lower_bound(idx.begin(), idx.end(), c);
  if (it == idx.end() || *it != c) return 0.0;
  return values_[row_start_[r] + (it - idx.begin())];
}

std::vector<Scalar> SparseMatrix::MatVec(std::span<const Scalar> x) const {
  ALID_CHECK(static_cast<Index>(x.size()) == cols_);
  std::vector<Scalar> y(rows_, 0.0);
  for (Index r = 0; r < rows_; ++r) y[r] = RowDot(r, x);
  return y;
}

Scalar SparseMatrix::QuadraticForm(std::span<const Scalar> x) const {
  ALID_CHECK(rows_ == cols_);
  Scalar total = 0.0;
  for (Index r = 0; r < rows_; ++r) {
    if (x[r] == 0.0) continue;
    total += x[r] * RowDot(r, x);
  }
  return total;
}

Scalar SparseMatrix::RowDot(Index r, std::span<const Scalar> x) const {
  auto idx = RowIndices(r);
  auto val = RowValues(r);
  Scalar s = 0.0;
  for (size_t k = 0; k < idx.size(); ++k) s += val[k] * x[idx[k]];
  return s;
}

}  // namespace alid
