#ifndef ALID_COMMON_EPOCH_STAMP_H_
#define ALID_COMMON_EPOCH_STAMP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace alid {

/// Reusable O(1)-reset membership scratch: marking a slot stamps it with the
/// current epoch, and "clearing" the whole set is one epoch bump — repeated
/// queries touch only the slots they visit. Begin() grows the slot array as
/// needed and refills it on the (once per 2^32 uses) epoch wraparound, so a
/// stale stamp can never alias a live one. The canonical holder is a
/// thread_local in a query hot path (LSH bucket dedup, snapshot candidate
/// marking): each thread dedups independently and allocates nothing once
/// warm.
class EpochStamp {
 public:
  /// Starts a fresh (empty) mark set over `slots` slots.
  void Begin(size_t slots) {
    if (stamp_.size() < slots) stamp_.resize(slots, 0);
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  void Mark(size_t slot) { stamp_[slot] = epoch_; }
  bool IsMarked(size_t slot) const { return stamp_[slot] == epoch_; }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace alid

#endif  // ALID_COMMON_EPOCH_STAMP_H_
