#ifndef ALID_COMMON_CHECK_H_
#define ALID_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Contract-violation macros. The library does not use exceptions across its
// public API (see DESIGN.md); programmer errors abort with a source location,
// runtime fallibility is expressed with std::optional / status booleans.

#define ALID_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ALID_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define ALID_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ALID_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Cheap checks that should stay on in release builds use ALID_CHECK; debug
// only checks (inner loops) use ALID_DCHECK.
#ifdef NDEBUG
#define ALID_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define ALID_DCHECK(cond) ALID_CHECK(cond)
#endif

#endif  // ALID_COMMON_CHECK_H_
