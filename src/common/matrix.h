#ifndef ALID_COMMON_MATRIX_H_
#define ALID_COMMON_MATRIX_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace alid {

/// A dense row-major matrix of Scalars. Used for materialized affinity
/// matrices (the baselines' O(n^2) cost center), spectral embeddings and the
/// small eigenproblems inside Nystrom.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Index rows, Index cols, Scalar fill = 0.0);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  Scalar& operator()(Index r, Index c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  Scalar operator()(Index r, Index c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  std::span<const Scalar> Row(Index r) const {
    return {data_.data() + static_cast<size_t>(r) * cols_,
            static_cast<size_t>(cols_)};
  }
  std::span<Scalar> MutableRow(Index r) {
    return {data_.data() + static_cast<size_t>(r) * cols_,
            static_cast<size_t>(cols_)};
  }

  /// y = M x (x.size() == cols, result size == rows).
  std::vector<Scalar> MatVec(std::span<const Scalar> x) const;

  /// x^T M x for square M.
  Scalar QuadraticForm(std::span<const Scalar> x) const;

  /// Returns M^T.
  DenseMatrix Transposed() const;

  /// Max |M(r,c) - M(c,r)| over the square part; 0 for exactly symmetric.
  Scalar SymmetryError() const;

  size_t MemoryBytes() const { return data_.size() * sizeof(Scalar); }
  const std::vector<Scalar>& raw() const { return data_; }
  std::vector<Scalar>& mutable_raw() { return data_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Scalar> data_;
};

}  // namespace alid

#endif  // ALID_COMMON_MATRIX_H_
