#include "common/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace alid {

std::vector<int> EqualWidthHistogram(std::span<const double> values,
                                     int bins) {
  ALID_CHECK(bins > 0);
  std::vector<int> histogram(bins, 0);
  if (values.empty()) return histogram;
  const double max_value = *std::max_element(values.begin(), values.end());
  for (double value : values) {
    const int bin =
        max_value > 0.0 ? static_cast<int>(value / max_value * bins) : 0;
    histogram[std::min(bin, bins - 1)] += 1;
  }
  return histogram;
}

}  // namespace alid
