#ifndef ALID_COMMON_RANDOM_H_
#define ALID_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/types.h"

namespace alid {

/// Deterministic random source. Every stochastic component in the library
/// (LSH projections, synthetic data, k-means++ seeding, PALID seed sampling)
/// draws from an explicitly seeded Rng so tests and benches are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal (or scaled/shifted) draw.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples k distinct indices from [0, n) (Floyd's algorithm when k << n,
  /// partial shuffle otherwise).
  std::vector<Index> SampleWithoutReplacement(Index n, Index k);

  /// Random permutation of [0, n).
  std::vector<Index> Permutation(Index n);

  /// Derives an independent child generator; used to hand each PALID worker
  /// its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// splitmix64 finalizer: a cheap, well-mixed stateless hash. Used to derive
/// independent per-task RNG streams (Rng(SplitMix64(seed ^ task_id))) and for
/// counter-based sampling decisions that must not depend on iteration order.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) keyed by (seed, id): the same pair
/// always yields the same value, independent of any generator state. PALID's
/// seed sampling uses this so the sampled set is identical no matter which
/// order (or thread) visits the LSH buckets.
inline double HashToUnit(uint64_t seed, uint64_t id) {
  // 53 high bits -> the unit interval, like std::generate_canonical.
  return static_cast<double>(SplitMix64(seed ^ SplitMix64(id)) >> 11) *
         0x1.0p-53;
}

}  // namespace alid

#endif  // ALID_COMMON_RANDOM_H_
