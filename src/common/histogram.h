#ifndef ALID_COMMON_HISTOGRAM_H_
#define ALID_COMMON_HISTOGRAM_H_

#include <span>
#include <vector>

namespace alid {

/// Histogram of `values` over `bins` equal-width buckets spanning
/// [0, max value] — the load/latency profile shape shared by
/// PalidStats::TaskHistogram and StreamStats::LatencyHistogram.
std::vector<int> EqualWidthHistogram(std::span<const double> values,
                                     int bins);

}  // namespace alid

#endif  // ALID_COMMON_HISTOGRAM_H_
