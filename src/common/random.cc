#include "common/random.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace alid {

std::vector<Index> Rng::SampleWithoutReplacement(Index n, Index k) {
  ALID_CHECK(k >= 0 && k <= n);
  if (k > n / 2) {
    std::vector<Index> all = Permutation(n);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }
  // Floyd's algorithm: k iterations, no O(n) setup.
  std::unordered_set<Index> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  for (Index j = n - k; j < n; ++j) {
    Index t = static_cast<Index>(UniformInt(0, j));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<Index> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Index> Rng::Permutation(Index n) {
  std::vector<Index> p(n);
  std::iota(p.begin(), p.end(), 0);
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

}  // namespace alid
