#include "common/memory_tracker.h"

namespace alid {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Add(int64_t bytes) {
  const int64_t now = current_.fetch_add(bytes) + bytes;
  // Lock-free peak update.
  int64_t peak = peak_.load();
  while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
  }
}

void MemoryTracker::Reset() {
  current_.store(0);
  peak_.store(0);
}

void ScopedMemoryCharge::Adjust(int64_t new_bytes) {
  tracker_->Add(new_bytes - bytes_);
  bytes_ = new_bytes;
}

}  // namespace alid
