#include "common/parallel.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace alid {

namespace {

/// Default chunk count when the caller does not pin a grain. 64 mirrors
/// PALID's auto chunking: coarse enough to amortize pool overhead, fine
/// enough that 8 executors still steal productively.
constexpr int64_t kDefaultChunks = 64;

}  // namespace

int64_t DeterministicGrain(int64_t range, int64_t grain) {
  ALID_CHECK(range >= 1);
  if (grain > 0) return std::min(grain, range);
  return std::max<int64_t>(1, (range + kDefaultChunks - 1) / kDefaultChunks);
}

int64_t DeterministicChunkCount(int64_t range, int64_t grain) {
  const int64_t g = DeterministicGrain(range, grain);
  return (range + g - 1) / g;
}

void ParallelChunks(
    ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const int64_t range = end - begin;
  const int64_t g = DeterministicGrain(range, grain);
  const int64_t num_chunks = (range + g - 1) / g;
  if (pool == nullptr || num_chunks == 1 || pool->CalledFromWorker()) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = begin + c * g;
      body(c, lo, std::min(end, lo + g));
    }
    return;
  }
  // ParallelFor claims the same fixed boundaries (begin + chunk * g) from a
  // shared counter, so only the execution order differs from the serial path.
  pool->ParallelFor(
      begin, end,
      [&](int64_t lo, int64_t hi) { body((lo - begin) / g, lo, hi); }, g);
}

Scalar ParallelSum(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                   const std::function<Scalar(int64_t, int64_t)>& partial) {
  if (begin >= end) return 0.0;
  std::vector<Scalar> partials(
      static_cast<size_t>(DeterministicChunkCount(end - begin, grain)), 0.0);
  ParallelChunks(pool, begin, end, grain,
                 [&](int64_t chunk, int64_t lo, int64_t hi) {
                   partials[chunk] = partial(lo, hi);
                 });
  Scalar total = 0.0;
  for (Scalar p : partials) total += p;
  return total;
}

Scalar ParallelDot(ThreadPool* pool, std::span<const Scalar> a,
                   std::span<const Scalar> b, int64_t grain) {
  ALID_CHECK(a.size() == b.size());
  return ParallelSum(pool, 0, static_cast<int64_t>(a.size()), grain,
                     [&](int64_t lo, int64_t hi) {
                       Scalar s = 0.0;
                       for (int64_t i = lo; i < hi; ++i) s += a[i] * b[i];
                       return s;
                     });
}

}  // namespace alid
