#ifndef ALID_COMMON_THREAD_POOL_H_
#define ALID_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alid {

/// A fixed-size worker pool. PALID's "executors" (Table 2) map onto these
/// workers: every map task (one ALID run from one seed) is a job, and the
/// reduce stage runs after Wait(). The pool is intentionally minimal — FIFO
/// queue, no work stealing — mirroring the coarse-grained Spark tasks the
/// paper used.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe from any thread.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace alid

#endif  // ALID_COMMON_THREAD_POOL_H_
