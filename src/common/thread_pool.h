#ifndef ALID_COMMON_THREAD_POOL_H_
#define ALID_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace alid {

/// Scheduling discipline of the pool.
struct ThreadPoolOptions {
  /// Work stealing (default): every worker owns a deque, external submissions
  /// are spread round-robin, a worker out of local work steals the *oldest*
  /// job of a peer (oldest jobs are the largest remaining chunks under
  /// ParallelFor's splitting, so steals amortize well). false reproduces the
  /// original single-FIFO-queue executor — the coarse Spark-task discipline
  /// of the paper, kept as the paper-faithful ablation.
  bool work_stealing = true;
};

/// A fixed-size worker pool. PALID's "executors" (Table 2) map onto these
/// workers: every map task (one ALID run per seed chunk) is a job, and the
/// reduce stage runs after Wait(). Jobs may be posted from any thread,
/// including pool workers (a worker's own submissions go to its own deque,
/// popped LIFO while still cache-hot).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget job. Safe from any thread.
  void Post(std::function<void()> job);

  /// Enqueues a job and returns a future for its result, so map tasks and
  /// the reduce stage compose without shared mutable accumulators. An
  /// exception thrown by the job is stored in the future — discarding the
  /// future would swallow it, hence [[nodiscard]]; fire-and-forget work
  /// belongs on Post (which also skips the packaged_task allocation and
  /// lets a throwing job terminate loudly).
  template <typename F>
  [[nodiscard]] auto Submit(F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

  /// Splits [begin, end) into chunks of ~grain iterations (grain <= 0 picks
  /// about 8 chunks per worker) and runs body(chunk_begin, chunk_end) across
  /// the pool. The calling thread participates, so the pool being saturated
  /// never deadlocks the caller. Chunks are claimed from a shared counter —
  /// results must not depend on claim order. Must not be called from inside
  /// one of this pool's workers.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body,
                   int64_t grain = 0);

  /// Blocks until every job posted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  const ThreadPoolOptions& options() const { return options_; }

  /// True iff the calling thread is one of this pool's workers. Shared
  /// helpers (ParallelChunks) use it to degrade to serial execution instead
  /// of tripping ParallelFor's re-entrancy check when a pool task itself
  /// reaches a parallelized loop (e.g. a PALID map task calling a baseline
  /// that shares the same pool).
  bool CalledFromWorker() const;

  /// Jobs executed by a worker other than the one they were queued on.
  /// Always 0 in FIFO mode.
  int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Total jobs executed since construction.
  int64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Jobs posted but not yet popped by any worker — the instantaneous
  /// backlog (a saturation gauge, not a throughput counter).
  int64_t queue_depth() const {
    return unclaimed_.load(std::memory_order_relaxed);
  }

  /// Registers `<prefix>_steals` / `<prefix>_tasks_executed` /
  /// `<prefix>_queue_depth` callback gauges on `registry`. The pool must
  /// outlive every Snapshot()/export of that registry — in practice pools
  /// are declared before (so destroyed after) the stream/server whose
  /// per-instance registry reads them.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> jobs;
  };

  void WorkerLoop(int index);
  /// Pops and runs one job (own deque first, then steal). False if none.
  bool TryRunOne(int self);

  ThreadPoolOptions options_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<int64_t> pending_{0};    // posted, not yet finished
  std::atomic<int64_t> unclaimed_{0};  // posted, not yet popped
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace alid

#endif  // ALID_COMMON_THREAD_POOL_H_
