#include "common/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace alid {

DenseMatrix::DenseMatrix(Index rows, Index cols, Scalar fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  ALID_CHECK(rows >= 0 && cols >= 0);
}

std::vector<Scalar> DenseMatrix::MatVec(std::span<const Scalar> x) const {
  ALID_CHECK(static_cast<Index>(x.size()) == cols_);
  std::vector<Scalar> y(rows_, 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Scalar* row = data_.data() + static_cast<size_t>(r) * cols_;
    Scalar s = 0.0;
    for (Index c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Scalar DenseMatrix::QuadraticForm(std::span<const Scalar> x) const {
  ALID_CHECK(rows_ == cols_);
  ALID_CHECK(static_cast<Index>(x.size()) == cols_);
  Scalar total = 0.0;
  for (Index r = 0; r < rows_; ++r) {
    if (x[r] == 0.0) continue;
    const Scalar* row = data_.data() + static_cast<size_t>(r) * cols_;
    Scalar s = 0.0;
    for (Index c = 0; c < cols_; ++c) s += row[c] * x[c];
    total += x[r] * s;
  }
  return total;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Scalar DenseMatrix::SymmetryError() const {
  const Index n = std::min(rows_, cols_);
  Scalar err = 0.0;
  for (Index r = 0; r < n; ++r) {
    for (Index c = r + 1; c < n; ++c) {
      err = std::max(err, std::abs((*this)(r, c) - (*this)(c, r)));
    }
  }
  return err;
}

}  // namespace alid
