#ifndef ALID_COMMON_PARALLEL_H_
#define ALID_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <span>

#include "common/types.h"

namespace alid {

class ThreadPool;

/// Deterministic data-parallel helpers for the baselines' hot loops.
///
/// Determinism contract (the baseline counterpart of PALID's per-seed-slot
/// guarantee): chunk boundaries depend only on the range and the requested
/// grain — never on the pool width, the scheduling discipline, or which
/// worker claims a chunk — and every reduction combines per-chunk partials
/// in ascending chunk order. A loop body that is pure per chunk therefore
/// produces bit-identical results with pool == nullptr and with any executor
/// count. Changing `grain` moves the FP reduction boundaries and may change
/// the low bits; fixing it fixes the result.

/// The chunk grain actually used for a range: `grain` clamped to [1, range]
/// when positive, otherwise the range split into about kDefaultChunks chunks
/// (enough stealing slack for any plausible executor width).
int64_t DeterministicGrain(int64_t range, int64_t grain);

/// Number of chunks the range decomposes into under DeterministicGrain.
int64_t DeterministicChunkCount(int64_t range, int64_t grain);

/// Runs body(chunk, lo, hi) over the fixed chunk decomposition of
/// [begin, end). Serial — in chunk order — when the pool is null, the range
/// is a single chunk, or the caller already runs on one of the pool's
/// workers (nested parallelism degrades to serial instead of tripping
/// ParallelFor's re-entrancy check); otherwise the chunks run across the
/// pool with the calling thread participating. Either way the results are
/// identical, so callers may gate the pool on any size threshold freely.
void ParallelChunks(ThreadPool* pool, int64_t begin, int64_t end,
                    int64_t grain,
                    const std::function<void(int64_t, int64_t, int64_t)>& body);

/// Deterministic sum reduction: partial(lo, hi) per chunk, combined in chunk
/// order.
Scalar ParallelSum(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                   const std::function<Scalar(int64_t, int64_t)>& partial);

/// Deterministic dot product of equal-length vectors via ParallelSum.
Scalar ParallelDot(ThreadPool* pool, std::span<const Scalar> a,
                   std::span<const Scalar> b, int64_t grain);

}  // namespace alid

#endif  // ALID_COMMON_PARALLEL_H_
