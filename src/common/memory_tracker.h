#ifndef ALID_COMMON_MEMORY_TRACKER_H_
#define ALID_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace alid {

/// Process-wide accounting of the bytes the *algorithms* hold — primarily
/// affinity-matrix storage, LSH tables and message buffers. The paper's
/// Figure 7(e-h) / Figure 9 "memory" axis is the peak of this counter, which
/// isolates algorithmic space complexity from allocator noise.
///
/// Thread-safe; PALID workers account concurrently.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void Add(int64_t bytes);
  void Release(int64_t bytes) { Add(-bytes); }

  int64_t current_bytes() const { return current_.load(); }
  int64_t peak_bytes() const { return peak_.load(); }

  /// Resets both counters; call between benchmark configurations.
  void Reset();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII registration of a fixed-size allocation against a tracker — the
/// global one by default, or a dedicated resource space (e.g. the snapshot
/// arena's) so a subsystem's footprint stays separately attributable while
/// still released exactly once on destruction.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(int64_t bytes, MemoryTracker* tracker = nullptr)
      : tracker_(tracker != nullptr ? tracker : &MemoryTracker::Global()),
        bytes_(bytes) {
    tracker_->Add(bytes_);
  }
  ~ScopedMemoryCharge() { tracker_->Release(bytes_); }

  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Grows (or shrinks) the charge as the underlying structure grows.
  void Adjust(int64_t new_bytes);

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

}  // namespace alid

#endif  // ALID_COMMON_MEMORY_TRACKER_H_
