#ifndef ALID_COMMON_TIMER_H_
#define ALID_COMMON_TIMER_H_

#include <chrono>

namespace alid {

/// Simple monotonic wall-clock timer used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alid

#endif  // ALID_COMMON_TIMER_H_
