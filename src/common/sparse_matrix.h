#ifndef ALID_COMMON_SPARSE_MATRIX_H_
#define ALID_COMMON_SPARSE_MATRIX_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace alid {

/// Compressed sparse row (CSR) matrix. This is the representation handed to
/// the baselines when the affinity graph is sparsified (Section 5.1 of the
/// paper): SEA operates natively on it, AP passes messages along its edges,
/// and IID uses its row gather for A x.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets; duplicate (r, c) entries are summed.
  static SparseMatrix FromTriplets(
      Index rows, Index cols,
      std::vector<std::tuple<Index, Index, Scalar>> triplets);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Fraction of entries that are (structurally) zero — the paper's
  /// "sparse degree".
  double SparseDegree() const;

  /// Column indices of row r.
  std::span<const Index> RowIndices(Index r) const {
    return {col_index_.data() + row_start_[r],
            static_cast<size_t>(row_start_[r + 1] - row_start_[r])};
  }
  /// Values of row r (parallel to RowIndices).
  std::span<const Scalar> RowValues(Index r) const {
    return {values_.data() + row_start_[r],
            static_cast<size_t>(row_start_[r + 1] - row_start_[r])};
  }

  /// Entry lookup (binary search within the row); 0 if absent.
  Scalar At(Index r, Index c) const;

  /// y = M x.
  std::vector<Scalar> MatVec(std::span<const Scalar> x) const;

  /// x^T M x for square M.
  Scalar QuadraticForm(std::span<const Scalar> x) const;

  /// (M x)_r for a single row — O(nnz(row)).
  Scalar RowDot(Index r, std::span<const Scalar> x) const;

  size_t MemoryBytes() const {
    return values_.size() * sizeof(Scalar) + col_index_.size() * sizeof(Index) +
           row_start_.size() * sizeof(int64_t);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<int64_t> row_start_;  // size rows_+1
  std::vector<Index> col_index_;
  std::vector<Scalar> values_;
};

}  // namespace alid

#endif  // ALID_COMMON_SPARSE_MATRIX_H_
