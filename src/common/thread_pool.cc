#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace alid {

namespace {

// Identity of the current thread within a pool, so Post() can route a
// worker's own submissions to its own deque and ParallelFor can reject
// re-entrant calls that would deadlock.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads, ThreadPoolOptions options)
    : options_(options) {
  ALID_CHECK(num_threads > 0);
  queues_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutdown_.store(true);
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::CalledFromWorker() const { return tls_pool == this; }

void ThreadPool::Post(std::function<void()> job) {
  ALID_CHECK_MSG(!shutdown_.load(), "Post after shutdown");
  pending_.fetch_add(1, std::memory_order_relaxed);
  size_t q = 0;
  if (options_.work_stealing) {
    q = (tls_pool == this && tls_worker_index >= 0)
            ? static_cast<size_t>(tls_worker_index)
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->jobs.push_back(std::move(job));
  }
  // unclaimed_ rises only after the job is findable in a deque, so a worker
  // whose wait predicate sees it > 0 never busy-spins over empty queues.
  unclaimed_.fetch_add(1, std::memory_order_release);
  // Empty critical section pairs with the sleep predicate: a worker that read
  // unclaimed_ == 0 has either not yet blocked (it will re-read under the
  // lock) or is blocked and will receive the notify.
  { std::lock_guard<std::mutex> lock(sleep_mu_); }
  work_available_.notify_one();
}

bool ThreadPool::TryRunOne(int self) {
  std::function<void()> job;
  bool stolen = false;
  const int nq = static_cast<int>(queues_.size());
  {
    // Own deque first: newest job when stealing (cache-hot LIFO), oldest in
    // FIFO mode (all jobs live on queue 0, preserving submission order).
    WorkerQueue& own = *queues_[options_.work_stealing ? self : 0];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.jobs.empty()) {
      if (options_.work_stealing) {
        job = std::move(own.jobs.back());
        own.jobs.pop_back();
      } else {
        job = std::move(own.jobs.front());
        own.jobs.pop_front();
      }
    }
  }
  if (!job && options_.work_stealing) {
    for (int off = 1; off < nq && !job; ++off) {
      WorkerQueue& victim = *queues_[(self + off) % nq];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.jobs.empty()) {
        job = std::move(victim.jobs.front());
        victim.jobs.pop_front();
        stolen = true;
      }
    }
  }
  if (!job) return false;

  unclaimed_.fetch_sub(1, std::memory_order_acquire);
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
  job();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    work_available_.wait(lock, [this] {
      return shutdown_.load() || unclaimed_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_.load() && unclaimed_.load() == 0) return;
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  all_done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body, int64_t grain) {
  if (begin >= end) return;
  ALID_CHECK_MSG(tls_pool != this,
                 "ParallelFor must not be called from a pool worker");
  const int64_t range = end - begin;
  if (grain <= 0) grain = std::max<int64_t>(1, range / (8 * num_threads()));
  const int64_t num_chunks = (range + grain - 1) / grain;
  if (num_chunks == 1) {
    body(begin, end);
    return;
  }

  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  // `body` is captured by pointer: a straggler helper scheduled after
  // completion claims no chunk and never dereferences it, and every claimed
  // chunk finishes before the wait below returns.
  auto run_chunks = [state, begin, end, grain, num_chunks, body_ptr = &body] {
    for (;;) {
      const int64_t chunk =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      (*body_ptr)(lo, hi);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  const int helpers = static_cast<int>(
      std::min<int64_t>(num_threads(), num_chunks - 1));
  for (int i = 0; i < helpers; ++i) Post(run_chunks);
  run_chunks();  // the caller participates
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

void ThreadPool::RegisterMetrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) const {
  ALID_CHECK(registry != nullptr);
  registry->AddCallbackGauge(prefix + "_steals",
                             [this] { return steal_count(); });
  registry->AddCallbackGauge(prefix + "_tasks_executed",
                             [this] { return tasks_executed(); });
  registry->AddCallbackGauge(prefix + "_queue_depth",
                             [this] { return queue_depth(); });
}

}  // namespace alid
