#include "common/thread_pool.h"

#include "common/check.h"

namespace alid {

ThreadPool::ThreadPool(int num_threads) {
  ALID_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ALID_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace alid
