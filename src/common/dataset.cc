#include "common/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace alid {

Dataset::Dataset(int dim, std::vector<Scalar> data)
    : dim_(dim), data_(std::move(data)) {
  ALID_CHECK(dim_ > 0);
  ALID_CHECK(data_.size() % static_cast<size_t>(dim_) == 0);
  num_points_ = data_.size() / static_cast<size_t>(dim_);
}

void Dataset::Append(std::span<const Scalar> point) {
  ALID_CHECK(static_cast<int>(point.size()) == dim_);
  data_.insert(data_.end(), point.begin(), point.end());
  ++num_points_;
}

void Dataset::AppendAll(const Dataset& other) {
  ALID_CHECK(other.dim() == dim_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  num_points_ += other.num_points_;
}

void Dataset::AppendRaw(std::span<const Scalar> rows) {
  ALID_CHECK(dim_ > 0 && rows.size() % static_cast<size_t>(dim_) == 0);
  data_.insert(data_.end(), rows.begin(), rows.end());
  num_points_ += rows.size() / static_cast<size_t>(dim_);
}

Dataset Dataset::Subset(const IndexList& indices) const {
  Dataset out(dim_);
  out.data_.reserve(indices.size() * static_cast<size_t>(dim_));
  for (Index i : indices) {
    ALID_DCHECK(i >= 0 && i < size());
    out.Append((*this)[i]);
  }
  return out;
}

Scalar Dataset::Distance(Index i, Index j, double p) const {
  return LpDistance((*this)[i], (*this)[j], p);
}

Scalar Dataset::DistanceTo(Index i, std::span<const Scalar> q,
                           double p) const {
  return LpDistance((*this)[i], q, p);
}

Scalar Dataset::SquaredL2(Index i, Index j) const {
  return alid::SquaredL2((*this)[i], (*this)[j]);
}

Scalar Dataset::DiameterEstimate(double p) const {
  if (num_points_ == 0) return 0.0;
  std::vector<Scalar> centroid(dim_, 0.0);
  for (Index i = 0; i < size(); ++i) {
    auto row = (*this)[i];
    for (int k = 0; k < dim_; ++k) centroid[k] += row[k];
  }
  for (int k = 0; k < dim_; ++k) centroid[k] /= static_cast<Scalar>(size());
  Scalar max_r = 0.0;
  for (Index i = 0; i < size(); ++i) {
    max_r = std::max(max_r, DistanceTo(i, centroid, p));
  }
  return 2.0 * max_r;
}

Scalar LpDistance(std::span<const Scalar> a, std::span<const Scalar> b,
                  double p) {
  ALID_DCHECK(a.size() == b.size());
  if (p == 2.0) return std::sqrt(SquaredL2(a, b));
  if (p == 1.0) {
    Scalar s = 0.0;
    for (size_t k = 0; k < a.size(); ++k) s += std::abs(a[k] - b[k]);
    return s;
  }
  Scalar s = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    s += std::pow(std::abs(a[k] - b[k]), p);
  }
  return std::pow(s, 1.0 / p);
}

Scalar SquaredL2(std::span<const Scalar> a, std::span<const Scalar> b) {
  ALID_DCHECK(a.size() == b.size());
  Scalar s = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const Scalar d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

Scalar Dot(std::span<const Scalar> a, std::span<const Scalar> b) {
  ALID_DCHECK(a.size() == b.size());
  Scalar s = 0.0;
  for (size_t k = 0; k < a.size(); ++k) s += a[k] * b[k];
  return s;
}

}  // namespace alid
