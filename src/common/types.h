#ifndef ALID_COMMON_TYPES_H_
#define ALID_COMMON_TYPES_H_

#include <cstdint>
#include <vector>

namespace alid {

/// Index of a data item / graph vertex. The paper's "global range" I = [1, n]
/// maps to [0, n) here.
using Index = int32_t;

/// Scalar type used throughout. Double keeps the evolutionary-game dynamics
/// (tiny invasion shares, co-vertex ratios x_i/(x_i-1)) numerically sane.
using Scalar = double;

/// A list of vertex indices (e.g., a local range beta or a support alpha).
using IndexList = std::vector<Index>;

}  // namespace alid

#endif  // ALID_COMMON_TYPES_H_
