#ifndef ALID_CORE_ONLINE_ALID_H_
#define ALID_CORE_ONLINE_ALID_H_

#include <memory>
#include <span>
#include <vector>

#include "core/alid.h"

namespace alid {

/// Options of the streaming extension.
struct OnlineAlidOptions {
  /// Affinity kernel of the stream.
  AffinityParams affinity;
  /// LSH parameters (the index grows with the stream via AppendItem).
  LshParams lsh;
  /// Per-detection ALID options.
  AlidOptions alid;
  /// A maintenance pass (re-detection over the unassigned pool) runs after
  /// this many new items.
  Index refresh_interval = 256;
  /// A newcomer is routed to a cluster already when pi(s_j, x) exceeds
  /// (1 - absorb_slack) * pi(x): same-cluster arrivals sit *at* the density
  /// (Theorem 1's equality on the support), so the strict > test alone
  /// would bounce half of them into the pool and fragment the cluster.
  double absorb_slack = 0.05;
};

/// OnlineAlid — the "online version to efficiently process streaming data
/// sources" the paper names as future work (Section 6), built from the same
/// primitives as batch ALID.
///
/// Strategy: arriving items are hashed into the growing LSH index. An item
/// that lands inside the locality of an existing dominant cluster and is
/// infective against it (pi(s_j, x) > pi(x), the Theorem 1 test) triggers a
/// *local* re-detection seeded at that cluster, which absorbs the newcomer
/// and rebalances the weights. Items that match nothing join the unassigned
/// pool; every `refresh_interval` arrivals, one peeling pass over the pool
/// detects newly formed clusters. Costs stay local: no global recomputation
/// ever happens.
class OnlineAlid {
 public:
  explicit OnlineAlid(int dim, OnlineAlidOptions options);

  /// Feeds one data point; returns its index in the stream. Triggers local
  /// maintenance as described above.
  Index Insert(std::span<const Scalar> point);

  /// Current dominant clusters (density >= the ALID keep-threshold).
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Cluster id of item i, or -1 while unassigned.
  int ClusterOf(Index i) const { return assignment_[i]; }

  /// Number of items fed so far.
  Index size() const { return data_.size(); }

  /// Forces the periodic maintenance pass now (e.g., at end of stream).
  void Refresh();

 private:
  // Re-runs Algorithm 2 from a seed and installs/updates a cluster.
  void RedetectCluster(int cluster_id, Index seed);
  // Peels new clusters out of the unassigned pool.
  void DetectFromPool();
  void Assign(int cluster_id);

  OnlineAlidOptions options_;
  Dataset data_;
  AffinityFunction affinity_fn_;
  std::unique_ptr<LazyAffinityOracle> oracle_;
  std::unique_ptr<LshIndex> lsh_;

  std::vector<Cluster> clusters_;
  std::vector<int> assignment_;  // item -> cluster id or -1
  Index since_refresh_ = 0;
};

}  // namespace alid

#endif  // ALID_CORE_ONLINE_ALID_H_
