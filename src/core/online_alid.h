#ifndef ALID_CORE_ONLINE_ALID_H_
#define ALID_CORE_ONLINE_ALID_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/alid.h"
#include "core/support_sketch.h"
#include "obs/latency_reservoir.h"
#include "obs/metrics.h"
#include "simd/soa_block.h"

namespace alid {

class ThreadPool;

/// Options of the streaming subsystem.
struct OnlineAlidOptions {
  /// Affinity kernel of the stream.
  AffinityParams affinity;
  /// LSH parameters (the index grows — and, under a window, shrinks — with
  /// the stream).
  LshParams lsh;
  /// Per-detection ALID options.
  AlidOptions alid;
  /// A maintenance pass (re-detection over the unassigned pool) runs after
  /// this many new items.
  Index refresh_interval = 256;
  /// A newcomer is routed to a cluster already when pi(s_j, x) exceeds
  /// (1 - absorb_slack) * pi(x): same-cluster arrivals sit *at* the density
  /// (Theorem 1's equality on the support), so the strict > test alone
  /// would bounce half of them into the pool and fragment the cluster.
  double absorb_slack = 0.05;
  /// Sliding window: at most this many arrivals stay alive. Older items are
  /// expired — removed from the LSH buckets, peeled out of their cluster
  /// (which is then locally re-detected or dissolved), and their cached
  /// affinities invalidated — and their slots re-used by later arrivals, so
  /// index and cache footprints stay bounded by the window, not the stream.
  /// 0 keeps every arrival forever (the append-only mode of the original
  /// extension).
  Index window = 0;
  /// Optional shared executor pool for the batch-ingest phases (arrival
  /// hashing and absorb scoring run chunked on it; all mutation phases stay
  /// serial in arrival order). The streamed state is bit-identical for any
  /// pool width, scheduling discipline, grain, or pool == nullptr — the
  /// same determinism contract as src/common/parallel.*.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel phases (see DeterministicGrain); 0 auto.
  int64_t grain = 0;
  /// Installs the shared column cache under the oracle (the default-on
  /// runtime behavior). Cached values are bit-identical to recomputation
  /// and expiry invalidates them before a slot is re-used, so the streamed
  /// state never depends on this flag; false keeps the stateless oracle
  /// (the cache-on ≡ cache-off harness flips it).
  bool column_cache = true;
  /// Fraction of the dense-matrix footprint the auto-budgeted column cache
  /// may hold (see ColumnCacheOptions::ForDataSize) — the ROADMAP's 1/16
  /// first guess surfaced as a stream knob so the bench trajectory's
  /// hit-rate/eviction telemetry can drive a re-tune without a code change.
  double cache_budget_fraction = ColumnCacheOptions::kDefaultAutoBudgetFraction;
  /// Per-cluster support-sketch sizing. The sketch is a branch-and-bound
  /// filter in front of exact absorb scoring: with a bounded kernel, any
  /// scored prefix of the top-weight members plus the remaining weight
  /// upper-bounds pi(s_j, x), so most candidate clusters are rejected
  /// after a few kernel evaluations instead of a full-support scan — and
  /// since an inconclusive bound falls back to the unchanged exact
  /// summation, the streamed state is bit-identical with the sketch on or
  /// off (prefix_mass <= 0 disables it).
  SupportSketchParams sketch;
  /// Maximum number of pool seeds the refresh pass detects speculatively
  /// per map round (PALID's seed-chunk map stage over the unassigned pool).
  /// The frontier ramps 1 -> 2 -> ... -> this cap while rounds stay
  /// conflict-free and resets to 1 on any conflict, so serial re-detections
  /// stay rare; 1 pins the original strictly-serial peeling. The refresh
  /// outcome depends only on this option and the stream history — never on
  /// the executor count.
  int refresh_frontier = 16;
};

/// Counters and per-batch ingest latencies of one OnlineAlid stream — the
/// streaming counterpart of PalidStats. Since the observability layer
/// landed this is a thin view materialized from the stream's per-instance
/// obs::MetricsRegistry (OnlineAlid::metrics()), kept so no caller breaks.
struct StreamStats {
  int64_t arrivals = 0;  ///< Items ever inserted.
  int64_t absorbed = 0;  ///< Arrivals absorbed into a live cluster on entry.
  int64_t pooled = 0;    ///< Arrivals that joined the unassigned pool (a
                         ///< refresh pass may still cluster them later).
  int64_t evicted = 0;   ///< Items expired out of the sliding window.
  int64_t redetections = 0;  ///< Local Algorithm-2 re-runs (absorb + repair).
  int64_t refreshes = 0;     ///< Maintenance passes over the pool.
  int64_t clusters_born = 0;
  int64_t clusters_dissolved = 0;
  /// Expired items tagged by the expiry invalidation path (their cached
  /// kernel entries drop lazily on next lookup; see ColumnCache::EraseItems).
  int64_t cache_entries_invalidated = 0;
  /// In-place cache budget growths as the window filled past the
  /// construction-time floor (the budget is a function of the slot universe,
  /// which is empty at construction and bounded by window + batch after).
  int64_t cache_rebudgets = 0;
  /// Live cache budget after the most recent batch (0 when cache off).
  int64_t cache_budget_bytes = 0;
  /// Candidate clusters rejected by the support-sketch upper bound during
  /// absorb scoring — exact work the branch-and-bound filter skipped.
  int64_t sketch_prunes = 0;
  /// Sketch-engaged candidates whose bound was inconclusive and fell back
  /// to the exact full-support scoring (the bits of which the sketch never
  /// changes).
  int64_t sketch_exact = 0;
  /// Map rounds of the refresh pass's frontier scheme.
  int64_t refresh_rounds = 0;
  /// Speculative pool detections accepted as-is (their support stayed
  /// disjoint from everything claimed earlier in the round).
  int64_t refresh_speculations = 0;
  /// Speculative pool detections that overlapped an earlier claim and were
  /// re-detected serially against the up-to-date exclusions.
  int64_t refresh_conflicts = 0;
  Index alive = 0;         ///< Live items (inside the window).
  int clusters_alive = 0;  ///< Current dominant clusters.
  /// Wall seconds of the most recent InsertBatch calls, in call order —
  /// bounded at kMaxLatencySamples (oldest halved away) so a long-lived
  /// stream's stats footprint stays bounded like everything else.
  std::vector<double> batch_seconds;

  static constexpr size_t kMaxLatencySamples = 8192;

  /// Histogram of batch_seconds over `bins` equal-width buckets spanning
  /// [0, max batch time] — the ingest-latency profile of the stream.
  std::vector<int> LatencyHistogram(int bins = 8) const;
};

/// OnlineAlid — the "online version to efficiently process streaming data
/// sources" the paper names as future work (Section 6), grown into a
/// windowed, batch-parallel streaming subsystem on the shared runtime.
///
/// Ingest strategy per batch: every arrival is written into a slot (expired
/// slots are re-used smallest-first) and hashed into the growing LSH index —
/// the hashing and the Theorem-1 absorb scoring run chunked on the shared
/// pool, both pure against the batch-start state, so the streamed state is
/// bit-identical for every executor count. Absorb scoring consults each
/// candidate cluster's support sketch first: the top-weight prefix plus the
/// tail-weight bound rejects most candidates without touching the full
/// support, and an inconclusive bound falls back to the unchanged exact
/// summation — an exact optimization, never an approximation. Absorptions
/// then apply serially in arrival order: an arrival whose chosen cluster
/// was mutated earlier in the same batch is re-scored against the cluster's
/// current state before a *local* re-detection absorbs it. Arrivals
/// matching nothing join the unassigned pool; every `refresh_interval`
/// arrivals a refresh pass peels newly formed clusters out of the pool —
/// frontier chunks of speculative Algorithm-2 runs mapped over the shared
/// pool (the PALID map idiom), validated and applied serially in seed order
/// so the outcome never depends on the executors. Under a sliding window,
/// batch ingest ends by expiring the oldest items: they leave the LSH
/// buckets, their cached affinities are invalidated (their slots will be
/// re-used), and every cluster that lost members is locally re-detected or
/// dissolved. Costs stay local: no global recomputation ever happens.
class OnlineAlid {
 public:
  explicit OnlineAlid(int dim, OnlineAlidOptions options);

  /// Feeds one data point; returns its slot (equal to the stream position
  /// until a window expires items and slots start being re-used). Triggers
  /// the same maintenance as a batch of one.
  Index Insert(std::span<const Scalar> point);

  /// Batch ingest: `points` holds count * dim scalars, row-major, in
  /// arrival order. Returns the slot of each arrival. Absorb candidates are
  /// evaluated against the state at batch start (in parallel when a pool is
  /// set); window expiry runs once at the end of the batch.
  std::vector<Index> InsertBatch(std::span<const Scalar> points);

  /// Current dominant clusters (density >= the ALID keep-threshold).
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Cluster id of the item in slot i, or -1 while unassigned, expired, or
  /// out of the slot universe (slots are re-used under a window, so they
  /// stop at about `window + batch` even as size() keeps counting arrivals).
  int ClusterOf(Index i) const {
    return i >= 0 && i < static_cast<Index>(assignment_.size())
               ? assignment_[i]
               : -1;
  }

  /// True iff slot i currently holds a live (non-expired) item.
  bool IsAlive(Index i) const {
    return i >= 0 && i < static_cast<Index>(alive_.size()) && alive_[i] != 0;
  }

  /// Number of items fed so far (monotonic; expired items still count).
  Index size() const { return static_cast<Index>(metrics_.arrivals->value()); }

  /// Live items currently inside the window.
  Index alive() const { return static_cast<Index>(window_fifo_.size()); }

  /// Forces the periodic maintenance pass now (e.g., at end of stream).
  void Refresh();

  /// The configured options (the serving layer reads the affinity/LSH
  /// parameters and absorb slack off these to build scoring-compatible
  /// snapshots).
  const OnlineAlidOptions& options() const { return options_; }

  /// Stable identity of cluster `c` (monotonic birth counter, >= 1;
  /// preserved across re-detections and id compactions). Together with
  /// cluster_version() this is what lets an incremental snapshot export
  /// recognize a cluster it already holds: equal (uid, version) across two
  /// exports means identical members, weights, density and member rows.
  uint64_t cluster_uid(int c) const {
    return cluster_uid_[static_cast<size_t>(c)];
  }

  /// Mutation counter of cluster `c` (bumped by every membership, weight or
  /// density change — absorb re-detections, expiry peels, merges,
  /// dissolutions).
  uint64_t cluster_version(int c) const {
    return cluster_version_[static_cast<size_t>(c)];
  }

  /// The support sketch of cluster `c`. Fresh (built_version ==
  /// cluster_version) for every cluster between batches, so snapshot
  /// exports lift it instead of rebuilding.
  const SupportSketch& cluster_sketch(int c) const {
    return sketches_[static_cast<size_t>(c)];
  }

  /// Stream observability — the streaming counterpart of PalidStats. A
  /// consistent by-value view materialized from the registry (binding it to
  /// a const reference still works — lifetime extension — but the copy no
  /// longer tracks later mutations; every in-repo caller reads it fresh).
  StreamStats stats() const;

  /// The per-instance instrument registry behind stats(): every stream
  /// counter plus the cache and pool gauges, exportable as single-line
  /// JSON (bench trajectory) or Prometheus text.
  const obs::MetricsRegistry& metrics() const { return metrics_.registry; }

  /// The shared oracle (cache hit/eviction counters for benches and tests).
  const LazyAffinityOracle& oracle() const { return *oracle_; }

 private:
  // Dimension-major member tiles of one cluster — the vector-kernel mirror
  // of (members, weights) and of the sketch prefix, versioned exactly like
  // the sketch: `built` must equal the cluster's mutation counter or the
  // tiles must not be consulted (the scoring falls back to the oracle path,
  // which is bit-identical anyway). Rebuilt alongside the sketches at batch
  // end, so the parallel scoring phase only ever reads fresh tiles.
  struct ClusterTiles {
    SoaBlock members;  // member rows, in member order
    SoaBlock prefix;   // sketch-prefix rows, in sketch (descending-weight)
                       // order; empty when the sketch is disengaged
    uint64_t built_version = SupportSketch::kUnbuilt;
  };

  // Absorb decision of one arrival: the target cluster (-1 = pool) plus the
  // sketch-filter activity of the scoring (accumulated serially into
  // StreamStats after the parallel phase). The deciding margin is
  // recomputed on the apply path whenever the target mutated, so only the
  // choice itself is carried across the phases.
  struct Choice {
    int cluster = -1;
    int32_t sketch_prunes = 0;
    int32_t sketch_exact = 0;
  };

  // Writes the point into a re-used or appended slot (serial phase).
  Index AllocateSlot(std::span<const Scalar> point);
  // Pure Theorem-1 scoring of one arrival against the current clusters.
  Choice ScoreArrival(Index slot) const;
  // pi(s_j, x) of the newcomer against one cluster's weighted support.
  Scalar ClusterAffinity(const Cluster& cluster, Index slot) const;
  // Serial per-arrival apply: absorb (re-scoring if the chosen cluster
  // mutated earlier in the batch, per `versions`) and refresh bookkeeping.
  void ApplyArrival(Index slot, const Choice& choice,
                    const std::vector<uint64_t>& versions);
  // Re-runs Algorithm 2 from a seed and installs/updates a cluster.
  void RedetectCluster(int cluster_id, Index seed);
  // Peels new clusters out of the unassigned pool: a deterministic frontier
  // map stage (chunks of speculative DetectOne runs on the shared pool, the
  // PALID map idiom) validated and applied serially in seed order.
  void DetectFromPool();
  // The serial tail of one pool detection: peel the support, filter by
  // density/size, merge with an existing cluster when the cross density
  // says so, otherwise install as a new cluster.
  void InstallPoolCluster(Cluster cluster, const AlidDetector& detector,
                          std::vector<bool>& exclude);
  // Rebuilds the sketch of every cluster whose version moved (end of every
  // batch / refresh, so scoring and exports always see fresh sketches).
  void RefreshSketches();
  void Assign(int cluster_id);
  // Expires the oldest items down to the window, invalidates their cached
  // affinities and repairs the clusters they were peeled out of.
  void ExpireToWindow();
  // Re-detects a cluster that lost members to expiry (or dissolves it).
  void RepairCluster(int cluster_id);
  void DissolveCluster(int cluster_id);
  // Erases dead clusters and remaps assignments (end of batch / refresh).
  void CompactClusters();
  // Grows the cache budget when the slot universe outgrew the current one
  // (ROADMAP: the empty-dataset construction floor must not freeze forever).
  void MaybeRebudgetCache();

  OnlineAlidOptions options_;
  Dataset data_;
  AffinityFunction affinity_fn_;
  std::unique_ptr<LazyAffinityOracle> oracle_;
  std::unique_ptr<LshIndex> lsh_;

  std::vector<Cluster> clusters_;
  // Mutation counter per cluster id; the batch apply phase re-scores an
  // arrival whose precomputed target moved since the batch started, and the
  // incremental snapshot export re-uses clusters whose counter stood still.
  std::vector<uint64_t> cluster_version_;
  // Stable per-cluster identity (birth order, starting at 1) surviving the
  // id compaction — what snapshot generations match clusters by.
  std::vector<uint64_t> cluster_uid_;
  uint64_t next_cluster_uid_ = 1;
  // Support sketches parallel to clusters_, rebuilt for mutated clusters at
  // the end of every batch (so the parallel scoring phase and FromStream
  // exports only ever read fresh ones).
  std::vector<SupportSketch> sketches_;
  // SIMD scoring tiles parallel to clusters_, maintained under the same
  // freshness protocol as sketches_. Never built when the configured norm
  // has no tile kernel (simd_norm_ below), in which case scoring stays on
  // the row-major oracle path everywhere.
  std::vector<ClusterTiles> tiles_;
  // SimdSupportsNorm(options_.affinity.p), resolved once at construction.
  bool simd_norm_ = false;
  // Dissolved-in-this-batch markers; compacted away at batch end so public
  // cluster ids stay dense.
  std::vector<uint8_t> cluster_dead_;
  std::vector<int> assignment_;   // slot -> cluster id or -1
  std::vector<uint8_t> alive_;    // slot -> live?
  // Expired slots, descending, so the smallest is an O(1) pop_back away.
  std::vector<Index> free_slots_;
  std::deque<Index> window_fifo_;  // live slots, oldest arrival first
  Index since_refresh_ = 0;

  // The stream counters re-homed onto a per-instance registry (StreamStats
  // is materialized from these): relaxed-atomic Adds in the serial apply
  // phases, cache/pool telemetry as callback gauges, batch latencies in the
  // shared bounded reservoir. Wired in the constructor; pointers are stable
  // for the stream's lifetime.
  struct StreamInstruments {
    obs::MetricsRegistry registry;
    obs::Counter* arrivals = nullptr;
    obs::Counter* absorbed = nullptr;
    obs::Counter* pooled = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* redetections = nullptr;
    obs::Counter* refreshes = nullptr;
    obs::Counter* clusters_born = nullptr;
    obs::Counter* clusters_dissolved = nullptr;
    obs::Counter* cache_invalidated = nullptr;
    obs::Counter* cache_rebudgets = nullptr;
    obs::Counter* sketch_prunes = nullptr;
    obs::Counter* sketch_exact = nullptr;
    obs::Counter* refresh_rounds = nullptr;
    obs::Counter* refresh_speculations = nullptr;
    obs::Counter* refresh_conflicts = nullptr;
    obs::Gauge* alive = nullptr;
    obs::Gauge* clusters_alive = nullptr;
    obs::LatencyReservoir batch_seconds{StreamStats::kMaxLatencySamples};
  };
  StreamInstruments metrics_;
};

}  // namespace alid

#endif  // ALID_CORE_ONLINE_ALID_H_
