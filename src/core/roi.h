#ifndef ALID_CORE_ROI_H_
#define ALID_CORE_ROI_H_

#include <vector>

#include "affinity/lazy_affinity_oracle.h"
#include "common/types.h"

namespace alid {

/// The double-deck hyperball H(D, R_in, R_out) of Section 4.2 (Eq. 15) and
/// the growing Region of Interest radius of Eq. 16.
///
/// Proposition 1 guarantees that every data item strictly inside the inner
/// ball is infective against the local dense subgraph x̂ and every item
/// strictly outside the outer ball is immune — so growing the search radius
/// from R_in towards R_out scans few vertices early and provably covers all
/// infective vertices in the limit.
struct Roi {
  /// Ball center D = sum_i x̂_i v_i (the weighted support centroid).
  std::vector<Scalar> center;
  /// Inner radius R_in = (1/k) ln(lambda_in / pi(x̂)); may be clamped to 0.
  Scalar r_in = 0.0;
  /// Outer radius R_out = (1/k) ln(lambda_out / pi(x̂)).
  Scalar r_out = 0.0;
  /// Whether the estimate is meaningful (pi(x̂) > 0 and a non-empty support).
  bool valid = false;

  /// Eq. 16's logistic growth schedule theta(c) = 1 / (1 + e^{4 - c/2}).
  static Scalar Theta(int c);

  /// The ROI radius at ALID iteration c: R = R_in + theta(c)(R_out - R_in).
  /// With `logistic_growth` false the radius jumps straight to R_out (the
  /// ablation of DESIGN.md §5).
  Scalar RadiusAt(int c, bool logistic_growth = true) const;
};

/// Estimates the ROI from the support of a local dense subgraph.
///
/// `support` holds (global index, weight) pairs of x̂ with weights summing to
/// 1; `density` is pi(x̂). lambda_in/lambda_out are evaluated in log space so
/// e^{+k d} cannot overflow for distant support points.
Roi EstimateRoi(const LazyAffinityOracle& oracle,
                const std::vector<std::pair<Index, Scalar>>& support,
                Scalar density);

}  // namespace alid

#endif  // ALID_CORE_ROI_H_
