#ifndef ALID_CORE_LID_H_
#define ALID_CORE_LID_H_

#include <unordered_map>
#include <vector>

#include "affinity/lazy_affinity_oracle.h"
#include "common/types.h"

namespace alid {

/// Options of the Localized Infection Immunization Dynamics (Algorithm 1).
struct LidOptions {
  /// Upper limit T on infection/immunization iterations per LID run.
  int max_iterations = 2000;
  /// Convergence tolerance on max |pi(s_i - x, x)| over the local range: when
  /// no vertex is infective (and no support vertex is weak) beyond this, the
  /// local infective set gamma_beta(x) is empty (Theorem 1).
  double tolerance = 1e-10;
  /// Weights below this are snapped to exactly zero after an invasion.
  double weight_epsilon = 1e-14;
};

/// Localized Infection Immunization Dynamics (Step 1 of ALID, Algorithm 1).
///
/// Maintains a subgraph x on the simplex over a *local range* beta (a small
/// set of global vertex indices) and iterates the invasion model
/// z = (1-eps) x + eps y (Eq. 5) with the optimal infective vertex/co-vertex
/// selection S(x) (Eq. 6/8) and invasion share eps_y(x) (Eq. 9) until x is
/// immune against every vertex of beta.
///
/// Only the columns A_{beta, i} of vertices that are actually invaded are
/// computed (through the LazyAffinityOracle), and the running products
/// (A_{beta,alpha} x_alpha) are updated incrementally per Eq. 14 — one column
/// per iteration, never the full local matrix A_{beta,beta}.
///
/// The instance also implements the Eq. 17 range update used by Step 3
/// (CIVS): beta' = alpha ∪ psi, with (A x) rows extended to the new members.
class Lid {
 public:
  /// Starts from the single-vertex subgraph x = s_seed, beta = {seed}.
  Lid(const LazyAffinityOracle& oracle, Index seed, LidOptions options = {});

  ~Lid();

  Lid(const Lid&) = delete;
  Lid& operator=(const Lid&) = delete;
  /// Movable: the memory charge transfers with the column cache.
  Lid(Lid&& other) noexcept;
  Lid& operator=(Lid&&) = delete;

  /// Runs Algorithm 1 until gamma_beta(x) is empty or max_iterations is hit.
  /// Returns the number of invasions performed.
  int Run();

  /// Current graph density pi(x) = x^T A x.
  Scalar Density() const;

  /// True if the last Run() terminated with gamma_beta(x) empty.
  bool converged() const { return converged_; }

  /// The local range beta (global indices).
  const IndexList& beta() const { return beta_; }

  /// Global indices of the support alpha = { i in beta : x_i > 0 },
  /// ascending.
  IndexList Support() const;

  /// (global index, weight) pairs of the support.
  std::vector<std::pair<Index, Scalar>> SupportWeights() const;

  /// Weight of global vertex g (0 if outside beta).
  Scalar WeightOf(Index g) const;

  /// pi(s_j, x) for an arbitrary *global* vertex j: the average affinity
  /// between j and the subgraph. O(|alpha|) kernel evaluations. Used by the
  /// global-immunity check and by CIVS-retrieved candidate screening.
  Scalar AverageAffinityTo(Index global_j) const;

  /// Eq. 17: replaces the local range with alpha ∪ new_candidates, extending
  /// the maintained (A x) products to the new rows. Candidates already in
  /// beta are ignored. Rows of beta outside the support are dropped (their
  /// weight is zero, so x is unchanged).
  void UpdateRange(const IndexList& new_candidates);

  /// Total invasions across all Run() calls.
  int total_iterations() const { return total_iterations_; }

 private:
  // Ensures columns_[g] holds A_{beta, g}; returns a reference to it.
  const std::vector<Scalar>& EnsureColumn(Index g);
  // Re-account the column-cache footprint with the oracle.
  void Recharge();

  const LazyAffinityOracle* oracle_;
  LidOptions options_;

  IndexList beta_;                       // global indices of the local range
  std::unordered_map<Index, int> pos_;   // global index -> position in beta_
  std::vector<Scalar> x_;                // weights, parallel to beta_
  std::vector<Scalar> ax_;               // (A_{beta,alpha} x_alpha), parallel
  // Cached columns A_{beta, g} for invaded vertices, parallel to beta_.
  std::unordered_map<Index, std::vector<Scalar>> columns_;

  bool converged_ = false;
  int total_iterations_ = 0;
  int64_t charged_bytes_ = 0;
};

}  // namespace alid

#endif  // ALID_CORE_LID_H_
