#ifndef ALID_CORE_CLUSTER_H_
#define ALID_CORE_CLUSTER_H_

#include <vector>

#include "common/types.h"

namespace alid {

/// One detected dominant cluster: the support of a dense subgraph x* together
/// with its probabilistic memberships and its density pi(x*). Every detector
/// in this library (ALID, PALID, IID, DS, SEA, AP, ...) reports its output in
/// this shape so the evaluation harness is method-agnostic.
struct Cluster {
  /// Global indices of the member items (the support of x*), ascending.
  IndexList members;
  /// Simplex weights parallel to `members` (sum to 1). Partitioning baselines
  /// that have no natural weights report uniform weights.
  std::vector<Scalar> weights;
  /// Graph density pi(x*) = x*^T A x* — the paper's cluster-coherence score.
  Scalar density = 0.0;
  /// The initial vertex the detection started from (-1 if not applicable).
  Index seed = -1;
};

/// The full output of a detection run.
struct DetectionResult {
  std::vector<Cluster> clusters;

  /// Per-item cluster id (index into `clusters`), or -1 for unassigned noise.
  /// When clusters overlap, the densest one wins (the PALID reduce rule).
  std::vector<int> Assignment(Index n) const {
    std::vector<int> label(n, -1);
    std::vector<Scalar> best(n, -1.0);
    for (size_t c = 0; c < clusters.size(); ++c) {
      for (Index i : clusters[c].members) {
        if (clusters[c].density > best[i]) {
          best[i] = clusters[c].density;
          label[i] = static_cast<int>(c);
        }
      }
    }
    return label;
  }

  /// Keeps only clusters with density >= threshold and at least `min_size`
  /// members (the paper keeps pi(x) >= 0.75).
  DetectionResult Filtered(Scalar min_density, int min_size = 2) const {
    DetectionResult out;
    for (const Cluster& c : clusters) {
      if (c.density >= min_density &&
          static_cast<int>(c.members.size()) >= min_size) {
        out.clusters.push_back(c);
      }
    }
    return out;
  }
};

}  // namespace alid

#endif  // ALID_CORE_CLUSTER_H_
