#ifndef ALID_CORE_SUPPORT_SKETCH_H_
#define ALID_CORE_SUPPORT_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace alid {

/// Sizing of the per-cluster support sketch shared by the streaming absorb
/// path (OnlineAlid::InsertBatch) and the serving path (ClusterSnapshot).
struct SupportSketchParams {
  /// The prefix keeps top-weight members until it covers this fraction of
  /// the cluster's total simplex mass, so the remaining weight — the
  /// kernel-free part of the upper bound — can fall to (1 - prefix_mass).
  /// Deep by default: a reject at cumulative mass c needs
  /// mean_kernel * c + (1 - c) <= threshold, so far colliders exit after
  /// ~(1 - threshold) of the mass while mid-range ones need more runway —
  /// and queries the walk can never reject (mean kernel at or above the
  /// threshold) are detected by the give-up rule at the first checkpoint,
  /// so the deep prefix costs them almost nothing. <= 0 disables the
  /// sketch everywhere (every candidate scores exactly, the pre-sketch
  /// behavior).
  double prefix_mass = 0.9;
  /// Clusters with fewer members than this score exactly without a sketch:
  /// below it the prefix covers most of the support anyway, so the bound
  /// evaluation would only add work.
  Index min_support = 64;
  /// Per-cluster adaptive truncation mass (on by default): the effective
  /// mass deepens from prefix_mass toward max_prefix_mass with the
  /// *flatness* of the cluster's weight profile, measured by the effective
  /// participation ratio n_eff / n (n_eff = (sum w)^2 / sum w^2 — n for
  /// uniform weights, ~1 for a single dominant member). Concentrated
  /// simplices keep the base mass (their short prefix already carries the
  /// bound); flat ones — where rest_weight is the whole slack of the bound
  /// — buy a tighter tail for a few extra prefix members. The effective
  /// mass is a pure function of the weights, so sketches still rebuild
  /// identically, and the bound stays an exact filter either way: any mass
  /// preserves output bit-identity (the fallback contract), only the
  /// prune/exact split moves. False pins the global prefix_mass.
  bool adaptive_mass = true;
  /// Ceiling of the adaptive deepening (only read when adaptive_mass).
  double max_prefix_mass = 0.98;

  bool operator==(const SupportSketchParams&) const = default;
};

/// Absolute slack added to every sketch upper bound before it is compared.
/// The bound argument is exact in real arithmetic (the kernel of Eq. 1 lies
/// in [0, 1], so the unscored remainder of the weighted sum is at most its
/// weight); in floating point the prefix partial, the rest weights and the
/// full sum round independently, each with error O(n * eps) on values
/// bounded by 1. 1e-9 dominates that rounding for supports up to ~10^6
/// members, so a bound-based rejection can never disagree with the exact
/// comparison — the exactness guarantee the determinism and bit-identity
/// tests pin.
inline constexpr Scalar kSketchBoundGuard = 1e-9;

/// How often the prefix walk re-checks the bound: every
/// kSketchBoundStride kernel evaluations (and once more at the prefix
/// end). A fixed constant, so the walk — and every prune or give-up it
/// takes — is a pure function of the sketch and the query.
///
/// Each checkpoint tests two things. Reject: the partial plus the rest
/// weight (a certified upper bound on pi) cannot clear the caller's
/// threshold, so exact scoring is skipped. Give up: the partial alone
/// already implies a mean prefix kernel at or above the threshold, so no
/// later checkpoint can ever reject — the walk stops and falls through to
/// exact scoring having spent only the evaluations so far. The give-up
/// rule is what makes the deep prefix affordable: absorbing queries (the
/// common case) bail at the first checkpoint instead of walking the whole
/// prefix before the inevitable exact fallback.
inline constexpr int kSketchBoundStride = 8;

/// The branch-and-bound filter in front of exact Theorem-1 absorb scoring:
/// a cluster's members ordered by descending weight, truncated once they
/// cover `prefix_mass` of the simplex, plus the weight mass that remains
/// after each prefix position. Since the affinity kernel is bounded by 1,
///   pi(s, x) <= sum_{t <= T} w_t * a(m_t, x) + rest_weight[T]
/// for every prefix length T — scoring the prefix front-to-back yields a
/// tightening sequence of certified upper bounds, and the walk stops at the
/// first one that rejects the cluster (or proves it cannot beat the
/// incumbent winner). The bound only ever *skips* exact work — an
/// inconclusive walk falls back to the unchanged exact summation — so
/// results are bit-identical with the sketch on or off.
struct SupportSketch {
  /// `built_version` value of a sketch that was never built.
  static constexpr uint64_t kUnbuilt = ~uint64_t{0};

  /// Positions into the cluster's member list (not item ids), ordered by
  /// descending weight, ties broken by ascending position — a pure function
  /// of the weights, hence identical on every build of the same cluster.
  std::vector<Index> ordinals;
  /// weights[member ordinals], parallel to `ordinals`.
  std::vector<Scalar> weights;
  /// rest_weights[t]: total simplex weight outside ordinals[0..t] — the
  /// kernel-free remainder of the bound after scoring t + 1 prefix members.
  std::vector<Scalar> rest_weights;
  /// The cluster mutation counter this sketch was built against; a mismatch
  /// means the cluster changed and the sketch must not be consulted.
  uint64_t built_version = kUnbuilt;

  /// True iff the sketch carries a usable prefix (the cluster was large
  /// enough and the sketch was enabled at build time).
  bool engaged() const { return !ordinals.empty(); }
};

/// Builds the sketch of one cluster from its simplex weights. Selection
/// depends only on the weight values (descending, ties by ascending
/// position), never on iteration order or the member ids, so rebuilding the
/// same cluster always yields the same sketch. Returns a disengaged sketch
/// when params disable it or the support is below min_support;
/// `built_version` is left at kUnbuilt for the caller to stamp.
SupportSketch BuildSupportSketch(std::span<const Scalar> weights,
                                 const SupportSketchParams& params);

/// The one branch-and-bound walk every scoring layer runs (the stream's
/// absorb phase and the snapshot's Assign/TopK must take bit-identical
/// prune decisions, so the checkpoint cadence, guard, reject test and
/// give-up rule live here exactly once). `weights`/`rest_weights` are the
/// sketch prefix arrays; `tile_kernels(t0, n, out)` fills out[0..n) with
/// the affinities of prefix positions [t0, t0 + n) against the query —
/// n is kSketchBoundStride except possibly at the prefix end, which is
/// what lets the SIMD path evaluate one full dimension-major tile per
/// checkpoint group. Returns true when some checkpoint bound —
/// (partial + rest + guard) - threshold, a certified upper bound on the
/// exact margin — drops to 0 or to `incumbent` or below: the cluster
/// provably cannot win and exact scoring may be skipped. Returns false
/// when the walk is inconclusive or gives up (mean prefix kernel already
/// at the effective threshold, see kSketchBoundStride) — the caller then
/// runs the unchanged exact summation.
///
/// The checkpoint positions, the partial's member-order accumulation and
/// every test are identical whether the kernels arrive one at a time
/// (SketchBoundRejects) or a tile at a time: both walks evaluate the same
/// groups of kernels between checkpoints, so prune decisions — and the
/// prune/exact counters — are bit-identical across the scalar and vector
/// paths.
template <typename TileKernels>
bool SketchBoundRejectsTiled(std::span<const Scalar> weights,
                             std::span<const Scalar> rest_weights,
                             Scalar threshold, Scalar incumbent,
                             TileKernels&& tile_kernels) {
  const Scalar ceiling =
      threshold + (incumbent > Scalar{0} ? incumbent : Scalar{0});
  Scalar partial = 0.0;
  Scalar cum_weight = 0.0;
  Scalar kernels[kSketchBoundStride];
  const size_t prefix = weights.size();
  for (size_t t0 = 0; t0 < prefix; t0 += kSketchBoundStride) {
    const size_t n = std::min<size_t>(kSketchBoundStride, prefix - t0);
    tile_kernels(t0, n, kernels);
    for (size_t i = 0; i < n; ++i) {
      partial += weights[t0 + i] * kernels[i];
      cum_weight += weights[t0 + i];
    }
    const size_t t = t0 + n - 1;  // the checkpoint position
    const Scalar bound_margin =
        partial + rest_weights[t] + kSketchBoundGuard - threshold;
    if (bound_margin <= 0.0 || bound_margin <= incumbent) return true;
    if (partial >= ceiling * cum_weight) return false;  // give up
  }
  return false;
}

/// Per-evaluation adapter over the tiled walk: `kernel_at(t)` evaluates one
/// prefix position. The oracle-backed scalar paths use this form.
template <typename KernelAt>
bool SketchBoundRejects(std::span<const Scalar> weights,
                        std::span<const Scalar> rest_weights,
                        Scalar threshold, Scalar incumbent,
                        KernelAt&& kernel_at) {
  return SketchBoundRejectsTiled(
      weights, rest_weights, threshold, incumbent,
      [&](size_t t0, size_t n, Scalar* out) {
        for (size_t i = 0; i < n; ++i) out[i] = kernel_at(t0 + i);
      });
}

}  // namespace alid

#endif  // ALID_CORE_SUPPORT_SKETCH_H_
