#ifndef ALID_CORE_SIMPLEX_H_
#define ALID_CORE_SIMPLEX_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace alid {

/// Helpers for vectors on the standard simplex Δ^n = { x : Σx_i = 1, x ≥ 0 },
/// the state space of all evolutionary-game detectors (Section 3).

/// True if x is (numerically) on the simplex: entries ≥ -tol, sum within tol
/// of 1.
bool IsOnSimplex(std::span<const Scalar> x, double tol = 1e-6);

/// Clamps negatives to zero and rescales to sum exactly 1. No-op on the zero
/// vector.
void ProjectToSimplex(std::vector<Scalar>& x);

/// The barycenter (uniform distribution) of Δ^n.
std::vector<Scalar> Barycenter(Index n);

/// L1 distance between two simplex vectors.
Scalar L1Distance(std::span<const Scalar> a, std::span<const Scalar> b);

}  // namespace alid

#endif  // ALID_CORE_SIMPLEX_H_
