#include "core/support_sketch.h"

#include <algorithm>
#include <numeric>

namespace alid {

SupportSketch BuildSupportSketch(std::span<const Scalar> weights,
                                 const SupportSketchParams& params) {
  SupportSketch sketch;
  const Index n = static_cast<Index>(weights.size());
  if (params.prefix_mass <= 0.0 || n < params.min_support) return sketch;

  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  // Total order (weight desc, position asc): a strict weak ordering with no
  // ties, so the sorted sequence — and with it every bound the sketch will
  // ever produce — is a pure function of the weights.
  std::sort(order.begin(), order.end(), [&weights](Index a, Index b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });

  // Suffix sums over the sorted weights, in one fixed order: suffix[t] is
  // the weight mass strictly after sorted position t - 1 (suffix[0] is the
  // total). Summed back to front so every rest_weight below reproduces bit
  // for bit across rebuilds.
  std::vector<Scalar> suffix(static_cast<size_t>(n) + 1, 0.0);
  for (Index t = n - 1; t >= 0; --t) {
    suffix[t] = suffix[t + 1] + weights[order[t]];
  }

  // Adaptive truncation mass: deepen from prefix_mass toward
  // max_prefix_mass as the weight profile flattens (effective
  // participation ratio n_eff / n in [~0, 1]). A pure function of the
  // weights — rebuilds stay identical — and, like any mass, it only moves
  // the prune/exact split, never a scored result.
  Scalar mass = params.prefix_mass;
  if (params.adaptive_mass && params.max_prefix_mass > mass) {
    Scalar sum_sq = 0.0;
    for (Index t = 0; t < n; ++t) {
      sum_sq += weights[order[t]] * weights[order[t]];
    }
    if (sum_sq > 0.0) {
      const Scalar n_eff = suffix[0] * suffix[0] / sum_sq;
      const Scalar flatness =
          std::min(Scalar{1}, n_eff / static_cast<Scalar>(n));
      mass = std::min(params.max_prefix_mass,
                      mass + (params.max_prefix_mass - mass) * flatness);
    }
  }
  const Scalar target = mass * suffix[0];

  // Prefix length: the smallest count whose cumulative mass reaches the
  // target (equivalently, whose remainder drops to (1 - prefix_mass) of the
  // total). suffix[n] == 0 <= target's complement, so `prefix` always lands
  // in [1, n].
  Index prefix = n;
  for (Index t = 1; t <= n; ++t) {
    if (suffix[0] - suffix[t] >= target) {
      prefix = t;
      break;
    }
  }

  sketch.ordinals.assign(order.begin(), order.begin() + prefix);
  sketch.weights.resize(static_cast<size_t>(prefix));
  sketch.rest_weights.resize(static_cast<size_t>(prefix));
  for (Index t = 0; t < prefix; ++t) {
    sketch.weights[t] = weights[sketch.ordinals[t]];
    sketch.rest_weights[t] = suffix[t + 1];
  }
  return sketch;
}

}  // namespace alid
