#ifndef ALID_CORE_ALID_H_
#define ALID_CORE_ALID_H_

#include <memory>
#include <vector>

#include "affinity/affinity_function.h"
#include "affinity/lazy_affinity_oracle.h"
#include "common/dataset.h"
#include "core/civs.h"
#include "core/cluster.h"
#include "core/lid.h"
#include "lsh/lsh_index.h"

namespace alid {

/// Options of the full ALID iteration (Algorithm 2) and of the peeling loop
/// that detects all dominant clusters (Section 4.4).
struct AlidOptions {
  /// Maximum number of outer ALID iterations C (the paper uses C = 10).
  int max_outer_iterations = 10;
  /// LID (Step 1) options — T and the convergence tolerance.
  LidOptions lid;
  /// CIVS (Step 3) options — delta and the query strategy.
  CivsOptions civs;
  /// Radius of the first-iteration ROI, when pi(x) = 0 still (Algorithm 2
  /// sets R = 0.4 for c = 1 on its normalized features). Negative means
  /// adaptive: the distance at which the affinity kernel decays to 0.5,
  /// i.e. ln(2)/k.
  double first_radius = -1.0;
  /// Eq. 16's logistic ROI growth; false jumps straight to the outer ball
  /// (ablation).
  bool logistic_roi_growth = true;
  /// Peeling keeps clusters with pi(x) >= density_threshold (paper: 0.75).
  double density_threshold = 0.75;
  /// Peeling keeps clusters with at least this many members.
  int min_cluster_size = 2;
};

/// The ALID detector: LID + ROI + CIVS in a loop (Algorithm 2), plus the
/// peeling strategy of Section 4.4 for detecting *all* dominant clusters.
///
/// The detector owns nothing heavy: it borrows a dataset, an affinity
/// function, a (shared, immutable) LSH index and a lazy affinity oracle, so
/// many detections — including PALID's concurrent map tasks — can run against
/// the same substrates.
class AlidDetector {
 public:
  AlidDetector(const LazyAffinityOracle& oracle, const LshIndex& lsh,
               AlidOptions options = {});

  /// Runs Algorithm 2 from one initial vertex. `exclude` (optional) marks
  /// peeled-off items that must not participate. Thread-safe: `this` is not
  /// mutated.
  Cluster DetectOne(Index seed, const std::vector<bool>* exclude = nullptr)
      const;

  /// Detects all dominant clusters by peeling (Section 4.4): run Algorithm 2,
  /// peel the detected support off, reseed on the remaining items until all
  /// are peeled. Returns every raw cluster; apply
  /// DetectionResult::Filtered(options().density_threshold) for the paper's
  /// final selection.
  DetectionResult DetectAll() const;

  const AlidOptions& options() const { return options_; }
  const LazyAffinityOracle& oracle() const { return *oracle_; }

 private:
  Scalar FirstRadius() const;

  const LazyAffinityOracle* oracle_;
  const LshIndex* lsh_;
  AlidOptions options_;
};

}  // namespace alid

#endif  // ALID_CORE_ALID_H_
