#include "core/online_alid.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/check.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "simd/simd_dispatch.h"

namespace alid {

// The tiled branch-and-bound walk hands the kernel callback one
// checkpoint group at a time; one SoA tile must be exactly one group or
// the vector walk would check bounds at different prefix positions than
// the scalar walk and the prune decisions could diverge.
static_assert(kSimdTileLanes == kSketchBoundStride,
              "one SoA tile must cover exactly one bound-checkpoint group");

std::vector<int> StreamStats::LatencyHistogram(int bins) const {
  return EqualWidthHistogram(batch_seconds, bins);
}

OnlineAlid::OnlineAlid(int dim, OnlineAlidOptions options)
    : options_(options), data_(dim), affinity_fn_(options.affinity) {
  ALID_CHECK(options_.window >= 0);
  ALID_CHECK(options_.refresh_interval >= 1);
  ALID_CHECK(options_.refresh_frontier >= 1);
  ALID_CHECK(options_.cache_budget_fraction > 0.0 &&
             options_.cache_budget_fraction <= 1.0);
  simd_norm_ = SimdSupportsNorm(options_.affinity.p);
  oracle_ = std::make_unique<LazyAffinityOracle>(data_, affinity_fn_);
  if (!options_.column_cache) oracle_->DisableColumnCache();
  lsh_ = std::make_unique<LshIndex>(data_, options_.lsh);

  // Re-home the stream counters onto the per-instance registry (StreamStats
  // stays as the thin view stats() materializes). Names double as the bench
  // trajectory's JSON keys, so the registry exporter emits the exact schema
  // the perf gates already read.
  obs::MetricsRegistry& registry = metrics_.registry;
  metrics_.arrivals = registry.AddCounter("arrivals");
  metrics_.absorbed = registry.AddCounter("absorbed");
  metrics_.pooled = registry.AddCounter("pooled");
  metrics_.evicted = registry.AddCounter("evicted");
  metrics_.redetections = registry.AddCounter("redetections");
  metrics_.refreshes = registry.AddCounter("refreshes");
  metrics_.clusters_born = registry.AddCounter("clusters_born");
  metrics_.clusters_dissolved = registry.AddCounter("clusters_dissolved");
  metrics_.cache_invalidated = registry.AddCounter("cache_invalidated");
  metrics_.cache_rebudgets = registry.AddCounter("cache_rebudgets");
  metrics_.sketch_prunes = registry.AddCounter("sketch_prunes");
  metrics_.sketch_exact = registry.AddCounter("sketch_exact");
  metrics_.refresh_rounds = registry.AddCounter("refresh_rounds");
  metrics_.refresh_speculations = registry.AddCounter("refresh_speculations");
  metrics_.refresh_conflicts = registry.AddCounter("refresh_conflicts");
  metrics_.alive = registry.AddGauge("alive");
  metrics_.clusters_alive = registry.AddGauge("clusters_alive");
  // Every batch latency the bounded reservoir samples also lands in a
  // fixed-bucket histogram, so the ingest profile ships through the JSON /
  // Prometheus exporters (ingest_seconds_count / _sum and the le buckets)
  // instead of living only in the in-process percentile window.
  metrics_.batch_seconds.AttachHistogram(
      registry.AddHistogram("ingest_seconds", obs::LatencyHistogramEdges()));
  // Cache telemetry reads through the oracle (null-safe when the cache is
  // disabled); the oracle lives and dies with the stream, like the registry.
  const LazyAffinityOracle* oracle = oracle_.get();
  registry.AddCallbackGauge("cache_hits",
                            [oracle] { return oracle->cache_hits(); });
  registry.AddCallbackGauge("cache_evictions",
                            [oracle] { return oracle->cache_evictions(); });
  registry.AddCallbackGauge("cache_stale_drops",
                            [oracle] { return oracle->cache_stale_drops(); });
  registry.AddCallbackGauge("cache_bytes",
                            [oracle] { return oracle->cache_size_bytes(); });
  registry.AddCallbackGauge("cache_budget_bytes", [oracle] {
    return oracle->cache_budget_bytes();
  });
  // The shared pool (when set) must outlive this stream — already the
  // standing usage contract, since every batch runs phases on it.
  if (options_.pool != nullptr) {
    options_.pool->RegisterMetrics(&registry, "pool");
  }
}

StreamStats OnlineAlid::stats() const {
  StreamStats s;
  s.arrivals = metrics_.arrivals->value();
  s.absorbed = metrics_.absorbed->value();
  s.pooled = metrics_.pooled->value();
  s.evicted = metrics_.evicted->value();
  s.redetections = metrics_.redetections->value();
  s.refreshes = metrics_.refreshes->value();
  s.clusters_born = metrics_.clusters_born->value();
  s.clusters_dissolved = metrics_.clusters_dissolved->value();
  s.cache_entries_invalidated = metrics_.cache_invalidated->value();
  s.cache_rebudgets = metrics_.cache_rebudgets->value();
  s.cache_budget_bytes = oracle_->cache_budget_bytes();
  s.sketch_prunes = metrics_.sketch_prunes->value();
  s.sketch_exact = metrics_.sketch_exact->value();
  s.refresh_rounds = metrics_.refresh_rounds->value();
  s.refresh_speculations = metrics_.refresh_speculations->value();
  s.refresh_conflicts = metrics_.refresh_conflicts->value();
  s.alive = static_cast<Index>(metrics_.alive->value());
  s.clusters_alive = static_cast<int>(metrics_.clusters_alive->value());
  s.batch_seconds = metrics_.batch_seconds.Samples();
  return s;
}

Index OnlineAlid::Insert(std::span<const Scalar> point) {
  ALID_CHECK(static_cast<int>(point.size()) == data_.dim());
  return InsertBatch(point)[0];
}

std::vector<Index> OnlineAlid::InsertBatch(std::span<const Scalar> points) {
  const int dim = data_.dim();
  ALID_CHECK(dim > 0 && points.size() % static_cast<size_t>(dim) == 0);
  const Index count = static_cast<Index>(points.size() / dim);
  std::vector<Index> slots(count);
  if (count == 0) return slots;
  WallTimer timer;
  ALID_TRACE_SCOPE("stream", "insert_batch");

  // Phase 1 (serial): slot allocation + row writes, in arrival order.
  // Expired slots are re-used smallest-first, so the slot sequence depends
  // only on the stream history.
  {
    ALID_TRACE_SCOPE("stream", "slot_alloc");
    for (Index k = 0; k < count; ++k) {
      slots[k] =
          AllocateSlot(points.subspan(static_cast<size_t>(k) * dim, dim));
    }
  }

  // Phase 2 (parallel, pure): per-table LSH keys of every arrival. Each
  // arrival's keys are self-contained, so any chunking yields the same bits.
  const int tables = lsh_->num_tables();
  std::vector<uint64_t> keys(static_cast<size_t>(count) * tables);
  {
    ALID_TRACE_SCOPE("stream", "lsh_keys");
    ParallelChunks(options_.pool, 0, count, options_.grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     ALID_TRACE_SCOPE("stream", "lsh_keys_chunk");
                     for (int64_t k = lo; k < hi; ++k) {
                       lsh_->ComputeItemKeys(
                           slots[k], &keys[static_cast<size_t>(k) * tables]);
                     }
                   });
  }

  // Phase 3 (serial): bucket insertion in arrival order.
  {
    ALID_TRACE_SCOPE("stream", "bucket_insert");
    for (Index k = 0; k < count; ++k) {
      lsh_->InsertItemWithKeys(
          slots[k], std::span<const uint64_t>(
                        keys.data() + static_cast<size_t>(k) * tables,
                        static_cast<size_t>(tables)));
    }
  }

  // Phase 4 (parallel, pure): Theorem-1 absorb scoring of every arrival
  // against the batch-start clusters. Same-batch neighbours are already in
  // the LSH buckets but still unassigned, so the candidate sets — like the
  // scores — depend only on the batch boundary, never on the executors.
  std::vector<Choice> choices(count);
  {
    ALID_TRACE_SCOPE("stream", "absorb_score");
    ParallelChunks(options_.pool, 0, count, options_.grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     ALID_TRACE_SCOPE("stream", "absorb_score_chunk");
                     for (int64_t k = lo; k < hi; ++k) {
                       choices[k] = ScoreArrival(slots[k]);
                     }
                   });
  }

  // Phase 5 (serial): apply in arrival order. Clusters mutate here, so the
  // snapshot versions tell ApplyArrival which precomputed choices are stale.
  // The sketch-filter counters of the parallel phase fold in here too, in
  // arrival order, so the stats are executor-independent like the state.
  {
    ALID_TRACE_SCOPE("stream", "apply");
    const std::vector<uint64_t> versions = cluster_version_;
    for (Index k = 0; k < count; ++k) {
      metrics_.sketch_prunes->Add(choices[k].sketch_prunes);
      metrics_.sketch_exact->Add(choices[k].sketch_exact);
      ApplyArrival(slots[k], choices[k], versions);
    }
  }

  // Phase 6 (serial): sliding-window expiry, targeted cache invalidation,
  // and repair of the clusters that lost members.
  if (options_.window > 0) {
    ALID_TRACE_SCOPE("stream", "expire");
    ExpireToWindow();
  }

  {
    ALID_TRACE_SCOPE("stream", "compact");
    CompactClusters();
  }
  // Sketches of mutated clusters are rebuilt at batch end — the next
  // batch's parallel scoring phase and any between-batch snapshot export
  // read only fresh ones.
  RefreshSketches();
  MaybeRebudgetCache();
  metrics_.alive->Set(alive());
  metrics_.clusters_alive->Set(static_cast<int64_t>(clusters_.size()));
  metrics_.batch_seconds.Record(timer.Seconds());
  return slots;
}

Index OnlineAlid::AllocateSlot(std::span<const Scalar> point) {
  Index slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();  // descending order: back() is the smallest
    free_slots_.pop_back();
    std::copy(point.begin(), point.end(), data_.MutableRow(slot).begin());
    alive_[slot] = 1;
  } else {
    slot = data_.size();
    data_.Append(point);
    assignment_.push_back(-1);
    alive_.push_back(1);
  }
  window_fifo_.push_back(slot);
  return slot;
}

OnlineAlid::Choice OnlineAlid::ScoreArrival(Index slot) const {
  Choice best;
  if (clusters_.empty()) return best;
  // Candidates are the clusters of the newcomer's LSH neighbours.
  std::vector<uint8_t> candidate(clusters_.size(), 0);
  for (Index j : lsh_->QueryByIndex(slot)) {
    if (assignment_[j] >= 0) candidate[assignment_[j]] = 1;
  }
  const SimdKernelOps& ops = *ActiveSimdOps();
  const double p = options_.affinity.p;
  const Scalar* query = data_[slot].data();
  Scalar best_margin = -std::numeric_limits<Scalar>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    if (candidate[c] == 0 || cluster_dead_[c] != 0) continue;
    const Cluster& cl = clusters_[c];
    // Absorb when (near-)infective: same-cluster arrivals sit at the density
    // (Theorem 1 equality on the support), hence the slack.
    const Scalar threshold = cl.density * (1.0 - options_.absorb_slack);
    const SupportSketch& sketch = sketches_[c];
    // The vector path needs fresh tiles (same protocol as the sketch) and a
    // tile kernel for the configured norm. Either way the arithmetic below
    // is bit-identical — the tiles reproduce the oracle's member-order
    // accumulation exactly — so this is a speed choice, never a result
    // choice. The newcomer is unassigned, so no member equals `slot` and
    // the oracle's a_ii = 0 diagonal can never be hit here.
    const bool tiles_fresh =
        simd_norm_ && tiles_[c].built_version == cluster_version_[c];
    if (sketch.engaged() && sketch.built_version == cluster_version_[c]) {
      // Branch-and-bound filter (SketchBoundRejects[Tiled] — one walk
      // shared with the serving layer, so both sides take bit-identical
      // prune decisions): a rejected candidate provably cannot clear the
      // absorb threshold or beat the incumbent's exact margin, so its
      // full-support scoring is skipped; anything else — inconclusive walk
      // or give-up — falls through to the unchanged exact summation below.
      // Both exits are pure functions of the sketch and the arrival, hence
      // executor-independent.
      bool rejected;
      if (tiles_fresh) {
        // One SoA tile per checkpoint group (kSimdTileLanes ==
        // kSketchBoundStride), so t0 always lands on a tile boundary.
        rejected = SketchBoundRejectsTiled(
            std::span<const Scalar>(sketch.weights),
            std::span<const Scalar>(sketch.rest_weights), threshold,
            best_margin, [&](size_t t0, size_t n, Scalar* out) {
              Scalar dists[kSimdTileLanes];
              TileDistances(ops, tiles_[c].prefix,
                            static_cast<Index>(t0 / kSimdTileLanes), query, p,
                            dists);
              for (size_t i = 0; i < n; ++i) {
                out[i] = affinity_fn_.FromDistance(dists[i]);
              }
            });
      } else {
        rejected = SketchBoundRejects(
            std::span<const Scalar>(sketch.weights),
            std::span<const Scalar>(sketch.rest_weights), threshold,
            best_margin, [&](size_t t) {
              return oracle_->Entry(cl.members[sketch.ordinals[t]], slot);
            });
      }
      if (rejected) {
        ++best.sketch_prunes;
        continue;
      }
      ++best.sketch_exact;
    }
    const Scalar affinity =
        tiles_fresh ? SoaWeightedKernelSum(ops, tiles_[c].members, cl.weights,
                                           affinity_fn_, query)
                    : ClusterAffinity(cl, slot);
    const Scalar margin = affinity - threshold;
    if (margin > 0.0 && margin > best_margin) {
      best_margin = margin;
      best.cluster = static_cast<int>(c);
    }
  }
  return best;
}

Scalar OnlineAlid::ClusterAffinity(const Cluster& cluster, Index slot) const {
  Scalar aff = 0.0;  // pi(s_slot, x_cluster)
  for (size_t t = 0; t < cluster.members.size(); ++t) {
    aff += cluster.weights[t] * oracle_->Entry(cluster.members[t], slot);
  }
  return aff;
}

void OnlineAlid::ApplyArrival(Index slot, const Choice& choice,
                              const std::vector<uint64_t>& versions) {
  metrics_.arrivals->Add(1);
  if (assignment_[slot] >= 0) {
    // An earlier arrival of this batch already pulled this one in: its
    // re-detection (or a mid-batch refresh) absorbed the still-unassigned
    // newcomer and rebalanced the weights. Re-detecting again from here
    // would seed inside a cluster the arrival may no longer target.
    metrics_.absorbed->Add(1);
  } else {
    int target = choice.cluster;
    if (target >= 0) {
      if (cluster_dead_[target] != 0) {
        target = -1;  // dissolved earlier in this batch
      } else if (cluster_version_[target] != versions[target]) {
        // The chosen cluster absorbed an earlier same-batch arrival (or was
        // otherwise re-detected): re-score against its current state. The
        // re-check is serial, so the outcome is executor-independent.
        const Cluster& cl = clusters_[target];
        const Scalar margin = ClusterAffinity(cl, slot) -
                              cl.density * (1.0 - options_.absorb_slack);
        if (margin <= 0.0) target = -1;
      }
    }
    if (target >= 0) {
      // Local re-detection absorbs the newcomer and rebalances the weights.
      RedetectCluster(target, slot);
      if (assignment_[slot] >= 0) {
        metrics_.absorbed->Add(1);
      } else {
        metrics_.pooled->Add(1);
      }
    } else {
      metrics_.pooled->Add(1);
    }
  }
  if (++since_refresh_ >= options_.refresh_interval) {
    DetectFromPool();
    since_refresh_ = 0;
    metrics_.refreshes->Add(1);
  }
}

void OnlineAlid::Refresh() {
  DetectFromPool();
  CompactClusters();
  RefreshSketches();
  since_refresh_ = 0;
  metrics_.refreshes->Add(1);
  metrics_.alive->Set(alive());
  metrics_.clusters_alive->Set(static_cast<int64_t>(clusters_.size()));
}

void OnlineAlid::RefreshSketches() {
  ALID_TRACE_SCOPE("stream", "sketch_rebuild");
  // Pure per cluster (weights in, sketch out; member rows in, tiles out),
  // so the sweep chunks on the shared pool like every other parallel phase;
  // only clusters whose version moved rebuild, so the cost is O(changed),
  // not O(clusters). The scoring tiles follow the sketch's freshness
  // protocol exactly: between batches every cluster's tiles are fresh, so
  // the next parallel scoring phase runs the vector path throughout.
  ParallelChunks(
      options_.pool, 0, static_cast<int64_t>(clusters_.size()),
      options_.grain, [&](int64_t, int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          if (sketches_[c].built_version != cluster_version_[c]) {
            sketches_[c] =
                BuildSupportSketch(clusters_[c].weights, options_.sketch);
            sketches_[c].built_version = cluster_version_[c];
          }
          if (!simd_norm_ ||
              tiles_[c].built_version == cluster_version_[c]) {
            continue;
          }
          ClusterTiles& tiles = tiles_[c];
          tiles.members.GatherRows(data_, clusters_[c].members);
          const SupportSketch& sketch = sketches_[c];
          if (sketch.engaged()) {
            std::vector<Index> prefix_items(sketch.ordinals.size());
            for (size_t t = 0; t < sketch.ordinals.size(); ++t) {
              prefix_items[t] = clusters_[c].members[sketch.ordinals[t]];
            }
            tiles.prefix.GatherRows(data_, prefix_items);
          } else {
            tiles.prefix = SoaBlock();
          }
          tiles.built_version = cluster_version_[c];
        }
      });
}

void OnlineAlid::RedetectCluster(int cluster_id, Index seed) {
  metrics_.redetections->Add(1);
  // Items owned by *other* clusters — and expired slots — stay out of this
  // re-detection.
  std::vector<bool> exclude(data_.size(), false);
  for (Index i = 0; i < data_.size(); ++i) {
    exclude[i] = alive_[i] == 0 ||
                 (assignment_[i] >= 0 && assignment_[i] != cluster_id);
  }
  ALID_CHECK(!exclude[seed]);
  AlidDetector detector(*oracle_, *lsh_, options_.alid);
  Cluster fresh = detector.DetectOne(seed, &exclude);

  // Release the old membership.
  for (Index i : clusters_[cluster_id].members) assignment_[i] = -1;
  ++cluster_version_[cluster_id];
  if (fresh.density >= options_.alid.density_threshold &&
      static_cast<int>(fresh.members.size()) >=
          options_.alid.min_cluster_size) {
    clusters_[cluster_id] = std::move(fresh);
    Assign(cluster_id);
    return;
  }
  // The cluster dissolved (e.g., it was marginal and the newcomer pulled the
  // dynamics elsewhere): mark it dead; CompactClusters erases it at the end
  // of the batch so same-batch cluster ids stay stable.
  DissolveCluster(cluster_id);
}

void OnlineAlid::DetectFromPool() {
  ALID_TRACE_SCOPE("stream", "refresh");
  std::vector<bool> exclude(data_.size(), false);
  Index pool_count = 0;
  for (Index i = 0; i < data_.size(); ++i) {
    exclude[i] = alive_[i] == 0 || assignment_[i] >= 0;
    pool_count += exclude[i] ? 0 : 1;
  }
  if (pool_count == 0) return;
  AlidDetector detector(*oracle_, *lsh_, options_.alid);

  // PALID's map stage over the unassigned pool: each round maps a frontier
  // chunk of speculative DetectOne runs — pure against the round-start
  // exclusions — across the shared pool, then validates and applies them
  // serially in seed order. A speculative detection whose support stayed
  // disjoint from everything claimed earlier in the round is exactly what a
  // serial run *from the round-start state* would have produced and is
  // applied as-is; one that overlaps an earlier claim is re-detected
  // against the live exclusions (the strictly-serial step). The frontier
  // width ramps geometrically while rounds stay conflict-free and resets to
  // 1 on any waste, so a pool full of one big cluster degrades to the old
  // serial peel instead of detecting it `frontier` times. Every input of
  // the schedule — the frontier sequence, the seed order, each DetectOne —
  // is a pure function of the stream history, so the refresh outcome is
  // bit-identical for every executor count, scheduling discipline and
  // grain.
  const int max_frontier = std::max(1, options_.refresh_frontier);
  int frontier = 1;
  Index cursor = 0;  // seeds are consumed in ascending order, exactly once
  std::vector<Index> seeds;
  std::vector<Cluster> raw;
  while (cursor < data_.size()) {
    ALID_TRACE_SCOPE("stream", "refresh_round");
    seeds.clear();
    Index next_cursor = cursor;
    for (Index s = cursor;
         s < data_.size() && static_cast<int>(seeds.size()) < frontier; ++s) {
      if (!exclude[s]) seeds.push_back(s);
      next_cursor = s + 1;
    }
    cursor = next_cursor;
    if (seeds.empty()) continue;
    raw.assign(seeds.size(), Cluster{});
    ParallelChunks(options_.pool, 0, static_cast<int64_t>(seeds.size()),
                   /*grain=*/1, [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t k = lo; k < hi; ++k) {
                       raw[k] = detector.DetectOne(seeds[k], &exclude);
                     }
                   });
    bool waste = false;
    for (size_t k = 0; k < seeds.size(); ++k) {
      if (exclude[seeds[k]]) {
        // Claimed by an earlier detection of this round — the serial peel
        // would never have seeded here.
        waste = true;
        continue;
      }
      Cluster c = std::move(raw[k]);
      bool conflict = false;
      for (Index m : c.members) {
        if (exclude[m]) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        c = detector.DetectOne(seeds[k], &exclude);
        metrics_.refresh_conflicts->Add(1);
        waste = true;
      } else if (k > 0) {
        metrics_.refresh_speculations->Add(1);
      }
      InstallPoolCluster(std::move(c), detector, exclude);
    }
    metrics_.refresh_rounds->Add(1);
    frontier = waste ? 1 : std::min(frontier * 2, max_frontier);
  }
}

void OnlineAlid::InstallPoolCluster(Cluster c, const AlidDetector& detector,
                                    std::vector<bool>& exclude) {
  for (Index i : c.members) exclude[i] = true;  // peel
  if (c.density < options_.alid.density_threshold ||
      static_cast<int>(c.members.size()) < options_.alid.min_cluster_size) {
    return;
  }
  // A pool cluster might be the missing half of an existing one (its
  // members arrived after that cluster was detected). If the cross
  // density matches dominant-cluster coherence, merge by re-detection
  // over the union. The pair sum runs chunk-deterministic on the shared
  // pool with a *fixed* auto grain — this is the one reduction whose FP
  // grouping a grain could move, and pinning it keeps the streamed state
  // bit-identical across grains as well as executor counts.
  int merge_with = -1;
  for (size_t e = 0; e < clusters_.size(); ++e) {
    if (cluster_dead_[e] != 0) continue;
    const Cluster& cl = clusters_[e];
    const Scalar cross = ParallelSum(
        options_.pool, 0, static_cast<int64_t>(c.members.size()),
        /*grain=*/0, [&](int64_t lo, int64_t hi) {
          Scalar partial = 0.0;  // pi(x_new, x_e) over this chunk
          for (int64_t a = lo; a < hi; ++a) {
            for (size_t b = 0; b < cl.members.size(); ++b) {
              partial += c.weights[a] * cl.weights[b] *
                         oracle_->Entry(c.members[a], cl.members[b]);
            }
          }
          return partial;
        });
    if (cross >= options_.alid.density_threshold) {
      merge_with = static_cast<int>(e);
      break;
    }
  }
  if (merge_with >= 0) {
    // Release the sibling and re-detect over the union of both halves.
    for (Index i : clusters_[merge_with].members) assignment_[i] = -1;
    std::vector<bool> other_owned(data_.size(), false);
    for (Index i = 0; i < data_.size(); ++i) {
      other_owned[i] = alive_[i] == 0 || assignment_[i] >= 0;
    }
    Cluster merged = detector.DetectOne(c.seed, &other_owned);
    ++cluster_version_[merge_with];
    if (merged.density >= options_.alid.density_threshold &&
        static_cast<int>(merged.members.size()) >=
            options_.alid.min_cluster_size) {
      clusters_[merge_with] = std::move(merged);
      Assign(merge_with);
      for (Index i : clusters_[merge_with].members) exclude[i] = true;
      return;
    }
    // Merge failed: restore the sibling's membership (its members are
    // disjoint from the pool cluster, so this is exact) and fall through
    // to install the pool cluster as-is.
    Assign(merge_with);
  }
  clusters_.push_back(std::move(c));
  cluster_version_.push_back(0);
  cluster_dead_.push_back(0);
  cluster_uid_.push_back(next_cluster_uid_++);
  sketches_.emplace_back();
  tiles_.emplace_back();
  Assign(static_cast<int>(clusters_.size()) - 1);
  metrics_.clusters_born->Add(1);
}

void OnlineAlid::Assign(int cluster_id) {
  for (Index i : clusters_[cluster_id].members) assignment_[i] = cluster_id;
}

void OnlineAlid::ExpireToWindow() {
  std::vector<Index> expired;
  std::vector<int> dirty;
  while (static_cast<Index>(window_fifo_.size()) > options_.window) {
    const Index slot = window_fifo_.front();
    window_fifo_.pop_front();
    lsh_->RemoveItem(slot);
    alive_[slot] = 0;
    const int cid = assignment_[slot];
    if (cid >= 0) {
      Cluster& cl = clusters_[cid];
      const auto pos =
          std::lower_bound(cl.members.begin(), cl.members.end(), slot);
      ALID_CHECK(pos != cl.members.end() && *pos == slot);
      cl.weights.erase(cl.weights.begin() + (pos - cl.members.begin()));
      cl.members.erase(pos);
      assignment_[slot] = -1;
      ++cluster_version_[cid];
      dirty.push_back(cid);
    }
    expired.push_back(slot);
    metrics_.evicted->Add(1);
  }
  if (expired.empty()) return;
  // Invalidate before any repair detection runs and before the slots are
  // re-used: a cached kernel value against an evicted point must never be
  // served again.
  metrics_.cache_invalidated->Add(oracle_->InvalidateCachedItems(expired));
  free_slots_.insert(free_slots_.end(), expired.begin(), expired.end());
  std::sort(free_slots_.begin(), free_slots_.end(), std::greater<Index>());
  // Repair the clusters that lost members, in ascending id order.
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (int cid : dirty) RepairCluster(cid);
}

void OnlineAlid::RepairCluster(int cluster_id) {
  if (cluster_dead_[cluster_id] != 0) return;
  const Cluster& cl = clusters_[cluster_id];
  if (static_cast<int>(cl.members.size()) < options_.alid.min_cluster_size) {
    DissolveCluster(cluster_id);
    return;
  }
  // Re-detect from the heaviest surviving member (first on ties) so the
  // weights rebalance around what is left inside the window.
  size_t heaviest = 0;
  for (size_t t = 1; t < cl.weights.size(); ++t) {
    if (cl.weights[t] > cl.weights[heaviest]) heaviest = t;
  }
  RedetectCluster(cluster_id, cl.members[heaviest]);
}

void OnlineAlid::DissolveCluster(int cluster_id) {
  for (Index i : clusters_[cluster_id].members) assignment_[i] = -1;
  clusters_[cluster_id].members.clear();
  clusters_[cluster_id].weights.clear();
  clusters_[cluster_id].density = 0.0;
  cluster_dead_[cluster_id] = 1;
  ++cluster_version_[cluster_id];
  metrics_.clusters_dissolved->Add(1);
}

void OnlineAlid::MaybeRebudgetCache() {
  if (oracle_->column_cache() == nullptr) return;
  // The construction-time budget saw an empty dataset (the 1 MiB floor);
  // re-derive it from the slot universe the stream actually grew. Growth
  // only — the universe is monotone under a window (slots are re-used), so
  // a shrink could only thrash. Depends solely on data_.size(), hence
  // bit-identical across executors/grains like everything else here.
  const size_t target =
      ColumnCacheOptions::ForDataSize(data_.size(),
                                      options_.cache_budget_fraction)
          .max_bytes;
  if (static_cast<int64_t>(target) > oracle_->cache_budget_bytes()) {
    oracle_->RebudgetColumnCache(target);
    metrics_.cache_rebudgets->Add(1);
  }
}

void OnlineAlid::CompactClusters() {
  if (std::find(cluster_dead_.begin(), cluster_dead_.end(), uint8_t{1}) ==
      cluster_dead_.end()) {
    return;
  }
  std::vector<int> remap(clusters_.size(), -1);
  std::vector<Cluster> kept;
  std::vector<uint64_t> kept_versions;
  std::vector<uint64_t> kept_uids;
  std::vector<SupportSketch> kept_sketches;
  std::vector<ClusterTiles> kept_tiles;
  kept.reserve(clusters_.size());
  for (size_t c = 0; c < clusters_.size(); ++c) {
    if (cluster_dead_[c] != 0) continue;
    remap[c] = static_cast<int>(kept.size());
    kept.push_back(std::move(clusters_[c]));
    kept_versions.push_back(cluster_version_[c]);
    kept_uids.push_back(cluster_uid_[c]);
    kept_sketches.push_back(std::move(sketches_[c]));
    kept_tiles.push_back(std::move(tiles_[c]));
  }
  clusters_ = std::move(kept);
  cluster_version_ = std::move(kept_versions);
  cluster_uid_ = std::move(kept_uids);
  sketches_ = std::move(kept_sketches);
  tiles_ = std::move(kept_tiles);
  cluster_dead_.assign(clusters_.size(), 0);
  for (int& a : assignment_) {
    if (a >= 0) a = remap[a];  // dead clusters hold no assignments
  }
}

}  // namespace alid
