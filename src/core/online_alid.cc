#include "core/online_alid.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace alid {

OnlineAlid::OnlineAlid(int dim, OnlineAlidOptions options)
    : options_(options), data_(dim), affinity_fn_(options.affinity) {
  oracle_ = std::make_unique<LazyAffinityOracle>(data_, affinity_fn_);
  lsh_ = std::make_unique<LshIndex>(data_, options_.lsh);
}

Index OnlineAlid::Insert(std::span<const Scalar> point) {
  const Index idx = data_.size();
  data_.Append(point);
  lsh_->AppendItem(idx);
  assignment_.push_back(-1);

  // Which existing cluster (if any) is the newcomer infective against?
  // Candidates are the clusters of the newcomer's LSH neighbours.
  std::vector<bool> candidate(clusters_.size(), false);
  for (Index j : lsh_->QueryByIndex(idx)) {
    if (assignment_[j] >= 0) candidate[assignment_[j]] = true;
  }
  int best_cluster = -1;
  Scalar best_margin = -std::numeric_limits<Scalar>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    if (!candidate[c]) continue;
    const Cluster& cl = clusters_[c];
    Scalar aff = 0.0;  // pi(s_idx, x_c)
    for (size_t t = 0; t < cl.members.size(); ++t) {
      aff += cl.weights[t] * oracle_->Entry(cl.members[t], idx);
    }
    // Absorb when (near-)infective: same-cluster arrivals sit at the density
    // (Theorem 1 equality on the support), hence the slack.
    const Scalar margin =
        aff - cl.density * (1.0 - options_.absorb_slack);
    if (margin > 0.0 && margin > best_margin) {
      best_margin = margin;
      best_cluster = static_cast<int>(c);
    }
  }
  if (best_cluster >= 0) {
    // Local re-detection absorbs the newcomer and rebalances the weights.
    RedetectCluster(best_cluster, idx);
  }

  if (++since_refresh_ >= options_.refresh_interval) Refresh();
  return idx;
}

void OnlineAlid::Refresh() {
  DetectFromPool();
  since_refresh_ = 0;
}

void OnlineAlid::RedetectCluster(int cluster_id, Index seed) {
  // Items owned by *other* clusters stay out of this re-detection.
  std::vector<bool> exclude(data_.size(), false);
  for (Index i = 0; i < data_.size(); ++i) {
    exclude[i] = assignment_[i] >= 0 && assignment_[i] != cluster_id;
  }
  ALID_CHECK(!exclude[seed]);
  AlidDetector detector(*oracle_, *lsh_, options_.alid);
  Cluster fresh = detector.DetectOne(seed, &exclude);

  // Release the old membership.
  for (Index i : clusters_[cluster_id].members) assignment_[i] = -1;
  if (fresh.density >= options_.alid.density_threshold &&
      static_cast<int>(fresh.members.size()) >=
          options_.alid.min_cluster_size) {
    clusters_[cluster_id] = std::move(fresh);
    Assign(cluster_id);
    return;
  }
  // The cluster dissolved (e.g., it was marginal and the newcomer pulled the
  // dynamics elsewhere): drop it and compact ids.
  clusters_.erase(clusters_.begin() + cluster_id);
  for (int& a : assignment_) {
    if (a > cluster_id) --a;
  }
}

void OnlineAlid::DetectFromPool() {
  std::vector<bool> exclude(data_.size(), false);
  Index pool = 0;
  for (Index i = 0; i < data_.size(); ++i) {
    exclude[i] = assignment_[i] >= 0;
    pool += !exclude[i];
  }
  if (pool == 0) return;
  AlidDetector detector(*oracle_, *lsh_, options_.alid);
  for (Index seed = 0; seed < data_.size(); ++seed) {
    if (exclude[seed]) continue;
    Cluster c = detector.DetectOne(seed, &exclude);
    for (Index i : c.members) exclude[i] = true;  // peel
    if (c.density < options_.alid.density_threshold ||
        static_cast<int>(c.members.size()) < options_.alid.min_cluster_size) {
      continue;
    }
    // A pool cluster might be the missing half of an existing one (its
    // members arrived after that cluster was detected). If the cross
    // density matches dominant-cluster coherence, merge by re-detection
    // over the union.
    int merge_with = -1;
    for (size_t e = 0; e < clusters_.size(); ++e) {
      const Cluster& cl = clusters_[e];
      Scalar cross = 0.0;  // pi(x_new, x_e)
      for (size_t a = 0; a < c.members.size(); ++a) {
        for (size_t b = 0; b < cl.members.size(); ++b) {
          cross += c.weights[a] * cl.weights[b] *
                   oracle_->Entry(c.members[a], cl.members[b]);
        }
      }
      if (cross >= options_.alid.density_threshold) {
        merge_with = static_cast<int>(e);
        break;
      }
    }
    if (merge_with >= 0) {
      // Release the sibling and re-detect over the union of both halves.
      for (Index i : clusters_[merge_with].members) assignment_[i] = -1;
      std::vector<bool> other_owned(data_.size(), false);
      for (Index i = 0; i < data_.size(); ++i) {
        other_owned[i] = assignment_[i] >= 0;
      }
      Cluster merged = detector.DetectOne(c.seed, &other_owned);
      if (merged.density >= options_.alid.density_threshold &&
          static_cast<int>(merged.members.size()) >=
              options_.alid.min_cluster_size) {
        clusters_[merge_with] = std::move(merged);
        Assign(merge_with);
        for (Index i : clusters_[merge_with].members) exclude[i] = true;
        continue;
      }
      // Merge failed; fall through and install the pool cluster as-is.
    }
    clusters_.push_back(std::move(c));
    Assign(static_cast<int>(clusters_.size()) - 1);
  }
}

void OnlineAlid::Assign(int cluster_id) {
  for (Index i : clusters_[cluster_id].members) assignment_[i] = cluster_id;
}

}  // namespace alid
