#ifndef ALID_CORE_PALID_H_
#define ALID_CORE_PALID_H_

#include <vector>

#include "core/alid.h"

namespace alid {

/// Options of Parallel ALID (Algorithm 3, Section 4.6).
struct PalidOptions {
  /// Number of executors (worker threads). The paper's Table 2 sweeps
  /// 1/2/4/8 Spark executors; here each executor is a thread-pool worker.
  int num_executors = 4;
  /// Seeds are sampled from every LSH bucket holding more than this many
  /// items (paper: 5).
  int min_bucket_size = 6;
  /// Uniform within-bucket sample rate for seeds (paper: 20%).
  double seed_sample_rate = 0.2;
  /// Seed-sampling randomness.
  uint64_t seed = 42;
  /// Per-map-task ALID options.
  AlidOptions alid;
};

/// Statistics of one PALID run, for the Table 2 harness: total wall time and
/// the aggregate busy time across map tasks (whose ratio to wall time shows
/// the realized parallelism even on machines with few physical cores).
struct PalidStats {
  int num_seeds = 0;
  double wall_seconds = 0.0;
  double total_task_seconds = 0.0;
};

/// Parallel ALID. The map stage runs Algorithm 2 independently from every
/// sampled seed on a thread pool (one task per seed, executors = threads);
/// the reduce stage assigns each data item to the containing cluster of
/// maximum density, exactly as Algorithm 3's reducer does.
class Palid {
 public:
  Palid(const LazyAffinityOracle& oracle, const LshIndex& lsh,
        PalidOptions options = {});

  /// Runs the full map/reduce. The result's clusters are the per-seed
  /// detections deduplicated by the reduce rule; apply Filtered() for the
  /// paper's density cut.
  DetectionResult Detect(PalidStats* stats = nullptr) const;

  /// Seed sampling of Section 4.6: uniform 20% from each LSH bucket with
  /// more than min_bucket_size items, deduplicated.
  IndexList SampleSeeds() const;

 private:
  const LazyAffinityOracle* oracle_;
  const LshIndex* lsh_;
  PalidOptions options_;
};

}  // namespace alid

#endif  // ALID_CORE_PALID_H_
