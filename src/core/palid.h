#ifndef ALID_CORE_PALID_H_
#define ALID_CORE_PALID_H_

#include <cstdint>
#include <vector>

#include "core/alid.h"

namespace alid {

class ThreadPool;

/// Options of Parallel ALID (Algorithm 3, Section 4.6).
struct PalidOptions {
  /// Number of executors (worker threads). The paper's Table 2 sweeps
  /// 1/2/4/8 Spark executors; here each executor is a thread-pool worker.
  int num_executors = 4;
  /// Seeds are sampled from every LSH bucket holding more than this many
  /// items (paper: 5).
  int min_bucket_size = 6;
  /// Uniform within-bucket sample rate for seeds (paper: 20%). Sampling is
  /// counter-based (HashToUnit keyed by item id), so the sampled set is
  /// independent of bucket iteration order and platform.
  double seed_sample_rate = 0.2;
  /// Seed-sampling randomness; also the root of the per-task RNG streams.
  uint64_t seed = 42;
  /// Seeds per map task. Each task runs `chunk_size` consecutive seeds so
  /// scheduling stays coarse enough to amortize pool overhead; 0 picks a
  /// size giving about 64 tasks total, independent of num_executors (so the
  /// per-task RNG streams are too). Results never depend on the chunking:
  /// every detection writes the slot of its seed.
  int chunk_size = 0;
  /// Work-stealing executors (default). false falls back to the original
  /// single-FIFO-queue pool — the paper-faithful coarse-Spark-task ablation.
  bool work_stealing = true;
  /// Optional externally owned executor pool — e.g. the one the parallel
  /// baselines run on, so a bench sweep exercises PALID and its competitors
  /// on the same substrate. When set, the map stage runs on it and
  /// num_executors / work_stealing are taken from the pool itself. Detect()
  /// must be the pool's only client until it returns (its completion barrier
  /// waits for every job posted to the pool).
  ThreadPool* pool = nullptr;
  /// Per-map-task ALID options.
  AlidOptions alid;
};

/// Statistics of one PALID run, for the Table 2 harness: wall time, the
/// aggregate busy time across map tasks (whose ratio to wall time shows the
/// realized parallelism even on machines with few physical cores), executor
/// steal counts, shared-column-cache effectiveness, and the per-task busy
/// times from which the bench prints a load-balance histogram.
struct PalidStats {
  int num_seeds = 0;
  int num_tasks = 0;
  double wall_seconds = 0.0;
  double total_task_seconds = 0.0;
  /// Map tasks executed by an executor other than the one they were queued
  /// on (0 under the FIFO ablation).
  int64_t steals = 0;
  /// Kernel evaluations avoided / performed during this run. hit_rate is
  /// hits / (hits + computed); 0 when the oracle has no column cache.
  int64_t cache_hits = 0;
  int64_t entries_computed = 0;
  double cache_hit_rate = 0.0;
  /// Column-cache eviction activity during this run plus the cache's
  /// footprint and configured budget at the end of it (all 0 when the oracle
  /// has no cache) — the observability knobs of the default-on flip.
  int64_t cache_evictions = 0;
  /// Entries dropped lazily because an invalidation tag outdated them (only
  /// nonzero when the oracle is shared with a stream whose expiry tags
  /// items) — completes the cache telemetry the bench JSON surfaces.
  int64_t cache_stale_drops = 0;
  int64_t cache_bytes = 0;
  int64_t cache_budget_bytes = 0;
  /// Busy seconds of each map task, in task order.
  std::vector<double> task_seconds;

  /// Histogram of task_seconds over `bins` equal-width buckets spanning
  /// [0, max task time] — the load-balance profile of the map stage.
  std::vector<int> TaskHistogram(int bins = 8) const;
};

/// Parallel ALID. The map stage runs Algorithm 2 independently from every
/// sampled seed on a work-stealing thread pool (one task per seed chunk,
/// executors = workers); the reduce stage assigns each data item to the
/// containing cluster of maximum density, exactly as Algorithm 3's reducer
/// does. Detections are written into per-seed slots and reduced in seed
/// order, so the output is identical for every executor count, chunk size
/// and scheduling discipline.
class Palid {
 public:
  Palid(const LazyAffinityOracle& oracle, const LshIndex& lsh,
        PalidOptions options = {});

  /// Runs the full map/reduce. The result's clusters are the per-seed
  /// detections deduplicated by the reduce rule; apply Filtered() for the
  /// paper's density cut. Besides the optional per-run PalidStats, every
  /// call accumulates its totals onto the global metrics registry's
  /// `palid_*` counters (runs/seeds/tasks/clusters/steals/cache_hits/
  /// entries_computed) and emits "palid" detect/map/reduce trace spans.
  DetectionResult Detect(PalidStats* stats = nullptr) const;

  /// Seed sampling of Section 4.6: uniform 20% from each LSH bucket with
  /// more than min_bucket_size items, deduplicated.
  IndexList SampleSeeds() const;

 private:
  const LazyAffinityOracle* oracle_;
  const LshIndex* lsh_;
  PalidOptions options_;
};

}  // namespace alid

#endif  // ALID_CORE_PALID_H_
