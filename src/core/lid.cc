#include "core/lid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace alid {

Lid::Lid(const LazyAffinityOracle& oracle, Index seed, LidOptions options)
    : oracle_(&oracle), options_(options) {
  ALID_CHECK(seed >= 0 && seed < oracle.size());
  beta_.push_back(seed);
  pos_[seed] = 0;
  x_.push_back(1.0);
  ax_.push_back(0.0);  // a_ii = 0 (Algorithm 2, line 1)
}

Lid::~Lid() {
  if (charged_bytes_ != 0) oracle_->Discharge(charged_bytes_);
}

Lid::Lid(Lid&& other) noexcept
    : oracle_(other.oracle_),
      options_(other.options_),
      beta_(std::move(other.beta_)),
      pos_(std::move(other.pos_)),
      x_(std::move(other.x_)),
      ax_(std::move(other.ax_)),
      columns_(std::move(other.columns_)),
      converged_(other.converged_),
      total_iterations_(other.total_iterations_),
      charged_bytes_(other.charged_bytes_) {
  other.charged_bytes_ = 0;
}

Scalar Lid::Density() const {
  // pi(x) = x^T A x = sum_i x_i (A x)_i, all within beta.
  Scalar pi = 0.0;
  for (size_t i = 0; i < x_.size(); ++i) pi += x_[i] * ax_[i];
  return pi;
}

IndexList Lid::Support() const {
  IndexList out;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] > 0.0) out.push_back(beta_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Index, Scalar>> Lid::SupportWeights() const {
  std::vector<std::pair<Index, Scalar>> out;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] > 0.0) out.emplace_back(beta_[i], x_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Scalar Lid::WeightOf(Index g) const {
  auto it = pos_.find(g);
  return it == pos_.end() ? 0.0 : x_[it->second];
}

Scalar Lid::AverageAffinityTo(Index global_j) const {
  Scalar s = 0.0;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] == 0.0) continue;
    s += x_[i] * oracle_->Entry(beta_[i], global_j);
  }
  return s;
}

const std::vector<Scalar>& Lid::EnsureColumn(Index g) {
  auto it = columns_.find(g);
  if (it != columns_.end()) return it->second;
  std::vector<Scalar> col = oracle_->Column(beta_, g);
  auto [ins, ok] = columns_.emplace(g, std::move(col));
  Recharge();
  return ins->second;
}

void Lid::Recharge() {
  int64_t bytes = 0;
  for (const auto& [g, col] : columns_) {
    bytes += static_cast<int64_t>(col.size() * sizeof(Scalar));
  }
  bytes += static_cast<int64_t>(
      (x_.size() + ax_.size()) * sizeof(Scalar) + beta_.size() * sizeof(Index));
  if (bytes != charged_bytes_) {
    oracle_->Charge(bytes - charged_bytes_);
    charged_bytes_ = bytes;
  }
}

int Lid::Run() {
  const int b = static_cast<int>(beta_.size());
  converged_ = false;
  int iters = 0;
  for (; iters < options_.max_iterations; ++iters) {
    const Scalar pi = Density();
    // Vertex selection M(x) (Eq. 6): maximize |pi(s_i - x, x)| over
    //   C1 = { i : pi(s_i - x, x) > 0 }  (infective vertices)
    //   C2 = { i : pi(s_i - x, x) < 0, x_i > 0 }  (weak support vertices)
    int best = -1;
    Scalar best_abs = options_.tolerance;
    for (int i = 0; i < b; ++i) {
      const Scalar r = ax_[i] - pi;  // Eq. 10
      if (r > 0.0 || (r < 0.0 && x_[i] > 0.0)) {
        const Scalar a = std::abs(r);
        if (a > best_abs) {
          best_abs = a;
          best = i;
        }
      }
    }
    if (best < 0) {
      converged_ = true;  // gamma_beta(x) is empty (Theorem 1)
      break;
    }

    const Scalar r = ax_[best] - pi;           // pi(s_i - x, x)
    const Scalar pi_si_minus_x = -2.0 * ax_[best] + pi;  // Eq. 11 (a_ii = 0)
    const Index g = beta_[best];
    const std::vector<Scalar>& col = EnsureColumn(g);

    // "mu" is the effective share of s_best mixed into x:
    //   infection:     z = (1 - eps) x + eps s_i          => mu = eps
    //   immunization:  z = (1 - mu) x + mu s_i with
    //                  mu = eps * x_i / (x_i - 1) < 0     (Eq. 7/12)
    Scalar mu;
    if (r > 0.0) {
      // Case 1: infection by the strongest infective vertex (Eq. 9).
      Scalar eps = 1.0;
      if (pi_si_minus_x < 0.0) eps = std::min(-r / pi_si_minus_x, 1.0);
      mu = eps;
    } else {
      // Case 2: immunization by the co-vertex s_i(x) (Eq. 12 into Eq. 9).
      const Scalar ratio = x_[best] / (x_[best] - 1.0);  // in (-inf, 0)
      const Scalar num = ratio * r;                      // pi(s_i(x)-x, x) > 0
      const Scalar den = ratio * ratio * pi_si_minus_x;  // pi(s_i(x)-x)
      Scalar eps = 1.0;
      if (den < 0.0) eps = std::min(-num / den, 1.0);
      mu = eps * ratio;
    }

    // Invasion model (Eq. 13): x <- (1 - mu) x + mu s_i.
    for (int i = 0; i < b; ++i) x_[i] *= (1.0 - mu);
    x_[best] += mu;
    // Numerical hygiene: snap tiny/negative weights to zero and renormalize.
    Scalar sum = 0.0;
    for (int i = 0; i < b; ++i) {
      if (x_[i] < options_.weight_epsilon) x_[i] = 0.0;
      sum += x_[i];
    }
    ALID_CHECK_MSG(sum > 0.0, "LID lost all weight");
    const Scalar inv = 1.0 / sum;
    for (int i = 0; i < b; ++i) x_[i] *= inv;

    // Eq. 14: (A x) <- (A x) + mu ([A]_col - (A x)), then the same
    // renormalization applied to x (A x is linear in x).
    for (int i = 0; i < b; ++i) {
      ax_[i] = (ax_[i] + mu * (col[i] - ax_[i])) * inv;
    }
  }
  total_iterations_ += iters;
  return iters;
}

void Lid::UpdateRange(const IndexList& new_candidates) {
  // Gather the support (alpha) with its weights and (A x) rows.
  IndexList new_beta;
  std::vector<Scalar> new_x;
  std::vector<Scalar> new_ax;
  std::vector<int> old_pos;  // position in old beta_, -1 for fresh candidates
  for (size_t i = 0; i < beta_.size(); ++i) {
    if (x_[i] > 0.0) {
      new_beta.push_back(beta_[i]);
      new_x.push_back(x_[i]);
      new_ax.push_back(ax_[i]);
      old_pos.push_back(static_cast<int>(i));
    }
  }
  const size_t alpha_size = new_beta.size();
  for (Index g : new_candidates) {
    if (pos_.count(g) != 0 && x_[pos_[g]] > 0.0) continue;  // already in alpha
    // Candidates outside the old beta OR non-support members being re-added.
    if (std::find(new_beta.begin(), new_beta.end(), g) != new_beta.end()) {
      continue;
    }
    new_beta.push_back(g);
    new_x.push_back(0.0);
    new_ax.push_back(0.0);  // filled below
    old_pos.push_back(-1);
  }

  // Rebuild the support columns on the new range: keep the alpha rows we
  // already have, compute the psi rows fresh; their weighted sum fills the
  // new (A x) entries (Eq. 17).
  std::unordered_map<Index, std::vector<Scalar>> new_columns;
  IndexList psi(new_beta.begin() + alpha_size, new_beta.end());
  for (size_t a = 0; a < alpha_size; ++a) {
    const Index ga = new_beta[a];
    auto it = columns_.find(ga);
    std::vector<Scalar> col(new_beta.size());
    if (it != columns_.end()) {
      for (size_t i = 0; i < alpha_size; ++i) col[i] = it->second[old_pos[i]];
    } else {
      // Support vertex whose column was never materialized (e.g., the seed
      // before its first immunization): compute the alpha rows now.
      IndexList alpha_rows(new_beta.begin(), new_beta.begin() + alpha_size);
      std::vector<Scalar> frag = oracle_->Column(alpha_rows, ga);
      for (size_t i = 0; i < alpha_size; ++i) col[i] = frag[i];
    }
    if (!psi.empty()) {
      std::vector<Scalar> frag = oracle_->Column(psi, ga);
      for (size_t i = 0; i < psi.size(); ++i) col[alpha_size + i] = frag[i];
    }
    new_columns.emplace(ga, std::move(col));
  }
  // (A x) rows for the fresh candidates: sum over support columns.
  for (size_t i = alpha_size; i < new_beta.size(); ++i) {
    Scalar s = 0.0;
    for (size_t a = 0; a < alpha_size; ++a) {
      s += new_x[a] * new_columns[new_beta[a]][i];
    }
    new_ax[i] = s;
  }

  beta_ = std::move(new_beta);
  x_ = std::move(new_x);
  ax_ = std::move(new_ax);
  columns_ = std::move(new_columns);
  pos_.clear();
  for (size_t i = 0; i < beta_.size(); ++i) pos_[beta_[i]] = static_cast<int>(i);
  converged_ = false;
  Recharge();
}

}  // namespace alid
