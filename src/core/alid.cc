#include "core/alid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/roi.h"

namespace alid {

AlidDetector::AlidDetector(const LazyAffinityOracle& oracle,
                           const LshIndex& lsh, AlidOptions options)
    : oracle_(&oracle), lsh_(&lsh), options_(options) {
  ALID_CHECK(lsh.size() == oracle.size());
  ALID_CHECK(options_.max_outer_iterations >= 1);
}

Scalar AlidDetector::FirstRadius() const {
  if (options_.first_radius > 0.0) return options_.first_radius;
  // Adaptive default: the distance at which the Laplacian kernel decays to
  // the peeling threshold. Points beyond it cannot belong to a cluster of
  // density >= the threshold together with the seed, so scanning them in the
  // first iteration is wasted work (it is exactly what lets background
  // clutter seeds terminate in O(1)).
  const double target = std::clamp(options_.density_threshold, 0.05, 0.95);
  return -std::log(target) / oracle_->affinity().params().k;
}

Cluster AlidDetector::DetectOne(Index seed,
                                const std::vector<bool>* exclude) const {
  ALID_CHECK(seed >= 0 && seed < oracle_->size());
  ALID_CHECK(exclude == nullptr || !(*exclude)[seed]);

  Lid lid(*oracle_, seed, options_.lid);
  for (int c = 1; c <= options_.max_outer_iterations; ++c) {
    // Step 1: find the local dense subgraph in the current range.
    lid.Run();
    const Scalar density = lid.Density();
    const auto support = lid.SupportWeights();

    // Step 2: estimate the ROI from x̂ (Eq. 15/16). Before any affinity mass
    // exists (c == 1, singleton support, pi = 0) Algorithm 2 uses a fixed
    // first radius around the seed.
    Roi roi = EstimateRoi(*oracle_, support, density);
    Scalar radius;
    if (!roi.valid) {
      roi.center.assign(oracle_->data()[seed].begin(),
                        oracle_->data()[seed].end());
      roi.valid = true;
      radius = FirstRadius();
    } else {
      radius = roi.RadiusAt(c, options_.logistic_roi_growth);
    }

    // Step 3: CIVS — retrieve candidate infective vertices inside the ROI
    // and fold them into the local range (Eq. 17).
    IndexList psi = CivsRetrieve(*oracle_, *lsh_, roi, radius, support,
                                 exclude, options_.civs);

    // Keep only candidates that are actually infective against x̂: they are
    // the only ones that can increase pi (Theorem 1/2). This mirrors the
    // "candidate *infective* vertex" screening and keeps beta tight.
    IndexList infective;
    if (density > 0.0) {
      for (Index j : psi) {
        if (lid.AverageAffinityTo(j) > density + options_.lid.tolerance) {
          infective.push_back(j);
        }
      }
    } else {
      infective = std::move(psi);  // no subgraph yet; take the neighbourhood
    }

    if (density == 0.0 && infective.empty()) {
      break;  // isolated seed: nothing within the first radius
    }
    const bool roi_fully_grown =
        !options_.logistic_roi_growth || Roi::Theta(c) > 0.99 ||
        radius >= roi.r_out - 1e-12;
    if (infective.empty() && roi_fully_grown) {
      break;  // x̂ immune against all vertices within reach: global (Thm. 1)
    }
    if (!infective.empty()) lid.UpdateRange(infective);
  }

  Cluster cluster;
  cluster.seed = seed;
  cluster.density = lid.Density();
  for (const auto& [g, w] : lid.SupportWeights()) {
    cluster.members.push_back(g);
    cluster.weights.push_back(w);
  }
  return cluster;
}

DetectionResult AlidDetector::DetectAll() const {
  const Index n = oracle_->size();
  std::vector<bool> peeled(n, false);
  DetectionResult result;
  for (Index seed = 0; seed < n; ++seed) {
    if (peeled[seed]) continue;
    Cluster cluster = DetectOne(seed, &peeled);
    for (Index g : cluster.members) peeled[g] = true;
    ALID_CHECK(!cluster.members.empty());
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace alid
