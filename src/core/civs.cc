#include "core/civs.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace alid {

IndexList CivsRetrieve(const LazyAffinityOracle& oracle, const LshIndex& lsh,
                       const Roi& roi, Scalar radius,
                       const std::vector<std::pair<Index, Scalar>>& support,
                       const std::vector<bool>* exclude,
                       const CivsOptions& options) {
  ALID_CHECK(options.delta > 0);
  if (!roi.valid && support.empty()) return {};

  // Step 1: collect candidates from the Locality Sensitive Regions. The
  // paper's CIVS queries from every supporting item; those per-item queries
  // are batched into one multi-probe union (shared buckets visited once, no
  // per-query allocation), which also excludes the support itself.
  IndexList candidates;
  if (options.query_from_all_support) {
    IndexList queried;
    queried.reserve(support.size());
    for (const auto& [g, w] : support) queried.push_back(g);
    lsh.QueryByIndexBatch(queried, &candidates);
  } else if (!roi.center.empty()) {
    std::unordered_set<Index> support_set;
    for (const auto& [g, w] : support) support_set.insert(g);
    for (Index j : lsh.QueryByPoint(roi.center)) {
      if (support_set.count(j) == 0) candidates.push_back(j);
    }
  }

  // Step 2: keep items inside the ROI and not excluded. The center
  // distances run batched through the oracle (gathered SIMD tiles on the
  // supported norms) — bit-identical to per-candidate DistanceTo calls,
  // counters included.
  IndexList eligible;
  eligible.reserve(candidates.size());
  for (Index j : candidates) {
    if (exclude != nullptr && (*exclude)[j]) continue;
    eligible.push_back(j);
  }
  std::vector<Scalar> dists(eligible.size());
  if (!eligible.empty()) oracle.DistancesTo(eligible, roi.center, dists.data());
  std::vector<std::pair<Scalar, Index>> in_roi;
  for (size_t i = 0; i < eligible.size(); ++i) {
    if (dists[i] <= radius) in_roi.emplace_back(dists[i], eligible[i]);
  }

  // Step 3: the delta nearest to the center D.
  if (static_cast<int>(in_roi.size()) > options.delta) {
    std::nth_element(in_roi.begin(), in_roi.begin() + options.delta - 1,
                     in_roi.end());
    in_roi.resize(options.delta);
  }
  std::sort(in_roi.begin(), in_roi.end());
  IndexList out;
  out.reserve(in_roi.size());
  for (const auto& [dist, j] : in_roi) out.push_back(j);
  return out;
}

}  // namespace alid
