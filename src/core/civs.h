#ifndef ALID_CORE_CIVS_H_
#define ALID_CORE_CIVS_H_

#include <vector>

#include "affinity/lazy_affinity_oracle.h"
#include "common/types.h"
#include "core/roi.h"
#include "lsh/lsh_index.h"

namespace alid {

/// Options of the Candidate Infective Vertex Search (Step 3, Section 4.3).
struct CivsOptions {
  /// Maximum number of new data items retrieved per iteration (the paper's
  /// delta; fixed to 800 in its experiments).
  int delta = 800;
  /// If true (the paper's CIVS), one LSH query is issued from every
  /// supporting data item so the union of Locality Sensitive Regions covers
  /// the ROI (Fig. 4b). If false, a single query is issued from the ball
  /// center D (Fig. 4a) — kept as the ablation showing why CIVS is needed.
  bool query_from_all_support = true;
};

/// Retrieves up to `delta` candidate infective vertices inside the ROI
/// hyperball H_c(D, R):
///   1. union the LSH buckets of all supporting items (or of D alone),
///   2. drop items outside the radius, already in the support, or excluded
///      (peeled off by a previous detection),
///   3. keep the `delta` items nearest to the center D.
///
/// `exclude` may be nullptr; otherwise exclude->at(i) == true hides item i.
/// The result is sorted by distance to D, nearest first.
IndexList CivsRetrieve(const LazyAffinityOracle& oracle, const LshIndex& lsh,
                       const Roi& roi, Scalar radius,
                       const std::vector<std::pair<Index, Scalar>>& support,
                       const std::vector<bool>* exclude,
                       const CivsOptions& options);

}  // namespace alid

#endif  // ALID_CORE_CIVS_H_
