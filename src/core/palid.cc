#include "core/palid.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alid {

namespace {

// Process-lifetime PALID totals on the global registry: every Detect() call
// accumulates here regardless of which Palid instance ran it, so long-lived
// hosts (benches, services re-detecting periodically) expose cumulative
// batch-detection work next to the arena/memory gauges. Per-run numbers stay
// in PalidStats — these counters only ever add run totals.
struct PalidCounters {
  obs::Counter* runs;
  obs::Counter* seeds;
  obs::Counter* tasks;
  obs::Counter* clusters;
  obs::Counter* steals;
  obs::Counter* cache_hits;
  obs::Counter* entries_computed;
};

PalidCounters& GlobalPalidCounters() {
  static PalidCounters* counters = [] {
    auto* c = new PalidCounters();
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    c->runs = r.AddCounter("palid_runs");
    c->seeds = r.AddCounter("palid_seeds");
    c->tasks = r.AddCounter("palid_tasks");
    c->clusters = r.AddCounter("palid_clusters");
    c->steals = r.AddCounter("palid_steals");
    c->cache_hits = r.AddCounter("palid_cache_hits");
    c->entries_computed = r.AddCounter("palid_entries_computed");
    return c;
  }();
  return *counters;
}

}  // namespace

std::vector<int> PalidStats::TaskHistogram(int bins) const {
  return EqualWidthHistogram(task_seconds, bins);
}

Palid::Palid(const LazyAffinityOracle& oracle, const LshIndex& lsh,
             PalidOptions options)
    : oracle_(&oracle), lsh_(&lsh), options_(options) {
  ALID_CHECK(options_.num_executors >= 1);
  ALID_CHECK(options_.chunk_size >= 0);
  ALID_CHECK(options_.seed_sample_rate > 0.0 &&
             options_.seed_sample_rate <= 1.0);
}

IndexList Palid::SampleSeeds() const {
  // Counter-based sampling: item i of a qualifying bucket is a seed iff
  // HashToUnit(seed, i) < rate. The decision depends only on (seed, i), so
  // the sampled set is invariant under bucket iteration order — unordered_map
  // order is not part of the contract — and items in several large buckets
  // are sampled once, not once per bucket.
  std::unordered_set<Index> seeds;
  lsh_->VisitBuckets(options_.min_bucket_size,
                     [&](std::span<const Index> items) {
                       for (Index i : items) {
                         if (HashToUnit(options_.seed,
                                        static_cast<uint64_t>(i)) <
                             options_.seed_sample_rate) {
                           seeds.insert(i);
                         }
                       }
                     });
  IndexList out(seeds.begin(), seeds.end());
  std::sort(out.begin(), out.end());
  return out;
}

DetectionResult Palid::Detect(PalidStats* stats) const {
  ALID_TRACE_SCOPE("palid", "detect");
  const IndexList seeds = SampleSeeds();
  AlidDetector detector(*oracle_, *lsh_, options_.alid);

  const int64_t hits_before = oracle_->cache_hits();
  const int64_t entries_before = oracle_->entries_computed();
  const int64_t evictions_before = oracle_->cache_evictions();
  const int64_t stale_before = oracle_->cache_stale_drops();

  WallTimer wall;
  const int num_seeds = static_cast<int>(seeds.size());
  int chunk = options_.chunk_size;
  if (chunk <= 0) {
    // Auto chunking depends on the seed count only — never on num_executors —
    // so task boundaries, and with them the per-task RNG streams below, are
    // identical under every executor count. 64 tasks give ample stealing
    // slack for any plausible executor width at negligible pool overhead.
    chunk = std::max(1, (num_seeds + 63) / 64);
  }
  const int num_tasks = num_seeds == 0 ? 0 : (num_seeds + chunk - 1) / chunk;

  // Per-seed result slots: task t detects seeds [t*chunk, t*chunk+chunk) and
  // writes only its own slots, so no result lock exists and the reduce below
  // sees detections in seed order no matter how tasks were scheduled.
  std::vector<Cluster> raw(num_seeds);
  std::vector<double> task_seconds(num_tasks, 0.0);
  int64_t steals = 0;
  {
    ALID_TRACE_SCOPE("palid", "map");
    // An external pool (options.pool) lets benches run PALID and the
    // parallel baselines on one substrate; otherwise the run owns a pool
    // sized to num_executors. Either way the map tasks and their chunking
    // are identical — the executor pool never influences results.
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool = options_.pool;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(
          options_.num_executors,
          ThreadPoolOptions{.work_stealing = options_.work_stealing});
      pool = owned.get();
    }
    const int64_t steals_before = pool->steal_count();
    for (int t = 0; t < num_tasks; ++t) {
      pool->Post([&, t] {
        // Map task: a chunk of independent Algorithm 2 runs (Figure 5's
        // mappers). Any stochastic choice a task ever needs must draw from
        // a stream keyed by (options.seed, task id) — e.g.
        // Rng(SplitMix64(options.seed ^ t)) — never by the executor id;
        // with task boundaries executor-independent (see chunking above),
        // such choices replay identically under every executor count. The
        // current map stage is fully deterministic (DetectOne draws nothing;
        // seed sampling uses counter-based HashToUnit streams), so no
        // generator is instantiated here.
        WallTimer task_timer;
        const int lo = t * chunk;
        const int hi = std::min(num_seeds, lo + chunk);
        for (int s = lo; s < hi; ++s) raw[s] = detector.DetectOne(seeds[s]);
        task_seconds[t] = task_timer.Seconds();
      });
    }
    pool->Wait();
    steals = pool->steal_count() - steals_before;
  }

  // Reduce: each item goes to its maximum-density containing cluster; a
  // cluster survives iff it wins at least one item. Duplicate detections of
  // the same dominant cluster collapse to one survivor. `raw` is in seed
  // order, so survivors come out deterministically too.
  const Index n = oracle_->size();
  DetectionResult result;
  {
    ALID_TRACE_SCOPE("palid", "reduce");
    std::vector<int> best_cluster(n, -1);
    std::vector<Scalar> best_density(n, -1.0);
    for (size_t c = 0; c < raw.size(); ++c) {
      for (Index i : raw[c].members) {
        if (raw[c].density > best_density[i]) {
          best_density[i] = raw[c].density;
          best_cluster[i] = static_cast<int>(c);
        }
      }
    }
    std::vector<bool> wins(raw.size(), false);
    for (Index i = 0; i < n; ++i) {
      if (best_cluster[i] >= 0) wins[best_cluster[i]] = true;
    }
    for (size_t c = 0; c < raw.size(); ++c) {
      if (wins[c]) result.clusters.push_back(std::move(raw[c]));
    }
  }

  const int64_t run_cache_hits = oracle_->cache_hits() - hits_before;
  const int64_t run_entries = oracle_->entries_computed() - entries_before;
  PalidCounters& totals = GlobalPalidCounters();
  totals.runs->Add(1);
  totals.seeds->Add(num_seeds);
  totals.tasks->Add(num_tasks);
  totals.clusters->Add(static_cast<int64_t>(result.clusters.size()));
  totals.steals->Add(steals);
  totals.cache_hits->Add(run_cache_hits);
  totals.entries_computed->Add(run_entries);

  if (stats != nullptr) {
    stats->num_seeds = num_seeds;
    stats->num_tasks = num_tasks;
    stats->wall_seconds = wall.Seconds();
    stats->total_task_seconds =
        std::accumulate(task_seconds.begin(), task_seconds.end(), 0.0);
    stats->steals = steals;
    stats->cache_hits = run_cache_hits;
    stats->entries_computed = run_entries;
    const int64_t touched = stats->cache_hits + stats->entries_computed;
    stats->cache_hit_rate =
        touched > 0 ? static_cast<double>(stats->cache_hits) / touched : 0.0;
    stats->cache_evictions = oracle_->cache_evictions() - evictions_before;
    stats->cache_stale_drops = oracle_->cache_stale_drops() - stale_before;
    stats->cache_bytes = oracle_->cache_size_bytes();
    stats->cache_budget_bytes = oracle_->cache_budget_bytes();
    stats->task_seconds = std::move(task_seconds);
  }
  return result;
}

}  // namespace alid
