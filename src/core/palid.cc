#include "core/palid.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace alid {

Palid::Palid(const LazyAffinityOracle& oracle, const LshIndex& lsh,
             PalidOptions options)
    : oracle_(&oracle), lsh_(&lsh), options_(options) {
  ALID_CHECK(options_.num_executors >= 1);
  ALID_CHECK(options_.seed_sample_rate > 0.0 &&
             options_.seed_sample_rate <= 1.0);
}

IndexList Palid::SampleSeeds() const {
  Rng rng(options_.seed);
  std::unordered_set<Index> seeds;
  lsh_->VisitBuckets(options_.min_bucket_size,
                     [&](std::span<const Index> items) {
                       for (Index i : items) {
                         if (rng.Bernoulli(options_.seed_sample_rate)) {
                           seeds.insert(i);
                         }
                       }
                     });
  IndexList out(seeds.begin(), seeds.end());
  std::sort(out.begin(), out.end());
  return out;
}

DetectionResult Palid::Detect(PalidStats* stats) const {
  const IndexList seeds = SampleSeeds();
  AlidDetector detector(*oracle_, *lsh_, options_.alid);

  WallTimer wall;
  std::mutex mu;
  std::vector<Cluster> raw;
  double task_seconds = 0.0;
  {
    ThreadPool pool(options_.num_executors);
    for (Index seed : seeds) {
      pool.Submit([&, seed] {
        // Map task: one independent Algorithm 2 run (Figure 5's mappers).
        WallTimer task_timer;
        Cluster c = detector.DetectOne(seed);
        const double secs = task_timer.Seconds();
        std::lock_guard<std::mutex> lock(mu);
        task_seconds += secs;
        raw.push_back(std::move(c));
      });
    }
    pool.Wait();
  }

  // Reduce: each item goes to its maximum-density containing cluster; a
  // cluster survives iff it wins at least one item. Duplicate detections of
  // the same dominant cluster collapse to one survivor.
  const Index n = oracle_->size();
  std::vector<int> best_cluster(n, -1);
  std::vector<Scalar> best_density(n, -1.0);
  for (size_t c = 0; c < raw.size(); ++c) {
    for (Index i : raw[c].members) {
      if (raw[c].density > best_density[i]) {
        best_density[i] = raw[c].density;
        best_cluster[i] = static_cast<int>(c);
      }
    }
  }
  std::vector<bool> wins(raw.size(), false);
  for (Index i = 0; i < n; ++i) {
    if (best_cluster[i] >= 0) wins[best_cluster[i]] = true;
  }
  DetectionResult result;
  for (size_t c = 0; c < raw.size(); ++c) {
    if (wins[c]) result.clusters.push_back(std::move(raw[c]));
  }

  if (stats != nullptr) {
    stats->num_seeds = static_cast<int>(seeds.size());
    stats->wall_seconds = wall.Seconds();
    stats->total_task_seconds = task_seconds;
  }
  return result;
}

}  // namespace alid
