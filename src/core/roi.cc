#include "core/roi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace alid {

namespace {

// log( sum_i exp(terms_i) ) computed stably.
Scalar LogSumExp(const std::vector<Scalar>& terms) {
  ALID_CHECK(!terms.empty());
  const Scalar m = *std::max_element(terms.begin(), terms.end());
  Scalar s = 0.0;
  for (Scalar t : terms) s += std::exp(t - m);
  return m + std::log(s);
}

}  // namespace

Scalar Roi::Theta(int c) {
  return 1.0 / (1.0 + std::exp(4.0 - static_cast<double>(c) / 2.0));
}

Scalar Roi::RadiusAt(int c, bool logistic_growth) const {
  if (!valid) return 0.0;
  const Scalar theta = logistic_growth ? Theta(c) : 1.0;
  return r_in + theta * (r_out - r_in);
}

Roi EstimateRoi(const LazyAffinityOracle& oracle,
                const std::vector<std::pair<Index, Scalar>>& support,
                Scalar density) {
  Roi roi;
  if (support.empty() || density <= 0.0) return roi;

  const Dataset& data = oracle.data();
  const double k = oracle.affinity().params().k;
  const double p = oracle.affinity().params().p;
  const int d = data.dim();

  // D = sum_i x̂_i v_i.
  roi.center.assign(d, 0.0);
  for (const auto& [g, w] : support) {
    auto row = data[g];
    for (int t = 0; t < d; ++t) roi.center[t] += w * row[t];
  }

  // lambda_in  = sum_i x̂_i e^{-k d_i},  lambda_out = sum_i x̂_i e^{+k d_i}
  // evaluated as log-sum-exp over log(x̂_i) -/+ k d_i.
  std::vector<Scalar> lin, lout;
  lin.reserve(support.size());
  lout.reserve(support.size());
  for (const auto& [g, w] : support) {
    if (w <= 0.0) continue;
    const Scalar dist = data.DistanceTo(g, roi.center, p);
    const Scalar logw = std::log(w);
    lin.push_back(logw - k * dist);
    lout.push_back(logw + k * dist);
  }
  if (lin.empty()) return roi;
  const Scalar log_pi = std::log(density);
  // R = (1/k) * (log(lambda) - log(pi)).
  roi.r_in = std::max<Scalar>(0.0, (LogSumExp(lin) - log_pi) / k);
  roi.r_out = std::max<Scalar>(roi.r_in, (LogSumExp(lout) - log_pi) / k);
  roi.valid = true;
  return roi;
}

}  // namespace alid
