#include "core/simplex.h"

#include <cmath>

#include "common/check.h"

namespace alid {

bool IsOnSimplex(std::span<const Scalar> x, double tol) {
  Scalar sum = 0.0;
  for (Scalar v : x) {
    if (v < -tol) return false;
    sum += v;
  }
  return std::abs(sum - 1.0) <= tol;
}

void ProjectToSimplex(std::vector<Scalar>& x) {
  Scalar sum = 0.0;
  for (Scalar& v : x) {
    if (v < 0.0) v = 0.0;
    sum += v;
  }
  if (sum <= 0.0) return;
  for (Scalar& v : x) v /= sum;
}

std::vector<Scalar> Barycenter(Index n) {
  ALID_CHECK(n > 0);
  return std::vector<Scalar>(n, Scalar{1} / static_cast<Scalar>(n));
}

Scalar L1Distance(std::span<const Scalar> a, std::span<const Scalar> b) {
  ALID_CHECK(a.size() == b.size());
  Scalar s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

}  // namespace alid
