#ifndef ALID_AFFINITY_AFFINITY_MATRIX_H_
#define ALID_AFFINITY_AFFINITY_MATRIX_H_

#include <cstdint>
#include <memory>

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "common/matrix.h"
#include "common/memory_tracker.h"

namespace alid {

class ThreadPool;

/// The fully materialized global affinity matrix A — the O(n^2) time/space
/// cost center of the baselines (DS, IID, AP on dense input). Construction is
/// charged against the global MemoryTracker so the Figure 7/9 memory curves
/// reflect exactly this quadratic footprint.
class AffinityMatrix {
 public:
  /// Materializes A for the whole dataset. With a pool, rows fill in
  /// parallel (row i owns cells (i, j) and (j, i) for j > i, so every cell
  /// has exactly one writer and the matrix is identical for every pool
  /// width).
  AffinityMatrix(const Dataset& data, const AffinityFunction& affinity,
                 ThreadPool* pool = nullptr, int64_t grain = 0);

  ~AffinityMatrix();

  AffinityMatrix(const AffinityMatrix&) = delete;
  AffinityMatrix& operator=(const AffinityMatrix&) = delete;

  Index size() const { return matrix_.rows(); }
  const DenseMatrix& matrix() const { return matrix_; }
  Scalar operator()(Index i, Index j) const { return matrix_(i, j); }

  /// Number of kernel evaluations performed at construction (n(n-1)/2, each
  /// mirrored): the "entries computed" axis of Table 1's analysis.
  int64_t entries_computed() const { return entries_computed_; }

 private:
  DenseMatrix matrix_;
  int64_t entries_computed_ = 0;
  std::unique_ptr<ScopedMemoryCharge> charge_;
};

}  // namespace alid

#endif  // ALID_AFFINITY_AFFINITY_MATRIX_H_
