#ifndef ALID_AFFINITY_AFFINITY_FUNCTION_H_
#define ALID_AFFINITY_AFFINITY_FUNCTION_H_

#include <span>

#include "common/dataset.h"
#include "common/types.h"

namespace alid {

/// Parameters of the Laplacian-kernel affinity of Eq. 1:
///   a_ij = exp(-k * ||v_i - v_j||_p)   (i != j),   a_ii = 0.
struct AffinityParams {
  /// Positive scaling factor of the Laplacian kernel.
  double k = 1.0;
  /// Order of the L_p norm (p >= 1). The paper's experiments use p = 2.
  double p = 2.0;
};

/// Stateless evaluator of the pairwise affinity. All affinity producers
/// (materialized matrix, lazy oracle, sparsifier) delegate here so the kernel
/// is defined exactly once.
class AffinityFunction {
 public:
  explicit AffinityFunction(AffinityParams params);

  const AffinityParams& params() const { return params_; }

  /// Affinity between rows i and j of `data` (0 on the diagonal, Eq. 1).
  Scalar operator()(const Dataset& data, Index i, Index j) const;

  /// Affinity implied by a precomputed distance.
  Scalar FromDistance(Scalar distance) const;

  /// Distance implied by an affinity value (inverse kernel); affinity must be
  /// in (0, 1].
  Scalar ToDistance(Scalar affinity) const;

  /// Suggests a scaling factor k so that the median of `sample_size` random
  /// pairwise distances maps to affinity `target_affinity`. This reproduces
  /// the common practice of tuning the kernel to the data scale.
  /// REQUIRES sample_size >= 1 (checked: the median of an empty sample would
  /// otherwise read out of bounds).
  static double SuggestScalingFactor(const Dataset& data, double p,
                                     double target_affinity = 0.5,
                                     int sample_size = 1000,
                                     uint64_t seed = 42);

 private:
  AffinityParams params_;
};

}  // namespace alid

#endif  // ALID_AFFINITY_AFFINITY_FUNCTION_H_
