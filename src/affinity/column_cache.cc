#include "affinity/column_cache.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/random.h"

namespace alid {

namespace {

// Symmetric pair key: a_ij == a_ji, so both orders map to one slot.
uint64_t PairKey(Index i, Index j) {
  const uint64_t lo = static_cast<uint32_t>(std::min(i, j));
  const uint64_t hi = static_cast<uint32_t>(std::max(i, j));
  return (hi << 32) | lo;
}

}  // namespace

ColumnCacheOptions ColumnCacheOptions::ForDataSize(Index n,
                                                   double budget_fraction) {
  ALID_CHECK(n >= 0);
  ALID_CHECK(budget_fraction > 0.0 && budget_fraction <= 1.0);
  const double dense_bytes = static_cast<double>(n) * static_cast<double>(n) *
                             static_cast<double>(sizeof(Scalar));
  ColumnCacheOptions options;
  options.max_bytes = static_cast<size_t>(
      std::clamp(dense_bytes * budget_fraction,
                 static_cast<double>(kMinAutoBudgetBytes),
                 static_cast<double>(kMaxAutoBudgetBytes)));
  return options;
}

struct ColumnCache::Shard {
  std::mutex mu;
  // front = most recently used. The map indexes into the list.
  std::list<std::pair<uint64_t, Scalar>> lru;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Scalar>>::iterator>
      index;
};

ColumnCache::ColumnCache(ColumnCacheOptions options) : options_(options) {
  ALID_CHECK(options_.num_shards > 0);
  ALID_CHECK(options_.max_bytes >= kBytesPerEntry);
  max_bytes_per_shard_ = std::max<size_t>(
      kBytesPerEntry,
      options_.max_bytes / static_cast<size_t>(options_.num_shards));
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ColumnCache::~ColumnCache() { Clear(); }

ColumnCache::Shard& ColumnCache::ShardFor(uint64_t key) {
  // SplitMix64 spreads consecutive pair keys across shards.
  return *shards_[SplitMix64(key) % shards_.size()];
}

bool ColumnCache::Lookup(Index i, Index j, Scalar* value) {
  const uint64_t key = PairKey(i, j);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ColumnCache::Insert(Index i, Index j, Scalar value) {
  const uint64_t key = PairKey(i, j);
  Shard& shard = ShardFor(key);
  int64_t delta_bytes = 0;
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(key, value);
      shard.index[key] = shard.lru.begin();
      delta_bytes += static_cast<int64_t>(kBytesPerEntry);
      while (shard.index.size() * kBytesPerEntry > max_bytes_per_shard_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        delta_bytes -= static_cast<int64_t>(kBytesPerEntry);
        ++evicted;
      }
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if (delta_bytes != 0) {
    bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
    MemoryTracker::Global().Add(delta_bytes);
  }
}

void ColumnCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

int64_t ColumnCache::EraseItems(std::span<const Index> items) {
  if (items.empty()) return 0;
  const std::unordered_set<uint64_t> gone(items.begin(), items.end());
  int64_t erased = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      const uint64_t lo = it->first & 0xffffffffull;
      const uint64_t hi = it->first >> 32;
      if (gone.count(lo) != 0 || gone.count(hi) != 0) {
        shard->index.erase(it->first);
        it = shard->lru.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  if (erased != 0) {
    const int64_t freed = erased * static_cast<int64_t>(kBytesPerEntry);
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    MemoryTracker::Global().Add(-freed);
  }
  return erased;
}

void ColumnCache::Clear() {
  int64_t freed = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    freed += static_cast<int64_t>(shard->index.size() * kBytesPerEntry);
    shard->index.clear();
    shard->lru.clear();
  }
  if (freed != 0) {
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    MemoryTracker::Global().Add(-freed);
  }
}

}  // namespace alid
